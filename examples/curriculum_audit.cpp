// Curriculum audit: the paper's §IV analysis as a runnable tool.
//
// Audits the three case-study programs (LAU, AUC, RIT) plus a deliberately
// deficient program against the ABET CAC CS criterion, prints each
// program's PDC profile (coverage, pillars, weighted score, dedicated
// course or scattered), and — via the exemplar registry — shows where in
// PDCkit an instructor finds a working implementation of any topic a
// program covers.
#include <iostream>

#include "core/case_studies.hpp"
#include "core/registry.hpp"
#include "core/survey.hpp"
#include "support/table.hpp"

using namespace pdc::core;
using pdc::support::TextTable;

namespace {

void audit(const Program& program) {
  const auto result = check_abet_cs(program);
  const auto coverage = program.required_coverage();

  std::cout << "== " << program.institution << " — " << program.name << " ==\n";
  std::cout << "approach: "
            << (program.has_dedicated_pdc_course()
                    ? "dedicated required PDC course"
                    : "PDC scattered across required courses")
            << "  |  PDC-carrying required courses: "
            << program.pdc_carrying_courses().size()
            << "  |  weighted PDC score: " << program.weighted_pdc_score()
            << '\n';
  std::cout << "ABET CAC areas: architecture=" << result.architecture
            << " info-mgmt=" << result.information_management
            << " networking=" << result.networking
            << " os=" << result.operating_systems << " pdc=" << result.pdc
            << "  =>  " << (result.compliant() ? "COMPLIANT" : "NOT COMPLIANT")
            << '\n';
  if (!result.missing_pillars.empty()) {
    std::cout << "missing PDC pillars:";
    for (Pillar pillar : result.missing_pillars) {
      std::cout << ' ' << to_string(pillar);
    }
    std::cout << '\n';
  }
  std::cout << "required PDC coverage (" << coverage.size() << " of "
            << all_concepts().size() << " topics):\n";
  for (PdcConcept topic : coverage) {
    std::cout << "  - " << to_string(topic) << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== PDCkit curriculum audit ===\n\n";
  for (const Program& program : case_study_programs()) audit(program);

  // A program that forgot distribution entirely.
  Program deficient;
  deficient.institution = "Hypothetical State";
  deficient.name = "BS Computer Science (pre-2018 catalog)";
  Course os = make_template_course(CourseCategory::kOperatingSystems);
  os.topics.erase(PdcConcept::kInterProcessCommunication);
  os.topics.erase(PdcConcept::kSharedVsDistributedMemory);
  Course org = make_template_course(CourseCategory::kComputerOrganization);
  org.topics.erase(PdcConcept::kSharedVsDistributedMemory);
  deficient.courses = {os, org,
                       make_template_course(CourseCategory::kDatabaseSystems)};
  audit(deficient);

  // Fix suggestion straight from the registry.
  std::cout << "=== remediation: topics -> PDCkit exemplars ===\n";
  TextTable table;
  table.set_header({"missing topic", "module", "bench"});
  for (PdcConcept topic :
       {PdcConcept::kClientServerProgramming, PdcConcept::kInterProcessCommunication}) {
    for (const Exemplar& exemplar : exemplars_for(topic)) {
      table.add_row({to_string(topic), exemplar.module,
                     exemplar.bench.empty() ? "-" : exemplar.bench});
    }
  }
  table.render(std::cout);
  std::cout << "(every taxonomy topic maps to working code in this repo — "
               "see src/core/registry.cpp)\n";
  return 0;
}
