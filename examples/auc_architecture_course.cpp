// AUC case-study walkthrough (paper §IV-B): the scattered approach —
// PDC depth inside the architecture/OS sequence. This example follows one
// lecture arc of the AUC architecture courses:
//
//   1. a cache-behaviour exercise (locality of access patterns);
//   2. coherence: what actually happens when two cores share a line;
//   3. pipelining: hazards and why compilers schedule around loads;
//   4. Tomasulo, non-speculative then speculative — the course's named
//      topic — on the same instruction stream;
//   5. Flynn's taxonomy as the closing classification.
#include <iostream>

#include "arch/cache.hpp"

#include "support/rng.hpp"
#include "arch/flynn.hpp"
#include "arch/mesi.hpp"
#include "arch/models.hpp"
#include "arch/pipeline.hpp"
#include "arch/tomasulo.hpp"
#include "support/table.hpp"

using namespace pdc::arch;
using pdc::support::TextTable;

int main() {
  std::cout << "=== AUC architecture sequence: PDC embedded in depth ===\n\n";

  // 1. Locality.
  {
    TextTable table("1. Cache behaviour of access patterns (32KB, 64B lines, 4-way)");
    table.set_header({"pattern", "accesses", "hit rate"});
    {
      Cache cache(CacheConfig{});
      for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 4096; ++i) cache.access(i * 4, false);
      }
      table.add_row({"sequential 16KB x4 (fits)", std::to_string(cache.stats().accesses),
                     TextTable::num(cache.stats().hit_rate(), 3)});
    }
    {
      Cache cache(CacheConfig{});
      for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 32768; ++i) cache.access(i * 4, false);
      }
      table.add_row({"sequential 128KB x4 (thrashes)",
                     std::to_string(cache.stats().accesses),
                     TextTable::num(cache.stats().hit_rate(), 3)});
    }
    {
      Cache cache(CacheConfig{});
      pdc::support::Rng rng(1);
      for (int i = 0; i < 131072; ++i) {
        cache.access(rng.next_u64() % (1 << 20), false);
      }
      table.add_row({"random over 1MB", std::to_string(cache.stats().accesses),
                     TextTable::num(cache.stats().hit_rate(), 3)});
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  // 2. Coherence story.
  {
    std::cout << "2. MESI in slow motion (two cores, one line):\n";
    MesiSystem sys(2, CacheConfig{});
    auto show = [&](const char* event) {
      std::cout << "   " << event << "  ->  core0=" << to_string(sys.state_of(0, 0x40))
                << " core1=" << to_string(sys.state_of(1, 0x40)) << '\n';
    };
    sys.read(0, 0x40);
    show("core0 reads          ");
    sys.read(1, 0x40);
    show("core1 reads          ");
    sys.write(0, 0x40);
    show("core0 writes (upgrade)");
    sys.read(1, 0x40);
    show("core1 re-reads (snoop)");
    std::cout << "   invalidations=" << sys.stats().invalidations
              << " writebacks=" << sys.stats().writebacks
              << " upgrades=" << sys.stats().upgrades << "\n\n";
  }

  // 3. Pipeline hazards.
  {
    const auto trace = make_loop_trace(100, 2);
    const auto stalled = simulate_pipeline(trace, {.forwarding = false});
    const auto forwarded = simulate_pipeline(trace, {.forwarding = true});
    std::cout << "3. Pipeline (100-iteration loop): CPI "
              << TextTable::num(stalled.cpi(), 3) << " without forwarding, "
              << TextTable::num(forwarded.cpi(), 3) << " with forwarding ("
              << forwarded.load_use_stalls << " load-use stalls remain)\n\n";
  }

  // 4. Tomasulo.
  {
    const auto trace = make_fp_loop_trace(300, 0.97);
    const auto non_spec = simulate_tomasulo(trace, {.speculative = false});
    TomasuloConfig spec;
    spec.speculative = true;
    const auto speculative = simulate_tomasulo(trace, spec);
    std::cout << "4. Tomasulo on a 97%-taken FP loop:\n"
              << "   non-speculative: " << non_spec.cycles << " cycles (IPC "
              << TextTable::num(non_spec.ipc(), 3) << ", "
              << non_spec.branch_stall_cycles << " branch-stall cycles)\n"
              << "   speculative:     " << speculative.cycles << " cycles (IPC "
              << TextTable::num(speculative.ipc(), 3) << ", "
              << speculative.mispredictions << " mispredictions)\n"
              << "   speedup from speculation: "
              << TextTable::num(static_cast<double>(non_spec.cycles) /
                                    static_cast<double>(speculative.cycles), 2)
              << "x\n\n";
  }

  // 5. Flynn + the speedup frame.
  {
    std::cout << "5. Taxonomy and limits:\n";
    for (const auto& [i, d] : std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {1, 32}, {8, 8}}) {
      std::cout << "   " << i << " instruction stream(s) x " << d
                << " data stream(s): " << describe(classify_flynn(i, d)) << '\n';
    }
    std::cout << "   Amdahl: a 95%-parallel workload caps at "
              << TextTable::num(amdahl_limit(0.95), 0)
              << "x no matter how many cores (64 cores: "
              << TextTable::num(amdahl_speedup(0.95, 64), 1) << "x)\n";
  }
  return 0;
}
