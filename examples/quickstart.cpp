// Quickstart: a five-minute tour of PDCkit's main surfaces.
//
//   1. shared memory  — parallel_for / parallel_reduce on a thread pool;
//   2. message passing — an SPMD world computing a distributed dot product;
//   3. manycore       — a SIMT kernel with coalescing metrics;
//   4. curriculum     — checking a program against the ABET PDC criterion.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>
#include <numeric>

#include "core/curriculum.hpp"
#include "mp/world.hpp"
#include "parallel/parallel_for.hpp"
#include "simt/device.hpp"

int main() {
  std::cout << "== 1. Shared memory: parallel loops ==\n";
  {
    pdc::parallel::ThreadPool pool(4);
    std::vector<double> values(1'000'000);
    pdc::parallel::parallel_for(pool, 0, values.size(), [&](std::size_t i) {
      values[i] = static_cast<double>(i) * 0.5;
    });
    const double sum = pdc::parallel::parallel_reduce<double>(
        pool, 0, values.size(), 0.0, [&](std::size_t i) { return values[i]; },
        std::plus<double>{});
    std::cout << "  sum of 0.5*i for i<1e6 = " << sum << "\n\n";
  }

  std::cout << "== 2. Message passing: SPMD dot product on 4 ranks ==\n";
  {
    pdc::mp::World world(4);
    world.run([](pdc::mp::Communicator& comm) {
      // Each rank owns a slice of two vectors; allreduce combines the
      // partial dot products — the canonical first MPI program.
      constexpr std::size_t kPerRank = 1000;
      const auto base = static_cast<double>(comm.rank()) * kPerRank;
      double partial = 0.0;
      for (std::size_t i = 0; i < kPerRank; ++i) {
        const double x = base + static_cast<double>(i);
        partial += x * 2.0;  // y is the constant vector 2
      }
      double total = 0.0;
      comm.allreduce(&partial, &total, 1, std::plus<double>{});
      if (comm.rank() == 0) {
        std::cout << "  dot(x, 2) over 4000 elements = " << total << '\n';
      }
    });
    std::cout << '\n';
  }

  std::cout << "== 3. Manycore: SIMT vector add with memory metrics ==\n";
  {
    pdc::simt::Device device;
    constexpr std::size_t kN = 4096;
    auto a = device.alloc<float>(kN);
    auto b = device.alloc<float>(kN);
    auto c = device.alloc<float>(kN);
    std::vector<float> host(kN, 1.5f);
    device.write(a, host);
    device.write(b, host);
    const auto stats = device.launch_1d(kN, 256, [&](pdc::simt::ThreadCtx& ctx) {
      const std::size_t i = ctx.global_x();
      ctx.store(c, i, ctx.load(a, i) + ctx.load(b, i));
    });
    std::cout << "  c[0] = " << device.read(c)[0] << ", warps = " << stats.warps
              << ", coalescing efficiency = " << stats.coalescing_efficiency()
              << ", simulated cycles = " << stats.cycles << "\n\n";
  }

  std::cout << "== 4. Curriculum: does this program satisfy the ABET PDC "
               "criterion? ==\n";
  {
    using namespace pdc::core;
    Program program;
    program.institution = "Quickstart U";
    for (CourseCategory category :
         {CourseCategory::kComputerOrganization, CourseCategory::kOperatingSystems,
          CourseCategory::kDatabaseSystems, CourseCategory::kComputerNetworks}) {
      program.courses.push_back(make_template_course(category));
    }
    const auto result = check_abet_cs(program);
    std::cout << "  architecture=" << result.architecture
              << " info-mgmt=" << result.information_management
              << " networking=" << result.networking
              << " os=" << result.operating_systems << " pdc=" << result.pdc
              << " => " << (result.compliant() ? "COMPLIANT" : "NOT compliant")
              << '\n';
    std::cout << "  weighted PDC score: " << program.weighted_pdc_score()
              << '\n';
  }
  return 0;
}
