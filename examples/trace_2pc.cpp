// trace_2pc — a guided tour of pdc::obs (docs/observability.md walks
// through the output).
//
// Part 1 exercises the instrumented runtime from free-running threads
// (contended locks, a thread-pool burst) so the metrics registry has
// something to say about synchronization costs.
//
// Part 2 runs two-phase commit over three ranks on a lossy fabric, under
// testkit::SimScheduler with a fixed seed, with a TraceCollector
// attached. The exported Chrome trace JSON (default: trace_2pc.json, or
// argv[1]) loads in ui.perfetto.dev / chrome://tracing: one track per
// rank, spans for the protocol phases, and flow arrows stitching every
// PREPARE/VOTE/DECISION/ACK — including the retransmissions the fault
// injector forces — into a single causal tree. Because both the schedule
// and the trace ids are seed-deterministic, re-running this binary
// produces the identical file.
#include <atomic>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "concurrency/spinlock.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

// Part 1: make the runtime's own instrumentation light up — contended
// lock acquisitions and thread-pool queue depth / task timings.
void warm_up_runtime_metrics() {
  concurrency::TtasLock lock;
  long shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        std::scoped_lock guard(lock);
        ++shared;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  parallel::ThreadPool pool(2);
  std::atomic<long> sink{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&sink] {
      long s = 0;
      for (int k = 0; k < 1000; ++k) s += k;
      sink += s;
    });
  }
  pool.shutdown();
  std::cout << "part 1: " << shared << " locked increments + 64 pool tasks\n";
}

// Part 2: fixed-seed lossy 2PC under the sim scheduler, traced.
std::string traced_lossy_2pc() {
  obs::TraceCollector collector;
  collector.start();

  mp::World world(3);
  testkit::FaultConfig faults;
  faults.drop = 0.25;  // force retransmission rounds into the trace
  faults.seed = 99;
  world.set_fault_injector(std::make_shared<testkit::FaultInjector>(faults));

  std::vector<dist::TpcStats> stats(3);
  auto bodies = world.rank_bodies([&stats](mp::Communicator& comm) {
    stats[static_cast<std::size_t>(comm.rank())] =
        comm.rank() == 0
            ? dist::run_2pc_coordinator(comm)
            : dist::run_2pc_participant(comm, /*vote_commit=*/true);
  });

  testkit::SchedulerOptions options;
  options.policy = testkit::SchedulePolicy::kRandom;
  options.seed = 2026;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();

  std::cout << "part 2: 2pc over lossy fabric, sim seed " << options.seed
            << " (" << report.steps << " scheduler steps, "
            << report.sim_duration * 1e3 << " virtual ms)\n";
  for (int r = 0; r < 3; ++r) {
    const auto& s = stats[static_cast<std::size_t>(r)];
    std::cout << "  rank " << r << ": " << dist::to_string(s.decision) << ", "
              << s.messages_sent << " protocol messages sent\n";
  }
  std::cout << "  trace: " << collector.event_count() << " events ("
            << collector.dropped_events() << " dropped)\n";
  return collector.chrome_trace_json();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "trace_2pc.json";

  warm_up_runtime_metrics();
  const std::string trace = traced_lossy_2pc();

  std::ofstream out(path, std::ios::binary);
  out << trace;
  if (!out) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  out.close();
  std::cout << "\nwrote " << path
            << " — open it at https://ui.perfetto.dev (or chrome://tracing); "
               "follow the flow arrows from the coordinator's 2pc.prepare "
               "span to each participant and back\n\n";

  std::cout << "metrics registry after both parts:\n";
  obs::MetricsRegistry::instance().scrape().render(std::cout);
  return 0;
}
