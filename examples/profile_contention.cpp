// profile_contention — the continuous profiling plane end to end
// (docs/observability.md, "Continuous profiling", walks through the
// output).
//
// Part 1 runs a fixed-seed workload under testkit::SimScheduler: three
// logical workers publish phase-labeled work into their profiler slots
// (virtual-time phases of different lengths, so the folded profile has a
// visible skew) while Profiler::run_sim_sampler samples every 1 ms of
// virtual time. Alongside, the workers fight over two lock sites with
// deliberately skewed hold times — "demo.hot" blocks an order of
// magnitude longer than "demo.cold" — feeding the contention observatory.
//
// Part 2 writes the folded flamegraph stacks to argv[1] (default
// profile_folded.txt). Everything is virtual-clock-driven, so re-running
// this binary produces the identical file (CI runs it twice and
// byte-compares), and the stacks are flamegraph.pl-compatible:
//
//   flamegraph.pl profile_folded.txt > profile.svg
//
// Part 3 prints the contention top-k: the intentionally-hot site must
// rank first, with its file:line resolved from the site catalog.
//
// Under PDCKIT_OBS_NOOP every instrument compiles out: the folded file is
// empty and the top-k has no rows — the binary still runs cleanly.
#include <atomic>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "testkit/hooks.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

constexpr int kWorkers = 3;

// One worker: alternating compute/exchange phases (compute scales with
// the worker index) plus two contended "lock" waits per round with a 10x
// skew between the hot and cold site.
void worker_body(int w, std::atomic<int>& remaining) {
  auto& prof = obs::Profiler::instance();
  obs::WorkerSlot* slot =
      prof.register_worker("demo.w" + std::to_string(w));
  obs::Profiler::bind_current_thread(slot);
  const std::uint32_t compute = prof.intern_label("phase.compute");
  const std::uint32_t exchange = prof.intern_label("phase.exchange");
  for (int round = 0; round < 4; ++round) {
    {
      obs::ProfiledTask task(compute);
      testkit::poll_pause("demo.compute", 0.003 * (w + 1));
      // The hot site: every round, every worker, a long virtual wait.
      const std::uint64_t start = obs::now_us();
      testkit::poll_pause("demo.lock.hot", 0.002);
      PDC_CONTENTION_SITE("demo.hot").record(obs::now_us() - start);
    }
    {
      obs::ProfiledTask task(exchange);
      testkit::poll_pause("demo.exchange", 0.001);
      // The cold site: a 10x shorter wait, half as often.
      if (round % 2 == 0) {
        const std::uint64_t start = obs::now_us();
        testkit::poll_pause("demo.lock.cold", 0.0002);
        PDC_CONTENTION_SITE("demo.cold").record(obs::now_us() - start);
      }
    }
    obs::publish_worker_state(obs::WorkerState::kParked);
    testkit::poll_pause("demo.park", 0.001);
  }
  obs::Profiler::bind_current_thread(nullptr);
  prof.release_worker(slot);
  remaining.fetch_sub(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string folded_path =
      argc > 1 ? argv[1] : "profile_folded.txt";

  auto& prof = obs::Profiler::instance();
  prof.reset();
  obs::MetricsRegistry::instance().reset();

  // Part 1: fixed-seed sim — workers + the virtual-clock sampler.
  std::atomic<int> remaining{kWorkers};
  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < kWorkers; ++w) {
    bodies.push_back([w, &remaining] { worker_body(w, remaining); });
  }
  bodies.push_back([&remaining, &prof] {
    prof.run_sim_sampler(/*period_seconds=*/0.001,
                         [&] { return remaining.load() == 0; });
  });
  testkit::SchedulerOptions options;
  options.policy = testkit::SchedulePolicy::kRandom;
  options.seed = 2026;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  if (!report.ok()) {
    std::cerr << "sim run failed: " << report.error << "\n";
    return 1;
  }

  // Part 2: the folded stacks, byte-stable across runs.
  const std::string folded = prof.folded();
  std::ofstream out(folded_path);
  out << folded;
  out.close();
  std::cout << "folded profile (" << prof.samples() << " samples) -> "
            << folded_path << "\n\n"
            << folded << "\n";

  // Part 3: contention top-k — demo.hot must outrank demo.cold.
  const auto stats =
      obs::contention_topk(obs::MetricsRegistry::instance().scrape(), 5);
  std::cout << "contention top-" << stats.size() << ":\n";
  for (const auto& s : stats) {
    std::cout << "  " << s.site << "  waits=" << s.count
              << "  total=" << s.total_wait_us << "us  mean=" << s.mean_us
              << "us";
    if (!s.file.empty()) {
      std::cout << "  (" << s.file << ":" << s.line << ")";
    }
    std::cout << "\n";
  }
  if (obs::kObsEnabled) {
    if (stats.empty() || stats[0].site != "demo.hot") {
      std::cerr << "expected demo.hot to rank first\n";
      return 1;
    }
  }
  std::cout << "\nrender with: flamegraph.pl " << folded_path
            << " > profile.svg\n";
  return 0;
}
