// load_storm — a 50k-connection burst against the event-driven server,
// finished with a deterministic telemetry scrape (docs/serving.md walks
// through the output).
//
// Part 1 opens 50,000 simulated connections with net::LoadGen and drives
// a fixed-seed burst arrival curve at an event-driven echo Server: the
// readiness loop, connection shards, and batch steals all run at a scale
// no thread-per-connection model could reach on one host.
//
// Part 2 records the run's totals — every one a deterministic function of
// the fixed seed — into a private MetricsRegistry and serves it through a
// TelemetryServer that itself runs ThreadingModel::kEventDriven. The
// /metrics body is written to argv[1] (default load_storm_metrics.txt);
// CI runs the binary twice and byte-compares the two files, the same
// golden-scrape contract the telemetry smokes enforce. Latency quantiles
// are wall-clock and therefore real — they are printed for the human but
// deliberately kept out of the scraped registry.
#include <fstream>
#include <iostream>
#include <string>

#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "load_storm_metrics.txt";

  // Part 1: the storm. 50k connections, burst curve, fixed seed.
  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net::Network net(5, net_config);

  net::ServerConfig server_config;
  server_config.model = net::ThreadingModel::kEventDriven;
  server_config.workers = 3;
  server_config.view_handler = [](net::BytesView request) {
    return request.to_owned();
  };
  net::Server server(net, 0, 80, nullptr, server_config);

  net::LoadGenConfig load;
  load.connections = 50000;
  load.requests = 100000;
  load.duration_s = 0.5;
  load.curve = net::ArrivalCurve::kBurst;
  load.bursts = 4;
  load.burst_height = 8.0;
  load.drivers = 2;
  load.first_client_host = 1;
  load.client_hosts = 4;
  load.seed = 0x570f;
  net::LoadGen gen(net, server.address());
  std::cout << "part 1: driving " << load.requests << " requests over "
            << load.connections << " connections (burst curve)...\n";
  const net::LoadGenReport report = gen.run(load);
  server.stop();
  std::cout << "  connected " << report.connected << ", sent " << report.sent
            << ", answered " << report.received << ", rps "
            << static_cast<std::uint64_t>(report.rps) << "\n"
            << "  open-loop latency us: p50 "
            << static_cast<std::uint64_t>(report.p50_us) << "  p99 "
            << static_cast<std::uint64_t>(report.p99_us) << "  p999 "
            << static_cast<std::uint64_t>(report.p999_us) << "\n\n";

  // Part 2: the deterministic scrape. Only seed-determined totals go into
  // the registry, so two runs serve byte-identical bodies.
  obs::MetricsRegistry registry;
  registry.counter("storm.connections").inc(report.connected);
  registry.counter("storm.sent").inc(report.sent);
  registry.counter("storm.answered").inc(report.received);
  registry.counter("storm.closed_early").inc(report.closed_early);
  registry.counter("storm.connect_failures").inc(report.connect_failures);

  obs::TelemetryConfig telemetry_config;
  telemetry_config.model = net::ThreadingModel::kEventDriven;
  telemetry_config.registry = &registry;
  obs::TelemetryServer telemetry(net, /*host=*/0, /*port=*/9100,
                                 telemetry_config);
  obs::TelemetryClient client(net, /*host=*/1);
  if (!client.connect(telemetry.address()).is_ok()) {
    std::cerr << "telemetry connect failed\n";
    return 1;
  }
  const std::string body = client.get("/metrics").value();
  client.close();
  telemetry.stop();

  std::ofstream out(path);
  out << body;
  out.close();
  std::cout << "part 2: /metrics (served event-driven) -> " << path << "\n"
            << body;

  // The storm must conserve requests: everything sent was answered.
  if (report.sent != report.received || report.closed_early != 0) {
    std::cerr << "request conservation violated\n";
    return 1;
  }
  return 0;
}
