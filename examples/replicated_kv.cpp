// replicated_kv — a linearizable KV store surviving a leader crash
// (docs/raft.md walks through the protocol this demonstrates).
//
// Part 1 runs a 3-rank dist::ReplicatedKV cluster under a fixed-seed
// testkit::SimScheduler: a leader is elected, every rank writes and reads
// through the replicated log, then the leader is killed mid-run (its
// volatile state destroyed; the durable RaftPersistentState survives, as
// a restarted process's disk would). The survivors elect a replacement,
// the crashed rank rejoins from its log, and every read observes every
// acknowledged write — the linearizability that tests/raft_test.cpp
// checks mechanically, shown here narratively.
//
// Part 2 federates the telemetry the cluster produced: a TelemetryServer
// exposes the process registry, an obs::Aggregator scrapes it, and the
// /metrics exposition shows pdc.raft.term{rank="…"} jumping past the
// crash (the new term) plus the pdc.kv.* client counters — how an
// operator would watch a failover from outside.
#include <array>
#include <atomic>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "net/network.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

constexpr int kRanks = 3;

struct Outcome {
  std::atomic<int> first_leader{-1};
  std::atomic<int> second_leader{-1};
  std::atomic<bool> crashed{false};
  std::atomic<int> done{0};
  std::array<std::uint64_t, kRanks> final_term{};
  std::array<std::string, kRanks> observed;
};

void run_cluster(Outcome& out) {
  auto storage =
      std::make_shared<std::vector<dist::RaftPersistentState>>(kRanks);
  mp::World world(kRanks);
  auto bodies = world.rank_bodies([&out, storage](mp::Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 77;
    std::optional<dist::ReplicatedKV> kv(
        std::in_place, comm, (*storage)[static_cast<std::size_t>(rank)], cfg);
    auto spin = [&] {
      kv->step();
      testkit::poll_pause("kv.example", 0.5e-3);
    };

    while (out.first_leader.load() == -1) {
      if (kv->is_leader()) out.first_leader = rank;
      spin();
    }
    const std::string me = "rank:" + std::to_string(rank);
    (void)kv->put(me, "before-crash");

    if (rank == out.first_leader.load()) {
      // The crash: volatile state (role, commit index, match indexes) is
      // gone; the durable log in `storage` survives.
      kv.reset();
      out.crashed = true;
      while (out.second_leader.load() == -1) {
        testkit::poll_pause("kv.down", 1e-3);
      }
      auto rejoin = cfg;
      rejoin.base_seq = 1;  // one op issued before the crash
      kv.emplace(comm, (*storage)[static_cast<std::size_t>(rank)], rejoin);
    } else {
      while (!out.crashed.load()) spin();
      while (out.second_leader.load() == -1) {
        if (kv->is_leader()) out.second_leader = rank;
        spin();
      }
    }

    (void)kv->put(me, "after-failover");
    const auto got = kv->get(me);
    out.observed[static_cast<std::size_t>(rank)] =
        got.ok() ? got.value : std::string("<") + to_string(got.status) + ">";

    ++out.done;
    while (out.done.load() < kRanks) spin();
    out.final_term[static_cast<std::size_t>(rank)] =
        kv->raft().current_term();
  });

  testkit::SchedulerOptions options;
  options.seed = 9;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  if (!report.ok()) {
    std::cerr << "scheduler error: " << report.error << '\n';
    std::exit(1);
  }
}

/// Lines of the exposition that belong to the Raft/KV planes. The text
/// format sanitizes metric names (dots become underscores), so the series
/// registered as pdc.raft.term renders as pdc_raft_term{rank="..."}.
std::string cluster_lines(const std::string& exposition) {
  std::istringstream in(exposition);
  std::ostringstream kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE", 0) == 0) continue;
    if (line.find("pdc_raft_term") != std::string::npos ||
        line.find("pdc_raft_commit_index") != std::string::npos ||
        line.find("pdc_kv_") != std::string::npos) {
      kept << "  " << line << '\n';
    }
  }
  return kept.str();
}

}  // namespace

int main() {
  std::cout << "=== replicated_kv: surviving a leader crash ===\n\n";

  Outcome out;
  run_cluster(out);

  std::cout << "part 1: 3-rank ReplicatedKV, fixed sim seed\n";
  std::cout << "  first leader:  rank " << out.first_leader.load()
            << " (killed after every rank's first put)\n";
  std::cout << "  second leader: rank " << out.second_leader.load()
            << " (elected by the surviving majority)\n";
  for (int r = 0; r < kRanks; ++r) {
    std::cout << "  rank " << r << " get(rank:" << r << ") -> \""
              << out.observed[static_cast<std::size_t>(r)]
              << "\" at term " << out.final_term[static_cast<std::size_t>(r)]
              << '\n';
  }
  std::cout << "  every acknowledged write survived the crash; the term "
               "advanced past the failover\n\n";

  // ------------------------------------------------ part 2: federation
  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net::Network net(3, net_config);

  obs::TelemetryConfig config;  // default registry: the process instance
  obs::TelemetryServer server(net, /*host=*/0, /*port=*/9100, config);
  std::vector<obs::ScrapeTarget> targets{{server.address(), "cluster"}};
  obs::Aggregator aggregator(net, /*host=*/1, /*port=*/9200,
                             std::move(targets));

  obs::TelemetryClient client(net, /*host=*/2);
  if (!client.connect(aggregator.address()).is_ok()) {
    std::cerr << "aggregator connect failed\n";
    return 1;
  }
  const std::string exposition = client.get("/metrics").value();
  std::cout << "part 2: federated GET /metrics (" << exposition.size()
            << " bytes); the cluster's plane:\n";
  const std::string lines = cluster_lines(exposition);
  if (lines.empty()) {
    std::cout << "  (obs compiled out: PDCKIT_OBS_NOOP build)\n";
  } else {
    std::cout << lines;
  }
  std::cout << "\n(pdc_raft_term{rank=\"...\"} holds the post-failover term "
               "on every rank; the pdc_kv_* counters count the clients "
               "chasing the new leader)\n";

  client.close();
  aggregator.stop();
  server.stop();
  return 0;
}
