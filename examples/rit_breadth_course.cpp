// RIT case-study walkthrough (paper §IV-C): "Concepts of Parallel and
// Distributed Systems" — one course, the whole breadth, emphasizing the
// synergies between multithreaded and network programming.
//
// The project arc of the course, end to end:
//   1. a multithreaded word-count server (threads + networking together);
//   2. datagrams vs connections: reliability built by hand (stop-and-wait);
//   3. network security concepts: integrity tags catch tampering;
//   4. distributed systems: vector clocks, then a leader election over
//      message passing;
//   5. parallel computing closes the loop: speedup limits recap.
#include <atomic>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "arch/models.hpp"
#include "dist/clocks.hpp"
#include "dist/election.hpp"
#include "mp/world.hpp"
#include "net/arq.hpp"
#include "net/checksum.hpp"
#include "net/server.hpp"

using namespace pdc::net;

int main() {
  std::cout << "=== RIT breadth course: threads + networks + distribution ===\n\n";

  // 1. Multithreaded network service.
  {
    Network net(4, NetConfig{});
    // The handler counts words — and is invoked concurrently from several
    // connection-handler threads, so the shared tally is a Monitor'd map
    // behind an atomic total here for brevity.
    std::atomic<long> total_words{0};
    Server server(net, 0, 80, [&](const Bytes& request) {
      std::istringstream stream(to_string(request));
      std::string word;
      long count = 0;
      while (stream >> word) ++count;
      total_words += count;
      return to_bytes(std::to_string(count));
    });

    std::vector<std::thread> clients;
    for (int c = 1; c <= 3; ++c) {
      clients.emplace_back([&, c] {
        Client client(net, c);
        if (!client.connect(server.address()).is_ok()) return;
        const auto reply =
            client.call_text("the quick brown fox client " + std::to_string(c));
        if (reply.is_ok()) {
          std::cout << "  client " << c << " sent 6 words, server counted "
                    << reply.value() << '\n';
        }
        client.close();
      });
    }
    for (auto& t : clients) t.join();
    std::cout << "1. word-count server: " << server.requests_served()
              << " requests from 3 concurrent clients, " << total_words.load()
              << " words total\n\n";
    server.stop();
  }

  // 2. Reliability over datagrams.
  {
    NetConfig config;
    config.latency_ms = 0.1;
    config.loss = 0.15;
    Network net(2, config);
    auto tx = net.open_datagram(0, 1);
    auto rx = net.open_datagram(1, 2);
    const Bytes message = to_bytes(std::string(4096, 'R'));
    std::thread receiver([&] {
      const auto received = arq_receive(*rx);
      std::cout << "   receiver reassembled " << received.value().size()
                << " bytes intact\n";
    });
    const auto stats = arq_send_stop_and_wait(*tx, rx->local(), message, {});
    receiver.join();
    std::cout << "2. stop-and-wait over a 15%-loss link: "
              << stats.value().data_frames_sent << " frames sent ("
              << stats.value().retransmissions << " retransmissions) for "
              << message.size() << " payload bytes\n\n";
  }

  // 3. Security concepts.
  {
    const std::uint64_t key = 0x5ec7e7;
    const Bytes order = to_bytes("pay bob 10");
    const auto tag = keyed_tag(key, order);
    Bytes tampered = order;
    tampered[8] = static_cast<std::byte>('9');
    tampered[9] = static_cast<std::byte>('9');
    std::cout << "3. integrity: genuine message verifies = "
              << verify_tag(key, order, tag)
              << ", tampered ('pay bob 99') verifies = "
              << verify_tag(key, tampered, tag)
              << " (educational tag, not production crypto)\n\n";
  }

  // 4. Distribution: causality and coordination.
  {
    using namespace pdc::dist;
    VectorClock a(2, 0), b(2, 1);
    a.tick();                // A does something
    b.merge(a.now());        // B hears about it
    b.tick();                // B acts on it
    std::cout << "4. vector clocks: A" << a.to_string() << " happened-before B"
              << b.to_string() << " = " << happened_before(a.now(), b.now())
              << '\n';

    pdc::mp::World world(5);
    std::atomic<int> agreed_leader{-1};
    world.run([&](pdc::mp::Communicator& comm) {
      std::vector<bool> alive(5, true);
      alive[4] = false;  // highest rank has failed
      if (!alive[static_cast<std::size_t>(comm.rank())]) {
        (void)ring_election(comm, alive, false);
        return;
      }
      const auto result = ring_election(comm, alive, comm.rank() == 0);
      agreed_leader = result.leader;
    });
    std::cout << "   ring election with rank 4 dead elects rank "
              << agreed_leader.load() << "\n\n";
  }

  // 5. Parallel computing recap.
  std::cout << "5. and the parallel-computing close: a program that is 90% "
               "parallel speeds up at most "
            << pdc::arch::amdahl_limit(0.9) << "x — measure before you scale.\n";
  return 0;
}
