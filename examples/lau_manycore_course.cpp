// LAU case-study walkthrough (paper §IV-A): the dedicated parallel
// programming course, part 3 — manycore/SIMT programming, culminating in
// the course's deep-learning case study ("a brief introduction to deep
// learning as a case-study to showcase the power of parallelism").
//
// Implements on the simulated device:
//   lab 1: block-level shared-memory reduction;
//   lab 2: 2-layer neural-network forward pass (dense + ReLU + dense),
//          every neuron a simulated GPU thread — and checks the result
//          against a host reference;
//   lab 3: the profiling exercise: compare row-major vs column-major
//          weight layout by coalescing metrics and simulated cycles.
#include <cmath>
#include <iostream>
#include <vector>

#include "simt/device.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace pdc::simt;

namespace {

/// Host reference: y = relu(W x + b).
std::vector<float> dense_relu_host(const std::vector<float>& weights,
                                   const std::vector<float>& bias,
                                   const std::vector<float>& x, bool relu) {
  const std::size_t out = bias.size();
  const std::size_t in = x.size();
  std::vector<float> y(out);
  for (std::size_t o = 0; o < out; ++o) {
    float acc = bias[o];
    for (std::size_t i = 0; i < in; ++i) acc += weights[o * in + i] * x[i];
    y[o] = relu ? std::max(0.0f, acc) : acc;
  }
  return y;
}

}  // namespace

int main() {
  std::cout << "=== LAU parallel programming course: manycore labs ===\n\n";
  pdc::support::Rng rng(4711);

  // ---------------------------------------------- lab 1: block reduction
  {
    Device device;
    constexpr unsigned kBlock = 128, kBlocks = 16;
    auto input = device.alloc<float>(kBlock * kBlocks);
    auto partial = device.alloc<float>(kBlocks);
    std::vector<float> host(kBlock * kBlocks);
    double expected = 0.0;
    for (auto& v : host) {
      v = static_cast<float>(rng.uniform(0.0, 1.0));
      expected += v;
    }
    device.write(input, host);
    device.launch(Dim3{kBlocks}, Dim3{kBlock}, kBlock * sizeof(float),
                  [&](ThreadCtx& ctx) {
                    float* shared = ctx.shared<float>();
                    const auto tid = ctx.thread_idx().x;
                    shared[tid] = ctx.load(input, ctx.global_x());
                    ctx.sync_threads();
                    for (unsigned s = kBlock / 2; s > 0; s /= 2) {
                      if (ctx.branch(tid < s)) shared[tid] += shared[tid + s];
                      ctx.sync_threads();
                    }
                    if (tid == 0) ctx.store(partial, ctx.block_idx().x, shared[0]);
                  });
    const auto partials = device.read(partial);
    double total = 0.0;
    for (float p : partials) total += p;
    std::cout << "lab 1 — shared-memory reduction: device=" << total
              << "  host=" << expected << "  (match within fp tolerance: "
              << (std::abs(total - expected) < 1e-2 ? "yes" : "NO") << ")\n\n";
  }

  // -------------------------------- lab 2: neural network forward pass
  {
    Device device;
    constexpr std::size_t kIn = 64, kHidden = 128, kOut = 10;
    std::vector<float> w1(kHidden * kIn), b1(kHidden), w2(kOut * kHidden),
        b2(kOut), x(kIn);
    for (auto* v : {&w1, &w2}) {
      for (auto& f : *v) f = static_cast<float>(rng.normal(0.0, 0.1));
    }
    for (auto* v : {&b1, &b2, &x}) {
      for (auto& f : *v) f = static_cast<float>(rng.uniform(-1.0, 1.0));
    }

    auto d_w1 = device.alloc<float>(w1.size());
    auto d_b1 = device.alloc<float>(b1.size());
    auto d_w2 = device.alloc<float>(w2.size());
    auto d_b2 = device.alloc<float>(b2.size());
    auto d_x = device.alloc<float>(x.size());
    auto d_h = device.alloc<float>(kHidden);
    auto d_y = device.alloc<float>(kOut);
    device.write(d_w1, w1);
    device.write(d_b1, b1);
    device.write(d_w2, w2);
    device.write(d_b2, b2);
    device.write(d_x, x);

    // One thread per hidden neuron, then one per output neuron.
    const auto layer1 = device.launch_1d(kHidden, 64, [&](ThreadCtx& ctx) {
      const std::size_t o = ctx.global_x();
      if (!ctx.branch(o < kHidden)) return;
      float acc = ctx.load(d_b1, o);
      for (std::size_t i = 0; i < kIn; ++i) {
        acc += ctx.load(d_w1, o * kIn + i) * ctx.load(d_x, i);
      }
      ctx.store(d_h, o, std::max(0.0f, acc));
    });
    const auto layer2 = device.launch_1d(kOut, 32, [&](ThreadCtx& ctx) {
      const std::size_t o = ctx.global_x();
      if (!ctx.branch(o < kOut)) return;
      float acc = ctx.load(d_b2, o);
      for (std::size_t i = 0; i < kHidden; ++i) {
        acc += ctx.load(d_w2, o * kHidden + i) * ctx.load(d_h, i);
      }
      ctx.store(d_y, o, acc);
    });

    const auto hidden_ref = dense_relu_host(w1, b1, x, true);
    const auto y_ref = dense_relu_host(w2, b2, hidden_ref, false);
    const auto y_dev = device.read(d_y);
    float max_err = 0.0f;
    for (std::size_t o = 0; o < kOut; ++o) {
      max_err = std::max(max_err, std::abs(y_dev[o] - y_ref[o]));
    }
    std::cout << "lab 2 — NN forward pass (64-128-10): max |device-host| = "
              << max_err << "  (cycles: layer1=" << layer1.cycles
              << ", layer2=" << layer2.cycles << ")\n\n";
  }

  // ---------------------- lab 3: layout tuning via the device profiler
  {
    constexpr std::size_t kOutN = 256, kInN = 256;
    pdc::support::TextTable table(
        "lab 3 — weight layout tuning (one thread per output neuron)");
    table.set_header({"layout", "transactions", "segments",
                      "coalescing", "sim cycles"});
    for (const bool row_major : {true, false}) {
      Device device;
      auto weights = device.alloc<float>(kOutN * kInN);
      auto input = device.alloc<float>(kInN);
      auto output = device.alloc<float>(kOutN);
      const auto stats = device.launch_1d(kOutN, 64, [&](ThreadCtx& ctx) {
        const std::size_t o = ctx.global_x();
        float acc = 0.0f;
        for (std::size_t i = 0; i < kInN; ++i) {
          // Row-major: lanes of a warp read consecutive ROWS — each lane a
          // different 1KB-apart address (uncoalesced). Column-major: lanes
          // read consecutive elements of one column (coalesced).
          const std::size_t idx = row_major ? o * kInN + i : i * kOutN + o;
          acc += ctx.load(weights, idx) * ctx.load(input, i);
        }
        ctx.store(output, o, acc);
      });
      table.add_row({row_major ? "row-major W[o][i]" : "column-major W[i][o]",
                     std::to_string(stats.transactions),
                     std::to_string(stats.segments),
                     pdc::support::TextTable::num(stats.coalescing_efficiency(), 3),
                     std::to_string(stats.cycles)});
    }
    table.render(std::cout);
    std::cout << "(the course's tuning lesson: transpose the weights so "
                 "warp lanes touch adjacent memory)\n";
  }
  return 0;
}
