// traced_kv — one request's life across every layer: LoadGen mints a
// root span, net::Server opens a drain child off the frame header,
// dist::ReplicatedKV adopts the context off the mp piggyback, and Raft
// brackets replication and apply — one trace id end to end
// (docs/observability.md#request-tracing walks through the span tree).
//
// Part 1 runs a fixed-seed 3-rank ReplicatedKV under testkit::SimScheduler
// with traced client ops from rank 0. Virtual timestamps make the kept
// span trees and their critical paths byte-stable: the slowest trace's
// critical path — which hop owned how much of the latency — is written to
// argv[1] (default traced_kv_trace.txt) and CI runs the binary twice and
// byte-compares the files, the same golden contract as load_storm.
//
// Part 2 goes live: the same cluster on free-running threads, each rank
// fronted by a net::Server speaking "PUT k v" / "GET k" / "LEADER?"
// (answers "OK" / "VALUE v" / "ABSENT" / "REDIRECT host port" /
// "LEADER"), stormed by a traced, leader-routed net::LoadGen. Wall-clock
// numbers go to stdout for the human; only the conservation booleans —
// request and span ledgers that must balance on any machine — are
// appended to the compared file.
#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

constexpr int kRanks = 3;
constexpr std::uint16_t kPort = 7000;

std::string render_critical_path(const obs::TraceSummary& trace) {
  std::ostringstream out;
  out << "  slowest trace " << trace.trace_id << ": root " << trace.root_us
      << "us over " << trace.spans.size() << " spans\n  critical path:\n";
  for (const auto& hop : obs::critical_path(trace)) {
    out << "    " << hop.name << "  self " << hop.self_us << "us  ["
        << hop.start_us << ".." << hop.end_us << "]us\n";
  }
  return out.str();
}

// ------------------------------------------------ part 1: fixed-seed sim

/// Rank 0 issues traced PUT/GET ops through the replicated log while the
/// other ranks pump; returns the deterministic section of the output.
std::string run_sim_part() {
  obs::MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 8;
  obs::SpanCollector collector(config);
  collector.start();

  auto storage =
      std::make_shared<std::vector<dist::RaftPersistentState>>(kRanks);
  auto done = std::make_shared<std::atomic<bool>>(false);
  mp::World world(kRanks);
  auto bodies = world.rank_bodies([storage, done](mp::Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 77;
    dist::ReplicatedKV kv(comm, (*storage)[static_cast<std::size_t>(rank)],
                          cfg);
    if (rank == 0) {
      for (int op = 0; op < 6; ++op) {
        auto root =
            obs::span_root("request", 9000 + static_cast<std::uint64_t>(op));
        obs::SpanScope scope(root.context());
        const std::string key = "course" + std::to_string(op / 2);
        const auto result =
            op % 2 == 0 ? kv.put(key, "v" + std::to_string(op)) : kv.get(key);
        obs::span_end(root, result.timed_out());
      }
      done->store(true);
    } else {
      while (!done->load()) {
        kv.step();
        testkit::poll_pause("traced_kv.pump", 0.5e-3);
      }
    }
  });

  testkit::SchedulerOptions options;
  options.seed = 11;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  if (!report.ok()) {
    std::cerr << "scheduler error: " << report.error << '\n';
    std::exit(1);
  }
  collector.stop();

  std::ostringstream out;
  out << "=== traced_kv part 1: fixed-seed sim span trees ===\n"
      << "  completed " << collector.traces_completed() << " kept "
      << collector.traces_kept() << " dropped " << collector.traces_dropped()
      << " evicted " << collector.traces_evicted() << "\n";
  const auto slowest = collector.slowest(1);
  if (slowest.empty()) {
    out << "  (obs compiled out: PDCKIT_OBS_NOOP build)\n";
  } else {
    out << render_critical_path(slowest.front());
  }
  return out.str();
}

// --------------------------------------------------- part 2: live storm

/// One text-protocol op handed from a server handler thread to the
/// rank's KV thread. `ctx` is the server's ambient "server.drain" span,
/// so the KV-side spans join the request's trace.
struct LiveOp {
  std::string text;
  obs::SpanContext ctx;
  std::promise<std::string> reply;
};

struct RankPlane {
  std::mutex mutex;
  std::deque<LiveOp*> ops;
};

struct LivePart {
  net::LoadGenReport report;
  int leader = -1;
  std::vector<obs::TraceSummary> kept;
  std::string slowest_body;  // the /trace/slowest?n=1 reply, operator view
  std::uint64_t started = 0;
  std::uint64_t finished = 0;
  std::uint64_t sampled = 0;
  std::uint64_t dropped = 0;
};

LivePart run_live_part() {
  obs::MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 32;
  obs::SpanCollector collector(config);
  collector.start();

  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net::Network net(7, net_config);

  std::vector<dist::RaftPersistentState> storage(kRanks);
  std::vector<RankPlane> planes(kRanks);
  std::atomic<int> leader_rank{-1};
  std::atomic<int> ready{0};
  std::atomic<bool> stop{false};

  mp::World world(kRanks);
  std::thread cluster([&] {
    world.run([&](mp::Communicator& comm) {
      const auto rank = comm.rank();
      RankPlane& plane = planes[static_cast<std::size_t>(rank)];
      dist::KvConfig cfg;
      cfg.raft.seed = 201;
      dist::ReplicatedKV kv(comm, storage[static_cast<std::size_t>(rank)],
                            cfg);
      // The ingress: "LEADER?" is answered inline off the shared leader
      // hint; data ops are queued to this thread, which owns the KV.
      net::Server server(
          net, /*host=*/rank, kPort,
          [&plane, &leader_rank, rank](const net::Bytes& request) {
            const std::string text = net::to_string(request);
            if (text == "LEADER?") {
              const int leader = leader_rank.load();
              if (leader == rank) return net::to_bytes("LEADER");
              const int hint = leader >= 0 ? leader : (rank + 1) % kRanks;
              return net::to_bytes("REDIRECT " + std::to_string(hint) + " " +
                                   std::to_string(kPort));
            }
            LiveOp op;
            op.text = text;
            op.ctx = obs::current_span();
            auto answered = op.reply.get_future();
            {
              const std::lock_guard<std::mutex> lock(plane.mutex);
              plane.ops.push_back(&op);
            }
            return net::to_bytes(answered.get());
          });
      ready.fetch_add(1);

      auto pop = [&plane]() -> LiveOp* {
        const std::lock_guard<std::mutex> lock(plane.mutex);
        if (plane.ops.empty()) return nullptr;
        LiveOp* op = plane.ops.front();
        plane.ops.pop_front();
        return op;
      };
      auto serve = [&kv](LiveOp* op) {
        // The scope rejoins the request's trace: the KV client send below
        // is stamped with the server's drain span as parent.
        obs::SpanScope scope(op->ctx);
        std::istringstream in(op->text);
        std::string verb, key, value;
        in >> verb >> key;
        if (verb == "PUT" && (in >> value)) {
          const auto result = kv.put(key, value);
          op->reply.set_value(result.ok() ? "OK" : to_string(result.status));
        } else if (verb == "GET") {
          const auto result = kv.get(key);
          op->reply.set_value(
              result.ok() ? "VALUE " + result.value
              : result.status == dist::KvResult::Status::kAbsent
                  ? "ABSENT"
                  : to_string(result.status));
        } else {
          op->reply.set_value("ERR bad request");
        }
      };

      while (!stop.load(std::memory_order_relaxed)) {
        if (kv.is_leader()) leader_rank.store(rank);
        if (LiveOp* op = pop()) {
          serve(op);
        } else {
          kv.step();
          std::this_thread::yield();
        }
      }
      while (LiveOp* op = pop()) serve(op);  // answer stragglers
      server.stop();
    });
  });

  while (ready.load() < kRanks || leader_rank.load() < 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  net::LoadGenConfig load;
  load.connections = 64;
  load.requests = 400;
  load.duration_s = 0.2;
  load.curve = net::ArrivalCurve::kBurst;
  load.bursts = 2;
  load.drivers = 2;
  load.first_client_host = 3;
  load.client_hosts = 4;
  load.grace_s = 30.0;
  load.seed = 0x7ace;
  load.trace = true;
  load.route_to_leader = true;
  for (int rank = 0; rank < kRanks; ++rank) {
    load.cluster.push_back(net::Address{rank, kPort});
  }
  load.probe_request = [] { return net::to_bytes("LEADER?"); };
  load.redirect_of =
      [](const net::Bytes& reply) -> std::optional<net::Address> {
    const std::string text = net::to_string(reply);
    if (text.rfind("REDIRECT ", 0) != 0) return std::nullopt;
    std::istringstream in(text.substr(9));
    net::Address address;
    in >> address.host >> address.port;
    return address;
  };
  load.request_of = [](std::uint64_t seq) {
    const std::string key = "k" + std::to_string(seq % 16);
    return seq % 2 == 0
               ? net::to_bytes("PUT " + key + " v" + std::to_string(seq))
               : net::to_bytes("GET " + key);
  };

  LivePart live;
  net::LoadGen gen(net, net::Address{0, kPort});
  live.report = gen.run(load);
  live.leader = leader_rank.load();
  stop.store(true);
  cluster.join();
  collector.stop();

  live.kept = collector.slowest(config.keep_slowest);
  const auto snapshot = obs::MetricsRegistry::instance().scrape();
  live.started = snapshot.counter("pdc.span.started");
  live.finished = snapshot.counter("pdc.span.finished");
  live.sampled = snapshot.counter("pdc.span.sampled");
  live.dropped = snapshot.counter("pdc.span.dropped");

  // The operator view of the same store: /trace/slowest on a telemetry
  // endpoint (a stopped collector stays renderable).
  obs::TelemetryConfig telemetry_config;
  obs::TelemetryServer telemetry(net, /*host=*/0, /*port=*/9100,
                                 telemetry_config);
  telemetry.attach_spans(&collector);
  obs::TelemetryClient client(net, /*host=*/6);
  if (client.connect(telemetry.address()).is_ok()) {
    live.slowest_body = client.get("/trace/slowest?n=1").value();
    client.close();
  }
  telemetry.stop();
  return live;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "traced_kv_trace.txt";

  const std::string sim_section = run_sim_part();
  std::cout << sim_section << '\n';

  std::cout << "=== traced_kv part 2: leader-routed traced storm ===\n";
  const LivePart live = run_live_part();
  const auto& report = live.report;
  std::cout << "  leader rank " << live.leader << ", discovered in "
            << report.redirects << " redirect hop(s); storm aimed at "
            << report.target.to_string() << "\n  sent " << report.sent
            << ", answered " << report.received << ", open-loop p50 "
            << static_cast<std::uint64_t>(report.p50_us) << "us p99 "
            << static_cast<std::uint64_t>(report.p99_us) << "us\n";

  // The p99 trace: with 400 requests the 4th-slowest kept trace sits at
  // the 99th percentile. Wall-clock, so printed for the human only.
  const std::size_t p99_index = 3;
  if (live.kept.size() > p99_index) {
    std::cout << "  the p99 request's critical path (wall-clock):\n"
              << render_critical_path(live.kept[p99_index]);
  } else if (live.kept.empty()) {
    std::cout << "  (obs compiled out: PDCKIT_OBS_NOOP build)\n";
  }
  if (!live.slowest_body.empty()) {
    std::cout << "  /trace/slowest?n=1 served " << live.slowest_body.size()
              << " bytes of the same store\n";
  }

  // Conservation: the request ledger and the span ledger must balance on
  // any machine — these lines are byte-compared across runs by CI.
  const bool requests_conserved =
      report.sent == report.received && report.closed_early == 0;
  const bool spans_conserved =
      live.started == live.finished &&
      live.sampled + live.dropped == live.finished;
  std::ostringstream conservation;
  conservation << "=== traced_kv part 2: conservation ===\n"
               << "  requests: sent == answered, none lost: "
               << (requests_conserved ? 1 : 0) << "\n"
               << "  spans: started == finished, sampled + dropped == "
                  "finished: "
               << (spans_conserved ? 1 : 0) << "\n";
  std::cout << conservation.str();

  std::ofstream out(path);
  out << sim_section << conservation.str();
  if (requests_conserved && spans_conserved) {
    out << "traced_kv: conservation ok\n";
    std::cout << "traced_kv: conservation ok\n";
  }
  out.close();

  if (!requests_conserved || !spans_conserved) {
    std::cerr << "conservation violated (started " << live.started
              << " finished " << live.finished << " sampled " << live.sampled
              << " dropped " << live.dropped << ")\n";
    return 1;
  }
  return 0;
}
