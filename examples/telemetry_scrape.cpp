// telemetry_scrape — a guided tour of the telemetry plane
// (docs/observability.md, "The telemetry plane", walks through the
// output).
//
// Part 1 runs a fixed-seed two-phase commit under testkit::SimScheduler
// with a TraceCollector attached, so the metrics registry and the trace
// session hold a deterministic workload.
//
// Part 2 starts a pdc::obs::TelemetryServer on the simulated network and
// queries every endpoint from a TelemetryClient on another host. The
// /metrics body — fetched first, before any real-time latency lands in
// the server's self-metrics — is written to argv[1] (default
// telemetry_metrics.txt); because the workload is seed-deterministic,
// re-running this binary produces the identical file (CI byte-compares
// two runs).
//
// Part 3 subscribes to delta frames while a background thread keeps a
// counter busy: each pushed frame carries a monotone cursor and only the
// metrics that moved since the previous frame.
#include <atomic>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

// Part 1: a deterministic workload so the scrape has something to say.
void run_traced_2pc(obs::TraceCollector& collector) {
  collector.start();
  mp::World world(3);
  auto bodies = world.rank_bodies([](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dist::run_2pc_coordinator(comm);
    } else {
      (void)dist::run_2pc_participant(comm, /*vote_commit=*/true);
    }
  });
  testkit::SchedulerOptions options;
  options.policy = testkit::SchedulePolicy::kRandom;
  options.seed = 42;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();
  std::cout << "part 1: fixed-seed 2pc, " << report.steps
            << " scheduler steps, " << collector.event_count()
            << " trace events\n\n";
}

std::string first_lines(const std::string& text, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t line = 0; line < n && pos != std::string::npos; ++line) {
    pos = text.find('\n', pos + 1);
  }
  return pos == std::string::npos ? text : text.substr(0, pos + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "telemetry_metrics.txt";

  obs::TraceCollector collector;
  run_traced_2pc(collector);

  // Part 2: the telemetry plane. Host 0 serves, host 1 scrapes.
  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net::Network net(2, net_config);
  obs::TelemetryServer server(net, /*host=*/0, /*port=*/9100);
  server.attach_collector(&collector);
  obs::TelemetryClient client(net, /*host=*/1);
  if (!client.connect(server.address()).is_ok()) {
    std::cerr << "connect failed\n";
    return 1;
  }

  // /metrics first: nothing real-time has touched the registry yet, so
  // this body is a pure function of the part-1 seed.
  const std::string exposition = client.get("/metrics").value();
  std::ofstream out(path, std::ios::binary);
  out << exposition;
  if (!out) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  out.close();

  std::cout << "part 2: GET /metrics -> " << exposition.size()
            << " bytes written to " << path << "; first lines:\n"
            << first_lines(exposition, 6) << "  ...\n";
  std::cout << "GET /healthz -> " << client.get("/healthz").value();
  std::cout << "GET /metrics.json -> " << client.get("/metrics.json").value().size()
            << " bytes\n";
  std::cout << "GET /trace -> " << client.get("/trace").value().size()
            << " bytes of Chrome trace JSON (load in ui.perfetto.dev)\n\n";

  // Part 3: delta subscription with live traffic. The background writer
  // keeps one counter moving so frames 2..N have a nonzero delta to show.
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    auto& busy = obs::MetricsRegistry::instance().counter("demo.busy.counter");
    while (!stop.load(std::memory_order_relaxed)) {
      busy.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::cout << "part 3: /subscribe 3 frames, 25ms apart (cursor is "
               "monotone; only moved metrics appear):\n";
  const auto status = client.subscribe(
      /*frames=*/3, /*interval_ms=*/25, [](const std::string& frame) {
        std::cout << "  " << first_lines(frame, 1);
        if (frame.back() != '\n') std::cout << '\n';
      });
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  if (!status.is_ok()) {
    std::cerr << "subscribe failed\n";
    return 1;
  }

  client.close();
  server.stop();
  std::cout << "\nre-run this binary: " << path << " comes out byte-identical "
            << "(fixed sim seed; the server never scrapes its own request)\n";
  return 0;
}
