// telemetry_federation — the operator tier of the telemetry plane
// (docs/observability.md, "Scrape federation", walks through the output).
//
// Part 1 runs a fixed-seed four-rank two-phase commit under
// testkit::SimScheduler. Each rank owns its *own* MetricsRegistry and
// records a deterministic per-rank workload into it (message counts from
// the protocol, a synthetic per-rank latency distribution), so four
// independent telemetry planes exist in one process — the single-process
// stand-in for four MPI ranks on four nodes.
//
// Part 2 starts one TelemetryServer per rank (each serving that rank's
// registry) plus a pdc::obs::Aggregator that scrapes all four over
// /metrics.wire, merges (counters sum, gauges last-write, histograms
// bucket-wise), and re-exposes the federated view. The merged /metrics
// body is written to argv[1] (default federation_metrics.txt) and the
// merged /metrics.json to argv[2] when given (CI uploads it as an
// artifact); the workload is seed-deterministic and the merge is
// order-independent, so re-running this binary produces the identical
// file (CI byte-compares two runs).
//
// Part 3 exercises the control verbs: `snapshot-now` against the
// aggregator returns an immediate federated JSON body, and `reset`
// broadcasts to every rank — the next federated scrape shows zeroed
// counters while the per-rank servers keep running.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "net/network.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "testkit/sim_scheduler.hpp"

using namespace pdc;

namespace {

constexpr int kRanks = 4;

// Part 1: four ranks, four registries, one deterministic workload.
void run_federated_2pc(std::vector<std::unique_ptr<obs::MetricsRegistry>>& regs) {
  mp::World world(kRanks);
  auto bodies = world.rank_bodies([&regs](mp::Communicator& comm) {
    const int rank = comm.rank();
    auto& reg = *regs[static_cast<std::size_t>(rank)];
    const dist::TpcStats stats =
        rank == 0 ? dist::run_2pc_coordinator(comm)
                  : dist::run_2pc_participant(comm, /*vote_commit=*/true);
    reg.counter("app.2pc.messages").inc(stats.messages_sent);
    reg.counter("app.2pc.decisions", {{"decision", to_string(stats.decision)}})
        .inc();
    reg.gauge("app.rank_weight").add(rank + 1);
    // A synthetic latency population that differs per rank, so the
    // federated histogram has a shape no single rank shows: rank r records
    // 64 samples spread over [r+1, 64*(r+1)] microseconds.
    auto& hist = reg.histogram("app.step_us");
    for (std::uint64_t i = 1; i <= 64; ++i) {
      hist.record(i * static_cast<std::uint64_t>(rank + 1));
    }
  });
  testkit::SchedulerOptions options;
  options.policy = testkit::SchedulePolicy::kRandom;
  options.seed = 7;
  options.max_steps = 1u << 22;
  testkit::SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  std::cout << "part 1: fixed-seed 4-rank 2pc, " << report.steps
            << " scheduler steps, " << kRanks << " per-rank registries\n\n";
}

std::string first_lines(const std::string& text, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t line = 0; line < n && pos != std::string::npos; ++line) {
    pos = text.find('\n', pos + 1);
  }
  return pos == std::string::npos ? text : text.substr(0, pos + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "federation_metrics.txt";
  const std::string json_path = argc > 2 ? argv[2] : "";

  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  for (int r = 0; r < kRanks; ++r) {
    registries.push_back(std::make_unique<obs::MetricsRegistry>());
  }
  run_federated_2pc(registries);

  // Part 2: hosts 0..3 serve one rank each, host 4 federates, host 5 asks.
  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net::Network net(kRanks + 2, net_config);

  std::vector<std::unique_ptr<obs::TelemetryServer>> servers;
  std::vector<obs::ScrapeTarget> targets;
  for (int r = 0; r < kRanks; ++r) {
    obs::TelemetryConfig config;
    config.registry = registries[static_cast<std::size_t>(r)].get();
    servers.push_back(std::make_unique<obs::TelemetryServer>(
        net, /*host=*/r, /*port=*/9100, config));
    targets.push_back({servers.back()->address(), std::to_string(r)});
  }
  obs::Aggregator aggregator(net, /*host=*/kRanks, /*port=*/9200,
                             std::move(targets));

  obs::TelemetryClient client(net, /*host=*/kRanks + 1);
  if (!client.connect(aggregator.address()).is_ok()) {
    std::cerr << "connect failed\n";
    return 1;
  }

  // The federated /metrics: every per-rank series reappears stamped
  // rank="<r>", plus one aggregate series per family. Byte-stable because
  // the workload is seeded and the merge orders by sorted metric key.
  const std::string exposition = client.get("/metrics").value();
  std::ofstream out(path, std::ios::binary);
  out << exposition;
  if (!out) {
    std::cerr << "failed to write " << path << '\n';
    return 1;
  }
  out.close();

  std::cout << "part 2: federated GET /metrics -> " << exposition.size()
            << " bytes written to " << path << "; first lines:\n"
            << first_lines(exposition, 8) << "  ...\n";
  std::cout << "GET /healthz -> " << client.get("/healthz").value();
  const std::string merged_json = client.get("/metrics.json").value();
  std::cout << "GET /metrics.json -> " << merged_json.size() << " bytes\n\n";
  if (!json_path.empty()) {
    std::ofstream json_out(json_path, std::ios::binary);
    json_out << merged_json;
    if (!json_out) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
  }

  // Part 3: control verbs through the aggregator.
  const std::string snap = client.get("snapshot-now").value();
  std::cout << "part 3: snapshot-now -> " << snap.size()
            << " bytes of federated JSON\n";
  std::cout << "reset -> " << client.get("reset").value();
  const std::string after = client.get("/metrics.json").value();
  std::cout << "post-reset /metrics.json -> " << after.size()
            << " bytes (counters zeroed on every rank)\n";

  client.close();
  aggregator.stop();
  for (auto& server : servers) server->stop();
  std::cout << "\nre-run this binary: " << path
            << " comes out byte-identical (fixed sim seed; merge output is "
            << "independent of scrape completion order)\n";
  return 0;
}
