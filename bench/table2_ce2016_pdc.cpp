// Experiment T2 — regenerates Table II of the paper: "PDC in computer
// engineering knowledge areas [CE2016]".
//
// Filters the CE2016 body-of-knowledge model to the knowledge areas that
// carry PDC-related core units; the rows must match the published table
// exactly (four areas, five units, two of them under Architecture and
// Organization).
#include <iostream>

#include "core/bok.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

int main() {
  pdc::obs::BenchReport report("table2_ce2016_pdc");
  using namespace pdc::core;
  pdc::support::TextTable table(
      "TABLE II — PDC IN COMPUTER ENGINEERING KNOWLEDGE AREAS (CE2016)");
  table.set_header({"Knowledge Area", "PDC-related Core Knowledge Units"});
  for (const KnowledgeArea* area : pdc_areas(ce2016())) {
    bool first = true;
    for (const KnowledgeUnit& unit : area->pdc_core_units()) {
      table.add_row({first ? area->name : "", unit.name});
      first = false;
    }
  }
  table.render(std::cout);
  report.add_table(table);
  std::cout << "\n(CE2016 modelled with " << ce2016().size()
            << " knowledge areas; non-PDC units omitted from the table as in "
               "the paper)\n";
  report.write_if_requested();
  return 0;
}
