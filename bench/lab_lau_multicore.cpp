// Experiment CS-LAU (part 1) — the multicore programming labs of the LAU
// course (paper §IV-A, part 2: thread-level parallelism, scheduling,
// synchronization, profiling/tuning).
//
// google-benchmark over the shared-memory runtime: worksharing schedules
// on uniform vs skewed iteration costs, reduction and scan throughput, and
// the parallel divide-and-conquer sorts. On multi-core hosts the schedule
// comparison shows dynamic/guided absorbing skew; on any host it shows
// their per-chunk overhead.
#include <benchmark/benchmark.h>

#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/sort.hpp"
#include "parallel/work_stealing.hpp"
#include "support/rng.hpp"

namespace {

using namespace pdc::parallel;

/// Busy work proportional to `units` (opaque to the optimizer).
void spin_work(std::size_t units) {
  volatile std::uint64_t acc = 0;
  for (std::size_t i = 0; i < units * 20; ++i) acc += i;
}

void BM_ScheduleUniform(benchmark::State& state) {
  const auto schedule = static_cast<Schedule>(state.range(0));
  ThreadPool pool(4);
  for (auto _ : state) {
    parallel_for(pool, 0, 4096, [](std::size_t) { spin_work(1); },
                 {.schedule = schedule});
  }
}

void BM_ScheduleSkewed(benchmark::State& state) {
  // Iteration cost grows with the index: static chunking misassigns the
  // heavy tail to one runner; dynamic/guided rebalance.
  const auto schedule = static_cast<Schedule>(state.range(0));
  ThreadPool pool(4);
  for (auto _ : state) {
    parallel_for(pool, 0, 2048,
                 [](std::size_t i) { spin_work(i / 256); },
                 {.schedule = schedule, .chunk = 16});
  }
}

BENCHMARK(BM_ScheduleUniform)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScheduleSkewed)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_ParallelReduce(benchmark::State& state) {
  ThreadPool pool(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  for (auto _ : state) {
    const double sum = parallel_reduce<double>(
        pool, 0, n, 0.0, [&](std::size_t i) { return data[i]; },
        std::plus<double>{});
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelReduce)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_ParallelScan(benchmark::State& state) {
  ThreadPool pool(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<long> data(n, 1);
    state.ResumeTiming();
    parallel_inclusive_scan(pool, data, std::plus<long>{});
    benchmark::DoNotOptimize(data.back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelScan)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

template <bool kUseMergeSort>
void sort_benchmark(benchmark::State& state) {
  WorkStealingPool pool(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pdc::support::Rng rng(7);
  std::vector<int> original(n);
  for (auto& x : original) x = static_cast<int>(rng.uniform_int(INT32_MIN, INT32_MAX));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = original;
    state.ResumeTiming();
    if constexpr (kUseMergeSort) {
      parallel_merge_sort(pool, data, 4096);
    } else {
      parallel_quick_sort(pool, data, 4096);
    }
    benchmark::DoNotOptimize(data.front());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ParallelMergeSort(benchmark::State& state) { sort_benchmark<true>(state); }
void BM_ParallelQuickSort(benchmark::State& state) { sort_benchmark<false>(state); }
BENCHMARK(BM_ParallelMergeSort)->Arg(1 << 16)->Arg(1 << 19)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelQuickSort)->Arg(1 << 16)->Arg(1 << 19)->Unit(benchmark::kMillisecond);

void BM_StdSortBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pdc::support::Rng rng(7);
  std::vector<int> original(n);
  for (auto& x : original) x = static_cast<int>(rng.uniform_int(INT32_MIN, INT32_MAX));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = original;
    state.ResumeTiming();
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.front());
  }
}
BENCHMARK(BM_StdSortBaseline)->Arg(1 << 16)->Arg(1 << 19)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
