// Experiment PERF-AMDAHL — "Amdahl's law and its implication on the
// performance of a particular parallel algorithm, speedup and scalability"
// (paper §III item 3).
//
//   1. the analytic Amdahl curves with their saturation limits, next to
//      Gustafson's scaled speedup for the same f;
//   2. a structural check: a fork-join task graph with a serial fraction f
//      is list-scheduled onto p simulated processors; the resulting
//      speedup must track the Amdahl curve (it is the same law, reached by
//      an actual schedule rather than algebra);
//   3. Karp–Flatt: recovering the serial fraction from those "measured"
//      speedups.
#include <iostream>

#include "arch/models.hpp"
#include "obs/bench_report.hpp"
#include "parallel/task_graph.hpp"
#include "support/table.hpp"

using namespace pdc::arch;
using pdc::parallel::TaskGraph;
using pdc::support::TextTable;

namespace {

/// Fork-join graph: serial prologue of cost f*T, then (1-f)*T split into
/// `chunks` equal parallel tasks, then a zero-cost join.
TaskGraph make_amdahl_graph(double f, std::size_t chunks) {
  TaskGraph graph;
  const double total = 1000.0;
  const auto serial = graph.add_task("serial", (1.0 - f) * total);
  const auto join = graph.add_task("join", 0.0);
  for (std::size_t i = 0; i < chunks; ++i) {
    const auto task =
        graph.add_task("par", f * total / static_cast<double>(chunks));
    graph.add_dependency(serial, task);
    graph.add_dependency(task, join);
  }
  return graph;
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("perf_amdahl_speedup");
  std::cout << "=== PERF-AMDAHL: speedup, scalability, and the serial "
               "fraction ===\n\n";
  const std::size_t procs[] = {1, 2, 4, 8, 16, 64, 256, 1024};

  {
    TextTable table("1. Analytic speedup curves (Amdahl | Gustafson)");
    std::vector<std::string> header{"f \\ p"};
    for (std::size_t p : procs) header.push_back(std::to_string(p));
    header.push_back("limit 1/(1-f)");
    table.set_header(header);
    for (double f : {0.5, 0.75, 0.9, 0.95, 0.99}) {
      std::vector<std::string> row{TextTable::num(f, 2)};
      for (std::size_t p : procs) {
        row.push_back(TextTable::num(amdahl_speedup(f, p), 2) + " | " +
                      TextTable::num(gustafson_speedup(f, p), 1));
      }
      row.push_back(TextTable::num(amdahl_limit(f), 1));
      table.add_row(row);
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(Amdahl saturates at 1/(1-f); Gustafson grows linearly "
                 "because the problem scales with p)\n\n";
  }
  {
    TextTable table("2. List-scheduled fork-join graph vs the Amdahl model");
    table.set_header({"f", "p", "model speedup", "scheduled speedup", "ratio"});
    for (double f : {0.5, 0.9, 0.99}) {
      const auto graph = make_amdahl_graph(f, 1024);
      const double t1 = graph.simulated_makespan(1);
      for (std::size_t p : {2, 8, 64, 1024}) {
        const double model = amdahl_speedup(f, p);
        const double scheduled = t1 / graph.simulated_makespan(p);
        table.add_row({TextTable::num(f, 2), std::to_string(p),
                       TextTable::num(model, 2), TextTable::num(scheduled, 2),
                       TextTable::num(scheduled / model, 3)});
      }
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(ratio ~1: the schedule realizes the law)\n\n";
  }
  {
    TextTable table("3. Karp-Flatt experimentally determined serial fraction");
    table.set_header({"true 1-f", "p", "measured speedup", "Karp-Flatt e"});
    for (double f : {0.75, 0.9, 0.95}) {
      const auto graph = make_amdahl_graph(f, 1024);
      const double t1 = graph.simulated_makespan(1);
      for (std::size_t p : {4, 16, 64}) {
        const double speedup = t1 / graph.simulated_makespan(p);
        table.add_row({TextTable::num(1.0 - f, 3), std::to_string(p),
                       TextTable::num(speedup, 2),
                       TextTable::num(karp_flatt_serial_fraction(speedup, p), 3)});
      }
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(e stays at the true serial fraction across p — the "
                 "Karp-Flatt diagnostic)\n";
  }
  report.write_if_requested();
  return 0;
}
