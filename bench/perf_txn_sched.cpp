// Experiment PERF-DB — "scheduling concurrent transactions, transaction
// locks, and deadlocks" (paper §III item 2; Table I row Transactions
// processing).
//
// Sweeps contention (keyspace size and Zipf skew) and write fraction over
// the SAME logical workloads for both schedulers:
//   - strict 2PL on the live multi-threaded Database: throughput falls and
//     deadlock aborts rise with contention;
//   - basic timestamp ordering on the interleaved schedule: aborts rise
//     with contention; the Thomas write rule recovers some of them.
#include <iostream>

#include "db/timestamp.hpp"
#include "db/transaction.hpp"
#include "db/workload.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::db;
using pdc::support::TextTable;

int main() {
  pdc::obs::BenchReport report("perf_txn_sched");
  std::cout << "=== PERF-DB: transaction scheduler comparison ===\n\n";

  struct Level {
    const char* name;
    std::size_t keys;
    double skew;
  };
  const Level levels[] = {
      {"low (4096 keys, uniform)", 4096, 0.0},
      {"medium (64 keys, zipf 0.8)", 64, 0.8},
      {"high (8 keys, zipf 1.2)", 8, 1.2},
  };

  {
    TextTable table("1. Strict 2PL under contention (4 clients x 200 txns, 60% writes)");
    table.set_header({"contention", "committed", "deadlock aborts",
                      "abort ratio", "throughput (txn/s)"});
    for (const Level& level : levels) {
      WorkloadConfig config;
      config.clients = 4;
      config.txns_per_client = 200;
      config.keys = level.keys;
      config.zipf_skew = level.skew;
      config.write_fraction = 0.6;
      config.yield_between_ops = true;  // force interleaving on any host
      config.max_attempts = 100000;     // retry until commit, however hot
      Database db;
      const auto result = run_2pl_workload(db, config);
      table.add_row({level.name, std::to_string(result.committed),
                     std::to_string(result.deadlock_aborts),
                     TextTable::num(result.abort_ratio(), 3),
                     TextTable::num(result.throughput(), 0)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(all transactions eventually commit — victims retry; the "
                 "cost of contention is the abort/retry work)\n\n";
  }
  {
    TextTable table("2. Timestamp ordering on the same workloads");
    table.set_header({"contention", "txns", "aborted (basic)", "abort rate",
                      "aborted (Thomas)", "thomas skips"});
    for (const Level& level : levels) {
      WorkloadConfig config;
      config.clients = 4;
      config.txns_per_client = 200;
      config.keys = level.keys;
      config.zipf_skew = level.skew;
      config.write_fraction = 0.6;
      const auto schedule = make_schedule(config);
      const auto basic = run_timestamp_ordering(schedule, false);
      const auto thomas = run_timestamp_ordering(schedule, true);
      table.add_row({level.name, std::to_string(basic.transactions),
                     std::to_string(basic.aborted),
                     TextTable::num(basic.abort_rate(), 3),
                     std::to_string(thomas.aborted),
                     std::to_string(thomas.thomas_skips)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(T/O never deadlocks but pays with aborts as hot keys see "
                 "out-of-timestamp access; Thomas's rule absorbs obsolete "
                 "writes)\n\n";
  }
  {
    TextTable table("3. Write-fraction sweep at medium contention (2PL)");
    table.set_header({"write fraction", "deadlock aborts", "abort ratio"});
    for (double writes : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      WorkloadConfig config;
      config.clients = 4;
      config.txns_per_client = 200;
      config.keys = 32;
      config.zipf_skew = 0.9;
      config.write_fraction = writes;
      config.yield_between_ops = true;
      Database db;
      const auto result = run_2pl_workload(db, config);
      table.add_row({TextTable::num(writes, 1),
                     std::to_string(result.deadlock_aborts),
                     TextTable::num(result.abort_ratio(), 3)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(read-only workloads cannot deadlock under S locks; "
                 "deadlocks appear with writes and upgrade patterns)\n";
  }
  report.write_if_requested();
  return 0;
}
