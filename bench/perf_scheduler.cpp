// Experiment PERF-SCHEDULER — cost of the scheduler itself: lock-free
// Chase–Lev work stealing (PR 3, docs/scheduler.md) against the design it
// replaced, per-worker mutexed deques.
//
//   1. spawn/steal throughput: a flood of trivial tasks, so the measured
//      time is almost purely scheduler overhead (enqueue + dispatch +
//      decrement); reported as tasks/second.
//   2. fork/join latency: a binary task tree forked from inside workers —
//      the owner push/pop fast path plus the steal path, the shape
//      parallel sorts and task graphs generate.
//
// The baseline pool below deliberately reproduces the pre-PR-3 scheduler:
// one std::mutex per worker deque, std::function tasks, lock-the-victim
// stealing, an unconditional notify_one per spawn, and a timed CV wait
// whenever a worker comes up empty. Same topology, same task bodies — only
// the synchronization strategy differs, so the ratio isolates what every
// scheduler transition used to pay in locks and wakeups.
//
// JSON via PDCKIT_BENCH_JSON (obs::BenchReport); compared across commits
// by bench/compare.py against BENCH_baseline.json.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "parallel/work_stealing.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using pdc::support::Stopwatch;
using pdc::support::TextTable;

// ------------------------------------------------------------ baseline pool

namespace baseline {

// The pre-PR-3 scheduler, reproduced verbatim in structure: per-worker
// deques each guarded by its own mutex (owners push/pop the back, thieves
// lock a victim and take the front), std::function tasks, one
// notify_one per spawn, and a 1ms timed CV wait when a scan finds nothing.
class MutexedPool {
 public:
  explicit MutexedPool(std::size_t threads) : workers_(threads) {
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~MutexedPool() {
    wait_idle();
    stopping_.store(true, std::memory_order_release);
    idle_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void spawn(std::function<void()> fn) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t index =
        (t_pool == this) ? t_index : next_.fetch_add(1) % workers_.size();
    Worker& w = workers_[index];
    {
      std::scoped_lock lock(w.mutex);
      w.queue.push_back(std::move(fn));
    }
    idle_cv_.notify_one();
  }

  void wait_idle() {
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (!run_one(SIZE_MAX)) {
        std::unique_lock lock(idle_mutex_);
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return pending_.load(std::memory_order_acquire) == 0;
        });
      }
    }
  }

 private:
  struct alignas(64) Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  bool run_one(std::size_t self) {
    std::function<void()> task;
    if (!try_take(self, task)) return false;
    task();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  bool try_take(std::size_t self, std::function<void()>& out) {
    if (self != SIZE_MAX) {
      Worker& w = workers_[self];
      std::scoped_lock lock(w.mutex);
      if (!w.queue.empty()) {
        out = std::move(w.queue.back());
        w.queue.pop_back();
        return true;
      }
    }
    for (std::size_t k = 0; k < workers_.size(); ++k) {
      if (k == self) continue;
      Worker& w = workers_[k];
      std::scoped_lock lock(w.mutex);
      if (!w.queue.empty()) {
        out = std::move(w.queue.front());
        w.queue.pop_front();
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t self) {
    t_pool = this;
    t_index = self;
    while (!stopping_.load(std::memory_order_acquire)) {
      if (!run_one(self)) {
        std::unique_lock lock(idle_mutex_);
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return stopping_.load(std::memory_order_acquire) ||
                 pending_.load(std::memory_order_acquire) != 0;
        });
      }
    }
    t_pool = nullptr;
  }

  static thread_local const MutexedPool* t_pool;
  static thread_local std::size_t t_index;

  std::deque<Worker> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

thread_local const MutexedPool* MutexedPool::t_pool = nullptr;
thread_local std::size_t MutexedPool::t_index = 0;

}  // namespace baseline

// ------------------------------------------------------------- experiments

constexpr int kSpawnTasks = 200000;
constexpr int kForkDepth = 12;  // binary tree: 2^12 - 1 = 4095 tasks
constexpr int kForkTrees = 20;

/// Spawn-throughput probe: tasks do one relaxed increment, nothing else.
template <typename Pool>
double spawn_tasks_per_second(Pool& pool) {
  alignas(64) static std::atomic<int> sink{0};
  sink.store(0, std::memory_order_relaxed);
  Stopwatch timer;
  for (int i = 0; i < kSpawnTasks; ++i) {
    pool.spawn([] { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  const double seconds = timer.elapsed_seconds();
  if (sink.load(std::memory_order_relaxed) != kSpawnTasks) {
    std::cerr << "spawn probe lost tasks\n";
    std::exit(1);
  }
  return static_cast<double>(kSpawnTasks) / seconds;
}

/// Fork/join probe: each task forks two children until depth 0; the
/// recursion runs on worker threads, exercising owner push/pop + steals.
template <typename Pool>
void fork_tree(Pool& pool, std::atomic<int>& count, int depth) {
  count.fetch_add(1, std::memory_order_relaxed);
  if (depth == 0) return;
  for (int i = 0; i < 2; ++i) {
    pool.spawn([&pool, &count, depth] { fork_tree(pool, count, depth - 1); });
  }
}

template <typename Pool>
double forkjoin_us_per_tree(Pool& pool) {
  constexpr int kNodes = (1 << kForkDepth) - 1;
  Stopwatch timer;
  for (int tree = 0; tree < kForkTrees; ++tree) {
    std::atomic<int> count{0};
    pool.spawn([&pool, &count] { fork_tree(pool, count, kForkDepth - 1); });
    pool.wait_idle();
    if (count.load() != kNodes) {
      std::cerr << "fork tree lost tasks\n";
      std::exit(1);
    }
  }
  return timer.elapsed_micros() / kForkTrees;
}

/// Hot-owner flood probe: one worker spawns the whole flood from inside
/// the pool, so every task lands in that worker's deque and the peers can
/// only make progress by stealing from it — the shape a connection-event
/// flood produces when one shard goes hot. This is the probe the
/// steal-half batching in ChaseLevDeque::steal_batch targets: a thief
/// claims up to half the victim's backlog per sweep instead of paying
/// victim selection and a wakeup per task.
template <typename Pool>
double hot_owner_flood_per_second(Pool& pool) {
  alignas(64) static std::atomic<int> sink{0};
  sink.store(0, std::memory_order_relaxed);
  constexpr int kFlood = 100000;
  Stopwatch timer;
  pool.spawn([&pool] {
    for (int i = 0; i < kFlood; ++i) {
      pool.spawn([] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  const double seconds = timer.elapsed_seconds();
  if (sink.load(std::memory_order_relaxed) != kFlood) {
    std::cerr << "hot-owner flood lost tasks\n";
    std::exit(1);
  }
  return kFlood / seconds;
}

std::string tkey(std::size_t threads) {
  return "t" + std::to_string(threads);
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("perf_scheduler");
  std::cout << "=== PERF-SCHEDULER: lock-free Chase-Lev vs mutexed deques "
               "===\n\n";

  TextTable spawn_table("1. Spawn/steal throughput (tasks/s, higher better)");
  spawn_table.set_header(
      {"threads", "mutexed deques", "lock-free", "speedup"});
  TextTable fork_table("2. Fork/join latency (us per 4095-task tree)");
  fork_table.set_header(
      {"threads", "mutexed deques", "lock-free", "speedup"});
  TextTable flood_table(
      "3. Hot-owner flood (tasks/s; thieves batch-steal half the backlog)");
  flood_table.set_header(
      {"threads", "mutexed deques", "lock-free", "speedup"});

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    double mutex_spawn = 0.0;
    double mutex_fork = 0.0;
    double mutex_flood = 0.0;
    {
      baseline::MutexedPool pool(threads);
      spawn_tasks_per_second(pool);  // warmup
      mutex_spawn = spawn_tasks_per_second(pool);
      mutex_fork = forkjoin_us_per_tree(pool);
      if (threads > 1) mutex_flood = hot_owner_flood_per_second(pool);
    }
    double lockfree_spawn = 0.0;
    double lockfree_fork = 0.0;
    double lockfree_flood = 0.0;
    {
      pdc::parallel::WorkStealingPool pool(threads);
      spawn_tasks_per_second(pool);  // warmup
      lockfree_spawn = spawn_tasks_per_second(pool);
      lockfree_fork = forkjoin_us_per_tree(pool);
      if (threads > 1) lockfree_flood = hot_owner_flood_per_second(pool);
    }

    const double spawn_speedup = lockfree_spawn / mutex_spawn;
    const double fork_speedup = mutex_fork / lockfree_fork;
    const std::string key = tkey(threads);
    report.add_metric("spawn.mutex." + key + ".per_s", mutex_spawn);
    report.add_metric("spawn.lockfree." + key + ".per_s", lockfree_spawn);
    report.add_metric("spawn_speedup_vs_mutex." + key, spawn_speedup);
    report.add_metric("forkjoin.mutex." + key + ".us", mutex_fork);
    report.add_metric("forkjoin.lockfree." + key + ".us", lockfree_fork);
    report.add_metric("forkjoin_speedup_vs_mutex." + key, fork_speedup);

    spawn_table.add_row({std::to_string(threads),
                         TextTable::num(mutex_spawn / 1e6, 2) + "M/s",
                         TextTable::num(lockfree_spawn / 1e6, 2) + "M/s",
                         TextTable::num(spawn_speedup, 2) + "x"});
    fork_table.add_row({std::to_string(threads),
                        TextTable::num(mutex_fork, 0),
                        TextTable::num(lockfree_fork, 0),
                        TextTable::num(fork_speedup, 2) + "x"});
    if (threads > 1) {
      const double flood_speedup = lockfree_flood / mutex_flood;
      report.add_metric("flood.mutex." + key + ".per_s", mutex_flood);
      report.add_metric("flood.lockfree." + key + ".per_s", lockfree_flood);
      report.add_metric("flood_speedup_vs_mutex." + key, flood_speedup);
      flood_table.add_row({std::to_string(threads),
                           TextTable::num(mutex_flood / 1e6, 2) + "M/s",
                           TextTable::num(lockfree_flood / 1e6, 2) + "M/s",
                           TextTable::num(flood_speedup, 2) + "x"});
    }
  }

  spawn_table.render(std::cout);
  report.add_table(spawn_table);
  std::cout << "(every mutexed transition pays lock/unlock plus cache-line "
               "ping-pong on the lock word; the Chase-Lev owner path is one "
               "release store)\n\n";
  fork_table.render(std::cout);
  report.add_table(fork_table);
  std::cout << "(fork/join leans on the owner LIFO fast path, so the gap "
               "widens with nesting depth)\n\n";
  flood_table.render(std::cout);
  report.add_table(flood_table);
  std::cout << "(all tasks land in one worker's deque; peers batch-steal up "
               "to half the backlog per sweep — see docs/scheduler.md, 'Why "
               "steal-half is a loop, not one CAS')\n";

  report.write_if_requested();
  return 0;
}
