// Experiment PERF-COHER — "multiprocessor caches and cache coherence"
// plus the false-sharing lab (paper §III item 3; LAU course part 2 covers
// false sharing explicitly).
//
// Trace-driven MESI experiments with exact counter outputs:
//   1. per-core counters packed into one line vs padded to separate lines;
//   2. write ping-pong between two cores;
//   3. read-mostly sharing (no invalidation traffic after warm-up);
//   4. sharing-miss classification (true vs false) across layouts.
#include <iostream>

#include "arch/mesi.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::arch;
using pdc::support::TextTable;

namespace {

CacheConfig cache_config() {
  CacheConfig config;
  config.size_bytes = 32 * 1024;
  config.line_bytes = 64;
  config.associativity = 4;
  return config;
}

CoherenceStats run_counters(std::size_t cores, std::uint64_t stride,
                            int rounds) {
  MesiSystem sys(cores, cache_config());
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t c = 0; c < cores; ++c) {
      sys.write(c, 0x1000 + c * stride);  // c-th counter
    }
  }
  return sys.stats();
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("perf_coherence");
  std::cout << "=== PERF-COHER: MESI coherence and false sharing ===\n\n";
  constexpr int kRounds = 1000;

  {
    TextTable table("1. Per-core counters: packed (4B apart) vs padded (64B apart)");
    table.set_header({"cores", "layout", "misses", "invalidations",
                      "false-sharing misses", "true-sharing misses",
                      "miss rate"});
    for (std::size_t cores : {2, 4, 8}) {
      for (const auto& [name, stride] :
           std::vector<std::pair<std::string, std::uint64_t>>{{"packed", 4},
                                                              {"padded", 64}}) {
        const auto stats = run_counters(cores, stride, kRounds);
        table.add_row({std::to_string(cores), name,
                       std::to_string(stats.misses),
                       std::to_string(stats.invalidations),
                       std::to_string(stats.false_sharing_misses),
                       std::to_string(stats.true_sharing_misses),
                       TextTable::num(stats.miss_rate(), 4)});
      }
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(padding eliminates ALL coherence traffic: the counters "
                 "never actually share data)\n\n";
  }
  {
    TextTable table("2. Write ping-pong on one word, 2 cores");
    table.set_header({"rounds", "invalidations", "coherence misses",
                      "true-sharing misses", "writebacks"});
    for (int rounds : {10, 100, 1000}) {
      MesiSystem sys(2, cache_config());
      for (int r = 0; r < rounds; ++r) {
        sys.write(0, 0x2000);
        sys.write(1, 0x2000);
      }
      const auto& stats = sys.stats();
      table.add_row({std::to_string(rounds), std::to_string(stats.invalidations),
                     std::to_string(stats.coherence_misses),
                     std::to_string(stats.true_sharing_misses),
                     std::to_string(stats.writebacks)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(every write invalidates the peer: traffic linear in "
                 "rounds — TRUE sharing, unlike experiment 1's packed "
                 "case)\n\n";
  }
  {
    TextTable table("3. Read-mostly sharing, 4 cores");
    table.set_header({"phase", "misses", "invalidations", "bus reads"});
    MesiSystem sys(4, cache_config());
    for (std::size_t c = 0; c < 4; ++c) sys.read(c, 0x3000);
    const auto warm = sys.stats();
    table.add_row({"after first read each", std::to_string(warm.misses),
                   std::to_string(warm.invalidations),
                   std::to_string(warm.bus_reads)});
    for (int r = 0; r < 1000; ++r) {
      for (std::size_t c = 0; c < 4; ++c) sys.read(c, 0x3000);
    }
    const auto after = sys.stats();
    table.add_row({"after 1000 more rounds", std::to_string(after.misses),
                   std::to_string(after.invalidations),
                   std::to_string(after.bus_reads)});
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(shared lines are free to read: no further bus traffic "
                 "after the four cold misses)\n\n";
  }
  {
    TextTable table("4. Ablation: MSI vs MESI (private read-then-write, 1000 lines)");
    table.set_header({"protocol", "misses", "bus upgrades", "invalidations"});
    for (CoherenceProtocol protocol :
         {CoherenceProtocol::kMsi, CoherenceProtocol::kMesi}) {
      MesiSystem sys(2, cache_config(), 4, protocol);
      for (std::uint64_t i = 0; i < 1000; ++i) {
        // One core touches its private data: read, then update.
        sys.read(0, 0x10000 + i * 64);
        sys.write(0, 0x10000 + i * 64);
      }
      const auto& stats = sys.stats();
      table.add_row({to_string(protocol), std::to_string(stats.misses),
                     std::to_string(stats.upgrades),
                     std::to_string(stats.invalidations)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(the Exclusive state exists for exactly this: private "
                 "read-then-write upgrades silently under MESI, but costs "
                 "a bus transaction per line under MSI)\n";
  }
  report.write_if_requested();
  return 0;
}
