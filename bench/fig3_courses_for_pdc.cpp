// Experiment F3 — regenerates Fig. 3 of the paper: "Courses for PDC
// content by surveyed programs for ABET accreditation".
//
// For each course category: the percentage of surveyed programs whose
// required PDC coverage includes a course of that category. Shape to match
// the paper: the Table-I backbone (OS, organization/architecture, DB,
// networks) carries PDC almost everywhere; a dedicated parallel-programming
// course is rare (1/20 = 5%); systems programming / PL / SE sit in between.
#include <algorithm>
#include <iostream>

#include "core/survey.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

int main() {
  pdc::obs::BenchReport report("fig3_courses_for_pdc");
  using namespace pdc::core;
  const auto programs = generate_survey();
  const auto share = course_share_for_pdc(programs);

  std::vector<std::pair<CourseCategory, double>> rows(share.begin(),
                                                      share.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  pdc::support::TextTable table(
      "FIG. 3 — COURSES FOR PDC CONTENT BY SURVEYED PROGRAMS (n = " +
      std::to_string(programs.size()) + ")");
  table.set_header({"course category", "% of programs", "bar"});
  for (const auto& [category, pct] : rows) {
    table.add_row({to_string(category), pdc::support::TextTable::num(pct, 0),
                   std::string(static_cast<std::size_t>(pct / 2.5), '#')});
  }
  table.render(std::cout);
  report.add_table(table);
  report.write_if_requested();
  return 0;
}
