// Experiment CS-RIT (part 1) — the RIT breadth course's protocol unit
// (paper §IV-C: connections/datagrams, application protocol design).
//
// Reliability built by hand over lossy datagrams: stop-and-wait vs
// go-back-N across loss rates and window sizes. Textbook shapes: the
// window hides the RTT (GBN >> SAW at low loss), GBN efficiency degrades
// with loss (each loss throws away a window), and wider windows only help
// up to the bandwidth-delay product.
#include <iostream>
#include <thread>

#include "net/arq.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::net;
using pdc::support::TextTable;

namespace {

struct RunResult {
  ArqStats stats;
  bool ok = false;
};

enum class Protocol { kStopAndWait, kGoBackN, kSelectiveRepeat };

const char* name_of(Protocol protocol, std::size_t window) {
  static std::string buffer;
  switch (protocol) {
    case Protocol::kStopAndWait: return "stop-and-wait";
    case Protocol::kGoBackN:
      buffer = "go-back-" + std::to_string(window);
      return buffer.c_str();
    case Protocol::kSelectiveRepeat: return "selective repeat";
  }
  return "?";
}

RunResult run_transfer(double loss, Protocol protocol, std::size_t window,
                       std::size_t bytes) {
  NetConfig net_config;
  net_config.latency_ms = 0.5;
  net_config.loss = loss;
  net_config.seed = 42 + static_cast<std::uint64_t>(loss * 100) + window;
  Network net(2, net_config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);

  Bytes data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(i & 0xff);
  }
  RunResult result;
  std::thread receiver([&] {
    const auto received = protocol == Protocol::kSelectiveRepeat
                              ? arq_receive_selective(*rx)
                              : arq_receive(*rx);
    result.ok = received.is_ok() && received.value() == data;
  });
  ArqConfig arq;
  arq.window = window;
  arq.timeout = std::chrono::milliseconds(5);
  const auto stats = [&] {
    switch (protocol) {
      case Protocol::kStopAndWait:
        return arq_send_stop_and_wait(*tx, rx->local(), data, arq);
      case Protocol::kGoBackN:
        return arq_send_go_back_n(*tx, rx->local(), data, arq);
      case Protocol::kSelectiveRepeat:
        return arq_send_selective_repeat(*tx, rx->local(), data, arq);
    }
    return arq_send_stop_and_wait(*tx, rx->local(), data, arq);
  }();
  receiver.join();
  if (stats.is_ok()) result.stats = stats.value();
  result.ok = result.ok && stats.is_ok();
  return result;
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("lab_rit_arq");
  std::cout << "=== CS-RIT: reliable transfer over lossy datagrams ===\n\n";
  constexpr std::size_t kBytes = 64 * 1024;

  {
    TextTable table("1. Protocol x loss rate (64 KiB, 1ms RTT, window 16)");
    table.set_header({"protocol", "loss", "time (ms)", "goodput (KB/s)",
                      "retransmissions", "efficiency", "delivered"});
    for (double loss : {0.0, 0.02, 0.1, 0.2}) {
      for (Protocol protocol : {Protocol::kStopAndWait, Protocol::kGoBackN,
                                Protocol::kSelectiveRepeat}) {
        const auto result = run_transfer(loss, protocol, 16, kBytes);
        table.add_row({name_of(protocol, 16), TextTable::num(loss, 2),
                       TextTable::num(result.stats.seconds * 1e3, 1),
                       TextTable::num(result.stats.goodput_bytes_per_sec() / 1024, 0),
                       std::to_string(result.stats.retransmissions),
                       TextTable::num(result.stats.efficiency(), 3),
                       result.ok ? "yes" : "NO"});
      }
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(selective repeat keeps efficiency near stop-and-wait's "
                 "while keeping go-back-N's pipelining — at the cost of "
                 "receiver buffering)\n";
  }
  std::cout << '\n';
  {
    TextTable table("2. Go-back-N window sweep (loss 0.05)");
    table.set_header({"window", "time (ms)", "goodput (KB/s)", "efficiency"});
    for (std::size_t window : {1, 2, 4, 8, 16, 32, 64}) {
      const auto result = run_transfer(0.05, Protocol::kGoBackN, window, kBytes);
      table.add_row({std::to_string(window),
                     TextTable::num(result.stats.seconds * 1e3, 1),
                     TextTable::num(result.stats.goodput_bytes_per_sec() / 1024, 0),
                     TextTable::num(result.stats.efficiency(), 3)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(window 1 is stop-and-wait; throughput saturates once the "
                 "window covers the bandwidth-delay product, and efficiency "
                 "falls as bigger windows discard more per loss)\n";
  }
  report.write_if_requested();
  return 0;
}
