// Experiment PERF-BAL — load balancing, placement, and process migration
// (paper §IV-B: the AUC distributed-computing course covers "load
// balancing, process migration"; work stealing also closes the loop with
// the shared-memory runtime's scheduler).
//
//   1. scheduling policies on skewed task sets: round-robin vs least-loaded
//      vs work stealing (makespan, utilization, steals);
//   2. consistent hashing: key disruption when the cluster grows, vs the
//      rehash-everything strawman;
//   3. migration-based rebalancing: imbalance before/after, migrations.
#include <iostream>

#include "dist/balance.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::dist;
using pdc::support::TextTable;

int main() {
  pdc::obs::BenchReport report("perf_balance");
  std::cout << "=== PERF-BAL: load balancing, placement, migration ===\n\n";

  {
    TextTable table("1. Policies on a heavy-tailed task set (400 tasks, 8 workers)");
    table.set_header({"policy", "makespan", "utilization", "steals"});
    const auto tasks = make_skewed_tasks(400, 5);
    double ideal = 0.0;
    for (double t : tasks) ideal += t;
    ideal /= 8.0;
    const struct {
      const char* name;
      BalanceResult result;
    } rows[] = {
        {"round robin (static)", simulate_round_robin(tasks, 8)},
        {"least loaded (work sharing)", simulate_least_loaded(tasks, 8)},
        {"work stealing", simulate_work_stealing(tasks, 8)},
    };
    for (const auto& row : rows) {
      table.add_row({row.name, TextTable::num(row.result.makespan, 1),
                     TextTable::num(row.result.utilization(), 3),
                     std::to_string(row.result.steals)});
    }
    table.add_row({"(perfect balance bound)", TextTable::num(ideal, 1), "1.000", ""});
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(static assignment strands the heavy tail on one worker; "
                 "stealing repairs imbalance discovered after placement)\n\n";
  }

  {
    TextTable table("2. Consistent hashing: adding a 5th node (2000 keys, 64 vnodes)");
    table.set_header({"strategy", "keys moved", "fraction"});
    ConsistentHashRing ring(64);
    for (int n = 0; n < 4; ++n) ring.add_node("node" + std::to_string(n));
    std::vector<std::string> before;
    for (int k = 0; k < 2000; ++k) {
      before.push_back(ring.node_for("key" + std::to_string(k)));
    }
    ring.add_node("node4");
    int moved = 0;
    for (int k = 0; k < 2000; ++k) {
      if (ring.node_for("key" + std::to_string(k)) !=
          before[static_cast<std::size_t>(k)]) {
        ++moved;
      }
    }
    table.add_row({"consistent hashing", std::to_string(moved),
                   TextTable::num(moved / 2000.0, 3)});
    // Strawman: mod-N hashing remaps nearly everything on N -> N+1.
    int naive_moved = 0;
    auto mod_hash = [](const std::string& s, int n) {
      std::uint64_t h = 1469598103934665603ULL;
      for (char c : s) { h ^= static_cast<unsigned char>(c); h *= 1099511628211ULL; }
      return static_cast<int>(h % static_cast<std::uint64_t>(n));
    };
    for (int k = 0; k < 2000; ++k) {
      const std::string key = "key" + std::to_string(k);
      if (mod_hash(key, 4) != mod_hash(key, 5)) ++naive_moved;
    }
    table.add_row({"hash mod N (strawman)", std::to_string(naive_moved),
                   TextTable::num(naive_moved / 2000.0, 3)});
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(the ring moves ~1/n of the keys; mod-N moves ~(n-1)/n)\n\n";
  }

  {
    TextTable table("3. Process migration: rebalancing unequal hosts");
    table.set_header({"scenario", "imbalance before", "after", "migrations"});
    struct Scenario {
      const char* name;
      std::vector<std::vector<double>> hosts;
      double threshold;
    };
    Scenario scenarios[] = {
        {"one hot host", {{10, 10, 10, 5, 5}, {1}, {2, 1}, {1}}, 6.0},
        {"two hot hosts", {{8, 8, 8}, {9, 9}, {1}, {}}, 5.0},
        {"already balanced", {{5}, {5}, {5}}, 2.0},
    };
    for (auto& scenario : scenarios) {
      const auto result = rebalance_by_migration(scenario.hosts, scenario.threshold);
      table.add_row({scenario.name,
                     TextTable::num(result.initial_imbalance, 1),
                     TextTable::num(result.final_imbalance, 1),
                     std::to_string(result.migrations)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(migration trades transfer cost for smoother load; it "
                 "stops when no move can shrink the spread)\n";
  }
  report.write_if_requested();
  return 0;
}
