// Experiment PERF-LOCKS — "efficient synchronization" (LAU course part 2;
// SE2014's concurrency primitives at application level).
//
// google-benchmark microbenchmarks of the lock family guarding a shared
// counter, single-threaded (pure overhead) and with benchmark's threaded
// mode (contention). Expected shape: TAS ~ TTAS uncontended; under
// contention TTAS beats TAS (read-spin vs write-spin) and the ticket lock
// pays for fairness; std::mutex is the baseline.
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "concurrency/rwlock.hpp"
#include "concurrency/semaphore.hpp"
#include "concurrency/spinlock.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace {

using namespace pdc::concurrency;

// The lock and the counter it guards live on separate cache lines
// (alignas(64)). As plain statics they were adjacent, so every
// `++counter` inside the critical section invalidated the very line
// spinning waiters were polling: the threaded numbers charged the locks
// for false sharing on top of contention, eroding exactly the effect the
// benchmark exists to show (TTAS's read-spin advantage over TAS).
template <typename Lock>
void lock_counter_benchmark(benchmark::State& state) {
  alignas(64) static Lock lock;
  alignas(64) static long counter = 0;
  for (auto _ : state) {
    std::scoped_lock guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}

void BM_StdMutex(benchmark::State& state) { lock_counter_benchmark<std::mutex>(state); }
void BM_TasLock(benchmark::State& state) { lock_counter_benchmark<TasLock>(state); }
void BM_TtasLock(benchmark::State& state) { lock_counter_benchmark<TtasLock>(state); }
void BM_TicketLock(benchmark::State& state) { lock_counter_benchmark<TicketLock>(state); }

BENCHMARK(BM_StdMutex);
BENCHMARK(BM_TasLock);
BENCHMARK(BM_TtasLock);
BENCHMARK(BM_TicketLock);
BENCHMARK(BM_StdMutex)->Threads(2)->Threads(4);
BENCHMARK(BM_TasLock)->Threads(2)->Threads(4);
BENCHMARK(BM_TtasLock)->Threads(2)->Threads(4);
BENCHMARK(BM_TicketLock)->Threads(2)->Threads(4);

void BM_McsLock(benchmark::State& state) {
  alignas(64) static McsLock lock;
  alignas(64) static long counter = 0;
  for (auto _ : state) {
    McsLock::Guard guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_McsLock)->Threads(1)->Threads(2)->Threads(4);

void BM_BinarySemaphore(benchmark::State& state) {
  alignas(64) static BinarySemaphore semaphore(true);
  alignas(64) static long counter = 0;
  for (auto _ : state) {
    semaphore.acquire();
    benchmark::DoNotOptimize(++counter);
    semaphore.release();
  }
}
BENCHMARK(BM_BinarySemaphore)->Threads(1)->Threads(4);

void BM_RwLockReaders(benchmark::State& state) {
  alignas(64) static RwLock lock;
  alignas(64) static long value = 42;
  for (auto _ : state) {
    SharedGuard guard(lock);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_RwLockReaders)->Threads(1)->Threads(4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the threaded workloads above
// hammer the slow paths of every lock, which feed the contention
// observatory's per-site wait histograms — so after the benchmark tables,
// print the `/profile/contention`-style top-k. The epilogue goes to
// stderr so --benchmark_out / stdout capture stay pure benchmark output.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  const auto stats = pdc::obs::contention_topk(
      pdc::obs::MetricsRegistry::instance().scrape(), 8);
  if (stats.empty()) {
    std::cerr << "contention observatory: no samples (PDCKIT_OBS_NOOP build, "
                 "or no lock ever hit its slow path)\n";
    return 0;
  }
  std::cerr << "contention top-k (pdc.contend.wait_us by total wait):\n";
  for (const auto& s : stats) {
    std::cerr << "  " << s.site << " waits=" << s.count
              << " total=" << s.total_wait_us << "us mean=" << s.mean_us
              << "us p99=" << s.p99_us << "us";
    if (const auto loc = pdc::obs::contention_site_location(s.site)) {
      std::cerr << "  [" << loc->file << ":" << loc->line << "]";
    }
    std::cerr << "\n";
  }
  return 0;
}
