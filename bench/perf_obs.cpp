// Experiment PERF-OBS — what the observability plane itself costs.
//
// The obs layer instruments every other subsystem's hot path, so its own
// price must stay measurable and small:
//   1. hot-path overhead: PDC_OBS_COUNT / gauge add+sub / histogram record
//      in a tight loop, against an empty loop baseline. Build this bench
//      once normally and once with -DPDCKIT_OBS_NOOP=ON to see the macro
//      cost compile away (the "overhead" rows drop to the baseline).
//   2. scrape latency over a populated registry (the /metrics hot cost);
//   3. exposition-render throughput: Prometheus text and JSON bytes/s;
//   4. delta-frame assembly (the /subscribe per-tick cost);
//   5. one full client-server GET /metrics round trip over net;
//   6. label-lookup cost: cached reference vs flat-name probe vs labeled
//      interning (why hot paths cache the returned reference);
//   7. histogram bucket merge and merge_federated throughput — the
//      aggregation algebra's per-scrape cost;
//   8. one federated scrape: Aggregator fan-out over four per-rank
//      TelemetryServers, merge, and render, end to end over net;
//   9. the profiling plane: worker-slot publish (the single relaxed
//      store), the full per-task ProfiledTask pair, one sampler walk over
//      eight slots, and the whole-workload slowdown of 1 kHz background
//      sampling (acceptance: pair < 5 ns, slowdown < 2%, NOOP at zero);
//  10. the span plane: mint+finish pair with and without a collector
//      running (tracing-off acceptance: <= 1 ns over the bare loop),
//      SpanScope enter/exit, traced vs untraced frame encode+scan, and
//      the headline end-to-end number — LoadGen RPS against an
//      event-driven echo server at 10k connections, tracing off vs on
//      (acceptance: within 5%).
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/bench_report.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using pdc::obs::MetricsRegistry;
using pdc::support::Stopwatch;
using pdc::support::TextTable;

namespace {

// Keeps the compiler from deleting the measured loop body.
volatile std::uint64_t g_sink = 0;

template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  return watch.elapsed_seconds() * 1e9 / static_cast<double>(iters);
}

/// Fills the registry with a telemetry-plausible population: mostly
/// counters, some gauges, some histograms with spread-out samples.
void populate_registry(std::size_t counters, std::size_t gauges,
                       std::size_t histograms) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  for (std::size_t i = 0; i < counters; ++i) {
    registry.counter("bench.obs.counter." + std::to_string(i)).inc(i * 7 + 1);
  }
  for (std::size_t i = 0; i < gauges; ++i) {
    registry.gauge("bench.obs.gauge." + std::to_string(i))
        .add(static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i < histograms; ++i) {
    auto& hist = registry.histogram("bench.obs.hist." + std::to_string(i));
    for (std::uint64_t v = 0; v < 256; ++v) hist.record(v * (i + 1));
  }
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("perf_obs");
  std::cout << "=== PERF-OBS: what the observability plane costs ===\n\n";
  report.add_metric("obs_enabled", pdc::obs::kObsEnabled ? 1.0 : 0.0);

  {
    constexpr std::size_t kIters = 1 << 21;
    const double baseline = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;  // the loop itself
    });
    const double counter = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;
      PDC_OBS_COUNT("bench.hot.counter");
    });
    const double gauge = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;
      PDC_OBS_GAUGE_ADD("bench.hot.gauge", 1);
      PDC_OBS_GAUGE_SUB("bench.hot.gauge", 1);
    });
    const double hist = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;
      PDC_OBS_HIST("bench.hot.hist", i & 1023);
    });

    TextTable table("1. Hot-path instrumentation cost (single thread)");
    table.set_header({"operation", "ns/op", "overhead vs empty loop"});
    const auto overhead = [&](double cost) {
      return baseline > 0.0 ? cost / baseline : 0.0;
    };
    table.add_row({"empty loop", TextTable::num(baseline, 2), "1.00"});
    table.add_row({"PDC_OBS_COUNT", TextTable::num(counter, 2),
                   TextTable::num(overhead(counter), 2)});
    table.add_row({"gauge add+sub", TextTable::num(gauge, 2),
                   TextTable::num(overhead(gauge), 2)});
    table.add_row({"PDC_OBS_HIST", TextTable::num(hist, 2),
                   TextTable::num(overhead(hist), 2)});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("hot.baseline.ns", baseline);
    report.add_metric("hot.counter.ns", counter);
    report.add_metric("hot.gauge.ns", gauge);
    report.add_metric("hot.hist.ns", hist);
    report.add_metric("hot.counter.overhead", overhead(counter));
    report.add_metric("hot.hist.overhead", overhead(hist));
    std::cout << "(rebuild with -DPDCKIT_OBS_NOOP=ON and the macro rows "
                 "collapse onto the empty loop)\n\n";
  }

  {
    populate_registry(/*counters=*/64, /*gauges=*/16, /*histograms=*/16);
    constexpr std::size_t kIters = 200;

    Stopwatch scrape_watch;
    std::size_t samples = 0;
    for (std::size_t i = 0; i < kIters; ++i) {
      samples = MetricsRegistry::instance().scrape().samples.size();
    }
    const double scrape_us =
        scrape_watch.elapsed_micros() / static_cast<double>(kIters);

    const auto snapshot = MetricsRegistry::instance().scrape();
    Stopwatch text_watch;
    std::size_t text_bytes = 0;
    for (std::size_t i = 0; i < kIters; ++i) {
      text_bytes = pdc::obs::prometheus_exposition(snapshot).size();
    }
    const double text_us =
        text_watch.elapsed_micros() / static_cast<double>(kIters);

    Stopwatch json_watch;
    std::size_t json_bytes = 0;
    for (std::size_t i = 0; i < kIters; ++i) {
      json_bytes = snapshot.to_json().size();
    }
    const double json_us =
        json_watch.elapsed_micros() / static_cast<double>(kIters);

    Stopwatch delta_watch;
    for (std::size_t i = 0; i < kIters; ++i) {
      g_sink = pdc::obs::delta_json(snapshot, snapshot, i).size();
    }
    const double delta_us =
        delta_watch.elapsed_micros() / static_cast<double>(kIters);

    const auto mb_per_s = [](std::size_t bytes, double us) {
      return us > 0.0 ? static_cast<double>(bytes) / us : 0.0;  // B/us == MB/s
    };
    TextTable table("2. Scrape + render over a populated registry");
    table.set_header({"stage", "us/call", "bytes", "MB/s"});
    table.add_row({"scrape (" + std::to_string(samples) + " metrics)",
                   TextTable::num(scrape_us, 2), "-", "-"});
    table.add_row({"prometheus text", TextTable::num(text_us, 2),
                   std::to_string(text_bytes),
                   TextTable::num(mb_per_s(text_bytes, text_us), 1)});
    table.add_row({"metrics json", TextTable::num(json_us, 2),
                   std::to_string(json_bytes),
                   TextTable::num(mb_per_s(json_bytes, json_us), 1)});
    table.add_row({"delta frame (idle)", TextTable::num(delta_us, 2), "-", "-"});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("scrape.us", scrape_us);
    report.add_metric("render.text.us", text_us);
    report.add_metric("render.text.mb_per_s", mb_per_s(text_bytes, text_us));
    report.add_metric("render.json.us", json_us);
    report.add_metric("render.json.mb_per_s", mb_per_s(json_bytes, json_us));
    report.add_metric("delta_frame.us", delta_us);
    std::cout << '\n';
  }

  {
    constexpr std::size_t kGets = 200;
    pdc::net::NetConfig config;
    config.latency_ms = 0.01;
    pdc::net::Network net(2, config);
    pdc::obs::TelemetryServer server(net, /*host=*/0, /*port=*/9100);
    pdc::obs::TelemetryClient client(net, /*host=*/1);
    if (!client.connect(server.address()).is_ok()) {
      std::cerr << "telemetry connect failed\n";
      return 1;
    }
    Stopwatch watch;
    for (std::size_t i = 0; i < kGets; ++i) {
      g_sink = client.get("/metrics").value().size();
    }
    const double get_us = watch.elapsed_micros() / static_cast<double>(kGets);
    client.close();
    server.stop();

    TextTable table("3. Telemetry plane round trip (GET /metrics over net)");
    table.set_header({"round trips", "us/get"});
    table.add_row({std::to_string(kGets), TextTable::num(get_us, 2)});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("telemetry.get_metrics.us", get_us);
    std::cout << '\n';
  }

  {
    constexpr std::size_t kIters = 1 << 18;
    auto& registry = MetricsRegistry::instance();
    auto& cached = registry.counter("bench.label.cached");
    const double cached_ns =
        ns_per_op(kIters, [&cached](std::size_t) { cached.inc(); });
    const double flat_ns = ns_per_op(kIters, [&registry](std::size_t) {
      registry.counter("bench.label.flat").inc();
    });
    const double labeled_ns = ns_per_op(kIters, [&registry](std::size_t) {
      registry.counter("bench.label.labeled", {{"rank", "3"}}).inc();
    });

    TextTable table("4. Label lookup cost (why hot paths cache the ref)");
    table.set_header({"lookup", "ns/op"});
    table.add_row({"cached reference", TextTable::num(cached_ns, 2)});
    table.add_row({"flat name (transparent probe)", TextTable::num(flat_ns, 2)});
    table.add_row({"labeled (canonicalize + intern)",
                   TextTable::num(labeled_ns, 2)});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("labels.cached.ns", cached_ns);
    report.add_metric("labels.flat_lookup.ns", flat_ns);
    report.add_metric("labels.labeled_lookup.ns", labeled_ns);
    std::cout << '\n';
  }

  {
    // The federation algebra: bucket-wise histogram merges and the full
    // snapshot merge over four populated sources.
    pdc::obs::Histogram source_hist;
    for (std::uint64_t v = 0; v < 4096; ++v) source_hist.record(v * 3);
    const auto source_snap = source_hist.snapshot();
    constexpr std::size_t kMerges = 1 << 16;
    pdc::obs::Histogram::Snapshot accumulator;
    Stopwatch merge_watch;
    for (std::size_t i = 0; i < kMerges; ++i) accumulator.merge(source_snap);
    const double merge_ns =
        merge_watch.elapsed_seconds() * 1e9 / static_cast<double>(kMerges);
    g_sink = accumulator.count;

    populate_registry(/*counters=*/64, /*gauges=*/16, /*histograms=*/16);
    std::vector<pdc::obs::SourceSnapshot> sources;
    for (int r = 0; r < 4; ++r) {
      sources.push_back(
          {std::to_string(r), MetricsRegistry::instance().scrape()});
    }
    constexpr std::size_t kFederated = 200;
    Stopwatch fed_watch;
    std::size_t merged_series = 0;
    for (std::size_t i = 0; i < kFederated; ++i) {
      merged_series = pdc::obs::merge_federated(sources).samples.size();
    }
    const double fed_us =
        fed_watch.elapsed_micros() / static_cast<double>(kFederated);

    TextTable table("5. Merge algebra (bucket merge + merge_federated)");
    table.set_header({"operation", "cost"});
    table.add_row({"histogram snapshot merge",
                   TextTable::num(merge_ns, 2) + " ns"});
    table.add_row({"merge_federated 4x96 series -> " +
                       std::to_string(merged_series),
                   TextTable::num(fed_us, 2) + " us"});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("merge.hist_snapshot.ns", merge_ns);
    report.add_metric("merge.federated.us", fed_us);
    std::cout << '\n';
  }

  {
    // End-to-end federation: four per-rank registries behind their own
    // servers, one aggregator fanning out, merging, and rendering.
    constexpr int kRanks = 4;
    constexpr std::size_t kScrapes = 100;
    pdc::net::NetConfig config;
    config.latency_ms = 0.01;
    pdc::net::Network net(kRanks + 2, config);
    std::vector<std::unique_ptr<MetricsRegistry>> registries;
    std::vector<std::unique_ptr<pdc::obs::TelemetryServer>> servers;
    std::vector<pdc::obs::ScrapeTarget> targets;
    for (int r = 0; r < kRanks; ++r) {
      registries.push_back(std::make_unique<MetricsRegistry>());
      for (std::size_t i = 0; i < 32; ++i) {
        registries.back()
            ->counter("bench.fed.counter." + std::to_string(i))
            .inc(i + 1);
      }
      auto& hist = registries.back()->histogram("bench.fed.lat_us");
      for (std::uint64_t v = 0; v < 512; ++v) hist.record(v * (r + 1));
      pdc::obs::TelemetryConfig tconfig;
      tconfig.registry = registries.back().get();
      servers.push_back(std::make_unique<pdc::obs::TelemetryServer>(
          net, r, 9100, tconfig));
      targets.push_back({servers.back()->address(), std::to_string(r)});
    }
    pdc::obs::Aggregator aggregator(net, kRanks, 9200, std::move(targets));

    Stopwatch direct_watch;
    for (std::size_t i = 0; i < kScrapes; ++i) {
      g_sink = aggregator.federate().samples.size();
    }
    const double direct_us =
        direct_watch.elapsed_micros() / static_cast<double>(kScrapes);

    pdc::obs::TelemetryClient client(net, kRanks + 1);
    if (!client.connect(aggregator.address()).is_ok()) {
      std::cerr << "aggregator connect failed\n";
      return 1;
    }
    Stopwatch get_watch;
    for (std::size_t i = 0; i < kScrapes; ++i) {
      g_sink = client.get("/metrics").value().size();
    }
    const double get_us =
        get_watch.elapsed_micros() / static_cast<double>(kScrapes);
    client.close();

    TextTable table("6. Federated scrape (4 ranks -> aggregator)");
    table.set_header({"path", "us/scrape"});
    table.add_row({"federate() fan-out + merge", TextTable::num(direct_us, 2)});
    table.add_row({"GET /metrics via aggregator", TextTable::num(get_us, 2)});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("fed.federate.us", direct_us);
    report.add_metric("fed.get_metrics.us", get_us);
    std::cout << '\n';
  }

  {
    auto& prof = pdc::obs::Profiler::instance();
    prof.reset();
    pdc::obs::WorkerSlot* slot = prof.register_worker("bench.obs.w0");
    pdc::obs::Profiler::bind_current_thread(slot);
    const std::uint32_t label = prof.intern_label("bench.task");

    constexpr std::size_t kIters = 1 << 21;
    const double baseline = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;
    });
    const double publish = ns_per_op(kIters, [&](std::size_t i) {
      pdc::obs::publish_worker_state(i & 1
                                         ? pdc::obs::WorkerState::kRunning
                                         : pdc::obs::WorkerState::kIdle,
                                     label);
      g_sink = g_sink + i;
    });
    const double pair = ns_per_op(kIters, [&](std::size_t i) {
      pdc::obs::ProfiledTask task(label);
      g_sink = g_sink + i;
    });

    // One sampler walk over a realistic slot population.
    std::vector<pdc::obs::WorkerSlot*> extra;
    for (int i = 1; i < 8; ++i) {
      extra.push_back(
          prof.register_worker("bench.obs.w" + std::to_string(i)));
    }
    const double sample_us =
        ns_per_op(1 << 12, [&](std::size_t) { prof.sample_once(); }) / 1e3;
    prof.reset();

    // Whole-workload slowdown of continuous 1 kHz sampling: the same
    // pool workload with the background sampler off, then on.
    const auto pool_workload = [] {
      Stopwatch watch;
      pdc::parallel::ThreadPool pool(4);
      std::atomic<std::uint64_t> acc{0};
      for (int i = 0; i < 50000; ++i) {
        (void)pool.post([&acc, i] {
          acc.fetch_add(static_cast<std::uint64_t>(i),
                        std::memory_order_relaxed);
        });
      }
      pool.shutdown();
      g_sink = acc.load();
      return watch.elapsed_seconds();
    };
    const double off_s = pool_workload();
    prof.start(/*period_us=*/1000);
    const double on_s = pool_workload();
    prof.stop();
    const double slowdown = off_s > 0 ? on_s / off_s : 1.0;
    prof.reset();
    for (auto* s : extra) prof.release_worker(s);
    pdc::obs::Profiler::bind_current_thread(nullptr);
    prof.release_worker(slot);

    TextTable table("7. Profiling plane (slots, sampler, 1 kHz overhead)");
    table.set_header({"operation", "cost"});
    table.add_row({"loop baseline", TextTable::num(baseline, 2) + " ns"});
    table.add_row({"slot publish (1 store)", TextTable::num(publish, 2) + " ns"});
    table.add_row({"ProfiledTask pair", TextTable::num(pair, 2) + " ns"});
    table.add_row({"sample_once, 8 slots", TextTable::num(sample_us, 3) + " us"});
    table.add_row({"1 kHz sampling slowdown", TextTable::num(slowdown, 4) + "x"});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("profile.slot_publish.ns", publish);
    report.add_metric("profile.task_pair.ns", pair);
    report.add_metric("profile.sample_once.us", sample_us);
    report.add_metric("profile.sampling_1khz.overhead", slowdown);
    std::cout << '\n';
  }

  {
    // The span plane's hot costs. "Tracing off" is the price every
    // request pays when no SpanCollector session is running — the
    // span_root/span_end pair must collapse onto the zero check.
    constexpr std::size_t kIters = 1 << 21;
    MetricsRegistry::instance().reset();
    const double baseline = ns_per_op(kIters, [](std::size_t i) {
      g_sink = g_sink + i;
    });
    const double off_pair = ns_per_op(kIters, [](std::size_t i) {
      auto span = pdc::obs::span_root("bench.request", i + 1);
      g_sink = g_sink + i;
      pdc::obs::span_end(span);
    });

    pdc::obs::SpanCollectorConfig span_config;
    span_config.keep_slowest = 8;
    pdc::obs::SpanCollector collector(span_config);
    collector.start();
    const double on_pair = ns_per_op(kIters, [](std::size_t i) {
      auto span = pdc::obs::span_root("bench.request", i + 1);
      g_sink = g_sink + i;
      pdc::obs::span_end(span);
    });
    const double scope_ns = ns_per_op(kIters, [](std::size_t i) {
      pdc::obs::SpanScope scope(pdc::obs::SpanContext{i + 1, 1});
      g_sink = g_sink + i;
    });
    collector.stop();

    // Frame codec: the 16-byte trace header is absent from untraced
    // frames, so the untraced encode+scan pair is the no-regression row.
    const pdc::net::Bytes payload = pdc::net::to_bytes("0123456789abcdef");
    const auto codec_ns = [&payload](pdc::obs::SpanContext ctx) {
      pdc::net::Bytes wire;
      return ns_per_op(1 << 18, [&payload, &wire, ctx](std::size_t) {
        wire.clear();
        pdc::net::MessageCodec::encode_message(payload, wire, ctx);
        std::size_t offset = 0;
        pdc::net::BytesView view;
        pdc::obs::SpanContext seen;
        const auto scan =
            pdc::net::MessageCodec::scan_message(wire, offset, view, seen);
        g_sink = scan == pdc::net::MessageCodec::Scan::kFrame ? view.size : 0;
      });
    };
    const double untraced_codec = codec_ns(pdc::obs::SpanContext{});
    const double traced_codec = codec_ns(pdc::obs::SpanContext{42, 7});

    TextTable table("8. Span plane (mint/finish, scope, frame codec)");
    table.set_header({"operation", "ns/op", "vs baseline"});
    const auto delta = [&](double cost) {
      return TextTable::num(cost - baseline, 2) + " ns";
    };
    table.add_row({"loop baseline", TextTable::num(baseline, 2), "-"});
    table.add_row({"span pair, tracing off", TextTable::num(off_pair, 2),
                   delta(off_pair)});
    table.add_row({"span pair, collector running", TextTable::num(on_pair, 2),
                   delta(on_pair)});
    table.add_row({"SpanScope enter/exit", TextTable::num(scope_ns, 2),
                   delta(scope_ns)});
    table.add_row({"frame encode+scan, untraced",
                   TextTable::num(untraced_codec, 2), "-"});
    table.add_row({"frame encode+scan, traced (+16B header)",
                   TextTable::num(traced_codec, 2), "-"});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("span.baseline.ns", baseline);
    report.add_metric("span.pair_off.ns", off_pair);
    report.add_metric("span.pair_off.overhead_ns", off_pair - baseline);
    report.add_metric("span.pair_on.ns", on_pair);
    report.add_metric("span.scope.ns", scope_ns);
    report.add_metric("span.codec_untraced.ns", untraced_codec);
    report.add_metric("span.codec_traced.ns", traced_codec);
    std::cout << "(acceptance: tracing-off span pair within 1 ns of the "
                 "bare loop)\n\n";
  }

  {
    // The headline: does minting a root span per request and carrying it
    // through the frame header move the load generator's throughput?
    // Same 10k-connection storm against the event-driven echo server,
    // tracing off then on (collector running, tail-keep 32).
    pdc::net::NetConfig config;
    config.latency_ms = 0.01;
    pdc::net::Network net(5, config);
    pdc::net::ServerConfig server_config;
    server_config.model = pdc::net::ThreadingModel::kEventDriven;
    server_config.workers = 3;
    server_config.view_handler = [](pdc::net::BytesView request) {
      return request.to_owned();
    };
    pdc::net::Server server(net, 0, 80, nullptr, server_config);

    pdc::net::LoadGenConfig load;
    load.connections = 10'000;
    load.requests = 50'000;
    load.duration_s = 0.4;
    load.drivers = 2;
    load.first_client_host = 1;
    load.client_hosts = 4;
    load.seed = 0x0b5;
    pdc::net::LoadGen gen(net, server.address());

    const auto report_off = gen.run(load);

    MetricsRegistry::instance().reset();
    pdc::obs::SpanCollectorConfig span_config;
    span_config.keep_slowest = 32;
    pdc::obs::SpanCollector collector(span_config);
    collector.start();
    load.trace = true;
    const auto report_on = gen.run(load);
    collector.stop();
    server.stop();

    const double ratio =
        report_off.rps > 0.0 ? report_on.rps / report_off.rps : 0.0;
    TextTable table("9. LoadGen 10k connections, tracing off vs on");
    table.set_header({"mode", "rps", "p99 us", "answered"});
    table.add_row({"tracing off",
                   TextTable::num(report_off.rps, 0),
                   TextTable::num(report_off.p99_us, 0),
                   std::to_string(report_off.received)});
    table.add_row({"tracing on (tail-keep 32)",
                   TextTable::num(report_on.rps, 0),
                   TextTable::num(report_on.p99_us, 0),
                   std::to_string(report_on.received)});
    table.add_row({"on/off rps ratio", TextTable::num(ratio, 3), "-", "-"});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("span.loadgen_off.rps", report_off.rps);
    report.add_metric("span.loadgen_on.rps", report_on.rps);
    report.add_metric("span.loadgen.on_off_ratio", ratio);
    std::cout << "(acceptance: ratio within 0.95; kept "
              << collector.traces_kept() << " of "
              << collector.traces_completed() << " traces)\n\n";
  }

  report.write_if_requested();
  return 0;
}
