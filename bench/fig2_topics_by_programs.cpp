// Experiment F2 — regenerates Fig. 2 of the paper: "PDC topics used by
// surveyed programs for ABET accreditation".
//
// Runs the paper's aggregation (count of programs whose *required* courses
// cover each topic) over the calibrated synthetic survey of 20 accredited
// programs (see DESIGN.md substitution table). The published figure's
// qualitative shape must hold: the topics carried by backbone required
// courses (parallelism/concurrency, threads, memory/caching) dominate,
// while topics reached mainly through electives or a dedicated course
// trail.
#include <algorithm>
#include <iostream>

#include "core/survey.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

int main() {
  pdc::obs::BenchReport report("fig2_topics_by_programs");
  using namespace pdc::core;
  const auto programs = generate_survey();
  const auto counts = topic_program_counts(programs);

  // Sort descending by count, as a bar chart would render.
  std::vector<std::pair<PdcConcept, std::size_t>> rows(counts.begin(),
                                                       counts.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  pdc::support::TextTable table(
      "FIG. 2 — PDC TOPICS USED BY SURVEYED PROGRAMS (n = " +
      std::to_string(programs.size()) + ")");
  table.set_header({"PDC topic", "programs", "bar"});
  for (const auto& [topic, count] : rows) {
    table.add_row({to_string(topic), std::to_string(count),
                   std::string(count, '#')});
  }
  table.render(std::cout);
  report.add_table(table);

  std::size_t dedicated = 0;
  for (const auto& program : programs) {
    dedicated += program.has_dedicated_pdc_course();
  }
  std::cout << "\nprograms with a dedicated required PDC course: " << dedicated
            << " of " << programs.size()
            << "   (paper: \"only one program had a dedicated parallel "
               "programming course\")\n";
  report.write_if_requested();
  return 0;
}
