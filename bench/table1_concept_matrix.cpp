// Experiment T1 — regenerates Table I of the paper: "Mapping different PDC
// concepts to typical courses".
//
// The matrix is derived from the course templates in core/curriculum.cpp
// (the distilled content of §III's course inventory), not hard-coded: a
// cell is 'x' when the template for that course category carries the
// concept. Compare row-by-row with the published table.
#include <iostream>

#include "core/curriculum.hpp"
#include "core/taxonomy.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

int main() {
  pdc::obs::BenchReport report("table1_concept_matrix");
  using namespace pdc::core;
  pdc::support::TextTable table(
      "TABLE I — MAPPING DIFFERENT PDC CONCEPTS TO TYPICAL COURSES");
  std::vector<std::string> header{"PDC concept"};
  for (CourseCategory category : table1_categories()) {
    header.push_back(to_string(category));
  }
  table.set_header(header);

  for (PdcConcept topic : all_concepts()) {
    std::vector<std::string> row{to_string(topic)};
    for (CourseCategory category : table1_categories()) {
      row.push_back(template_topics(category).count(topic) ? "x" : "");
    }
    table.add_row(row);
  }
  table.render(std::cout);
  report.add_table(table);
  std::cout << "\n(derived from core::template_topics; see tests/core_test "
               "Table1.MatrixMatchesPaper for the cell-level check)\n";
  report.write_if_requested();
  return 0;
}
