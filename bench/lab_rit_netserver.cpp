// Experiment CS-RIT (part 2) — client-server programming and middleware
// (paper §IV-C: socket programming, distributed objects/middleware).
//
// Two sweeps over the simulated fabric:
//   1. server threading model (thread-per-connection vs worker pool) ×
//      client count, measuring request throughput with a CPU-light
//      handler: the pool model serializes beyond its worker count;
//   2. RPC round-trip latency vs the fabric's one-way latency: middleware
//      cost tracks the network, not the dispatch.
#include <iostream>
#include <thread>

#include "net/server.hpp"
#include "obs/bench_report.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace pdc::net;
using pdc::support::TextTable;

namespace {

double run_server_experiment(ThreadingModel model, int clients,
                             int requests_per_client) {
  NetConfig net_config;
  net_config.latency_ms = 0.02;
  Network net(clients + 1, net_config);
  ServerConfig server_config;
  server_config.model = model;
  server_config.workers = 2;
  Server server(net, 0, 80, [](const Bytes& request) { return request; },
                server_config);

  pdc::support::Stopwatch clock;
  std::vector<std::thread> workers;
  for (int c = 1; c <= clients; ++c) {
    workers.emplace_back([&, c] {
      Client client(net, c);
      if (!client.connect(server.address()).is_ok()) return;
      for (int i = 0; i < requests_per_client; ++i) {
        (void)client.call_text("ping");
      }
      client.close();
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds = clock.elapsed_seconds();
  server.stop();
  return static_cast<double>(clients * requests_per_client) / seconds;
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("lab_rit_netserver");
  std::cout << "=== CS-RIT: client-server and middleware labs ===\n\n";
  {
    TextTable table("1. Threading model x concurrent clients (echo, 200 req/client)");
    table.set_header({"clients", "thread-per-connection (req/s)",
                      "worker pool of 2 (req/s)"});
    for (int clients : {1, 2, 4, 8}) {
      const double tpc = run_server_experiment(
          ThreadingModel::kThreadPerConnection, clients, 200);
      const double pool =
          run_server_experiment(ThreadingModel::kWorkerPool, clients, 200);
      table.add_row({std::to_string(clients), TextTable::num(tpc, 0),
                     TextTable::num(pool, 0)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(a 2-worker pool serves at most 2 connections concurrently; "
                 "excess clients queue — the classic sizing trade-off)\n\n";
  }
  {
    TextTable table("2. RPC round-trip vs fabric latency");
    table.set_header({"one-way latency (ms)", "mean RPC time (ms)",
                      "vs 2x latency"});
    for (double latency : {0.02, 0.1, 0.5, 1.0}) {
      NetConfig net_config;
      net_config.latency_ms = latency;
      Network net(2, net_config);
      RpcServer server(net, 0, 90);
      server.register_procedure("square", [](const Bytes& in) {
        const long x = std::stol(to_string(in));
        return to_bytes(std::to_string(x * x));
      });
      RpcClient client(net, 1);
      if (!client.connect(server.address()).is_ok()) continue;
      constexpr int kCalls = 100;
      pdc::support::Stopwatch clock;
      for (int i = 0; i < kCalls; ++i) {
        (void)client.call_text("square", std::to_string(i));
      }
      const double mean_ms = clock.elapsed_millis() / kCalls;
      table.add_row({TextTable::num(latency, 2), TextTable::num(mean_ms, 3),
                     TextTable::num(mean_ms / (2 * latency), 2)});
      server.stop();
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(each framed RPC costs two messages, i.e. ~2x the one-way "
                 "latency once the fabric dominates dispatch)\n";
  }
  report.write_if_requested();
  return 0;
}
