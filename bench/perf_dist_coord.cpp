// Experiment PERF-DIST — coordination costs of the distributed algorithms
// (AUC distributed-systems course; RIT middleware unit).
//
// Message-count tables (deterministic — the currency distributed
// algorithms are priced in):
//   1. mutual exclusion: Ricart–Agrawala (2(p-1) messages/entry) vs token
//      ring (hops depend on demand pattern);
//   2. election: Chang–Roberts ring vs bully across ring sizes;
//   3. two-phase commit message count by participant count;
//   4. Chandy–Lamport snapshot: markers are p(p-1) regardless of traffic.
#include <atomic>
#include <iostream>

#include "dist/deadlock.hpp"
#include "dist/election.hpp"
#include "dist/mutex.hpp"
#include "dist/snapshot.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::dist;
using pdc::mp::Communicator;
using pdc::mp::World;
using pdc::support::TextTable;

int main() {
  pdc::obs::BenchReport report("perf_dist_coord");
  std::cout << "=== PERF-DIST: what coordination costs in messages ===\n\n";

  {
    TextTable table("1. Mutual exclusion: messages per critical-section entry");
    table.set_header({"ranks", "Ricart-Agrawala msg/entry", "2(p-1) model",
                      "token-ring hops/entry"});
    constexpr std::size_t kEntries = 20;
    for (int p : {2, 4, 8}) {
      std::atomic<std::uint64_t> ra_messages{0};
      World world_ra(p);
      world_ra.run([&](Communicator& comm) {
        RicartAgrawala mutex(comm);
        for (std::size_t e = 0; e < kEntries; ++e) {
          mutex.enter();
          mutex.leave();
        }
        mutex.finish();
        ra_messages += mutex.messages_sent();
      });
      // Subtract the one-time DONE fan-out to isolate per-entry cost.
      const double ra_per_entry =
          (static_cast<double>(ra_messages.load()) -
           static_cast<double>(p) * (p - 1)) /
          static_cast<double>(kEntries * static_cast<std::size_t>(p));

      std::atomic<std::uint64_t> hops{0};
      World world_tr(p);
      world_tr.run([&](Communicator& comm) {
        hops += run_token_ring(comm, kEntries, [] {});
      });
      const double hops_per_entry =
          static_cast<double>(hops.load()) /
          static_cast<double>(kEntries * static_cast<std::size_t>(p));

      table.add_row({std::to_string(p), TextTable::num(ra_per_entry, 2),
                     std::to_string(2 * (p - 1)),
                     TextTable::num(hops_per_entry, 2)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(RA matches its 2(p-1) bound exactly; the token ring "
                 "amortizes to ~1 hop per entry when everyone wants the "
                 "lock)\n\n";
  }

  {
    TextTable table("2. Leader election messages (all alive, one initiator)");
    table.set_header({"ranks", "Chang-Roberts ring", "bully"});
    for (int p : {3, 5, 8}) {
      std::atomic<std::uint64_t> ring_messages{0};
      World world_ring(p);
      world_ring.run([&](Communicator& comm) {
        const std::vector<bool> alive(static_cast<std::size_t>(p), true);
        ring_messages +=
            ring_election(comm, alive, comm.rank() == 0).messages_sent;
      });
      std::atomic<std::uint64_t> bully_messages{0};
      World world_bully(p);
      world_bully.run([&](Communicator& comm) {
        const std::vector<bool> alive(static_cast<std::size_t>(p), true);
        bully_messages += bully_election(comm, alive, 0).messages_sent;
      });
      table.add_row({std::to_string(p), std::to_string(ring_messages.load()),
                     std::to_string(bully_messages.load())});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(the ring is frugal and linear-ish; bully floods "
                 "challenges upward — O(p^2) worst case — to converge in "
                 "fewer rounds)\n\n";
  }

  {
    TextTable table("3. Two-phase commit messages (unanimous commit)");
    table.set_header({"participants", "total messages", "3(p-1) model"});
    for (int p : {2, 4, 8}) {
      std::atomic<std::uint64_t> messages{0};
      World world(p);
      world.run([&](Communicator& comm) {
        const auto stats = comm.rank() == 0
                               ? run_2pc_coordinator(comm)
                               : run_2pc_participant(comm, true);
        messages += stats.messages_sent;
      });
      // prepare + vote + decision per participant (+ the prepare itself).
      table.add_row({std::to_string(p - 1), std::to_string(messages.load()),
                     std::to_string(3 * (p - 1))});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(3 messages per participant: prepare, vote, decision)\n\n";
  }

  {
    TextTable table("4. Chandy-Lamport snapshot marker overhead");
    table.set_header({"ranks", "markers sent", "p(p-1) model", "invariant"});
    for (int p : {2, 4, 6}) {
      std::atomic<std::uint64_t> markers{0};
      std::atomic<std::int64_t> recorded{0};
      constexpr std::int64_t kInitial = 25;
      World world(p);
      world.run([&](Communicator& comm) {
        const auto result = run_token_snapshot(comm, kInitial, 150,
                                               comm.rank() == 0, 7);
        markers += result.markers_sent;
        recorded += result.recorded_local + result.recorded_in_flight;
      });
      table.add_row({std::to_string(p), std::to_string(markers.load()),
                     std::to_string(p * (p - 1)),
                     recorded.load() == kInitial * p ? "tokens conserved"
                                                     : "VIOLATED"});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(one marker per directed channel, independent of message "
                 "volume; the recorded global state conserves tokens even "
                 "though no quiescent instant existed)\n";
  }
  report.write_if_requested();
  return 0;
}
