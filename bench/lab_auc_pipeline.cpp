// Experiment CS-AUC (part 2) — pipelining and ILP (paper §IV-B: AUC's
// organization/architecture courses cover pipelining, ILP, and branch
// handling; the same material anchors the surveyed architecture courses).
//
// Two sweeps over the 5-stage pipeline model:
//   1. forwarding on/off for a load+ALU loop body (RAW stall accounting);
//   2. branch predictors on loop-heavy and alternating branch patterns.
#include <iostream>

#include "arch/pipeline.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::arch;
using pdc::support::TextTable;

int main() {
  pdc::obs::BenchReport report("lab_auc_pipeline");
  std::cout << "=== CS-AUC: pipeline hazards and branch prediction labs ===\n\n";

  {
    TextTable table("1. Forwarding vs stalling (loop: load + dependent ALU chain)");
    table.set_header({"body ALU ops", "config", "cycles", "CPI", "raw stalls"});
    for (std::size_t body : {1, 2, 4}) {
      const auto trace = make_loop_trace(200, body);
      for (bool forwarding : {false, true}) {
        PipelineConfig config;
        config.forwarding = forwarding;
        const auto stats = simulate_pipeline(trace, config);
        table.add_row({std::to_string(body),
                       forwarding ? "forwarding" : "no forwarding",
                       std::to_string(stats.cycles),
                       TextTable::num(stats.cpi(), 3),
                       std::to_string(stats.raw_stalls)});
      }
    }
    table.render(std::cout);
    report.add_table(table);
  }
  std::cout << '\n';
  {
    TextTable table("2. Branch predictors on a counted loop (200 iterations)");
    table.set_header({"predictor", "mispredictions", "flush cycles", "CPI"});
    const auto trace = make_loop_trace(200, 2);
    for (BranchPredictor predictor :
         {BranchPredictor::kAlwaysNotTaken, BranchPredictor::kAlwaysTaken,
          BranchPredictor::kOneBit, BranchPredictor::kTwoBit}) {
      PipelineConfig config;
      config.predictor = predictor;
      const auto stats = simulate_pipeline(trace, config);
      table.add_row({to_string(predictor), std::to_string(stats.mispredictions),
                     std::to_string(stats.flush_cycles),
                     TextTable::num(stats.cpi(), 3)});
    }
    table.render(std::cout);
    report.add_table(table);
  }
  std::cout << '\n';
  {
    TextTable table("3. Predictors on an alternating T/N/T/N branch");
    table.set_header({"predictor", "mispredictions (of 200)", "CPI"});
    std::vector<TraceInstr> trace;
    for (int i = 0; i < 200; ++i) {
      trace.push_back({Op::kBranch, -1, 1, -1, 0x40, i % 2 == 0});
    }
    for (BranchPredictor predictor :
         {BranchPredictor::kAlwaysNotTaken, BranchPredictor::kOneBit,
          BranchPredictor::kTwoBit}) {
      PipelineConfig config;
      config.predictor = predictor;
      const auto stats = simulate_pipeline(trace, config);
      table.add_row({to_string(predictor), std::to_string(stats.mispredictions),
                     TextTable::num(stats.cpi(), 3)});
    }
    table.render(std::cout);
    report.add_table(table);
    std::cout << "(the 1-bit pathology: alternation defeats last-outcome "
                 "prediction entirely)\n";
  }
  report.write_if_requested();
  return 0;
}
