// Experiment PERF-COLL — message-passing collectives (LLNL MPI guide;
// Table I rows IPC and shared vs. distributed memory).
//
// google-benchmark over the in-process runtime: broadcast and the two
// allreduce algorithms across world sizes and message lengths. Expected
// shape: tree allreduce (latency-bound, log p rounds of the FULL message)
// wins for small messages; ring allreduce (bandwidth-bound, 2(p-1)/p of
// the data per rank) wins for large ones.
#include <benchmark/benchmark.h>

#include "mp/world.hpp"

namespace {

using namespace pdc::mp;

void BM_Broadcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  World world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      std::vector<double> data(count, comm.rank() == 0 ? 1.0 : 0.0);
      comm.broadcast(data.data(), data.size(), 0);
      benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_Broadcast)
    ->ArgsProduct({{2, 4, 8}, {64, 4096, 65536}})
    ->Unit(benchmark::kMicrosecond);

void BM_AllreduceTree(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  World world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      std::vector<double> in(count, comm.rank() + 1.0), out(count);
      comm.allreduce(in.data(), out.data(), count, std::plus<double>{});
      benchmark::DoNotOptimize(out[0]);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_AllreduceTree)
    ->ArgsProduct({{2, 4, 8}, {64, 4096, 65536}})
    ->Unit(benchmark::kMicrosecond);

void BM_AllreduceRing(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  World world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      std::vector<double> in(count, comm.rank() + 1.0), out(count);
      comm.allreduce_ring(in.data(), out.data(), count, std::plus<double>{});
      benchmark::DoNotOptimize(out[0]);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_AllreduceRing)
    ->ArgsProduct({{2, 4, 8}, {64, 4096, 65536}})
    ->Unit(benchmark::kMicrosecond);

void BM_Alltoall(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr std::size_t kPer = 1024;
  World world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      const auto p = static_cast<std::size_t>(comm.size());
      std::vector<int> send(p * kPer, comm.rank()), recv(p * kPer);
      comm.alltoall(send.data(), recv.data(), kPer);
      benchmark::DoNotOptimize(recv[0]);
    });
  }
}
BENCHMARK(BM_Alltoall)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  World world(ranks);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
