// Experiment T3 — regenerates Table III of the paper: "PDC in software
// engineering knowledge areas [SE2014]".
//
// Filters the SEEK model to PDC-related essential topics; the published
// table has exactly one knowledge area (Computing Essentials) with two
// topics, both at the application cognitive level (§V).
#include <iostream>

#include "core/bok.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

int main() {
  pdc::obs::BenchReport report("table3_se2014_pdc");
  using namespace pdc::core;
  pdc::support::TextTable table(
      "TABLE III — PDC IN SOFTWARE ENGINEERING KNOWLEDGE AREAS (SE2014)");
  table.set_header({"Knowledge Area", "PDC-related Core Topics", "level"});
  for (const KnowledgeArea* area : pdc_areas(se2014())) {
    bool first = true;
    for (const KnowledgeUnit& unit : area->pdc_core_units()) {
      table.add_row({first ? area->name : "", unit.name, to_string(unit.level)});
      first = false;
    }
  }
  table.render(std::cout);
  report.add_table(table);
  std::cout << "\n(SEEK modelled with " << se2014().size()
            << " knowledge areas; both PDC topics are essential at the "
               "application level, as §V notes)\n";
  report.write_if_requested();
  return 0;
}
