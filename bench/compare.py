#!/usr/bin/env python3
"""Compare two bench harvests and flag regressions.

Each side is either a directory of per-bench ``*.json`` files (as produced
by ``bench/run_all.sh``) or a single combined file (as produced by
``--save-combined``, e.g. the committed ``BENCH_baseline.json``). Two
source formats are understood:

* ``obs::BenchReport`` output: ``{"bench": <name>, "metrics": {...}}`` —
  every metric is compared.
* google-benchmark ``--benchmark_out`` output: ``{"benchmarks": [...]}`` —
  each entry's ``real_time`` is compared under the key ``<name>.real_time``.

Whether a change is a regression depends on the metric's direction, taken
from its name: throughput-ish suffixes (``per_s``, ``speedup``, ``ops``,
``throughput``) are higher-is-better, latency-ish ones (``us``, ``ns``,
``ms``, ``time``, ``latency``) lower-is-better. Unclassifiable metrics are
reported but never fail the comparison.

Exit status is nonzero when any classified metric moved past ``--threshold``
in the bad direction (0.5 = 50% worse). Microbenchmarks on shared CI
runners are noisy; pick thresholds accordingly and treat this as a tripwire
for order-of-magnitude slips, not a precision gate.

Near-zero-duration rows (sub-µs framing ops, single cache-line probes) sit
at the runner's timing noise floor: a 2x relative swing on a 40 ns row is
scheduler jitter, not a regression. ``--noise-floor N`` declares that
floor, in microseconds: a time-direction metric whose baseline AND current
values both fall below it (after normalizing the metric's ns/us/ms/seconds
unit suffix) is annotated as sub-floor and reported informationally, never
flagged. Harvests here are single-run — the floor plays the role a
``--min-runs`` repetition gate would on a harness that reran noisy rows.

Usage:
  bench/compare.py BASELINE CURRENT [--threshold 0.5]
                   [--noise-floor 0] [--save-combined PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

LOWER_BETTER = ("us", "ns", "ms", "time", "latency", "block", "seconds",
                "overhead")
HIGHER_BETTER = ("per_s", "speedup", "throughput", "ops", "rate")


def direction(metric: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown."""
    # Labeled series ('name{k="v",...}', the canonical MetricKey form) keep
    # the label block as part of the comparison key, but labels never carry
    # direction — classify on the base name alone so e.g.
    # 'scrape_us{rank="0"}' still reads as lower-is-better.
    base = metric.split("{", 1)[0]
    parts = base.lower().replace("/", ".").replace("_", ".").split(".")
    for token in reversed(parts):  # the last classifiable token wins
        if token in HIGHER_BETTER:
            return 1
        if token in LOWER_BETTER:
            return -1
    for needle in HIGHER_BETTER:  # substring fallback ("spawn_speedup_vs…")
        if needle in base.lower():
            return 1
    for needle in LOWER_BETTER:
        if needle in base.lower():
            return -1
    return 0


def time_in_us(metric: str, value: float) -> float | None:
    """`value` in microseconds when the metric's unit suffix is a time
    unit; None for non-time metrics (throughputs, ratios, counts)."""
    base = metric.split("{", 1)[0]
    parts = base.lower().replace("/", ".").replace("_", ".").split(".")
    scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "seconds": 1e6}
    for token in reversed(parts):  # last unit token wins, as in direction()
        if token in scale:
            return value * scale[token]
    return None


def extract_metrics(doc: dict) -> dict[str, float]:
    """Flattens one bench JSON document to {metric: value}."""
    out: dict[str, float] = {}
    if "metrics" in doc and isinstance(doc["metrics"], dict):
        for key, value in doc["metrics"].items():
            if isinstance(value, (int, float)) and math.isfinite(value):
                out[key] = float(value)
    for entry in doc.get("benchmarks", []):  # google-benchmark format
        name = entry.get("name")
        value = entry.get("real_time")
        if name and isinstance(value, (int, float)) and math.isfinite(value):
            unit = entry.get("time_unit", "ns")
            out[f"{name}.real_time_{unit}"] = float(value)
    return out


def load_side(path: Path) -> dict[str, dict[str, float]]:
    """Loads a harvest directory or combined file to {bench: {metric: value}}."""
    if path.is_dir():
        benches: dict[str, dict[str, float]] = {}
        for file in sorted(path.glob("*.json")):
            try:
                doc = json.loads(file.read_text())
            except (OSError, json.JSONDecodeError) as err:
                print(f"warning: skipping unreadable {file}: {err}", file=sys.stderr)
                continue
            name = doc.get("bench") or doc.get("context", {}).get(
                "executable", file.stem
            )
            name = Path(str(name)).name
            metrics = extract_metrics(doc)
            if metrics:
                benches[name] = metrics
        return benches
    doc = json.loads(path.read_text())
    if "benches" in doc:  # combined format from --save-combined
        return {
            bench: {k: float(v) for k, v in metrics.items()}
            for bench, metrics in doc["benches"].items()
        }
    name = str(doc.get("bench", path.stem))
    return {name: extract_metrics(doc)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline dir or combined file")
    parser.add_argument("current", type=Path, help="current dir or combined file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="relative change that counts as a regression (0.5 = 50%% worse)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.0,
        metavar="US",
        help="time metrics below this many microseconds on both sides are "
        "annotated but never flagged (0 = off)",
    )
    parser.add_argument(
        "--save-combined",
        type=Path,
        metavar="PATH",
        help="also write CURRENT as one combined JSON file (baseline refresh)",
    )
    args = parser.parse_args()

    baseline = load_side(args.baseline)
    current = load_side(args.current)
    if not baseline:
        print(f"error: no benches found in {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no benches found in {args.current}", file=sys.stderr)
        return 2

    if args.save_combined:
        combined = {"benches": current}
        args.save_combined.write_text(json.dumps(combined, indent=1, sort_keys=True) + "\n")
        print(f"wrote combined harvest to {args.save_combined}")

    regressions: list[str] = []
    improvements = 0
    compared = 0
    sub_floor = 0
    for bench in sorted(baseline):
        if bench not in current:
            print(f"note: bench '{bench}' missing from current harvest")
            continue
        for metric, base_value in sorted(baseline[bench].items()):
            cur_value = current[bench].get(metric)
            if cur_value is None:
                print(f"note: {bench}:{metric} missing from current harvest")
                continue
            sign = direction(metric)
            if sign == 0 or base_value == 0:
                continue
            compared += 1
            # Positive delta = got worse, regardless of metric direction.
            if sign > 0:
                delta = (base_value - cur_value) / abs(base_value)
            else:
                delta = (cur_value - base_value) / abs(base_value)
            if args.noise_floor > 0 and sign < 0:
                base_us = time_in_us(metric, base_value)
                cur_us = time_in_us(metric, cur_value)
                if (
                    base_us is not None
                    and cur_us is not None
                    and base_us < args.noise_floor
                    and cur_us < args.noise_floor
                ):
                    sub_floor += 1
                    if abs(delta) > args.threshold:
                        arrow = "worse" if delta > 0 else "better"
                        print(
                            f"{bench}:{metric}: {base_value:.4g} -> "
                            f"{cur_value:.4g} ({abs(delta) * 100:.1f}% "
                            f"{arrow})  (below --noise-floor "
                            f"{args.noise_floor:g}us, informational)"
                        )
                    continue
            tag = ""
            if delta > args.threshold:
                tag = "  << REGRESSION"
                regressions.append(f"{bench}:{metric}")
            elif delta < -args.threshold:
                tag = "  (improved)"
                improvements += 1
            if tag or abs(delta) > args.threshold / 2:
                arrow = "worse" if delta > 0 else "better"
                print(
                    f"{bench}:{metric}: {base_value:.4g} -> {cur_value:.4g} "
                    f"({abs(delta) * 100:.1f}% {arrow}){tag}"
                )

    floor_note = (
        f", {sub_floor} below the {args.noise_floor:g}us noise floor"
        if sub_floor
        else ""
    )
    print(
        f"\ncompared {compared} metrics: {len(regressions)} regression(s), "
        f"{improvements} improvement(s) beyond {args.threshold * 100:.0f}%"
        f"{floor_note}"
    )
    if regressions:
        print("regressed: " + ", ".join(regressions), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
