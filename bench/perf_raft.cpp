// Experiment PERF-RAFT — what consensus costs on real threads.
//
// A 3-rank dist::ReplicatedKV cluster on OS threads (no simulator):
//   1. client-visible operation latency: put (log append + quorum commit +
//      apply + reply) and get (read-index: one confirmed heartbeat round),
//      mean / p50 / p99 microseconds;
//   2. pipelined log throughput: entries submitted back-to-back at the
//      leader, committed entries per second;
//   3. leader failover: destroy the leader, time until a replacement wins
//      an election (randomized 12-24ms timeouts bound this below).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/raft.hpp"
#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc;
using dist::RaftPersistentState;
using mp::Communicator;
using mp::World;
using support::TextTable;

namespace {

constexpr int kRanks = 3;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Discards commands: isolates raw log replication cost from any state
/// machine (raw submit payloads are not KvMachine commands).
class DiscardMachine : public dist::StateMachine {
 public:
  std::vector<std::uint8_t> apply(std::uint64_t,
                                  const std::vector<std::uint8_t>&) override {
    return {};
  }
  std::vector<std::uint8_t> snapshot_image() override { return {}; }
  void restore(const std::vector<std::uint8_t>&) override {}
};

struct LatencyStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

LatencyStats summarize(std::vector<double> samples) {
  LatencyStats out;
  if (samples.empty()) return out;
  double total = 0.0;
  for (const double s : samples) total += s;
  out.mean = total / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  out.p50 = samples[samples.size() / 2];
  out.p99 = samples[samples.size() * 99 / 100];
  return out;
}

}  // namespace

int main() {
  obs::BenchReport report("perf_raft");
  std::cout << "=== PERF-RAFT: consensus on real threads ===\n\n";

  // --------------------------------------------- 1: client op latency
  {
    constexpr int kWarmup = 16;
    constexpr int kOps = 200;
    std::atomic<bool> bench_done{false};
    std::atomic<int> leader_slot{-1};
    std::vector<double> put_us;
    std::vector<double> get_us;

    std::vector<RaftPersistentState> storage(kRanks);
    World world(kRanks);
    world.run([&](Communicator& comm) {
      dist::ReplicatedKV kv(comm, storage[static_cast<std::size_t>(comm.rank())]);
      while (leader_slot.load() == -1) {
        if (kv.is_leader()) leader_slot.store(comm.rank());
        kv.step();
        std::this_thread::yield();
      }
      if (comm.rank() != leader_slot.load()) {
        while (!bench_done.load()) {
          kv.step();
          std::this_thread::yield();
        }
        return;
      }

      for (int i = 0; i < kWarmup; ++i) (void)kv.put("bench", "warm");
      for (int i = 0; i < kOps; ++i) {
        const double t0 = now_us();
        (void)kv.put("bench", "v" + std::to_string(i));
        put_us.push_back(now_us() - t0);
      }
      for (int i = 0; i < kOps; ++i) {
        const double t0 = now_us();
        (void)kv.get("bench");
        get_us.push_back(now_us() - t0);
      }
      bench_done = true;
    });

    const auto put = summarize(put_us);
    const auto get = summarize(get_us);
    TextTable table("1. ReplicatedKV client latency (3 ranks, OS threads)");
    table.set_header({"op", "mean us", "p50 us", "p99 us"});
    table.add_row({"put", TextTable::num(put.mean, 1), TextTable::num(put.p50, 1),
                   TextTable::num(put.p99, 1)});
    table.add_row({"get", TextTable::num(get.mean, 1), TextTable::num(get.p50, 1),
                   TextTable::num(get.p99, 1)});
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("put.mean_us", put.mean);
    report.add_metric("put.p50_us", put.p50);
    report.add_metric("put.p99_us", put.p99);
    report.add_metric("get.mean_us", get.mean);
    report.add_metric("get.p50_us", get.p50);
    report.add_metric("get.p99_us", get.p99);
    std::cout << "(get rides the read-index path: no log write, one "
                 "confirmed heartbeat round)\n\n";
  }

  // ------------------------------------- 2: pipelined log throughput
  {
    constexpr int kPipeline = 512;
    std::atomic<bool> bench_done{false};
    std::atomic<int> leader_slot{-1};
    double commits_per_s = 0.0;

    std::vector<RaftPersistentState> storage(kRanks);
    World world(kRanks);
    world.run([&](Communicator& comm) {
      DiscardMachine machine;
      dist::RaftNode node(comm, machine,
                          storage[static_cast<std::size_t>(comm.rank())],
                          dist::RaftOptions{});
      while (leader_slot.load() == -1) {
        if (node.role() == dist::RaftRole::kLeader) {
          leader_slot.store(comm.rank());
        }
        node.tick();
        std::this_thread::yield();
      }
      if (comm.rank() != leader_slot.load()) {
        while (!bench_done.load()) {
          node.tick();
          std::this_thread::yield();
        }
        return;
      }

      // Don't wait per entry; keep the log full and let appends batch.
      const std::vector<std::uint8_t> payload(16, 0x2a);
      const double t0 = now_us();
      std::uint64_t last = 0;
      for (int i = 0; i < kPipeline; ++i) {
        const auto idx = node.submit(payload);
        if (idx) last = *idx;
        if (i % 8 == 0) node.tick();
      }
      while (node.commit_index() < last) {
        node.tick();
        std::this_thread::yield();
      }
      commits_per_s = static_cast<double>(kPipeline) / ((now_us() - t0) * 1e-6);
      bench_done = true;
    });

    report.add_metric("pipeline.commits_per_s", commits_per_s);
    std::cout << "2. Pipelined log throughput: "
              << TextTable::num(commits_per_s, 0) << " commits/s ("
              << kPipeline << " entries in flight)\n\n";
  }

  // --------------------------------------------------------- 3: failover
  {
    constexpr int kCrashes = 3;
    std::array<std::atomic<int>, kCrashes + 1> slot;
    std::array<std::atomic<double>, kCrashes + 1> claim_us{};
    std::array<std::atomic<double>, kCrashes> crash_us{};
    for (auto& s : slot) s.store(-1);

    std::vector<RaftPersistentState> storage(kRanks);
    World world(kRanks);
    world.run([&](Communicator& comm) {
      const auto rank = comm.rank();
      std::optional<dist::KvMachine> machine(std::in_place);
      std::optional<dist::RaftNode> node(
          std::in_place, comm, *machine,
          storage[static_cast<std::size_t>(rank)], dist::RaftOptions{});
      for (int round = 0; round <= kCrashes; ++round) {
        while (slot[static_cast<std::size_t>(round)].load() == -1) {
          if (node && node->role() == dist::RaftRole::kLeader) {
            int expected = -1;
            if (slot[static_cast<std::size_t>(round)]
                    .compare_exchange_strong(expected, rank)) {
              claim_us[static_cast<std::size_t>(round)].store(now_us());
            }
          }
          if (node) node->tick();
          std::this_thread::yield();
        }
        if (round == kCrashes) break;
        if (rank == slot[static_cast<std::size_t>(round)].load()) {
          crash_us[static_cast<std::size_t>(round)].store(now_us());
          node.reset();  // the leader dies mid-reign
          while (slot[static_cast<std::size_t>(round + 1)].load() == -1) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
          machine.emplace();
          node.emplace(comm, *machine,
                       storage[static_cast<std::size_t>(rank)],
                       dist::RaftOptions{});
        }
      }
    });

    TextTable table("3. Leader failover (crash -> new leader elected)");
    table.set_header({"round", "failover ms"});
    double total = 0.0;
    double worst = 0.0;
    for (int i = 0; i < kCrashes; ++i) {
      const double ms = (claim_us[static_cast<std::size_t>(i + 1)].load() -
                         crash_us[static_cast<std::size_t>(i)].load()) *
                        1e-3;
      total += ms;
      worst = std::max(worst, ms);
      table.add_row({std::to_string(i + 1), TextTable::num(ms, 2)});
    }
    table.render(std::cout);
    report.add_table(table);
    report.add_metric("failover.mean_ms", total / kCrashes);
    report.add_metric("failover.max_ms", worst);
    std::cout << "(bounded by the randomized election timeout band, "
                 "12-24ms, plus one round of RequestVote RTTs)\n";
  }

  report.write_if_requested();
  return 0;
}
