// Experiment PERF-SERVER — the three net::Server threading models under
// identical open-loop load (net::LoadGen), swept across connection counts.
//
// The question each row answers is the paper's capacity question: how many
// concurrent clients can one host multiplex, and what happens to tail
// latency when the model runs out? Thread-per-connection spends a thread
// per client and dies by context-switch; the worker pool holds a
// connection per worker until the client hangs up, so every connection
// beyond `workers` starves in the accept queue; the event-driven engine
// multiplexes every connection over a readiness loop + work-stealing pool
// and is the only model that reaches 10^5..10^6 connections.
//
// Open-loop latency (measured from each request's *scheduled* send time)
// makes the starvation visible as p99/p999 blowup instead of silently
// slowing the generator down — the coordinated-omission trap described in
// docs/serving.md.
//
//   - thread-per-connection runs only at <= 2048 connections (a thread per
//     simulated client; beyond that the row measures thread creation).
//   - PDCKIT_PERF_SERVER_XL=1 adds a 1M-connection event-driven row
//     (skipped by default: the connect phase alone takes tens of seconds).
//
// JSON via PDCKIT_BENCH_JSON (obs::BenchReport); compared across commits
// by bench/compare.py against BENCH_baseline.json.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

namespace {

using namespace pdc::net;
using pdc::support::TextTable;

constexpr std::size_t kWorkers = 3;  // equal hardware threads for pool/event

const char* model_key(ThreadingModel model) {
  switch (model) {
    case ThreadingModel::kThreadPerConnection:
      return "tpc";
    case ThreadingModel::kWorkerPool:
      return "pool";
    case ThreadingModel::kEventDriven:
      return "event";
  }
  return "?";
}

struct Row {
  ThreadingModel model;
  std::size_t connections;
  LoadGenReport report;
};

Row run_model(ThreadingModel model, std::size_t connections,
              std::size_t requests) {
  NetConfig net_config;
  net_config.latency_ms = 0.01;
  Network net(5, net_config);

  ServerConfig server_config;
  server_config.model = model;
  server_config.workers = kWorkers;
  // Zero-copy echo: the handler cost is identical across models, so the
  // rows isolate the threading model itself.
  server_config.view_handler = [](BytesView request) {
    return request.to_owned();
  };
  Server server(net, 0, 80, nullptr, server_config);

  LoadGenConfig load;
  load.connections = connections;
  load.requests = requests;
  load.duration_s = 0.5;
  load.grace_s = 0.75;  // bounded wait for models that starve connections
  load.curve = ArrivalCurve::kConstant;
  load.drivers = 2;
  load.first_client_host = 1;
  load.client_hosts = 4;
  LoadGen gen(net, server.address());
  Row row{model, connections, gen.run(load)};
  server.stop();
  return row;
}

std::string ckey(std::size_t connections) {
  return "c" + std::to_string(connections);
}

}  // namespace

int main() {
  pdc::obs::BenchReport report("perf_server");
  std::cout << "=== PERF-SERVER: threading models under open-loop load ===\n"
            << "(echo server, " << kWorkers
            << " workers, open-loop latency from scheduled send time)\n\n";

  TextTable table("Threading models x connection count");
  table.set_header({"conns", "model", "sent", "answered", "rps", "p50 us",
                    "p99 us", "p999 us"});

  std::vector<std::size_t> sweep{256, 2048, 20000, 100000};
  const bool xl = std::getenv("PDCKIT_PERF_SERVER_XL") != nullptr;
  if (xl) sweep.push_back(1000000);

  for (const std::size_t connections : sweep) {
    const std::size_t requests = connections <= 2048 ? 50000 : 100000;
    std::vector<ThreadingModel> models;
    if (connections <= 2048) {
      models.push_back(ThreadingModel::kThreadPerConnection);
    }
    if (connections <= 100000) {
      models.push_back(ThreadingModel::kWorkerPool);
    }
    models.push_back(ThreadingModel::kEventDriven);

    double pool_rps = 0.0;
    double event_rps = 0.0;
    for (const ThreadingModel model : models) {
      const Row row = run_model(model, connections, requests);
      const auto& r = row.report;
      const std::string prefix =
          std::string(model_key(model)) + "." + ckey(connections);
      report.add_metric("rps." + prefix + ".per_s", r.rps);
      report.add_metric("p50." + prefix + ".us", r.p50_us);
      report.add_metric("p99." + prefix + ".us", r.p99_us);
      report.add_metric("p999." + prefix + ".us", r.p999_us);
      if (model == ThreadingModel::kWorkerPool) pool_rps = r.rps;
      if (model == ThreadingModel::kEventDriven) event_rps = r.rps;
      table.add_row({std::to_string(connections), model_key(model),
                     std::to_string(r.sent), std::to_string(r.received),
                     TextTable::num(r.rps / 1e3, 1) + "k",
                     TextTable::num(r.p50_us, 0), TextTable::num(r.p99_us, 0),
                     TextTable::num(r.p999_us, 0)});
    }
    if (pool_rps > 0.0 && event_rps > 0.0) {
      report.add_metric("speedup_event_vs_pool." + ckey(connections),
                        event_rps / pool_rps);
    }
  }

  table.render(std::cout);
  report.add_table(table);
  std::cout
      << "(the worker pool parks a connection per worker until the client "
         "hangs up, so answered collapses to ~workers/conns of sent as "
         "connections grow — the starvation the event engine exists to "
         "fix; see docs/serving.md)\n";
  if (!xl) {
    std::cout << "(set PDCKIT_PERF_SERVER_XL=1 for a 1M-connection "
                 "event-driven row)\n";
  }

  report.write_if_requested();
  return 0;
}
