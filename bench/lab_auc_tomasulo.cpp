// Experiment CS-AUC (part 1) — the AUC architecture sequence's signature
// topic (paper §IV-B): "non-speculative and the speculative versions of
// Tomasulo's architectures".
//
// Sweeps branch predictability and the speculative window (ROB size) and
// reports cycles/IPC for both machines. Shapes that must hold: speculation
// wins on predictable branches, the win shrinks as branches approach coin
// flips, and a tiny ROB throttles the speculative machine.
#include <iostream>

#include "arch/tomasulo.hpp"
#include "obs/bench_report.hpp"
#include "support/table.hpp"

using namespace pdc::arch;
using pdc::support::TextTable;

int main() {
  pdc::obs::BenchReport report("lab_auc_tomasulo");
  std::cout << "=== CS-AUC: Tomasulo dynamic scheduling labs ===\n\n";
  constexpr std::size_t kIterations = 500;

  {
    TextTable table("1. Speculative vs non-speculative across branch bias");
    table.set_header({"taken bias", "non-spec cycles", "spec cycles",
                      "speedup", "mispredict rate", "non-spec IPC", "spec IPC"});
    for (double bias : {1.0, 0.95, 0.9, 0.75, 0.5}) {
      const auto trace = make_fp_loop_trace(kIterations, bias);
      const auto non_spec = simulate_tomasulo(trace, {.speculative = false});
      TomasuloConfig spec_config;
      spec_config.speculative = true;
      spec_config.rob_entries = 32;
      const auto spec = simulate_tomasulo(trace, spec_config);
      table.add_row(
          {TextTable::num(bias, 2), std::to_string(non_spec.cycles),
           std::to_string(spec.cycles),
           TextTable::num(static_cast<double>(non_spec.cycles) /
                              static_cast<double>(spec.cycles), 2),
           TextTable::num(static_cast<double>(spec.mispredictions) /
                              static_cast<double>(spec.branches), 3),
           TextTable::num(non_spec.ipc(), 3), TextTable::num(spec.ipc(), 3)});
    }
    table.render(std::cout);
    report.add_table(table);
  }
  std::cout << '\n';
  {
    TextTable table("2. Reorder-buffer size sweep (bias 1.0)");
    table.set_header({"ROB entries", "cycles", "IPC", "rob-full stalls"});
    const auto trace = make_fp_loop_trace(kIterations, 1.0);
    for (std::size_t rob : {2, 4, 8, 16, 32, 64}) {
      TomasuloConfig config;
      config.speculative = true;
      config.rob_entries = rob;
      const auto stats = simulate_tomasulo(trace, config);
      table.add_row({std::to_string(rob), std::to_string(stats.cycles),
                     TextTable::num(stats.ipc(), 3),
                     std::to_string(stats.rob_full_stall_cycles)});
    }
    table.render(std::cout);
    report.add_table(table);
  }
  std::cout << '\n';
  {
    TextTable table("3. Reservation-station pressure (non-speculative, bias 1.0)");
    table.set_header({"adder RS", "multiplier RS", "cycles", "rs-full stalls"});
    const auto trace = make_fp_loop_trace(kIterations, 1.0);
    for (const auto& [adders, muls] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {2, 1}, {3, 2}, {6, 4}}) {
      TomasuloConfig config;
      config.adder_stations = adders;
      config.multiplier_stations = muls;
      const auto stats = simulate_tomasulo(trace, config);
      table.add_row({std::to_string(adders), std::to_string(muls),
                     std::to_string(stats.cycles),
                     std::to_string(stats.rs_full_stall_cycles)});
    }
    table.render(std::cout);
    report.add_table(table);
  }
  report.write_if_requested();
  return 0;
}
