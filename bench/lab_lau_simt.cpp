// Experiment CS-LAU (part 2) — the manycore/SIMT labs of the LAU course
// (paper §IV-A, part 3: CUDA-style programming, memory management,
// concurrent streams).
//
// Reports, in simulated device cycles (deterministic, host-independent):
//   1. coalescing: unit-stride vs strided global access;
//   2. divergence: warp-uniform vs odd/even branching;
//   3. tiled (shared-memory) vs naive matrix multiply — the canonical
//      optimization lab: tiling must cut global-memory segments sharply;
//   4. stream overlap: 1-stream vs 2-stream copy+compute pipelines in wall
//      time, with a simulated DMA engine;
//   5. an occupancy table for representative kernel footprints.
#include <iostream>

#include "obs/bench_report.hpp"
#include "simt/device.hpp"
#include "simt/occupancy.hpp"
#include "simt/stream.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace pdc::simt;
using pdc::support::TextTable;

namespace {

// Shared by the experiment functions below; written out at the end of main.
pdc::obs::BenchReport report("lab_lau_simt");

void coalescing_experiment() {
  Device device;
  constexpr std::size_t kThreads = 32 * 64;
  auto buffer = device.alloc<float>(kThreads * 32);

  TextTable table("1. Global-memory coalescing (32 threads/warp, 128B segments)");
  table.set_header({"access pattern", "transactions", "segments",
                    "efficiency", "sim cycles"});
  const struct {
    const char* name;
    std::size_t stride;
  } patterns[] = {{"unit stride (a[i])", 1},
                  {"stride 2", 2},
                  {"stride 8", 8},
                  {"stride 32 (a[32*i])", 32}};
  for (const auto& pattern : patterns) {
    const auto stats =
        device.launch_1d(kThreads, 128, [&, stride = pattern.stride](ThreadCtx& ctx) {
          ctx.store(buffer, ctx.global_x() * stride, 1.0f);
        });
    table.add_row({pattern.name, std::to_string(stats.transactions),
                   std::to_string(stats.segments),
                   TextTable::num(stats.coalescing_efficiency(), 3),
                   std::to_string(stats.cycles)});
  }
  table.render(std::cout);
  report.add_table(table);
}

void divergence_experiment() {
  Device device;
  auto buffer = device.alloc<int>(32 * 64);

  TextTable table("2. Warp divergence");
  table.set_header({"branch condition", "branches", "divergent",
                    "divergence rate", "sim cycles"});
  struct Case {
    const char* name;
    std::function<bool(ThreadCtx&)> condition;
  };
  const Case cases[] = {
      {"uniform per block", [](ThreadCtx& ctx) { return ctx.block_idx().x % 2 == 0; }},
      {"uniform per warp", [](ThreadCtx& ctx) { return ctx.warp_id() % 2 == 0; }},
      {"odd/even lanes", [](ThreadCtx& ctx) { return ctx.global_x() % 2 == 0; }},
  };
  for (const auto& test_case : cases) {
    const auto stats = device.launch_1d(32 * 64, 128, [&](ThreadCtx& ctx) {
      if (ctx.branch(test_case.condition(ctx))) {
        ctx.store(buffer, ctx.global_x(), 1);
      }
    });
    table.add_row({test_case.name, std::to_string(stats.branches),
                   std::to_string(stats.divergent_branches),
                   TextTable::num(stats.divergence_rate(), 2),
                   std::to_string(stats.cycles)});
  }
  table.render(std::cout);
  report.add_table(table);
}

void matmul_experiment() {
  // C = A * B, N x N floats.
  constexpr unsigned kN = 64;
  constexpr unsigned kTile = 8;
  Device device;
  auto a = device.alloc<float>(kN * kN);
  auto b = device.alloc<float>(kN * kN);
  auto c = device.alloc<float>(kN * kN);
  std::vector<float> host(kN * kN);
  for (std::size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<float>(i % 7) * 0.5f;
  }
  device.write(a, host);
  device.write(b, host);

  // Naive: every thread streams a full row of A and column of B from
  // global memory.
  const auto naive = device.launch(
      Dim3{kN / kTile, kN / kTile}, Dim3{kTile, kTile}, 0, [&](ThreadCtx& ctx) {
        const unsigned col = ctx.block_idx().x * kTile + ctx.thread_idx().x;
        const unsigned row = ctx.block_idx().y * kTile + ctx.thread_idx().y;
        float acc = 0.0f;
        for (unsigned k = 0; k < kN; ++k) {
          acc += ctx.load(a, row * kN + k) * ctx.load(b, k * kN + col);
        }
        ctx.store(c, row * kN + col, acc);
      });

  // Tiled: blocks stage kTile x kTile tiles of A and B through shared
  // memory, synchronizing between tiles.
  const std::size_t shared_bytes = 2 * kTile * kTile * sizeof(float);
  const auto tiled = device.launch(
      Dim3{kN / kTile, kN / kTile}, Dim3{kTile, kTile}, shared_bytes,
      [&](ThreadCtx& ctx) {
        float* tile_a = ctx.shared<float>();
        float* tile_b = tile_a + kTile * kTile;
        const unsigned tx = ctx.thread_idx().x, ty = ctx.thread_idx().y;
        const unsigned col = ctx.block_idx().x * kTile + tx;
        const unsigned row = ctx.block_idx().y * kTile + ty;
        float acc = 0.0f;
        for (unsigned t = 0; t < kN / kTile; ++t) {
          tile_a[ty * kTile + tx] = ctx.load(a, row * kN + t * kTile + tx);
          tile_b[ty * kTile + tx] = ctx.load(b, (t * kTile + ty) * kN + col);
          ctx.sync_threads();
          for (unsigned k = 0; k < kTile; ++k) {
            acc += tile_a[ty * kTile + k] * tile_b[k * kTile + tx];
          }
          ctx.sync_threads();
        }
        ctx.store(c, row * kN + col, acc);
      });

  TextTable table("3. Matrix multiply 64x64: naive vs shared-memory tiled");
  table.set_header({"kernel", "global transactions", "segments", "sim cycles"});
  table.add_row({"naive", std::to_string(naive.transactions),
                 std::to_string(naive.segments), std::to_string(naive.cycles)});
  table.add_row({"tiled (8x8 shared)", std::to_string(tiled.transactions),
                 std::to_string(tiled.segments), std::to_string(tiled.cycles)});
  table.add_row(
      {"tiled/naive segment ratio",
       TextTable::num(static_cast<double>(tiled.segments) /
                          static_cast<double>(naive.segments), 3),
       "", ""});
  table.render(std::cout);
  report.add_table(table);
}

void streams_experiment() {
  // Tuned so one copy (~8ms of simulated DMA) matches one kernel (~8ms of
  // simulated execution): maximal headroom for copy/compute overlap.
  DeviceConfig config;
  config.copy_bandwidth_bytes_per_sec = 128.0 * 1024 * 1024;  // 128 MB/s DMA
  Device device(config);
  constexpr std::size_t kChunk = 1 << 20;  // 1 MB per batch (~8ms copy)
  constexpr int kBatches = 8;
  std::vector<Buffer<float>> buffers;
  for (int i = 0; i < kBatches; ++i) {
    buffers.push_back(device.alloc<float>(kChunk / sizeof(float)));
  }
  const std::vector<float> host(kChunk / sizeof(float), 1.0f);
  auto kernel = [](Buffer<float> buf) {
    return [buf](ThreadCtx& ctx) mutable {
      const std::size_t i = ctx.global_x();
      ctx.store(buf, i, ctx.load(buf, i) * 2.0f);
    };
  };

  pdc::support::Stopwatch serial_clock;
  {
    Stream stream(device);
    for (int i = 0; i < kBatches; ++i) {
      stream.write(buffers[static_cast<std::size_t>(i)], host);
      stream.launch(Dim3{8}, Dim3{256}, 0, kernel(buffers[static_cast<std::size_t>(i)]));
    }
    stream.synchronize();
  }
  const double serial = serial_clock.elapsed_millis();

  pdc::support::Stopwatch overlap_clock;
  {
    Stream copy_stream(device);
    Stream compute_stream(device);
    std::vector<Event> ready(kBatches);
    for (int i = 0; i < kBatches; ++i) {
      copy_stream.write(buffers[static_cast<std::size_t>(i)], host);
      copy_stream.record(ready[static_cast<std::size_t>(i)]);
      compute_stream.wait(ready[static_cast<std::size_t>(i)]);
      compute_stream.launch(Dim3{8}, Dim3{256}, 0,
                            kernel(buffers[static_cast<std::size_t>(i)]));
    }
    copy_stream.synchronize();
    compute_stream.synchronize();
  }
  const double overlapped = overlap_clock.elapsed_millis();

  TextTable table("4. Concurrent streams: copy/compute pipeline (wall time)");
  table.set_header({"configuration", "time (ms)", "speedup"});
  table.add_row({"1 stream (serial)", TextTable::num(serial, 2), "1.00"});
  table.add_row({"2 streams (overlapped)", TextTable::num(overlapped, 2),
                 TextTable::num(serial / overlapped, 2)});
  table.render(std::cout);
  report.add_table(table);
}

void atomics_experiment() {
  // The atomics lab: an 8-bin histogram. Naive global atomics serialize
  // warp lanes that hit the same bin; per-block privatization flushes one
  // atomic per bin per block.
  constexpr std::size_t kN = 32 * 256;
  constexpr unsigned kBins = 8;
  Device device;
  auto input = device.alloc<int>(kN);
  std::vector<int> host(kN);
  pdc::support::Rng rng(11);
  for (auto& v : host) v = static_cast<int>(rng.index(kBins));
  device.write(input, host);

  auto naive_hist = device.alloc<long>(kBins);
  const auto naive = device.launch_1d(kN, 128, [&](ThreadCtx& ctx) {
    const int bin = ctx.load(input, ctx.global_x());
    ctx.atomic_add(naive_hist, static_cast<std::size_t>(bin), long{1});
  });

  auto priv_hist = device.alloc<long>(kBins);
  const auto privatized = device.launch(
      Dim3{kN / 128}, Dim3{128}, kBins * sizeof(long), [&](ThreadCtx& ctx) {
        long* local = ctx.shared<long>();
        const auto tid = ctx.thread_idx().x;
        if (tid < kBins) local[tid] = 0;
        ctx.sync_threads();
        // Shared-memory increment: cheap block-local atomics (the simulator
        // steps lanes sequentially within an epoch, so this is exact).
        ++local[ctx.load(input, ctx.global_x())];
        ctx.sync_threads();
        if (tid < kBins) ctx.atomic_add(priv_hist, tid, local[tid]);
      });

  TextTable table("5. Atomics: 8-bin histogram, naive vs privatized");
  table.set_header({"kernel", "global atomics", "serializations", "sim cycles"});
  table.add_row({"naive atomicAdd per element", std::to_string(naive.atomics),
                 std::to_string(naive.atomic_serializations),
                 std::to_string(naive.cycles)});
  table.add_row({"shared-memory privatized", std::to_string(privatized.atomics),
                 std::to_string(privatized.atomic_serializations),
                 std::to_string(privatized.cycles)});
  table.render(std::cout);
  report.add_table(table);
  std::cout << "(same histogram, ~" << naive.atomics / std::max<std::uint64_t>(1, privatized.atomics)
            << "x fewer global atomics)\n";
}

void occupancy_experiment() {
  TextTable table("5. Occupancy calculator (SM: 2048 thr, 32 blk, 64K regs, 96KB shared)");
  table.set_header({"block", "regs/thread", "shared/block", "blocks/SM",
                    "occupancy", "limiter"});
  const struct {
    std::size_t block, regs, shared;
  } kernels[] = {
      {256, 0, 0},        {32, 0, 0},         {256, 64, 0},
      {512, 64, 0},       {256, 0, 48 << 10}, {128, 32, 12 << 10},
  };
  for (const auto& kernel : kernels) {
    const auto result = occupancy(SmConfig{}, kernel.block, kernel.regs, kernel.shared);
    table.add_row({std::to_string(kernel.block), std::to_string(kernel.regs),
                   std::to_string(kernel.shared),
                   std::to_string(result.blocks_per_sm),
                   TextTable::num(result.occupancy, 2),
                   to_string(result.limiter)});
  }
  table.render(std::cout);
  report.add_table(table);
}

}  // namespace

int main() {
  std::cout << "=== CS-LAU: manycore/SIMT course labs (simulated device) ===\n\n";
  coalescing_experiment();
  std::cout << '\n';
  divergence_experiment();
  std::cout << '\n';
  matmul_experiment();
  std::cout << '\n';
  streams_experiment();
  std::cout << '\n';
  atomics_experiment();
  std::cout << '\n';
  occupancy_experiment();
  report.write_if_requested();
  return 0;
}
