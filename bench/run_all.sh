#!/usr/bin/env bash
# Runs every bench binary and harvests one JSON result file per bench.
#
#   bench/run_all.sh [build-dir] [out-dir]
#
# google-benchmark binaries emit --benchmark_format=json natively; the
# table-printing runners honour PDCKIT_BENCH_JSON (see
# src/obs/bench_report.hpp). Either way <out-dir>/<bench>.json appears,
# and the human-readable table/console output still goes to stdout.
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-bench_results}
bench_dir="$build_dir/bench"

if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found (configure+build first)" >&2
  exit 1
fi
mkdir -p "$out_dir"

# Binaries linked against google-benchmark's main; everything else uses
# the BenchReport env-var protocol.
gbench="lab_lau_multicore perf_collectives perf_locks"

is_gbench() {
  local name
  for name in $gbench; do
    [[ "$name" == "$1" ]] && return 0
  done
  return 1
}

failures=0
for bin in "$bench_dir"/*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name=$(basename "$bin")
  echo "=== $name ==="
  if is_gbench "$name"; then
    if ! "$bin" --benchmark_format=console \
        --benchmark_out="$out_dir/$name.json" \
        --benchmark_out_format=json; then
      echo "FAILED: $name" >&2
      failures=$((failures + 1))
    fi
  else
    if ! PDCKIT_BENCH_JSON="$out_dir/$name.json" "$bin"; then
      echo "FAILED: $name" >&2
      failures=$((failures + 1))
    fi
  fi
  echo
done

echo "results in $out_dir/:"
ls -1 "$out_dir"
exit "$failures"
