# Empty dependencies file for fig2_topics_by_programs.
# This may be replaced when dependencies are built.
