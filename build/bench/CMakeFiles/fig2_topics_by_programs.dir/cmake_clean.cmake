file(REMOVE_RECURSE
  "CMakeFiles/fig2_topics_by_programs.dir/fig2_topics_by_programs.cpp.o"
  "CMakeFiles/fig2_topics_by_programs.dir/fig2_topics_by_programs.cpp.o.d"
  "fig2_topics_by_programs"
  "fig2_topics_by_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_topics_by_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
