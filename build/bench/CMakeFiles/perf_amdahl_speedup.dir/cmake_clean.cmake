file(REMOVE_RECURSE
  "CMakeFiles/perf_amdahl_speedup.dir/perf_amdahl_speedup.cpp.o"
  "CMakeFiles/perf_amdahl_speedup.dir/perf_amdahl_speedup.cpp.o.d"
  "perf_amdahl_speedup"
  "perf_amdahl_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_amdahl_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
