# Empty compiler generated dependencies file for perf_amdahl_speedup.
# This may be replaced when dependencies are built.
