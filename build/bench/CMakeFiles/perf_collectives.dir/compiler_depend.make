# Empty compiler generated dependencies file for perf_collectives.
# This may be replaced when dependencies are built.
