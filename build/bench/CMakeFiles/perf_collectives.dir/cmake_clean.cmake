file(REMOVE_RECURSE
  "CMakeFiles/perf_collectives.dir/perf_collectives.cpp.o"
  "CMakeFiles/perf_collectives.dir/perf_collectives.cpp.o.d"
  "perf_collectives"
  "perf_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
