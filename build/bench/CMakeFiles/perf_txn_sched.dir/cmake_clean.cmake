file(REMOVE_RECURSE
  "CMakeFiles/perf_txn_sched.dir/perf_txn_sched.cpp.o"
  "CMakeFiles/perf_txn_sched.dir/perf_txn_sched.cpp.o.d"
  "perf_txn_sched"
  "perf_txn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_txn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
