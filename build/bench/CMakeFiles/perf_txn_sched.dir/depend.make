# Empty dependencies file for perf_txn_sched.
# This may be replaced when dependencies are built.
