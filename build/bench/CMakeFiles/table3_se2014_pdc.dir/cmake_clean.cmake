file(REMOVE_RECURSE
  "CMakeFiles/table3_se2014_pdc.dir/table3_se2014_pdc.cpp.o"
  "CMakeFiles/table3_se2014_pdc.dir/table3_se2014_pdc.cpp.o.d"
  "table3_se2014_pdc"
  "table3_se2014_pdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_se2014_pdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
