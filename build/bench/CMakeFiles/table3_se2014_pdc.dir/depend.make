# Empty dependencies file for table3_se2014_pdc.
# This may be replaced when dependencies are built.
