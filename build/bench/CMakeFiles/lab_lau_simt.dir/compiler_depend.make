# Empty compiler generated dependencies file for lab_lau_simt.
# This may be replaced when dependencies are built.
