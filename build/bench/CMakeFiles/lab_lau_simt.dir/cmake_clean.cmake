file(REMOVE_RECURSE
  "CMakeFiles/lab_lau_simt.dir/lab_lau_simt.cpp.o"
  "CMakeFiles/lab_lau_simt.dir/lab_lau_simt.cpp.o.d"
  "lab_lau_simt"
  "lab_lau_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_lau_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
