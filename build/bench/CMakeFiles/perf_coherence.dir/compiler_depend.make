# Empty compiler generated dependencies file for perf_coherence.
# This may be replaced when dependencies are built.
