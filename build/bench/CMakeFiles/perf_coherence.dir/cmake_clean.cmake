file(REMOVE_RECURSE
  "CMakeFiles/perf_coherence.dir/perf_coherence.cpp.o"
  "CMakeFiles/perf_coherence.dir/perf_coherence.cpp.o.d"
  "perf_coherence"
  "perf_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
