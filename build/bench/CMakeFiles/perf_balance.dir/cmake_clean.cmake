file(REMOVE_RECURSE
  "CMakeFiles/perf_balance.dir/perf_balance.cpp.o"
  "CMakeFiles/perf_balance.dir/perf_balance.cpp.o.d"
  "perf_balance"
  "perf_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
