# Empty dependencies file for perf_balance.
# This may be replaced when dependencies are built.
