# Empty dependencies file for lab_auc_tomasulo.
# This may be replaced when dependencies are built.
