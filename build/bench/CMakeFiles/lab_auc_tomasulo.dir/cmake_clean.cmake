file(REMOVE_RECURSE
  "CMakeFiles/lab_auc_tomasulo.dir/lab_auc_tomasulo.cpp.o"
  "CMakeFiles/lab_auc_tomasulo.dir/lab_auc_tomasulo.cpp.o.d"
  "lab_auc_tomasulo"
  "lab_auc_tomasulo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_auc_tomasulo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
