# Empty dependencies file for lab_rit_arq.
# This may be replaced when dependencies are built.
