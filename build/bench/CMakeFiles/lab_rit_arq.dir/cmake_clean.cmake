file(REMOVE_RECURSE
  "CMakeFiles/lab_rit_arq.dir/lab_rit_arq.cpp.o"
  "CMakeFiles/lab_rit_arq.dir/lab_rit_arq.cpp.o.d"
  "lab_rit_arq"
  "lab_rit_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_rit_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
