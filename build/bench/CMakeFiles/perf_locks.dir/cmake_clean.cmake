file(REMOVE_RECURSE
  "CMakeFiles/perf_locks.dir/perf_locks.cpp.o"
  "CMakeFiles/perf_locks.dir/perf_locks.cpp.o.d"
  "perf_locks"
  "perf_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
