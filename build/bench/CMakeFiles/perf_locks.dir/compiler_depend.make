# Empty compiler generated dependencies file for perf_locks.
# This may be replaced when dependencies are built.
