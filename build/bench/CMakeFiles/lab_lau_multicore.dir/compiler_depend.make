# Empty compiler generated dependencies file for lab_lau_multicore.
# This may be replaced when dependencies are built.
