file(REMOVE_RECURSE
  "CMakeFiles/lab_lau_multicore.dir/lab_lau_multicore.cpp.o"
  "CMakeFiles/lab_lau_multicore.dir/lab_lau_multicore.cpp.o.d"
  "lab_lau_multicore"
  "lab_lau_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_lau_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
