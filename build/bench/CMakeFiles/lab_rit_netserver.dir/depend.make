# Empty dependencies file for lab_rit_netserver.
# This may be replaced when dependencies are built.
