file(REMOVE_RECURSE
  "CMakeFiles/lab_rit_netserver.dir/lab_rit_netserver.cpp.o"
  "CMakeFiles/lab_rit_netserver.dir/lab_rit_netserver.cpp.o.d"
  "lab_rit_netserver"
  "lab_rit_netserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_rit_netserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
