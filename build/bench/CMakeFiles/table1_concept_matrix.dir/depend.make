# Empty dependencies file for table1_concept_matrix.
# This may be replaced when dependencies are built.
