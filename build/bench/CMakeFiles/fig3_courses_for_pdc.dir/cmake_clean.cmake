file(REMOVE_RECURSE
  "CMakeFiles/fig3_courses_for_pdc.dir/fig3_courses_for_pdc.cpp.o"
  "CMakeFiles/fig3_courses_for_pdc.dir/fig3_courses_for_pdc.cpp.o.d"
  "fig3_courses_for_pdc"
  "fig3_courses_for_pdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_courses_for_pdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
