# Empty compiler generated dependencies file for fig3_courses_for_pdc.
# This may be replaced when dependencies are built.
