# Empty dependencies file for table2_ce2016_pdc.
# This may be replaced when dependencies are built.
