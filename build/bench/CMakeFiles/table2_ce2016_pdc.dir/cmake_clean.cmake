file(REMOVE_RECURSE
  "CMakeFiles/table2_ce2016_pdc.dir/table2_ce2016_pdc.cpp.o"
  "CMakeFiles/table2_ce2016_pdc.dir/table2_ce2016_pdc.cpp.o.d"
  "table2_ce2016_pdc"
  "table2_ce2016_pdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ce2016_pdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
