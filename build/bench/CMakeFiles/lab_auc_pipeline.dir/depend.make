# Empty dependencies file for lab_auc_pipeline.
# This may be replaced when dependencies are built.
