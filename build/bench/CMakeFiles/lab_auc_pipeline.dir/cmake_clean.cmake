file(REMOVE_RECURSE
  "CMakeFiles/lab_auc_pipeline.dir/lab_auc_pipeline.cpp.o"
  "CMakeFiles/lab_auc_pipeline.dir/lab_auc_pipeline.cpp.o.d"
  "lab_auc_pipeline"
  "lab_auc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_auc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
