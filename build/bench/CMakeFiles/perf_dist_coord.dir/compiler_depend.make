# Empty compiler generated dependencies file for perf_dist_coord.
# This may be replaced when dependencies are built.
