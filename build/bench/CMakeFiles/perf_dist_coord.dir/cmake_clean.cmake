file(REMOVE_RECURSE
  "CMakeFiles/perf_dist_coord.dir/perf_dist_coord.cpp.o"
  "CMakeFiles/perf_dist_coord.dir/perf_dist_coord.cpp.o.d"
  "perf_dist_coord"
  "perf_dist_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_dist_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
