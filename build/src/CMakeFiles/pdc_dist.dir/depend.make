# Empty dependencies file for pdc_dist.
# This may be replaced when dependencies are built.
