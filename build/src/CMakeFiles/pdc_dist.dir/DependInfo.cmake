
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/balance.cpp" "src/CMakeFiles/pdc_dist.dir/dist/balance.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/balance.cpp.o.d"
  "/root/repo/src/dist/causal.cpp" "src/CMakeFiles/pdc_dist.dir/dist/causal.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/causal.cpp.o.d"
  "/root/repo/src/dist/clock_sync.cpp" "src/CMakeFiles/pdc_dist.dir/dist/clock_sync.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/clock_sync.cpp.o.d"
  "/root/repo/src/dist/clocks.cpp" "src/CMakeFiles/pdc_dist.dir/dist/clocks.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/clocks.cpp.o.d"
  "/root/repo/src/dist/deadlock.cpp" "src/CMakeFiles/pdc_dist.dir/dist/deadlock.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/deadlock.cpp.o.d"
  "/root/repo/src/dist/election.cpp" "src/CMakeFiles/pdc_dist.dir/dist/election.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/election.cpp.o.d"
  "/root/repo/src/dist/mutex.cpp" "src/CMakeFiles/pdc_dist.dir/dist/mutex.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/mutex.cpp.o.d"
  "/root/repo/src/dist/snapshot.cpp" "src/CMakeFiles/pdc_dist.dir/dist/snapshot.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/snapshot.cpp.o.d"
  "/root/repo/src/dist/two_phase_commit.cpp" "src/CMakeFiles/pdc_dist.dir/dist/two_phase_commit.cpp.o" "gcc" "src/CMakeFiles/pdc_dist.dir/dist/two_phase_commit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
