file(REMOVE_RECURSE
  "libpdc_dist.a"
)
