file(REMOVE_RECURSE
  "CMakeFiles/pdc_dist.dir/dist/balance.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/balance.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/causal.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/causal.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/clock_sync.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/clock_sync.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/clocks.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/clocks.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/deadlock.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/deadlock.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/election.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/election.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/mutex.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/mutex.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/snapshot.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/snapshot.cpp.o.d"
  "CMakeFiles/pdc_dist.dir/dist/two_phase_commit.cpp.o"
  "CMakeFiles/pdc_dist.dir/dist/two_phase_commit.cpp.o.d"
  "libpdc_dist.a"
  "libpdc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
