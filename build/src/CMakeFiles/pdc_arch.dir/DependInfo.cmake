
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cache.cpp" "src/CMakeFiles/pdc_arch.dir/arch/cache.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/cache.cpp.o.d"
  "/root/repo/src/arch/flynn.cpp" "src/CMakeFiles/pdc_arch.dir/arch/flynn.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/flynn.cpp.o.d"
  "/root/repo/src/arch/mesi.cpp" "src/CMakeFiles/pdc_arch.dir/arch/mesi.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/mesi.cpp.o.d"
  "/root/repo/src/arch/models.cpp" "src/CMakeFiles/pdc_arch.dir/arch/models.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/models.cpp.o.d"
  "/root/repo/src/arch/pipeline.cpp" "src/CMakeFiles/pdc_arch.dir/arch/pipeline.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/pipeline.cpp.o.d"
  "/root/repo/src/arch/tomasulo.cpp" "src/CMakeFiles/pdc_arch.dir/arch/tomasulo.cpp.o" "gcc" "src/CMakeFiles/pdc_arch.dir/arch/tomasulo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
