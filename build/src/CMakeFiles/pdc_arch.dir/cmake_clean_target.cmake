file(REMOVE_RECURSE
  "libpdc_arch.a"
)
