# Empty compiler generated dependencies file for pdc_arch.
# This may be replaced when dependencies are built.
