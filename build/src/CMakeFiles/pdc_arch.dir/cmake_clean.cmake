file(REMOVE_RECURSE
  "CMakeFiles/pdc_arch.dir/arch/cache.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/cache.cpp.o.d"
  "CMakeFiles/pdc_arch.dir/arch/flynn.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/flynn.cpp.o.d"
  "CMakeFiles/pdc_arch.dir/arch/mesi.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/mesi.cpp.o.d"
  "CMakeFiles/pdc_arch.dir/arch/models.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/models.cpp.o.d"
  "CMakeFiles/pdc_arch.dir/arch/pipeline.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/pipeline.cpp.o.d"
  "CMakeFiles/pdc_arch.dir/arch/tomasulo.cpp.o"
  "CMakeFiles/pdc_arch.dir/arch/tomasulo.cpp.o.d"
  "libpdc_arch.a"
  "libpdc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
