file(REMOVE_RECURSE
  "CMakeFiles/pdc_concurrency.dir/concurrency/lock_order.cpp.o"
  "CMakeFiles/pdc_concurrency.dir/concurrency/lock_order.cpp.o.d"
  "libpdc_concurrency.a"
  "libpdc_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
