# Empty compiler generated dependencies file for pdc_concurrency.
# This may be replaced when dependencies are built.
