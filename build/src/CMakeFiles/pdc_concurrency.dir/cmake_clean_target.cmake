file(REMOVE_RECURSE
  "libpdc_concurrency.a"
)
