# Empty compiler generated dependencies file for pdc_parallel.
# This may be replaced when dependencies are built.
