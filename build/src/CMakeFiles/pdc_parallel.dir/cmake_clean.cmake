file(REMOVE_RECURSE
  "CMakeFiles/pdc_parallel.dir/parallel/parallel_for.cpp.o"
  "CMakeFiles/pdc_parallel.dir/parallel/parallel_for.cpp.o.d"
  "CMakeFiles/pdc_parallel.dir/parallel/task_graph.cpp.o"
  "CMakeFiles/pdc_parallel.dir/parallel/task_graph.cpp.o.d"
  "CMakeFiles/pdc_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/pdc_parallel.dir/parallel/thread_pool.cpp.o.d"
  "CMakeFiles/pdc_parallel.dir/parallel/work_stealing.cpp.o"
  "CMakeFiles/pdc_parallel.dir/parallel/work_stealing.cpp.o.d"
  "libpdc_parallel.a"
  "libpdc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
