
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/parallel_for.cpp" "src/CMakeFiles/pdc_parallel.dir/parallel/parallel_for.cpp.o" "gcc" "src/CMakeFiles/pdc_parallel.dir/parallel/parallel_for.cpp.o.d"
  "/root/repo/src/parallel/task_graph.cpp" "src/CMakeFiles/pdc_parallel.dir/parallel/task_graph.cpp.o" "gcc" "src/CMakeFiles/pdc_parallel.dir/parallel/task_graph.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/pdc_parallel.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pdc_parallel.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/work_stealing.cpp" "src/CMakeFiles/pdc_parallel.dir/parallel/work_stealing.cpp.o" "gcc" "src/CMakeFiles/pdc_parallel.dir/parallel/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
