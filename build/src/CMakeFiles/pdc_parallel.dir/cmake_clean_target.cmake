file(REMOVE_RECURSE
  "libpdc_parallel.a"
)
