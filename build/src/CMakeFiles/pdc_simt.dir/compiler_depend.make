# Empty compiler generated dependencies file for pdc_simt.
# This may be replaced when dependencies are built.
