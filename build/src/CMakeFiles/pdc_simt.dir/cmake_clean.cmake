file(REMOVE_RECURSE
  "CMakeFiles/pdc_simt.dir/simt/device.cpp.o"
  "CMakeFiles/pdc_simt.dir/simt/device.cpp.o.d"
  "CMakeFiles/pdc_simt.dir/simt/fiber.cpp.o"
  "CMakeFiles/pdc_simt.dir/simt/fiber.cpp.o.d"
  "CMakeFiles/pdc_simt.dir/simt/occupancy.cpp.o"
  "CMakeFiles/pdc_simt.dir/simt/occupancy.cpp.o.d"
  "CMakeFiles/pdc_simt.dir/simt/stream.cpp.o"
  "CMakeFiles/pdc_simt.dir/simt/stream.cpp.o.d"
  "libpdc_simt.a"
  "libpdc_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
