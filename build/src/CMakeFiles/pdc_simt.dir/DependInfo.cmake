
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/device.cpp" "src/CMakeFiles/pdc_simt.dir/simt/device.cpp.o" "gcc" "src/CMakeFiles/pdc_simt.dir/simt/device.cpp.o.d"
  "/root/repo/src/simt/fiber.cpp" "src/CMakeFiles/pdc_simt.dir/simt/fiber.cpp.o" "gcc" "src/CMakeFiles/pdc_simt.dir/simt/fiber.cpp.o.d"
  "/root/repo/src/simt/occupancy.cpp" "src/CMakeFiles/pdc_simt.dir/simt/occupancy.cpp.o" "gcc" "src/CMakeFiles/pdc_simt.dir/simt/occupancy.cpp.o.d"
  "/root/repo/src/simt/stream.cpp" "src/CMakeFiles/pdc_simt.dir/simt/stream.cpp.o" "gcc" "src/CMakeFiles/pdc_simt.dir/simt/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
