file(REMOVE_RECURSE
  "libpdc_simt.a"
)
