
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/comm.cpp" "src/CMakeFiles/pdc_mp.dir/mp/comm.cpp.o" "gcc" "src/CMakeFiles/pdc_mp.dir/mp/comm.cpp.o.d"
  "/root/repo/src/mp/mailbox.cpp" "src/CMakeFiles/pdc_mp.dir/mp/mailbox.cpp.o" "gcc" "src/CMakeFiles/pdc_mp.dir/mp/mailbox.cpp.o.d"
  "/root/repo/src/mp/world.cpp" "src/CMakeFiles/pdc_mp.dir/mp/world.cpp.o" "gcc" "src/CMakeFiles/pdc_mp.dir/mp/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
