file(REMOVE_RECURSE
  "CMakeFiles/pdc_mp.dir/mp/comm.cpp.o"
  "CMakeFiles/pdc_mp.dir/mp/comm.cpp.o.d"
  "CMakeFiles/pdc_mp.dir/mp/mailbox.cpp.o"
  "CMakeFiles/pdc_mp.dir/mp/mailbox.cpp.o.d"
  "CMakeFiles/pdc_mp.dir/mp/world.cpp.o"
  "CMakeFiles/pdc_mp.dir/mp/world.cpp.o.d"
  "libpdc_mp.a"
  "libpdc_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
