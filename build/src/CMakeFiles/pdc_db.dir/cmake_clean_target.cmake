file(REMOVE_RECURSE
  "libpdc_db.a"
)
