file(REMOVE_RECURSE
  "CMakeFiles/pdc_db.dir/db/lock_manager.cpp.o"
  "CMakeFiles/pdc_db.dir/db/lock_manager.cpp.o.d"
  "CMakeFiles/pdc_db.dir/db/recovery.cpp.o"
  "CMakeFiles/pdc_db.dir/db/recovery.cpp.o.d"
  "CMakeFiles/pdc_db.dir/db/serializability.cpp.o"
  "CMakeFiles/pdc_db.dir/db/serializability.cpp.o.d"
  "CMakeFiles/pdc_db.dir/db/timestamp.cpp.o"
  "CMakeFiles/pdc_db.dir/db/timestamp.cpp.o.d"
  "CMakeFiles/pdc_db.dir/db/transaction.cpp.o"
  "CMakeFiles/pdc_db.dir/db/transaction.cpp.o.d"
  "CMakeFiles/pdc_db.dir/db/workload.cpp.o"
  "CMakeFiles/pdc_db.dir/db/workload.cpp.o.d"
  "libpdc_db.a"
  "libpdc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
