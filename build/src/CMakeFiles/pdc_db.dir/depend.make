# Empty dependencies file for pdc_db.
# This may be replaced when dependencies are built.
