
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/lock_manager.cpp" "src/CMakeFiles/pdc_db.dir/db/lock_manager.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/lock_manager.cpp.o.d"
  "/root/repo/src/db/recovery.cpp" "src/CMakeFiles/pdc_db.dir/db/recovery.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/recovery.cpp.o.d"
  "/root/repo/src/db/serializability.cpp" "src/CMakeFiles/pdc_db.dir/db/serializability.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/serializability.cpp.o.d"
  "/root/repo/src/db/timestamp.cpp" "src/CMakeFiles/pdc_db.dir/db/timestamp.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/timestamp.cpp.o.d"
  "/root/repo/src/db/transaction.cpp" "src/CMakeFiles/pdc_db.dir/db/transaction.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/transaction.cpp.o.d"
  "/root/repo/src/db/workload.cpp" "src/CMakeFiles/pdc_db.dir/db/workload.cpp.o" "gcc" "src/CMakeFiles/pdc_db.dir/db/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
