file(REMOVE_RECURSE
  "CMakeFiles/pdc_net.dir/net/arq.cpp.o"
  "CMakeFiles/pdc_net.dir/net/arq.cpp.o.d"
  "CMakeFiles/pdc_net.dir/net/checksum.cpp.o"
  "CMakeFiles/pdc_net.dir/net/checksum.cpp.o.d"
  "CMakeFiles/pdc_net.dir/net/framing.cpp.o"
  "CMakeFiles/pdc_net.dir/net/framing.cpp.o.d"
  "CMakeFiles/pdc_net.dir/net/network.cpp.o"
  "CMakeFiles/pdc_net.dir/net/network.cpp.o.d"
  "CMakeFiles/pdc_net.dir/net/server.cpp.o"
  "CMakeFiles/pdc_net.dir/net/server.cpp.o.d"
  "libpdc_net.a"
  "libpdc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
