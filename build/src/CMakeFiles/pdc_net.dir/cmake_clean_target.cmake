file(REMOVE_RECURSE
  "libpdc_net.a"
)
