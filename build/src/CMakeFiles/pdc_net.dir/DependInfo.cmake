
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arq.cpp" "src/CMakeFiles/pdc_net.dir/net/arq.cpp.o" "gcc" "src/CMakeFiles/pdc_net.dir/net/arq.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/pdc_net.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/pdc_net.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/CMakeFiles/pdc_net.dir/net/framing.cpp.o" "gcc" "src/CMakeFiles/pdc_net.dir/net/framing.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/pdc_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/pdc_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/server.cpp" "src/CMakeFiles/pdc_net.dir/net/server.cpp.o" "gcc" "src/CMakeFiles/pdc_net.dir/net/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
