
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bok.cpp" "src/CMakeFiles/pdc_core.dir/core/bok.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/bok.cpp.o.d"
  "/root/repo/src/core/case_studies.cpp" "src/CMakeFiles/pdc_core.dir/core/case_studies.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/case_studies.cpp.o.d"
  "/root/repo/src/core/competencies.cpp" "src/CMakeFiles/pdc_core.dir/core/competencies.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/competencies.cpp.o.d"
  "/root/repo/src/core/curriculum.cpp" "src/CMakeFiles/pdc_core.dir/core/curriculum.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/curriculum.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/pdc_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/survey.cpp" "src/CMakeFiles/pdc_core.dir/core/survey.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/survey.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/CMakeFiles/pdc_core.dir/core/taxonomy.cpp.o" "gcc" "src/CMakeFiles/pdc_core.dir/core/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
