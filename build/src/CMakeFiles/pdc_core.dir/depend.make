# Empty dependencies file for pdc_core.
# This may be replaced when dependencies are built.
