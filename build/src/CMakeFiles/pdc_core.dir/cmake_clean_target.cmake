file(REMOVE_RECURSE
  "libpdc_core.a"
)
