file(REMOVE_RECURSE
  "CMakeFiles/pdc_core.dir/core/bok.cpp.o"
  "CMakeFiles/pdc_core.dir/core/bok.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/case_studies.cpp.o"
  "CMakeFiles/pdc_core.dir/core/case_studies.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/competencies.cpp.o"
  "CMakeFiles/pdc_core.dir/core/competencies.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/curriculum.cpp.o"
  "CMakeFiles/pdc_core.dir/core/curriculum.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/registry.cpp.o"
  "CMakeFiles/pdc_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/survey.cpp.o"
  "CMakeFiles/pdc_core.dir/core/survey.cpp.o.d"
  "CMakeFiles/pdc_core.dir/core/taxonomy.cpp.o"
  "CMakeFiles/pdc_core.dir/core/taxonomy.cpp.o.d"
  "libpdc_core.a"
  "libpdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
