file(REMOVE_RECURSE
  "CMakeFiles/pdc_support.dir/support/rng.cpp.o"
  "CMakeFiles/pdc_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/pdc_support.dir/support/stats.cpp.o"
  "CMakeFiles/pdc_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/pdc_support.dir/support/status.cpp.o"
  "CMakeFiles/pdc_support.dir/support/status.cpp.o.d"
  "CMakeFiles/pdc_support.dir/support/table.cpp.o"
  "CMakeFiles/pdc_support.dir/support/table.cpp.o.d"
  "libpdc_support.a"
  "libpdc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
