file(REMOVE_RECURSE
  "libpdc_support.a"
)
