# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[support_test]=] "/root/repo/build/tests/support_test")
set_tests_properties([=[support_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;1;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[concurrency_test]=] "/root/repo/build/tests/concurrency_test")
set_tests_properties([=[concurrency_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;2;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[parallel_test]=] "/root/repo/build/tests/parallel_test")
set_tests_properties([=[parallel_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;3;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mp_test]=] "/root/repo/build/tests/mp_test")
set_tests_properties([=[mp_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;4;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[simt_test]=] "/root/repo/build/tests/simt_test")
set_tests_properties([=[simt_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;5;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[arch_test]=] "/root/repo/build/tests/arch_test")
set_tests_properties([=[arch_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;6;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[net_test]=] "/root/repo/build/tests/net_test")
set_tests_properties([=[net_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;7;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[dist_test]=] "/root/repo/build/tests/dist_test")
set_tests_properties([=[dist_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;8;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[db_test]=] "/root/repo/build/tests/db_test")
set_tests_properties([=[db_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;9;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_test]=] "/root/repo/build/tests/core_test")
set_tests_properties([=[core_test]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;10;pdckit_add_test;/root/repo/tests/CMakeLists.txt;0;")
