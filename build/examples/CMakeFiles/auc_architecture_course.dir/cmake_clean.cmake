file(REMOVE_RECURSE
  "CMakeFiles/auc_architecture_course.dir/auc_architecture_course.cpp.o"
  "CMakeFiles/auc_architecture_course.dir/auc_architecture_course.cpp.o.d"
  "auc_architecture_course"
  "auc_architecture_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auc_architecture_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
