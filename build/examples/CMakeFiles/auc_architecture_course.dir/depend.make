# Empty dependencies file for auc_architecture_course.
# This may be replaced when dependencies are built.
