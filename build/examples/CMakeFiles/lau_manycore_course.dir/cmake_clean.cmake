file(REMOVE_RECURSE
  "CMakeFiles/lau_manycore_course.dir/lau_manycore_course.cpp.o"
  "CMakeFiles/lau_manycore_course.dir/lau_manycore_course.cpp.o.d"
  "lau_manycore_course"
  "lau_manycore_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lau_manycore_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
