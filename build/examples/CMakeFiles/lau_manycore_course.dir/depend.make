# Empty dependencies file for lau_manycore_course.
# This may be replaced when dependencies are built.
