file(REMOVE_RECURSE
  "CMakeFiles/rit_breadth_course.dir/rit_breadth_course.cpp.o"
  "CMakeFiles/rit_breadth_course.dir/rit_breadth_course.cpp.o.d"
  "rit_breadth_course"
  "rit_breadth_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rit_breadth_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
