
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rit_breadth_course.cpp" "examples/CMakeFiles/rit_breadth_course.dir/rit_breadth_course.cpp.o" "gcc" "examples/CMakeFiles/rit_breadth_course.dir/rit_breadth_course.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
