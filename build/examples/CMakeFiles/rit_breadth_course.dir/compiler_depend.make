# Empty compiler generated dependencies file for rit_breadth_course.
# This may be replaced when dependencies are built.
