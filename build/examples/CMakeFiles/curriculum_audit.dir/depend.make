# Empty dependencies file for curriculum_audit.
# This may be replaced when dependencies are built.
