file(REMOVE_RECURSE
  "CMakeFiles/curriculum_audit.dir/curriculum_audit.cpp.o"
  "CMakeFiles/curriculum_audit.dir/curriculum_audit.cpp.o.d"
  "curriculum_audit"
  "curriculum_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curriculum_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
