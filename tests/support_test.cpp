// Unit tests for pdc::support: RNG determinism and distribution sanity,
// status/result semantics, table rendering, summary statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using namespace pdc::support;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMeanApproximatesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  // The split stream must not replay the parent.
  int same = 0;
  Rng a2(99);
  a2.next_u64();  // advance past the split draw
  for (int i = 0; i < 100; ++i) same += (b.next_u64() == a2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(17);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(Zipf, SkewPrefersLowRanks) {
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[9] * 2);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(Zipf, AllRanksReachableInBounds) {
  Rng rng(19);
  ZipfDistribution zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) {
    const auto r = zipf(rng);
    EXPECT_LT(r, 5u);
  }
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{StatusCode::kTimeout, "deadline passed"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "timeout: deadline passed");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status{StatusCode::kNotFound, "missing"};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnFailureThrowsCheckFailure) {
  Result<int> r = Status{StatusCode::kClosed, ""};
  EXPECT_THROW((void)r.value(), CheckFailure);
}

TEST(Check, FiresWithMessage) {
  EXPECT_THROW(PDC_CHECK_MSG(false, "boom"), CheckFailure);
  EXPECT_NO_THROW(PDC_CHECK(true));
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t;
  t.set_header({"x", "y", "z"});
  t.add_row({"only"});
  std::ostringstream os;
  t.render(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable t;
  t.add_row({"a,b", "q\"q", "plain"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "\"a,b\",\"q\"\"q\",plain\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Summary, WelfordMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, EdgesAreLinear) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.edge(4), 8.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  // Monotonic.
  EXPECT_GE(sw.elapsed_seconds(), t0);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

}  // namespace
