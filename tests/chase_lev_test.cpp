// Unit tests for the lock-free scheduler primitives: ChaseLevDeque
// ordering/growth/race behavior, the TaskSlab node pool, and the spin →
// yield → park Backoff ladder's observable contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "concurrency/backoff.hpp"
#include "parallel/chase_lev.hpp"
#include "parallel/task_slab.hpp"

namespace {

using pdc::parallel::ChaseLevDeque;
using pdc::parallel::StealResult;

TEST(ChaseLevDeque, OwnerPopsLifo) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 8; ++i) deque.push(i);
  EXPECT_EQ(deque.size_estimate(), 8u);
  for (int expect = 8; expect >= 1; --expect) {
    int got = 0;
    ASSERT_TRUE(deque.pop(got));
    EXPECT_EQ(got, expect);
  }
  int got = 0;
  EXPECT_FALSE(deque.pop(got));
}

TEST(ChaseLevDeque, StealTakesFifoFromTheTop) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 4; ++i) deque.push(i);
  int got = 0;
  ASSERT_EQ(deque.steal(got), StealResult::kStolen);
  EXPECT_EQ(got, 1);  // oldest element — the largest pending subtree
  ASSERT_EQ(deque.steal(got), StealResult::kStolen);
  EXPECT_EQ(got, 2);
  ASSERT_TRUE(deque.pop(got));
  EXPECT_EQ(got, 4);  // owner still sees LIFO at the bottom
}

TEST(ChaseLevDeque, StealOnEmptyReportsEmptyNotLost) {
  ChaseLevDeque<int> deque;
  int got = 0;
  EXPECT_EQ(deque.steal(got), StealResult::kEmpty);
  deque.push(7);
  ASSERT_TRUE(deque.pop(got));
  EXPECT_EQ(deque.steal(got), StealResult::kEmpty);
}

TEST(ChaseLevDeque, StealBatchLeavesHalfTheBacklog) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 10; ++i) deque.push(i);
  int out[8] = {};
  StealResult last = StealResult::kLost;
  // Budget is min(max, ceil(backlog / 2)): 10 queued -> 5 claimed, FIFO.
  const std::size_t got = deque.steal_batch(out, 8, &last);
  ASSERT_EQ(got, 5u);
  EXPECT_EQ(last, StealResult::kStolen);  // stopped on exhausted budget
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(deque.size_estimate(), 5u);
}

TEST(ChaseLevDeque, StealBatchHonorsCallerMax) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 100; ++i) deque.push(i);
  int out[4] = {};
  EXPECT_EQ(deque.steal_batch(out, 4), 4u);
  EXPECT_EQ(deque.size_estimate(), 96u);
}

TEST(ChaseLevDeque, StealBatchOnEmptyAndSingleton) {
  ChaseLevDeque<int> deque;
  int out[8] = {};
  StealResult last = StealResult::kStolen;
  EXPECT_EQ(deque.steal_batch(out, 8, &last), 0u);
  EXPECT_EQ(last, StealResult::kEmpty);
  // A singleton backlog is still worth one steal (the half-bound rounds
  // up, never to zero).
  deque.push(42);
  EXPECT_EQ(deque.steal_batch(out, 8, &last), 1u);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(last, StealResult::kEmpty);  // follow-up steal saw empty
}

TEST(ChaseLevDeque, StealBatchEveryElementClaimedExactlyOnce) {
  // Owner pushes and pops while thieves batch-steal: every element must be
  // claimed exactly once across all parties (the double-take a one-CAS
  // range claim would allow; see the steal_batch comment).
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque;
  std::vector<std::atomic<int>> claims(kItems);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int out[8];
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t got = deque.steal_batch(out, 8);
        for (std::size_t i = 0; i < got; ++i) ++claims[out[i]];
      }
    });
  }
  int popped = 0;
  for (int i = 0; i < kItems; ++i) {
    deque.push(i);
    if (i % 3 == 0) {
      int got = 0;
      if (deque.pop(got)) {
        ++claims[got];
        ++popped;
      }
    }
  }
  // Drain the remainder as the owner.
  for (int got = 0; deque.pop(got);) ++claims[got];
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  EXPECT_GT(popped, 0);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claims[i].load(), 1) << "element " << i;
  }
}

TEST(ChaseLevDeque, GrowthPreservesContentsAndRetiresBuffers) {
  ChaseLevDeque<int> deque(/*initial_capacity=*/2);
  const int n = 64;
  for (int i = 0; i < n; ++i) deque.push(i);
  EXPECT_GT(deque.retired_buffers(), 0u);  // epoch list holds old buffers
  EXPECT_GE(deque.capacity(), static_cast<std::size_t>(n));
  for (int expect = n - 1; expect >= 0; --expect) {
    int got = -1;
    ASSERT_TRUE(deque.pop(got));
    EXPECT_EQ(got, expect);
  }
}

// The classic last-element race: owner pop vs one thief, one element.
// Exactly one side must win, and the element must be claimed exactly once.
TEST(ChaseLevDeque, LastElementGoesToExactlyOneClaimant) {
  for (int round = 0; round < 200; ++round) {
    ChaseLevDeque<int> deque;
    deque.push(42);
    std::atomic<int> ready{0};
    int stolen = 0;
    bool thief_won = false;
    std::thread thief([&] {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }
      StealResult r;
      while ((r = deque.steal(stolen)) == StealResult::kLost) {
      }
      thief_won = (r == StealResult::kStolen);
    });
    ready.fetch_add(1);
    while (ready.load() < 2) {
    }
    int popped = 0;
    const bool owner_won = deque.pop(popped);
    thief.join();
    ASSERT_NE(owner_won, thief_won) << "round " << round;
    EXPECT_EQ(owner_won ? popped : stolen, 42);
  }
}

// Buffer growth racing concurrent steals: a thief holding a stale buffer
// pointer must still complete safely (epoch retirement), and every pushed
// element must be claimed exactly once across owner and thieves.
TEST(ChaseLevDeque, GrowthDuringConcurrentStealsLosesNothing) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque(/*initial_capacity=*/2);  // force many growths

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> stolen_sum{0};
  std::atomic<int> stolen_count{0};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int got = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(got) == StealResult::kStolen) {
          stolen_sum.fetch_add(got, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::int64_t popped_sum = 0;
  int popped_count = 0;
  for (int i = 1; i <= kItems; ++i) {
    deque.push(i);
    if (i % 7 == 0) {  // owner interleaves pops to exercise both ends
      int got = 0;
      if (deque.pop(got)) {
        popped_sum += got;
        ++popped_count;
      }
    }
  }
  int got = 0;
  while (deque.pop(got)) {
    popped_sum += got;
    ++popped_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_GT(deque.retired_buffers(), 0u);
  EXPECT_EQ(popped_count + stolen_count.load(), kItems);
  const std::int64_t expected_sum =
      static_cast<std::int64_t>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(popped_sum + stolen_sum.load(), expected_sum);
}

TEST(TaskSlab, ReusesNodesInSteadyState) {
  pdc::parallel::TaskSlab slab;
  auto* first = slab.acquire();
  pdc::parallel::TaskSlab::release(first, /*owner=*/true);
  const std::size_t after_warmup = slab.allocated_nodes();
  for (int i = 0; i < 1000; ++i) {
    auto* node = slab.acquire();
    pdc::parallel::TaskSlab::release(node, /*owner=*/true);
  }
  EXPECT_EQ(slab.allocated_nodes(), after_warmup);  // no growth when recycled
}

TEST(TaskSlab, RemoteReleaseFlowsBackToOwner) {
  pdc::parallel::TaskSlab slab;
  // Drain one full block so the owner freelist is empty.
  std::vector<pdc::parallel::TaskNode*> nodes;
  const std::size_t block = slab.allocated_nodes() + 64;
  while (slab.allocated_nodes() < block) nodes.push_back(slab.acquire());
  const std::size_t allocated = slab.allocated_nodes();
  std::thread thief([&] {
    for (auto* node : nodes) {
      pdc::parallel::TaskSlab::release(node, /*owner=*/false);
    }
  });
  thief.join();
  // Owner reclaims the remote-free stack instead of allocating a block.
  for (std::size_t i = 0; i < nodes.size(); ++i) slab.acquire();
  EXPECT_EQ(slab.allocated_nodes(), allocated);
}

TEST(Backoff, EscalatesSpinYieldThenPark) {
  pdc::concurrency::Backoff backoff(/*spin_limit=*/4, /*yield_limit=*/2);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(backoff.park_ready()) << "step " << i;
    backoff.step();
  }
  EXPECT_TRUE(backoff.park_ready());
  backoff.step();  // steps past the ladder stay park_ready
  EXPECT_TRUE(backoff.park_ready());
  backoff.reset();
  EXPECT_FALSE(backoff.park_ready());
}

}  // namespace
