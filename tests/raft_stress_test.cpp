// Raft / ReplicatedKV fault-matrix stress tier (ctest -L stress; registered
// only with PDCKIT_STRESS=ON).
//
// Sweeps FaultInjector configurations — drop x duplicate x reorder x
// partition x crash — over many seeds against a 3-rank ReplicatedKV
// cluster. Every run must satisfy two independent oracles:
//
//   1. testkit::LinearizabilityChecker over the recorded client history
//      (acknowledged ops took effect exactly once, reads never travel
//      backwards in time, timed-out ops may or may not have applied);
//   2. no committed-entry loss: after the run, every rank's durable log
//      (or snapshot coverage) contains its full committed prefix, and any
//      two ranks agree entry-for-entry up to the smaller commit index.
//
// The headline acceptance sweep runs crash+drop+reorder over 200 seeds.
// A final test re-arms the unsafe_early_commit teaching bug across a seed
// sweep and requires the checker to catch it with a replayable trace.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/raft.hpp"
#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "obs/obs.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/linearizability.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace {

using namespace pdc;
using dist::RaftPersistentState;
using mp::Communicator;
using mp::World;
using testkit::FaultConfig;
using testkit::FaultInjector;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

constexpr int kRanks = 3;

/// One cell of the fault matrix.
struct SweepConfig {
  const char* name;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  bool partition = false;  // leader isolates itself once, heals ~40ms later
  bool crash = false;      // leader destroys itself once, rejoins ~30ms later
  std::uint64_t snapshot_threshold = 0;  // exercise compaction under faults
};

/// Per-rank durable/volatile state captured at the end of a run, for the
/// committed-prefix oracle (commit_index itself is volatile, so the body
/// must export it before the scheduler tears the rank down).
struct RankEnd {
  std::uint64_t commit = 0;
};

const dist::RaftLogEntry* entry_at(const RaftPersistentState& st,
                                   std::uint64_t index) {
  if (index <= st.snapshot_index) return nullptr;  // compacted (snapshotted)
  const std::uint64_t offset = index - st.snapshot_index - 1;
  if (offset >= st.log.size()) return nullptr;
  return &st.log[offset];
}

/// No committed-entry loss: every rank can produce (log or snapshot) its
/// whole committed prefix, and committed prefixes agree pairwise.
std::string check_committed_prefix(
    const std::vector<RaftPersistentState>& storage,
    const std::array<RankEnd, kRanks>& ends) {
  for (int r = 0; r < kRanks; ++r) {
    const auto& st = storage[static_cast<std::size_t>(r)];
    for (std::uint64_t idx = st.snapshot_index + 1; idx <= ends[r].commit;
         ++idx) {
      if (entry_at(st, idx) == nullptr) {
        return "rank " + std::to_string(r) + " lost committed entry " +
               std::to_string(idx);
      }
    }
  }
  for (int r = 0; r < kRanks; ++r) {
    for (int s = r + 1; s < kRanks; ++s) {
      const std::uint64_t upto = std::min(ends[r].commit, ends[s].commit);
      for (std::uint64_t idx = 1; idx <= upto; ++idx) {
        const auto* er = entry_at(storage[static_cast<std::size_t>(r)], idx);
        const auto* es = entry_at(storage[static_cast<std::size_t>(s)], idx);
        if (er == nullptr || es == nullptr) continue;  // snapshot-covered
        if (er->term != es->term || er->command != es->command) {
          return "ranks " + std::to_string(r) + "/" + std::to_string(s) +
                 " diverge at committed entry " + std::to_string(idx);
        }
      }
    }
  }
  return {};
}

/// One seeded run of the contended-key workload under `f`. Returns "" on a
/// clean, linearizable, loss-free run; a failure description otherwise.
std::string run_kv_once(const SweepConfig& f, std::uint64_t seed) {
  struct Shared {
    std::atomic<bool> crash_claimed{false};
    std::atomic<bool> partition_claimed{false};
    std::atomic<int> heal_state{0};  // 0 intact, 1 partitioned, 2 healed
    std::atomic<long long> heal_at_us{0};
    std::atomic<int> done{0};
    std::array<RankEnd, kRanks> ends{};
  };
  auto shared = std::make_shared<Shared>();
  auto recorder = std::make_shared<testkit::HistoryRecorder>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);

  FaultConfig faults;
  faults.drop = f.drop;
  faults.duplicate = f.duplicate;
  faults.reorder = f.reorder;
  faults.seed = seed * 2 + 1;
  auto injector = std::make_shared<FaultInjector>(faults);

  World world(kRanks);
  world.set_fault_injector(injector);
  auto bodies = world.rank_bodies([shared, recorder, storage, injector,
                                   f, seed](Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 1000 + seed;
    cfg.raft.snapshot_threshold = f.snapshot_threshold;
    cfg.op_timeout_ms = 150.0;
    std::optional<dist::ReplicatedKV> kv(
        std::in_place, comm, (*storage)[static_cast<std::size_t>(rank)], cfg);
    kv->set_recorder(recorder.get());
    std::uint64_t issued = 0;

    auto maybe_crash = [&] {
      if (!f.crash || !kv->is_leader()) return;
      bool expected = false;
      if (!shared->crash_claimed.compare_exchange_strong(expected, true)) {
        return;
      }
      kv.reset();  // leader dies; volatile state gone, `storage` survives
      const double until = testkit::sim_now() + 0.03;
      while (testkit::sim_now() < until) {
        testkit::poll_pause("kv.crash", 1e-3);
      }
      auto rejoin = cfg;
      rejoin.base_seq = issued;  // don't reuse session sequence numbers
      kv.emplace(comm, (*storage)[static_cast<std::size_t>(rank)], rejoin);
      kv->set_recorder(recorder.get());
    };
    auto maybe_partition = [&] {
      if (!f.partition || !kv->is_leader()) return;
      bool expected = false;
      if (!shared->partition_claimed.compare_exchange_strong(expected, true)) {
        return;
      }
      std::vector<int> rest;
      for (int r = 0; r < kRanks; ++r) {
        if (r != rank) rest.push_back(r);
      }
      injector->partition({{rank}, rest});
      shared->heal_at_us =
          static_cast<long long>((testkit::sim_now() + 0.04) * 1e6);
      shared->heal_state = 1;
    };
    auto maybe_heal = [&] {
      if (shared->heal_state.load() != 1) return;
      if (static_cast<long long>(testkit::sim_now() * 1e6) <
          shared->heal_at_us.load()) {
        return;
      }
      int expected = 1;
      if (shared->heal_state.compare_exchange_strong(expected, 2)) {
        injector->heal();
      }
    };
    auto between_ops = [&] {
      maybe_partition();
      maybe_crash();
      maybe_heal();
    };

    // Contended workload: every rank hammers the same key, so the checker
    // has real overlap to disambiguate, and cas makes duplicate delivery
    // (without session dedup) observable.
    const std::string mine = "r" + std::to_string(rank);
    between_ops();
    (void)kv->put("k", mine + "a");
    ++issued;
    between_ops();
    const auto got = kv->get("k");
    ++issued;
    between_ops();
    if (got.ok()) {
      (void)kv->cas("k", got.value, mine + "b");
      ++issued;
      between_ops();
    }
    (void)kv->put("me:" + mine, mine);  // uncontended key: per-key checking
    ++issued;

    ++shared->done;
    while (shared->done.load() < kRanks ||
           shared->heal_state.load() == 1) {
      kv->step();
      maybe_crash();
      maybe_heal();
      testkit::poll_pause("kv.pump", 0.5e-3);
    }
    shared->ends[static_cast<std::size_t>(rank)].commit =
        kv->raft().commit_index();
  });

  SchedulerOptions options;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  if (!report.ok()) return "scheduler: " + report.error;

  const auto lin = testkit::LinearizabilityChecker{}.check(recorder->history());
  if (!lin.linearizable()) return lin.describe();
  return check_committed_prefix(*storage, shared->ends);
}

/// Runs `seeds` seeds of one config, recording per-config outcome counts
/// as labeled obs counters, and failing the test on the first bad run.
void sweep_config(const SweepConfig& f, std::uint64_t first_seed, int seeds) {
  int passed = 0;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const auto failure = run_kv_once(f, seed);
    if constexpr (obs::kObsEnabled) {
      obs::MetricsRegistry::instance()
          .counter("pdc.raft.sweep.runs",
                   {{"config", f.name},
                    {"outcome", failure.empty() ? "pass" : "fail"}})
          .inc();
    }
    ASSERT_EQ(failure, "") << "config " << f.name << " seed " << seed;
    ++passed;
  }
  EXPECT_EQ(passed, seeds);
}

// ------------------------------------------------------------ fault matrix

TEST(RaftStress, FaultMatrixSweepStaysLinearizable) {
  const SweepConfig matrix[] = {
      {.name = "clean"},
      {.name = "drop", .drop = 0.15},
      {.name = "drop+dup", .drop = 0.10, .duplicate = 0.10},
      {.name = "reorder", .reorder = 0.20},
      {.name = "drop+dup+reorder",
       .drop = 0.10,
       .duplicate = 0.05,
       .reorder = 0.10},
      {.name = "partition", .partition = true},
      {.name = "partition+drop", .drop = 0.08, .partition = true},
      {.name = "crash", .crash = true},
      {.name = "crash+snapshot", .crash = true, .snapshot_threshold = 6},
      {.name = "partition+crash", .partition = true, .crash = true},
  };
  std::uint64_t base = 100;
  for (const auto& config : matrix) {
    sweep_config(config, base, 12);
    base += 1000;
    if (HasFatalFailure()) return;
  }
}

// -------------------------------------------- headline 200-seed acceptance

TEST(RaftStress, CrashDropReorderSweep200SeedsStaysLinearizable) {
  const SweepConfig config{.name = "crash+drop+reorder",
                           .drop = 0.10,
                           .reorder = 0.08,
                           .crash = true,
                           .snapshot_threshold = 8};
  sweep_config(config, 20000, 200);
}

// -------------------------------------- broken variant caught under sweep

/// Compact rebuild of the unsafe_early_commit scenario (see raft_test.cpp):
/// the isolated leader acknowledges a put with no quorum; the majority's
/// replacement leader serves a read that misses it.
testkit::RunPlan make_unsafe_partition_plan(
    std::shared_ptr<testkit::HistoryRecorder> recorder) {
  struct Shared {
    std::atomic<int> first_leader{-1};
    std::atomic<int> second_leader{-1};
    std::atomic<bool> put_done{false};
    std::atomic<bool> healed{false};
    std::atomic<bool> read_done{false};
    std::atomic<int> done{0};
  };
  auto shared = std::make_shared<Shared>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);
  auto injector = std::make_shared<FaultInjector>(FaultConfig{});
  auto world = std::make_shared<World>(kRanks);
  world->set_fault_injector(injector);

  testkit::RunPlan plan;
  plan.threads = world->rank_bodies([shared, storage, injector, recorder,
                                     world](Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 4242;
    cfg.raft.unsafe_early_commit = true;
    cfg.op_timeout_ms = 60.0;
    dist::ReplicatedKV kv(comm, (*storage)[static_cast<std::size_t>(rank)],
                          cfg);
    kv.set_recorder(recorder.get());
    auto spin = [&] {
      kv.step();
      testkit::poll_pause("kv.pump", 0.5e-3);
    };
    while (shared->first_leader.load() == -1) {
      if (kv.is_leader()) shared->first_leader = rank;
      spin();
    }
    if (rank == shared->first_leader.load()) {
      std::vector<int> rest;
      for (int r = 0; r < kRanks; ++r) {
        if (r != rank) rest.push_back(r);
      }
      injector->partition({{rank}, rest});
      (void)kv.put("k", "lost");  // acked without a quorum — the bug
      shared->put_done = true;
      while (!shared->healed.load()) spin();
    } else {
      while (!shared->put_done.load()) spin();
      while (shared->second_leader.load() == -1) {
        if (kv.is_leader()) shared->second_leader = rank;
        spin();
      }
      if (rank == shared->second_leader.load()) {
        injector->heal();
        shared->healed = true;
        (void)kv.get("k");
        shared->read_done = true;
      }
    }
    bool counted = false;
    while (shared->done.load() < kRanks) {
      if (!counted && shared->read_done.load()) {
        ++shared->done;
        counted = true;
      }
      spin();
    }
  });
  plan.check = [recorder] {
    const auto report =
        testkit::LinearizabilityChecker{}.check(recorder->history());
    return report.linearizable() ? std::string{} : report.describe();
  };
  return plan;
}

TEST(RaftStress, UnsafeEarlyCommitCaughtAcrossSeedSweep) {
  testkit::ExplorerConfig config;
  config.iterations = 25;
  config.base_seed = 500;
  config.max_steps = 1u << 22;
  testkit::ScheduleExplorer explorer(config);
  auto make_run = [] {
    return make_unsafe_partition_plan(
        std::make_shared<testkit::HistoryRecorder>());
  };
  const auto result = explorer.explore(make_run);
  ASSERT_TRUE(result.failure_found);
  EXPECT_NE(result.failure.find("no linearization exists"), std::string::npos)
      << result.failure;
  std::string failure1;
  std::string failure2;
  const auto replay1 =
      explorer.replay(result.failing_seed, make_run, &failure1);
  const auto replay2 =
      explorer.replay(result.failing_seed, make_run, &failure2);
  EXPECT_EQ(failure1, failure2);
  EXPECT_FALSE(failure1.empty());
  EXPECT_EQ(replay1.format_minimal_trace(), replay2.format_minimal_trace());
}

}  // namespace
