// Tests for pdc::testkit: the deterministic scheduler, schedule
// exploration/replay, fault injection, and their integration with the
// concurrency / mp / net / dist layers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "concurrency/spinlock.hpp"
#include "dist/mutex.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "net/arq.hpp"
#include "net/network.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/hooks.hpp"
#include "testkit/linearizability.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace {

using namespace pdc;
using namespace pdc::testkit;
using pdc::support::StatusCode;

// ------------------------------------------------------------ SimScheduler

TEST(SimScheduler, RunsAllThreadsToCompletion) {
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRoundRobin;
  SimScheduler scheduler(options);
  std::atomic<int> ran{0};
  auto report = scheduler.run({
      [&] { ++ran; testkit::yield_point("a"); ++ran; },
      [&] { ++ran; testkit::yield_point("b"); ++ran; },
  });
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(ran.load(), 4);
  EXPECT_GT(report.steps, 0u);
}

TEST(SimScheduler, SameSeedSameTrace) {
  auto one_run = [](std::uint64_t seed) {
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    SimScheduler scheduler(options);
    auto counter = std::make_shared<int>(0);
    return scheduler.run({
        [counter] {
          for (int i = 0; i < 4; ++i) {
            testkit::yield_point("inc");
            ++*counter;
          }
        },
        [counter] {
          for (int i = 0; i < 4; ++i) {
            testkit::yield_point("inc");
            ++*counter;
          }
        },
    });
  };
  const auto a = one_run(99);
  const auto b = one_run(99);
  const auto c = one_run(100);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.format_trace(), b.format_trace());
  EXPECT_EQ(a.context_switches, b.context_switches);
  // A different seed is allowed to coincide but should not for this shape;
  // compare the full trace, which encodes every decision.
  EXPECT_NE(a.format_trace(), c.format_trace());
}

TEST(SimScheduler, ExceptionInThreadBodyIsReported) {
  SimScheduler scheduler;
  auto report = scheduler.run({
      [] { throw std::runtime_error("body failed"); },
      [] { testkit::yield_point("ok"); },
  });
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("body failed"), std::string::npos);
}

TEST(SimScheduler, DetectsDeadlockInsteadOfHanging) {
  SimScheduler scheduler;
  auto q1 = std::make_shared<concurrency::BoundedQueue<int>>(1);
  auto q2 = std::make_shared<concurrency::BoundedQueue<int>>(1);
  auto report = scheduler.run({
      [q1] { (void)q1->pop(); },  // blocks forever: nobody pushes
      [q2] { (void)q2->pop(); },
  });
  EXPECT_TRUE(report.deadlocked);
  EXPECT_FALSE(report.ok());
  bool saw_deadlock_event = false;
  for (const auto& event : report.trace) {
    if (event.kind == TraceKind::kDeadlock) saw_deadlock_event = true;
  }
  EXPECT_TRUE(saw_deadlock_event);
}

TEST(SimScheduler, TimedWaitRunsOnVirtualClock) {
  SimScheduler scheduler;
  auto q = std::make_shared<concurrency::BoundedQueue<int>>(1);
  StatusCode code = StatusCode::kOk;
  const auto wall_start = std::chrono::steady_clock::now();
  auto report = scheduler.run({
      [q, &code] {
        auto r = q->pop_for(std::chrono::milliseconds(50));
        code = r.is_ok() ? StatusCode::kOk : r.status().code();
      },
  });
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(code, StatusCode::kTimeout);
  // The 50ms timeout elapsed on the virtual clock...
  EXPECT_GE(report.sim_duration, 0.050);
  // ...but not on the wall clock (generous bound: just not 50ms-scale).
  EXPECT_LT(wall_ms, 5000.0);
}

TEST(SimScheduler, PreemptionBoundedRespectsZeroBound) {
  SchedulerOptions options;
  options.policy = SchedulePolicy::kPreemptionBounded;
  options.preemption_bound = 0;
  options.seed = 5;
  SimScheduler scheduler(options);
  // With no preemptions and no blocking, threads must run back to back:
  // the first thread's 10 increments all precede the second's.
  std::vector<int> order;
  auto report = scheduler.run({
      [&] {
        for (int i = 0; i < 10; ++i) {
          testkit::yield_point("t0");
          order.push_back(0);
        }
      },
      [&] {
        for (int i = 0; i < 10; ++i) {
          testkit::yield_point("t1");
          order.push_back(1);
        }
      },
  });
  EXPECT_TRUE(report.ok()) << report.error;
  ASSERT_EQ(order.size(), 20u);
  // Whichever thread is scheduled first must finish before the other
  // starts — zero preemptions means zero interleaving.
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(order[i], order[0]);
  for (std::size_t i = 11; i < 20; ++i) EXPECT_EQ(order[i], order[10]);
  EXPECT_NE(order[0], order[10]);
}

// -------------------------------------------------------- ScheduleExplorer

// The deliberately unsynchronized fixture of the acceptance criterion:
// a load/store race that only an unlucky interleaving exposes.
struct RacyCounter {
  int counter = 0;
  void increment() {
    const int loaded = counter;
    testkit::yield_point("racy.between-load-and-store");
    counter = loaded + 1;
  }
};

RunPlan make_racy_plan(const std::shared_ptr<RacyCounter>& state) {
  RunPlan plan;
  for (int t = 0; t < 3; ++t) {
    plan.threads.push_back([state] {
      for (int i = 0; i < 2; ++i) state->increment();
    });
  }
  plan.check = [state]() -> std::string {
    if (state->counter == 6) return "";
    return "lost update: counter = " + std::to_string(state->counter) +
           ", expected 6";
  };
  return plan;
}

TEST(ScheduleExplorer, FindsLostUpdateAndReplaysDeterministically) {
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRandom;
  config.iterations = 100;
  config.base_seed = 2026;
  ScheduleExplorer explorer(config);

  auto make_run = [] { return make_racy_plan(std::make_shared<RacyCounter>()); };
  const auto result = explorer.explore(make_run);
  ASSERT_TRUE(result.failure_found)
      << "the racy fixture must fail within " << config.iterations << " seeds";
  EXPECT_NE(result.failure.find("lost update"), std::string::npos);
  EXPECT_FALSE(result.failing_report.format_minimal_trace().empty());
  EXPECT_NE(result.describe().find("seed"), std::string::npos);

  // The acceptance criterion: replaying the failing seed reproduces the
  // same failure with the same interleaving trace, run after run.
  std::string failure1, failure2;
  const auto replay1 = explorer.replay(result.failing_seed, make_run, &failure1);
  const auto replay2 = explorer.replay(result.failing_seed, make_run, &failure2);
  EXPECT_EQ(failure1, result.failure);
  EXPECT_EQ(failure1, failure2);
  EXPECT_EQ(replay1.format_trace(), replay2.format_trace());
  EXPECT_EQ(replay1.format_minimal_trace(),
            result.failing_report.format_minimal_trace());
}

TEST(ScheduleExplorer, RoundRobinExposesTheRaceImmediately) {
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRoundRobin;
  config.iterations = 1;  // round-robin switches at every yield point
  ScheduleExplorer explorer(config);
  const auto result = explorer.explore(
      [] { return make_racy_plan(std::make_shared<RacyCounter>()); });
  EXPECT_TRUE(result.failure_found);
  EXPECT_EQ(result.runs, 1u);
}

TEST(ScheduleExplorer, ProperlyLockedCounterSurvivesExploration) {
  // Same shape, but the critical section is guarded by an instrumented
  // spinlock — waiters rotate via spin_yield, so holding the lock across a
  // yield point is safe under the scheduler.
  struct LockedCounter {
    concurrency::TasLock lock;
    int counter = 0;
  };
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRandom;
  config.iterations = 40;
  config.base_seed = 7;
  ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    auto state = std::make_shared<LockedCounter>();
    RunPlan plan;
    for (int t = 0; t < 3; ++t) {
      plan.threads.push_back([state] {
        for (int i = 0; i < 2; ++i) {
          state->lock.lock();
          const int loaded = state->counter;
          testkit::yield_point("locked.between-load-and-store");
          state->counter = loaded + 1;
          state->lock.unlock();
        }
      });
    }
    plan.check = [state]() -> std::string {
      return state->counter == 6
                 ? ""
                 : "counter = " + std::to_string(state->counter);
    };
    return plan;
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
  EXPECT_EQ(result.runs, config.iterations);
}

// Satellite regression: BoundedQueue close() while producers and consumers
// are blocked. Every thread must terminate (no deadlock, no lost wakeup)
// with a coherent status under every explored schedule.
TEST(ScheduleExplorer, BoundedQueueCloseWhileBlockedNeverWedges) {
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRandom;
  config.iterations = 60;
  config.base_seed = 31;
  ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    struct State {
      concurrency::BoundedQueue<int> queue{1};
      support::Status first = support::Status::ok();
      support::Status second = support::Status::ok();
      bool popped = false;
    };
    auto state = std::make_shared<State>();
    RunPlan plan;
    plan.threads.push_back([state] {
      state->first = state->queue.push(1);
      state->second = state->queue.push(2);  // blocks: capacity 1
    });
    plan.threads.push_back([state] {
      state->popped = state->queue.pop().is_ok();
      state->queue.close();
    });
    plan.check = [state]() -> std::string {
      if (!state->first.is_ok()) return "first push failed";
      if (!state->popped) return "pop failed before close";
      if (!state->second.is_ok() &&
          state->second.code() != StatusCode::kClosed) {
        return "blocked push ended with unexpected status: " +
               state->second.to_string();
      }
      return "";
    };
    return plan;
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultConfig config;
  config.drop = 0.3;
  config.duplicate = 0.2;
  config.reorder = 0.15;
  config.jitter_ms = 1.0;
  config.seed = 1234;
  FaultInjector a(config), b(config);
  for (int i = 0; i < 500; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.reordered, db.reordered);
    EXPECT_EQ(da.copies, db.copies);
    EXPECT_DOUBLE_EQ(da.extra_delay_ms, db.extra_delay_ms);
  }
  const auto stats_a = a.stats();
  const auto stats_b = b.stats();
  EXPECT_EQ(stats_a.messages, 500u);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_GT(stats_a.duplicated, 0u);
  EXPECT_GT(stats_a.reordered, 0u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultConfig config;
  config.drop = 0.5;
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = a.next().drop != b.next().drop;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, CleanConfigPassesEverythingThrough) {
  FaultInjector injector{FaultConfig{}};
  for (int i = 0; i < 32; ++i) {
    const auto d = injector.next();
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.reordered);
    EXPECT_EQ(d.copies, 1u);
    EXPECT_DOUBLE_EQ(d.extra_delay_ms, 0.0);
  }
  EXPECT_EQ(injector.stats().dropped, 0u);
}

// ------------------------------------------- mp/dist under the scheduler

TEST(SimIntegration, TokenRingRunsDeterministicallyUnderScheduler) {
  auto one_run = [](std::uint64_t seed) {
    mp::World world(3);
    auto entered = std::make_shared<std::atomic<int>>(0);
    auto bodies = world.rank_bodies([entered](mp::Communicator& comm) {
      (void)dist::run_token_ring(comm, 2, [entered] { ++*entered; });
    });
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    SimScheduler scheduler(options);
    auto report = scheduler.run(std::move(bodies));
    return std::make_pair(std::move(report), entered->load());
  };
  const auto [report1, entered1] = one_run(17);
  EXPECT_TRUE(report1.ok()) << report1.error;
  EXPECT_EQ(entered1, 6);  // 3 ranks x 2 entries, every CS executed
  const auto [report2, entered2] = one_run(17);
  EXPECT_EQ(entered2, 6);
  EXPECT_EQ(report1.format_trace(), report2.format_trace());
}

TEST(SimIntegration, RicartAgrawalaMutualExclusionHoldsUnderRandomSchedules) {
  for (std::uint64_t seed : {3u, 11u, 42u}) {
    mp::World world(3);
    struct Shared {
      std::atomic<int> inside{0};
      std::atomic<int> max_inside{0};
      std::atomic<int> entries{0};
    };
    auto shared = std::make_shared<Shared>();
    auto bodies = world.rank_bodies([shared](mp::Communicator& comm) {
      dist::RicartAgrawala mutex(comm);
      for (int i = 0; i < 2; ++i) {
        mutex.enter();
        const int now = ++shared->inside;
        int expected = shared->max_inside.load();
        while (now > expected &&
               !shared->max_inside.compare_exchange_weak(expected, now)) {
        }
        // Preemption point inside the critical section: without it the CS
        // would be atomic between hooks and exclusion trivially true.
        testkit::yield_point("ra.cs");
        ++shared->entries;
        --shared->inside;
        mutex.leave();
      }
      mutex.finish();
    });
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    options.max_steps = 1u << 22;
    SimScheduler scheduler(options);
    auto report = scheduler.run(std::move(bodies));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.error;
    EXPECT_EQ(shared->entries.load(), 6) << "seed " << seed;
    EXPECT_EQ(shared->max_inside.load(), 1)
        << "seed " << seed << ": mutual exclusion violated";
  }
}

// --------------------------------------------------- mp under fault injection

TEST(FaultInjection, TwoPhaseCommitCommitsDespiteHeavyLoss) {
  mp::World world(4);
  FaultConfig faults;
  faults.drop = 0.35;
  faults.duplicate = 0.1;
  faults.seed = 77;
  world.set_fault_injector(std::make_shared<FaultInjector>(faults));

  std::vector<dist::TpcStats> stats(4);
  world.run([&](mp::Communicator& comm) {
    stats[static_cast<std::size_t>(comm.rank())] =
        comm.rank() == 0
            ? dist::run_2pc_coordinator(comm)
            : dist::run_2pc_participant(comm, /*vote_commit=*/true,
                                        std::chrono::milliseconds(2000));
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].decision,
              dist::TxnDecision::kCommitted)
        << "rank " << r;
    EXPECT_FALSE(stats[static_cast<std::size_t>(r)].timed_out) << "rank " << r;
  }
}

TEST(FaultInjection, TwoPhaseCommitAbortVotePropagatesUnderLoss) {
  mp::World world(3);
  FaultConfig faults;
  faults.drop = 0.3;
  faults.seed = 5150;
  world.set_fault_injector(std::make_shared<FaultInjector>(faults));

  std::vector<dist::TpcStats> stats(3);
  world.run([&](mp::Communicator& comm) {
    stats[static_cast<std::size_t>(comm.rank())] =
        comm.rank() == 0
            ? dist::run_2pc_coordinator(comm)
            : dist::run_2pc_participant(comm,
                                        /*vote_commit=*/comm.rank() != 2,
                                        std::chrono::milliseconds(2000));
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].decision,
              dist::TxnDecision::kAborted)
        << "rank " << r;
  }
}

TEST(FaultInjection, TwoPhaseCommitCoordinatorCrashPresumesAbortUnderLoss) {
  mp::World world(3);
  FaultConfig faults;
  faults.drop = 0.3;
  faults.seed = 404;
  world.set_fault_injector(std::make_shared<FaultInjector>(faults));

  std::vector<dist::TpcStats> stats(3);
  world.run([&](mp::Communicator& comm) {
    stats[static_cast<std::size_t>(comm.rank())] =
        comm.rank() == 0
            ? dist::run_2pc_coordinator(comm, /*crash_before_decision=*/true)
            : dist::run_2pc_participant(comm, /*vote_commit=*/true,
                                        std::chrono::milliseconds(150));
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].decision,
              dist::TxnDecision::kAborted)
        << "rank " << r;
  }
  EXPECT_TRUE(stats[1].timed_out);
  EXPECT_TRUE(stats[2].timed_out);
}

TEST(FaultInjection, CollectivesStayReliableUnderUserContextFaults) {
  mp::World world(4);
  FaultConfig faults;
  faults.drop = 0.4;
  faults.seed = 808;
  auto injector = std::make_shared<FaultInjector>(faults);
  world.set_fault_injector(injector);
  // Collectives (barrier) run on internal contexts, which the injector
  // must never impair — every barrier completes even though the user
  // traffic interleaved with them is being dropped at 40%.
  world.run([](mp::Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    for (int i = 0; i < 5; ++i) {
      comm.send_value(i, next, /*tag=*/9);  // fire-and-forget user traffic
      comm.barrier();
    }
  });
  EXPECT_EQ(injector->stats().messages, 20u);  // only the user sends
  EXPECT_GT(injector->stats().dropped, 0u);
}

// -------------------------------------------------- net under fault injection

net::Bytes make_payload(std::size_t n) {
  net::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  return data;
}

TEST(FaultInjection, GoBackNDeliversUnderInjectedLossAndDuplication) {
  net::NetConfig config;
  config.latency_ms = 0.05;
  net::Network net(2, config);
  FaultConfig faults;
  faults.drop = 0.3;
  faults.duplicate = 0.1;
  faults.seed = 99;
  auto injector = std::make_shared<FaultInjector>(faults);
  net.set_fault_injector(injector);

  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const net::Bytes data = make_payload(8 * 1024);

  std::thread receiver([&] {
    auto received = net::arq_receive(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  net::ArqConfig arq;
  arq.window = 4;
  auto stats = net::arq_send_go_back_n(*tx, rx->local(), data, arq);
  receiver.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
  EXPECT_GT(stats.value().retransmissions, 0u);
  const auto istats = injector->stats();
  EXPECT_GT(istats.messages, 0u);
  EXPECT_GT(istats.dropped, 0u);
}

TEST(FaultInjection, SelectiveRepeatDeliversUnderInjectedReordering) {
  net::NetConfig config;
  config.latency_ms = 0.05;
  net::Network net(2, config);
  FaultConfig faults;
  faults.drop = 0.15;
  faults.reorder = 0.25;
  faults.reorder_ms = 1.0;
  faults.seed = 7331;
  auto injector = std::make_shared<FaultInjector>(faults);
  net.set_fault_injector(injector);

  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const net::Bytes data = make_payload(8 * 1024);

  std::thread receiver([&] {
    auto received = net::arq_receive_selective(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  net::ArqConfig arq;
  arq.window = 4;
  auto stats = net::arq_send_selective_repeat(*tx, rx->local(), data, arq);
  receiver.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
  EXPECT_GT(injector->stats().reordered, 0u);
}

TEST(FaultInjection, StopAndWaitDeliversUnderThirtyPercentLoss) {
  net::NetConfig config;
  config.latency_ms = 0.05;
  net::Network net(2, config);
  FaultConfig faults;
  faults.drop = 0.3;
  faults.seed = 616;
  net.set_fault_injector(std::make_shared<FaultInjector>(faults));

  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const net::Bytes data = make_payload(4 * 1024);

  std::thread receiver([&] {
    auto received = net::arq_receive(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  auto stats = net::arq_send_stop_and_wait(*tx, rx->local(), data, {});
  receiver.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
  EXPECT_GT(net.dropped(), 0u);
}

// ----------------------------------------------- FaultInjector partitions

TEST(FaultInjectorPartition, BlocksCrossGroupTrafficUntilHealed) {
  FaultInjector injector{FaultConfig{}};  // no probabilistic faults
  injector.partition({{0, 1}, {2}});
  EXPECT_TRUE(injector.reachable(0, 1));
  EXPECT_TRUE(injector.reachable(1, 0));
  EXPECT_FALSE(injector.reachable(0, 2));
  EXPECT_FALSE(injector.reachable(2, 1));

  EXPECT_FALSE(injector.next(0, 1).drop);
  EXPECT_TRUE(injector.next(0, 2).drop);
  EXPECT_TRUE(injector.next(2, 1).drop);
  const auto stats = injector.stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.partitioned, 2u);

  injector.heal();
  EXPECT_TRUE(injector.reachable(0, 2));
  EXPECT_FALSE(injector.next(0, 2).drop);
}

TEST(FaultInjectorPartition, UnlistedRankIsIsolatedButSelfReachable) {
  FaultInjector injector{FaultConfig{}};
  injector.partition({{0, 1}});  // rank 2 not named: fully isolated
  EXPECT_FALSE(injector.reachable(2, 0));
  EXPECT_FALSE(injector.reachable(0, 2));
  EXPECT_TRUE(injector.reachable(2, 2));  // self-delivery always works
  EXPECT_FALSE(injector.next(2, 2).drop);
  EXPECT_TRUE(injector.next(2, 0).drop);
}

TEST(FaultInjectorPartition, PartitionDropsConsumeNoRandomness) {
  // The replay property: the probabilistic decision stream for delivered
  // traffic must be identical with and without a partition, so a seed
  // found under partitioning replays the same drops/dups either way.
  FaultConfig config;
  config.drop = 0.3;
  config.duplicate = 0.2;
  config.reorder = 0.1;
  config.seed = 4242;
  FaultInjector partitioned(config);
  FaultInjector plain(config);
  partitioned.partition({{0}, {1, 2}});
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(partitioned.next(0, 1).drop);  // cross-cut: no rng draw
    const auto a = partitioned.next(1, 2);     // same-group: real decision
    const auto b = plain.next(1, 2);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.copies, b.copies);
    EXPECT_EQ(a.reordered, b.reordered);
    EXPECT_DOUBLE_EQ(a.extra_delay_ms, b.extra_delay_ms);
  }
  EXPECT_EQ(partitioned.stats().partitioned, 200u);
}

// --------------------------------------------- LinearizabilityChecker

KvOp make_op(KvOp::Kind kind, std::string key, std::uint64_t invoke,
             std::uint64_t ret, std::string arg = "", bool ok = true,
             std::string result = "", std::string expected = "") {
  KvOp op;
  op.kind = kind;
  op.key = std::move(key);
  op.arg = std::move(arg);
  op.expected = std::move(expected);
  op.result = std::move(result);
  op.ok = ok;
  op.invoke = invoke;
  op.ret = ret;
  return op;
}

TEST(LinearizabilityChecker, SequentialPutGetIsLinearizable) {
  const std::vector<KvOp> history{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v"),
      make_op(KvOp::Kind::kGet, "k", 3, 4, "", true, "v"),
  };
  const auto report = LinearizabilityChecker{}.check(history);
  EXPECT_TRUE(report.linearizable()) << report.describe();
}

TEST(LinearizabilityChecker, CompletedPutMustBeVisibleToLaterGet) {
  // The canonical violation: the put returned, then a get that started
  // strictly afterwards missed it.
  const std::vector<KvOp> history{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v"),
      make_op(KvOp::Kind::kGet, "k", 3, 4, "", /*ok=*/false),
  };
  const auto report = LinearizabilityChecker{}.check(history);
  EXPECT_EQ(report.outcome, LinOutcome::kViolation);
  EXPECT_EQ(report.violating_key, "k");
  EXPECT_EQ(report.violating_ops.size(), 2u);
  EXPECT_NE(report.describe().find("no linearization exists"),
            std::string::npos);
}

TEST(LinearizabilityChecker, StaleReadAfterOverwriteIsAViolation) {
  const std::vector<KvOp> history{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v1"),
      make_op(KvOp::Kind::kPut, "k", 3, 4, "v2"),
      make_op(KvOp::Kind::kGet, "k", 5, 6, "", true, "v1"),
  };
  const auto report = LinearizabilityChecker{}.check(history);
  EXPECT_EQ(report.outcome, LinOutcome::kViolation);
}

TEST(LinearizabilityChecker, ConcurrentPutsAllowEitherOrder) {
  // Two overlapping puts: a reader may observe whichever linearized last,
  // but not a value nobody wrote.
  for (const char* observed : {"v1", "v2"}) {
    const std::vector<KvOp> history{
        make_op(KvOp::Kind::kPut, "k", 1, 4, "v1"),
        make_op(KvOp::Kind::kPut, "k", 2, 5, "v2"),
        make_op(KvOp::Kind::kGet, "k", 6, 7, "", true, observed),
    };
    const auto report = LinearizabilityChecker{}.check(history);
    EXPECT_TRUE(report.linearizable())
        << observed << ": " << report.describe();
  }
  const std::vector<KvOp> phantom{
      make_op(KvOp::Kind::kPut, "k", 1, 4, "v1"),
      make_op(KvOp::Kind::kPut, "k", 2, 5, "v2"),
      make_op(KvOp::Kind::kGet, "k", 6, 7, "", true, "v3"),
  };
  EXPECT_EQ(LinearizabilityChecker{}.check(phantom).outcome,
            LinOutcome::kViolation);
}

TEST(LinearizabilityChecker, ReadDuringOverlapMaySeeOldOrNewValue) {
  // A get concurrent with a put can linearize on either side of it.
  for (const bool sees_new : {false, true}) {
    const std::vector<KvOp> history{
        make_op(KvOp::Kind::kPut, "k", 1, 2, "old"),
        make_op(KvOp::Kind::kPut, "k", 3, 6, "new"),
        make_op(KvOp::Kind::kGet, "k", 4, 5, "", true,
                sees_new ? "new" : "old"),
    };
    const auto report = LinearizabilityChecker{}.check(history);
    EXPECT_TRUE(report.linearizable()) << report.describe();
  }
}

TEST(LinearizabilityChecker, CasOutcomeMustMatchModelState) {
  const std::vector<KvOp> ok_history{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v1"),
      make_op(KvOp::Kind::kCas, "k", 3, 4, "v2", true, "", "v1"),
      make_op(KvOp::Kind::kGet, "k", 5, 6, "", true, "v2"),
  };
  EXPECT_TRUE(LinearizabilityChecker{}.check(ok_history).linearizable());

  // A cas that claims success while comparing against a value that was
  // never current cannot be linearized.
  const std::vector<KvOp> bad_history{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v1"),
      make_op(KvOp::Kind::kCas, "k", 3, 4, "v2", true, "", "stale"),
  };
  EXPECT_EQ(LinearizabilityChecker{}.check(bad_history).outcome,
            LinOutcome::kViolation);

  // A failed cas is legal exactly when the compare genuinely mismatched.
  const std::vector<KvOp> failed_ok{
      make_op(KvOp::Kind::kPut, "k", 1, 2, "v1"),
      make_op(KvOp::Kind::kCas, "k", 3, 4, "v2", false, "", "stale"),
      make_op(KvOp::Kind::kGet, "k", 5, 6, "", true, "v1"),
  };
  EXPECT_TRUE(LinearizabilityChecker{}.check(failed_ok).linearizable());
}

TEST(LinearizabilityChecker, PendingPutMayOrMayNotHaveTakenEffect) {
  // A put whose client never heard back (crash / timeout) is pending: a
  // later read is allowed to see it...
  const std::vector<KvOp> took_effect{
      make_op(KvOp::Kind::kPut, "k", 1, KvOp::kPendingReturn, "v"),
      make_op(KvOp::Kind::kGet, "k", 2, 3, "", true, "v"),
  };
  EXPECT_TRUE(LinearizabilityChecker{}.check(took_effect).linearizable());
  // ...or to miss it entirely.
  const std::vector<KvOp> dropped{
      make_op(KvOp::Kind::kPut, "k", 1, KvOp::kPendingReturn, "v"),
      make_op(KvOp::Kind::kGet, "k", 2, 3, "", /*ok=*/false),
  };
  EXPECT_TRUE(LinearizabilityChecker{}.check(dropped).linearizable());
  // But it cannot half-happen: once observed, it stays observed.
  const std::vector<KvOp> flicker{
      make_op(KvOp::Kind::kPut, "k", 1, KvOp::kPendingReturn, "v"),
      make_op(KvOp::Kind::kGet, "k", 2, 3, "", true, "v"),
      make_op(KvOp::Kind::kGet, "k", 4, 5, "", /*ok=*/false),
  };
  EXPECT_EQ(LinearizabilityChecker{}.check(flicker).outcome,
            LinOutcome::kViolation);
}

TEST(LinearizabilityChecker, KeysAreCheckedIndependently) {
  // Compositionality: a violation on one key is pinned to that key even
  // when other keys carry a large healthy history.
  std::vector<KvOp> history;
  std::uint64_t t = 1;
  for (int i = 0; i < 6; ++i) {
    const std::string v = "v" + std::to_string(i);
    history.push_back(make_op(KvOp::Kind::kPut, "healthy", t, t + 1, v));
    t += 2;
    history.push_back(
        make_op(KvOp::Kind::kGet, "healthy", t, t + 1, "", true, v));
    t += 2;
  }
  history.push_back(make_op(KvOp::Kind::kPut, "broken", t, t + 1, "x"));
  t += 2;
  history.push_back(
      make_op(KvOp::Kind::kGet, "broken", t, t + 1, "", false));
  const auto report = LinearizabilityChecker{}.check(history);
  EXPECT_EQ(report.outcome, LinOutcome::kViolation);
  EXPECT_EQ(report.violating_key, "broken");
  EXPECT_EQ(report.violating_ops.size(), 2u);
}

TEST(HistoryRecorder, StampsBracketingTimestamps) {
  HistoryRecorder recorder;
  KvOp put;
  put.kind = KvOp::Kind::kPut;
  put.key = "k";
  put.arg = "v";
  const auto t_put = recorder.invoke(put);
  KvOp get;
  get.kind = KvOp::Kind::kGet;
  get.key = "k";
  const auto t_get = recorder.invoke(get);
  recorder.complete(t_put, true);
  // t_get never completed: it must surface as pending.
  const auto history = recorder.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_LT(history[t_put].invoke, history[t_put].ret);
  EXPECT_LT(history[t_put].invoke, history[t_get].invoke);
  EXPECT_FALSE(history[t_put].pending());
  EXPECT_TRUE(history[t_get].pending());
  recorder.complete(t_get, true, "v");
  EXPECT_FALSE(recorder.history()[t_get].pending());
  EXPECT_EQ(recorder.history()[t_get].result, "v");
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
