// Deterministic simulation tests for dist::Raft and dist::ReplicatedKV:
// leader election, log convergence across a leader crash, stale-leader
// rejection through a network partition, snapshot install to a lagging
// follower, the term-start no-op barrier, and linearizability of the KV
// store — including the unsafe_early_commit teaching bug, which the
// checker must catch with a replayable minimal trace.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/raft.hpp"
#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/linearizability.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace {

using namespace pdc;
using dist::RaftNode;
using dist::RaftOptions;
using dist::RaftPersistentState;
using dist::RaftRole;
using mp::Communicator;
using mp::World;
using testkit::FaultConfig;
using testkit::FaultInjector;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

std::vector<std::uint8_t> cmd(const std::string& s) {
  return {s.begin(), s.end()};
}

/// State machine that records applied commands as strings; the snapshot
/// image is the full applied list, so a restore is observable.
class RecordingMachine : public dist::StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      std::uint64_t index, const std::vector<std::uint8_t>& command) override {
    (void)index;
    applied_.emplace_back(command.begin(), command.end());
    return {};
  }
  std::vector<std::uint8_t> snapshot_image() override {
    dist::wire::Writer w;
    w.u64(applied_.size());
    for (const auto& s : applied_) w.str(s);
    return w.take();
  }
  void restore(const std::vector<std::uint8_t>& image) override {
    applied_.clear();
    if (image.empty()) return;
    dist::wire::Reader r(image);
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) applied_.push_back(r.str());
  }
  [[nodiscard]] const std::vector<std::string>& applied() const {
    return applied_;
  }

 private:
  std::vector<std::string> applied_;
};

void pump(RaftNode& node, double seconds = 0.5e-3) {
  node.tick();
  testkit::poll_pause("raft.pump", seconds);
}

// --------------------------------------------------------------- election

struct ElectionOutcome {
  std::array<int, 3> roles{};
  std::array<std::uint64_t, 3> terms{};
  std::string trace;
};

ElectionOutcome run_election(std::uint64_t seed) {
  ElectionOutcome out;
  World world(3);
  auto bodies = world.rank_bodies([&out](Communicator& comm) {
    RecordingMachine machine;
    RaftPersistentState storage;
    RaftNode node(comm, machine, storage, RaftOptions{});
    while (testkit::sim_now() < 0.10) pump(node);
    out.roles[static_cast<std::size_t>(comm.rank())] =
        static_cast<int>(node.role());
    out.terms[static_cast<std::size_t>(comm.rank())] = node.current_term();
  });
  SchedulerOptions options;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  EXPECT_TRUE(report.ok()) << report.error;
  out.trace = report.format_trace();
  return out;
}

TEST(RaftSim, SingleTermElectionProducesExactlyOneLeader) {
  const auto out = run_election(7);
  int leaders = 0;
  for (const int role : out.roles) {
    if (role == static_cast<int>(RaftRole::kLeader)) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  // Distinct randomized timeouts: the first candidate wins outright, so
  // one term suffices and every rank converges on it.
  for (const auto term : out.terms) EXPECT_EQ(term, 1u);
}

TEST(RaftSim, ElectionTraceIsByteStableUnderFixedSeed) {
  const auto a = run_election(21);
  const auto b = run_election(21);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.roles, b.roles);
  const auto c = run_election(22);
  EXPECT_NE(a.trace, c.trace);  // the seed is what's driving the schedule
}

// ------------------------------- duplicated votes must not elect a leader

// Regression: vote counting must be idempotent per rank. With every
// message duplicated and a 2-node minority partition {0,1} of a 5-rank
// cluster, a candidate in the minority collects at most 2 distinct votes
// (self + peer) — short of quorum 3. A bare vote counter would count the
// duplicated VoteReply twice and elect a minority leader (split brain).
TEST(RaftSim, DuplicatedVoteRepliesCannotElectMinorityLeader) {
  constexpr int kRanks = 5;
  auto minority_led = std::make_shared<std::atomic<bool>>(false);
  FaultConfig faults;
  faults.duplicate = 1.0;  // every delivered message arrives twice
  auto injector = std::make_shared<FaultInjector>(faults);
  injector->partition({{0, 1}, {2, 3, 4}});

  World world(kRanks);
  world.set_fault_injector(injector);
  auto bodies = world.rank_bodies([minority_led](Communicator& comm) {
    RecordingMachine machine;
    RaftPersistentState storage;
    RaftNode node(comm, machine, storage, RaftOptions{});
    // ~6-12 election attempts on the minority side, each with a
    // duplicated granted reply: any double-count elects immediately.
    while (testkit::sim_now() < 0.15) {
      pump(node);
      if (comm.rank() <= 1 && node.role() == RaftRole::kLeader) {
        *minority_led = true;
      }
    }
  });
  SchedulerOptions options;
  options.seed = 9;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_GT(injector->stats().duplicated, 0u);
  EXPECT_FALSE(minority_led->load());
}

// ------------------------------------------------- leader crash mid-append

TEST(RaftSim, LogConvergesAfterLeaderCrashMidAppend) {
  constexpr int kRanks = 3;
  struct Shared {
    std::atomic<int> first_leader{-1};
    std::atomic<int> second_leader{-1};
    std::atomic<bool> crashed{false};
    std::atomic<int> done{0};
    std::array<std::vector<std::string>, kRanks> applied;
  };
  auto shared = std::make_shared<Shared>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);

  World world(kRanks);
  auto bodies = world.rank_bodies([shared, storage](Communicator& comm) {
    const auto rank = comm.rank();
    RaftOptions opts;
    opts.seed = 2024;
    std::optional<RecordingMachine> machine(std::in_place);
    std::optional<RaftNode> node;
    node.emplace(comm, *machine, (*storage)[static_cast<std::size_t>(rank)],
                 opts);

    while (shared->first_leader.load() == -1) {
      if (node->role() == RaftRole::kLeader) shared->first_leader = rank;
      pump(*node);
    }
    if (rank == shared->first_leader.load()) {
      const auto idx_a = node->submit(cmd("a"));
      ASSERT_TRUE(idx_a.has_value());
      while (node->commit_index() < *idx_a) pump(*node);
      // Mid-append crash: "b" is broadcast but the leader dies before any
      // acknowledgement can commit it. Volatile state is gone; the
      // persistent log (with "b") survives in `storage`.
      ASSERT_TRUE(node->submit(cmd("b")).has_value());
      node.reset();
      shared->crashed = true;
      while (shared->second_leader.load() == -1) {
        testkit::poll_pause("raft.down", 1e-3);
      }
      machine.emplace();  // fresh machine: state rebuilt from the log
      node.emplace(comm, *machine, (*storage)[static_cast<std::size_t>(rank)],
                   opts);
    } else {
      while (!shared->crashed.load()) pump(*node);
      while (shared->second_leader.load() == -1) {
        if (node->role() == RaftRole::kLeader) shared->second_leader = rank;
        pump(*node);
      }
      if (rank == shared->second_leader.load()) {
        ASSERT_TRUE(node->submit(cmd("c")).has_value());
      }
    }
    bool counted = false;
    while (shared->done.load() < kRanks) {
      const auto& a = machine->applied();
      if (!counted && !a.empty() && a.back() == "c") {
        ++shared->done;
        counted = true;
      }
      pump(*node);
    }
    shared->applied[static_cast<std::size_t>(rank)] = machine->applied();
  });

  SchedulerOptions options;
  options.seed = 5;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;

  // "b" reached both followers before the crash, so the new leader's
  // no-op barrier commits it; every log (including the rejoined crasher's)
  // converges to the same applied sequence.
  const std::vector<std::string> expect{"a", "b", "c"};
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(shared->applied[static_cast<std::size_t>(r)], expect)
        << "rank " << r;
  }
}

// -------------------------------------------- stale leader via partition

TEST(RaftSim, StaleLeaderIsRejectedAndTruncatedAfterPartitionHeals) {
  constexpr int kRanks = 3;
  struct Shared {
    std::atomic<int> first_leader{-1};
    std::atomic<int> second_leader{-1};
    std::atomic<bool> partitioned{false};
    std::atomic<bool> healed{false};
    std::atomic<int> done{0};
    std::array<std::vector<std::string>, kRanks> applied;
    std::array<std::uint64_t, kRanks> terms{};
    std::atomic<int> old_leader_final_role{-1};
  };
  auto shared = std::make_shared<Shared>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);
  auto injector = std::make_shared<FaultInjector>(FaultConfig{});

  World world(kRanks);
  world.set_fault_injector(injector);
  auto bodies = world.rank_bodies([shared, storage,
                                   injector](Communicator& comm) {
    const auto rank = comm.rank();
    RaftOptions opts;
    opts.seed = 31;
    RecordingMachine machine;
    RaftNode node(comm, machine, (*storage)[static_cast<std::size_t>(rank)],
                  opts);

    while (shared->first_leader.load() == -1) {
      if (node.role() == RaftRole::kLeader) shared->first_leader = rank;
      pump(node);
    }
    const int old_leader = shared->first_leader.load();
    if (rank == old_leader) {
      std::vector<int> rest;
      for (int r = 0; r < kRanks; ++r) {
        if (r != rank) rest.push_back(r);
      }
      injector->partition({{rank}, rest});
      shared->partitioned = true;
      // Appended on the stale side only: must be truncated after healing.
      ASSERT_TRUE(node.submit(cmd("x")).has_value());
      while (!shared->healed.load()) pump(node);
      // The first append/heartbeat exchange after healing deposes us.
      while (node.role() == RaftRole::kLeader) pump(node);
    } else {
      while (!shared->partitioned.load()) pump(node);
      while (shared->second_leader.load() == -1) {
        if (node.role() == RaftRole::kLeader) shared->second_leader = rank;
        pump(node);
      }
      if (rank == shared->second_leader.load()) {
        const auto idx_y = node.submit(cmd("y"));
        ASSERT_TRUE(idx_y.has_value());
        while (node.commit_index() < *idx_y) pump(node);
        injector->heal();
        shared->healed = true;
      }
    }
    bool counted = false;
    while (shared->done.load() < kRanks) {
      const auto& a = machine.applied();
      const bool caught_up = !a.empty() && a.back() == "y" &&
                             (rank != old_leader ||
                              node.role() == RaftRole::kFollower);
      if (!counted && caught_up) {
        ++shared->done;
        counted = true;
      }
      pump(node);
    }
    shared->applied[static_cast<std::size_t>(rank)] = machine.applied();
    shared->terms[static_cast<std::size_t>(rank)] = node.current_term();
    if (rank == old_leader) {
      shared->old_leader_final_role = static_cast<int>(node.role());
    }
  });

  SchedulerOptions options;
  options.seed = 11;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;

  const std::vector<std::string> expect{"y"};
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(shared->applied[static_cast<std::size_t>(r)], expect)
        << "rank " << r;
    EXPECT_EQ(shared->terms[static_cast<std::size_t>(r)], shared->terms[0]);
  }
  EXPECT_EQ(shared->old_leader_final_role.load(),
            static_cast<int>(RaftRole::kFollower));
  // The stale entry is gone from the deposed leader's durable log.
  const auto& old_log =
      (*storage)[static_cast<std::size_t>(shared->first_leader.load())].log;
  for (const auto& entry : old_log) {
    EXPECT_NE(std::string(entry.command.begin(), entry.command.end()), "x");
  }
  EXPECT_GT(injector->stats().partitioned, 0u);
}

// ------------------------------------------- snapshot to lagging follower

TEST(RaftSim, SnapshotInstallsOnLaggingFollower) {
  constexpr int kRanks = 3;
  constexpr int kLagger = 2;
  struct Shared {
    std::atomic<bool> feed_done{false};
    std::atomic<bool> lagger_caught_up{false};
    std::atomic<int> done{0};
    std::array<std::vector<std::string>, kRanks> applied;
    std::atomic<std::uint64_t> installs{0};
  };
  auto shared = std::make_shared<Shared>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);
  auto injector = std::make_shared<FaultInjector>(FaultConfig{});
  // The lagger is cut off from the start so nothing accumulates in its
  // mailbox; by the time it heals, the feed entries are compacted away and
  // only InstallSnapshot can catch it up.
  injector->partition({{0, 1}, {kLagger}});

  World world(kRanks);
  world.set_fault_injector(injector);
  auto bodies = world.rank_bodies([shared, storage,
                                   injector](Communicator& comm) {
    const auto rank = comm.rank();
    RaftOptions opts;
    opts.seed = 12;
    opts.snapshot_threshold = 4;
    RecordingMachine machine;

    if (rank == kLagger) {
      while (!shared->feed_done.load()) {
        testkit::poll_pause("raft.lag", 1e-3);
      }
      injector->heal();
      RaftNode node(comm, machine,
                    (*storage)[static_cast<std::size_t>(rank)], opts);
      while (machine.applied().size() < 8) pump(node);
      shared->installs = node.snapshots_installed();
      shared->lagger_caught_up = true;
      bool counted = false;
      while (shared->done.load() < kRanks) {
        const auto& a = machine.applied();
        if (!counted && !a.empty() && a.back() == "tail") {
          ++shared->done;
          counted = true;
        }
        pump(node);
      }
      shared->applied[static_cast<std::size_t>(rank)] = machine.applied();
      return;
    }

    RaftNode node(comm, machine, (*storage)[static_cast<std::size_t>(rank)],
                  opts);
    // Ranks 0 and 1 elect and commit 8 entries; the snapshot threshold
    // forces compaction long before the lagger appears.
    bool is_feeder = false;
    while (!shared->feed_done.load()) {
      if (node.role() == RaftRole::kLeader && !is_feeder) {
        is_feeder = true;
        for (int i = 0; i < 8; ++i) {
          const auto idx = node.submit(cmd("v" + std::to_string(i)));
          ASSERT_TRUE(idx.has_value());
          while (node.commit_index() < *idx) pump(node);
        }
        EXPECT_GT((*storage)[static_cast<std::size_t>(rank)].snapshot_index,
                  0u);
        shared->feed_done = true;
      }
      pump(node);
    }
    if (is_feeder) {
      while (!shared->lagger_caught_up.load()) pump(node);
      const auto idx = node.submit(cmd("tail"));
      ASSERT_TRUE(idx.has_value());
    }
    bool counted = false;
    while (shared->done.load() < kRanks) {
      const auto& a = machine.applied();
      if (!counted && !a.empty() && a.back() == "tail") {
        ++shared->done;
        counted = true;
      }
      pump(node);
    }
    shared->applied[static_cast<std::size_t>(rank)] = machine.applied();
  });

  SchedulerOptions options;
  options.seed = 3;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;

  EXPECT_GE(shared->installs.load(), 1u);
  std::vector<std::string> expect;
  for (int i = 0; i < 8; ++i) expect.push_back("v" + std::to_string(i));
  expect.emplace_back("tail");
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(shared->applied[static_cast<std::size_t>(r)], expect)
        << "rank " << r;
  }
}

// ------------------------------------------------- term-start no-op entry

TEST(RaftSim, LeaderAppendsNoOpBarrierOnTermStart) {
  struct Seen {
    std::atomic<std::uint64_t> index{0};
    std::atomic<bool> empty_command{false};
    std::atomic<std::uint64_t> term{0};
  };
  auto seen = std::make_shared<Seen>();
  World world(1);
  auto bodies = world.rank_bodies([seen](Communicator& comm) {
    RecordingMachine machine;
    RaftPersistentState storage;
    RaftNode node(comm, machine, storage, RaftOptions{});
    node.set_apply_listener([seen](std::uint64_t index, std::uint64_t term,
                                   const std::vector<std::uint8_t>& command,
                                   const std::vector<std::uint8_t>& reply) {
      (void)reply;
      if (seen->index.load() == 0) {
        seen->index = index;
        seen->empty_command = command.empty();
        seen->term = term;
      }
    });
    while (node.commit_index() < 1) pump(node);
    EXPECT_EQ(node.role(), RaftRole::kLeader);
    const auto* noop = node.entry(1);
    ASSERT_NE(noop, nullptr);
    EXPECT_TRUE(noop->command.empty());
    EXPECT_EQ(noop->term, node.current_term());
    EXPECT_TRUE(machine.applied().empty());  // no-ops bypass the machine
  });
  SchedulerOptions options;
  options.seed = 2;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;
  // The first applied entry is the barrier itself: index 1, empty command,
  // stamped with the leader's term.
  EXPECT_EQ(seen->index.load(), 1u);
  EXPECT_TRUE(seen->empty_command.load());
  EXPECT_EQ(seen->term.load(), 1u);
}

// ------------------------------- linearizability: safe vs unsafe commit

/// The partition scenario as a RunPlan: a leader is elected, isolated,
/// accepts (or times out on) a put, the majority elects a replacement that
/// serves a read after healing. With the correct commit rule the put
/// either commits through a quorum or stays pending; with
/// unsafe_early_commit the isolated leader acknowledges the put and the
/// later read misses it — a linearizability violation.
testkit::RunPlan make_partition_kv_plan(
    bool unsafe, std::shared_ptr<testkit::HistoryRecorder> recorder) {
  constexpr int kRanks = 3;
  struct Shared {
    std::atomic<int> first_leader{-1};
    std::atomic<int> second_leader{-1};
    std::atomic<bool> put_done{false};
    std::atomic<bool> healed{false};
    std::atomic<bool> read_done{false};
    std::atomic<int> done{0};
  };
  auto shared = std::make_shared<Shared>();
  auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);
  auto injector = std::make_shared<FaultInjector>(FaultConfig{});
  auto world = std::make_shared<World>(kRanks);
  world->set_fault_injector(injector);

  testkit::RunPlan plan;
  plan.threads = world->rank_bodies([shared, storage, injector, recorder,
                                     unsafe, world](Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 404;
    cfg.raft.unsafe_early_commit = unsafe;
    cfg.op_timeout_ms = 60.0;
    dist::ReplicatedKV kv(comm, (*storage)[static_cast<std::size_t>(rank)],
                          cfg);
    kv.set_recorder(recorder.get());
    auto spin = [&] {
      kv.step();
      testkit::poll_pause("kv.pump", 0.5e-3);
    };

    while (shared->first_leader.load() == -1) {
      if (kv.is_leader()) shared->first_leader = rank;
      spin();
    }
    if (rank == shared->first_leader.load()) {
      std::vector<int> rest;
      for (int r = 0; r < kRanks; ++r) {
        if (r != rank) rest.push_back(r);
      }
      injector->partition({{rank}, rest});
      const auto res = kv.put("k", "lost");
      if (unsafe) {
        // The bug in action: acknowledged with no quorum.
        EXPECT_TRUE(res.ok());
      }
      shared->put_done = true;
      while (!shared->healed.load()) spin();
    } else {
      while (!shared->put_done.load()) spin();
      while (shared->second_leader.load() == -1) {
        if (kv.is_leader()) shared->second_leader = rank;
        spin();
      }
      if (rank == shared->second_leader.load()) {
        injector->heal();
        shared->healed = true;
        const auto res = kv.get("k");
        EXPECT_NE(res.status, dist::KvResult::Status::kTimeout);
        shared->read_done = true;
      }
    }
    bool counted = false;
    while (shared->done.load() < kRanks) {
      if (!counted && shared->read_done.load()) {
        ++shared->done;
        counted = true;
      }
      spin();
    }
  });
  plan.check = [recorder] {
    const auto report =
        testkit::LinearizabilityChecker{}.check(recorder->history());
    return report.linearizable() ? std::string{} : report.describe();
  };
  return plan;
}

TEST(RaftLinearizability, SafeCommitSurvivesPartitionScenario) {
  testkit::ExplorerConfig config;
  config.iterations = 2;
  config.max_steps = 1u << 22;
  testkit::ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    return make_partition_kv_plan(/*unsafe=*/false,
                                  std::make_shared<testkit::HistoryRecorder>());
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
}

TEST(RaftLinearizability, UnsafeEarlyCommitIsCaughtWithReplayableTrace) {
  testkit::ExplorerConfig config;
  config.iterations = 3;
  config.max_steps = 1u << 22;
  testkit::ScheduleExplorer explorer(config);
  auto make_run = [] {
    return make_partition_kv_plan(/*unsafe=*/true,
                                  std::make_shared<testkit::HistoryRecorder>());
  };
  const auto result = explorer.explore(make_run);
  ASSERT_TRUE(result.failure_found);
  EXPECT_NE(result.failure.find("no linearization exists"), std::string::npos)
      << result.failure;
  // The acceptance bar: the violating seed replays bit-identically, minimal
  // trace included, so the broken interleaving can be studied offline.
  std::string failure1;
  std::string failure2;
  const auto replay1 = explorer.replay(result.failing_seed, make_run, &failure1);
  const auto replay2 = explorer.replay(result.failing_seed, make_run, &failure2);
  EXPECT_EQ(failure1, failure2);
  EXPECT_FALSE(failure1.empty());
  EXPECT_EQ(replay1.format_trace(), replay2.format_trace());
  EXPECT_EQ(replay1.format_minimal_trace(), replay2.format_minimal_trace());
}

// --------------------------------------- faulty sweep stays linearizable

TEST(RaftLinearizability, KvSweepUnderMessageFaultsStaysLinearizable) {
  testkit::ExplorerConfig config;
  config.iterations = 3;
  config.max_steps = 1u << 22;
  testkit::ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    constexpr int kRanks = 3;
    auto recorder = std::make_shared<testkit::HistoryRecorder>();
    auto storage = std::make_shared<std::vector<RaftPersistentState>>(kRanks);
    auto done = std::make_shared<std::atomic<int>>(0);
    auto world = std::make_shared<World>(kRanks);
    FaultConfig faults;
    faults.drop = 0.1;
    faults.duplicate = 0.05;
    faults.reorder = 0.05;
    faults.seed = 99;
    world->set_fault_injector(std::make_shared<FaultInjector>(faults));

    testkit::RunPlan plan;
    plan.threads = world->rank_bodies([recorder, storage, done,
                                       world](Communicator& comm) {
      const auto rank = comm.rank();
      dist::KvConfig cfg;
      cfg.raft.seed = 7;
      cfg.op_timeout_ms = 200.0;
      dist::ReplicatedKV kv(comm, (*storage)[static_cast<std::size_t>(rank)],
                            cfg);
      kv.set_recorder(recorder.get());
      const std::string key = rank % 2 == 0 ? "even" : "odd";
      (void)kv.put(key, "r" + std::to_string(rank));
      (void)kv.get(key);
      ++*done;
      while (done->load() < kRanks) {
        kv.step();
        testkit::poll_pause("kv.pump", 0.5e-3);
      }
    });
    plan.check = [recorder] {
      const auto report =
          testkit::LinearizabilityChecker{}.check(recorder->history());
      return report.linearizable() ? std::string{} : report.describe();
    };
    return plan;
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
}

}  // namespace
