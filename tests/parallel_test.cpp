// Tests for pdc::parallel: thread pool, work stealing, parallel_for
// schedules, reductions, scans, task graph analytics, parallel sorts.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "concurrency/barrier.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/sort.hpp"
#include "parallel/task.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "support/rng.hpp"

namespace {

using namespace pdc::parallel;

// --------------------------------------------------------------------- Task

TEST(Task, InvokesHeldCallable) {
  int hits = 0;
  Task task([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(task));
  task();
  EXPECT_EQ(hits, 1);
}

TEST(Task, DefaultConstructedIsEmpty) {
  Task task;
  EXPECT_FALSE(static_cast<bool>(task));
}

TEST(Task, MoveTransfersOwnership) {
  int hits = 0;
  Task a([&hits] { ++hits; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(Task, CarriesMoveOnlyState) {
  // std::function could never hold this closure (it requires copyability).
  auto value = std::make_unique<int>(41);
  std::atomic<int> seen{0};
  Task task([v = std::move(value), &seen] { seen = *v + 1; });
  task();
  EXPECT_EQ(seen.load(), 42);
}

TEST(Task, SmallClosuresStayInline) {
  auto small = [] {};
  struct Big {
    std::array<std::byte, Task::kInlineBytes + 8> payload;
    void operator()() const {}
  };
  EXPECT_TRUE(Task::stored_inline<decltype(small)>());
  EXPECT_FALSE(Task::stored_inline<Big>());
}

TEST(Task, OversizedClosureFallsBackToHeapAndStillRuns) {
  struct Big {
    std::array<std::int64_t, 16> values{};
    std::atomic<std::int64_t>* out;
    void operator()() {
      std::int64_t sum = 0;
      for (auto v : values) sum += v;
      out->store(sum);
    }
  };
  static_assert(sizeof(Big) > Task::kInlineBytes);
  std::atomic<std::int64_t> out{0};
  Big big;
  big.values.fill(3);
  big.out = &out;
  Task task(std::move(big));
  Task moved(std::move(task));  // heap target must survive relocation
  moved();
  EXPECT_EQ(out.load(), 48);
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, InsideWorkerDetection) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.inside_worker());
  auto f = pool.submit([&] { return pool.inside_worker(); });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.post([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultPoolIsUsable) {
  auto f = default_pool().submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, PostFireAndForgetSynchronizedByLatch) {
  ThreadPool pool(2);
  pdc::concurrency::CountdownLatch latch(64);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.post([&] {
      ++count;
      latch.count_down();
    }).is_ok());
  }
  latch.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, PostedWorkRunsInsideWorker) {
  ThreadPool pool(1);
  pdc::concurrency::CountdownLatch latch(1);
  std::atomic<bool> inside{false};
  ASSERT_TRUE(pool.post([&] {
    inside = pool.inside_worker();
    latch.count_down();
  }).is_ok());
  latch.wait();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(pool.inside_worker());
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) (void)pool.post([&] { ++count; });
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a crash
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsDocumentedError) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }),
               pdc::support::CheckFailure);
}

TEST(ThreadPool, PostAfterShutdownReturnsClosed) {
  ThreadPool pool(1);
  pool.shutdown();
  const auto status = pool.post([] {});
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), pdc::support::StatusCode::kClosed);
}

// ------------------------------------------------------------ work stealing

TEST(WorkStealing, RunsAllSpawnedTasks) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.spawn([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(WorkStealing, NestedSpawnsComplete) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.spawn([&] {
      for (int j = 0; j < 10; ++j) pool.spawn([&] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealing, SizeOnePoolStillJoinsForks) {
  WorkStealingPool pool(1);
  std::vector<int> v(20000);
  pdc::support::Rng rng(3);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(0, 1 << 20));
  parallel_merge_sort(pool, v, 256);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// ------------------------------------------------------------- parallel_for

class ScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&](std::size_t i) { ++hits[i]; },
               {.schedule = GetParam()});
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ScheduleTest, RespectsExplicitChunk) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for_chunks(
      pool, 10, 110,
      [&](std::size_t lo, std::size_t hi) {
        if (GetParam() == Schedule::kGuided) {
          // For guided, `chunk` is the minimum grab (OpenMP semantics);
          // only the final chunk may be smaller.
          EXPECT_TRUE(hi - lo >= 7u || hi == 110u);
        } else {
          EXPECT_LE(hi - lo, 7u);
        }
        for (std::size_t i = lo; i < hi; ++i) sum += static_cast<long>(i);
      },
      {.schedule = GetParam(), .chunk = 7});
  EXPECT_EQ(sum.load(), (10 + 109) * 100 / 2);
}

TEST_P(ScheduleTest, HandlesEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; },
               {.schedule = GetParam()});
  EXPECT_FALSE(ran);
}

TEST_P(ScheduleTest, SingleIteration) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  }, {.schedule = GetParam()});
  EXPECT_EQ(count.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleTest,
                         ::testing::Values(Schedule::kStatic,
                                           Schedule::kDynamic,
                                           Schedule::kGuided),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, WorksFromInsideAWorker) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  auto f = outer.submit([&] {
    std::atomic<int> n{0};
    parallel_for(inner, 0, 100, [&](std::size_t) { ++n; });
    return n.load();
  });
  EXPECT_EQ(f.get(), 100);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const auto sum = parallel_reduce<long>(
      pool, 1, 100001, 0, [](std::size_t i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 100000L * 100001 / 2);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  std::vector<int> v(5000);
  pdc::support::Rng rng(5);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(0, 1 << 30));
  v[3777] = (1 << 30) + 5;
  const int top = parallel_reduce<int>(
      pool, 0, v.size(), 0, [&](std::size_t i) { return v[i]; },
      [](int a, int b) { return std::max(a, b); },
      {.schedule = Schedule::kDynamic, .chunk = 64});
  EXPECT_EQ(top, (1 << 30) + 5);
}

TEST(ParallelScan, MatchesSerialPrefixSum) {
  ThreadPool pool(4);
  std::vector<long> v(12345);
  std::iota(v.begin(), v.end(), 1);
  auto expected = v;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  parallel_inclusive_scan(pool, v, [](long a, long b) { return a + b; });
  EXPECT_EQ(v, expected);
}

TEST(ParallelScan, SingleElementAndEmpty) {
  ThreadPool pool(2);
  std::vector<int> empty;
  parallel_inclusive_scan(pool, empty, [](int a, int b) { return a + b; });
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  parallel_inclusive_scan(pool, one, [](int a, int b) { return a + b; });
  EXPECT_EQ(one[0], 9);
}

TEST(ParallelTransform, MapsEveryElement) {
  ThreadPool pool(3);
  std::vector<int> in(1000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<long> out;
  parallel_transform(pool, in, out, [](int x) { return long{x} * x; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<long>(i) * static_cast<long>(i));
  }
}

// --------------------------------------------------------------- task graph

TEST(TaskGraph, RunsRespectingDependencies) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<int> stage{0};
  const auto a = graph.add_task("a", 1, [&] { EXPECT_EQ(stage.exchange(1), 0); });
  const auto b = graph.add_task("b", 1, [&] { EXPECT_GE(stage.load(), 1); });
  const auto c = graph.add_task("c", 1, [&] { EXPECT_GE(stage.load(), 1); });
  const auto d = graph.add_task("d", 1, [&] { stage.store(2); });
  graph.add_dependency(a, b);
  graph.add_dependency(a, c);
  graph.add_dependency(b, d);
  graph.add_dependency(c, d);
  ASSERT_TRUE(graph.run(pool).is_ok());
  EXPECT_EQ(stage.load(), 2);
  // Completion order is a topological order.
  const auto order = graph.last_completion_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), a);
  EXPECT_EQ(order.back(), d);
}

TEST(TaskGraph, DetectsCycle) {
  ThreadPool pool(2);
  TaskGraph graph;
  const auto a = graph.add_task("a");
  const auto b = graph.add_task("b");
  graph.add_dependency(a, b);
  graph.add_dependency(b, a);
  EXPECT_FALSE(graph.is_acyclic());
  EXPECT_EQ(graph.run(pool).code(), pdc::support::StatusCode::kFailedPrecondition);
}

TEST(TaskGraph, WorkSpanParallelism) {
  TaskGraph graph;
  // Diamond: a(2) -> {b(3), c(5)} -> d(1).
  const auto a = graph.add_task("a", 2);
  const auto b = graph.add_task("b", 3);
  const auto c = graph.add_task("c", 5);
  const auto d = graph.add_task("d", 1);
  graph.add_dependency(a, b);
  graph.add_dependency(a, c);
  graph.add_dependency(b, d);
  graph.add_dependency(c, d);
  EXPECT_DOUBLE_EQ(graph.work(), 11.0);
  EXPECT_DOUBLE_EQ(graph.span(), 8.0);  // a -> c -> d
  EXPECT_DOUBLE_EQ(graph.parallelism(), 11.0 / 8.0);
  const auto path = graph.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], c);
  EXPECT_EQ(path[2], d);
}

TEST(TaskGraph, ChainHasParallelismOne) {
  TaskGraph graph;
  TaskId prev = graph.add_task("t0", 1);
  for (int i = 1; i < 10; ++i) {
    const TaskId next = graph.add_task("t" + std::to_string(i), 1);
    graph.add_dependency(prev, next);
    prev = next;
  }
  EXPECT_DOUBLE_EQ(graph.parallelism(), 1.0);
  EXPECT_EQ(graph.critical_path().size(), 10u);
}

TEST(TaskGraph, IndependentTasksFullyParallel) {
  TaskGraph graph;
  for (int i = 0; i < 8; ++i) graph.add_task("t", 2);
  EXPECT_DOUBLE_EQ(graph.work(), 16.0);
  EXPECT_DOUBLE_EQ(graph.span(), 2.0);
  EXPECT_DOUBLE_EQ(graph.parallelism(), 8.0);
}

TEST(TaskGraph, SimulatedMakespanRespectsBrentBounds) {
  TaskGraph graph;
  pdc::support::Rng rng(9);
  // Random layered DAG.
  std::vector<TaskId> previous_layer;
  for (int layer = 0; layer < 6; ++layer) {
    std::vector<TaskId> current;
    for (int i = 0; i < 8; ++i) {
      current.push_back(graph.add_task("t", rng.uniform(0.5, 2.0)));
    }
    for (TaskId task : current) {
      for (TaskId prev : previous_layer) {
        if (rng.bernoulli(0.3)) graph.add_dependency(prev, task);
      }
    }
    previous_layer = current;
  }
  const double work = graph.work();
  const double span = graph.span();
  for (std::size_t p : {1, 2, 4, 8, 64}) {
    const double makespan = graph.simulated_makespan(p);
    EXPECT_GE(makespan + 1e-9, std::max(work / static_cast<double>(p), span));
    EXPECT_LE(makespan, work / static_cast<double>(p) + span + 1e-9);
  }
  // One processor executes exactly the total work; infinite processors hit
  // the span.
  EXPECT_DOUBLE_EQ(graph.simulated_makespan(1), work);
  EXPECT_DOUBLE_EQ(graph.simulated_makespan(1000), span);
}

TEST(TaskGraph, SimulatedMakespanMonotoneInProcessors) {
  TaskGraph graph;
  for (int i = 0; i < 16; ++i) graph.add_task("t", 1.0 + i % 3);
  double previous = graph.simulated_makespan(1);
  for (std::size_t p : {2, 3, 4, 8}) {
    const double makespan = graph.simulated_makespan(p);
    EXPECT_LE(makespan, previous + 1e-9);
    previous = makespan;
  }
}

TEST(TaskGraph, TaskExceptionPropagates) {
  ThreadPool pool(2);
  TaskGraph graph;
  graph.add_task("ok", 1, [] {});
  graph.add_task("bad", 1, [] { throw std::runtime_error("task failed"); });
  EXPECT_THROW((void)graph.run(pool), std::runtime_error);
}

TEST(TaskGraph, WideGraphRuns) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<int> ran{0};
  const auto root = graph.add_task("root", 1, [&] { ++ran; });
  const auto sink = graph.add_task("sink", 1, [&] { ++ran; });
  for (int i = 0; i < 200; ++i) {
    const auto mid = graph.add_task("m", 1, [&] { ++ran; });
    graph.add_dependency(root, mid);
    graph.add_dependency(mid, sink);
  }
  ASSERT_TRUE(graph.run(pool).is_ok());
  EXPECT_EQ(ran.load(), 202);
}

// ----------------------------------------------------------------- pipeline

TEST(Pipeline, AppliesStagesInOrder) {
  Pipeline<int> pipeline;
  pipeline.add_stage([](int x) { return x + 1; })
      .add_stage([](int x) { return x * 10; })
      .add_stage([](int x) { return x - 3; });
  std::vector<int> inputs{0, 1, 2, 3};
  const auto outputs = pipeline.run(inputs);
  EXPECT_EQ(outputs, (std::vector<int>{7, 17, 27, 37}));  // ((x+1)*10)-3
}

TEST(Pipeline, PreservesItemOrder) {
  Pipeline<int> pipeline(4);
  pipeline.add_stage([](int x) { return x; }).add_stage([](int x) { return x; });
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  const auto outputs = pipeline.run(inputs);
  EXPECT_EQ(outputs, inputs);
}

TEST(Pipeline, StagesRunConcurrently) {
  // With sleep-bound stages, pipelined wall time approaches the slowest
  // stage's total rather than the sum of all stages.
  using namespace std::chrono_literals;
  Pipeline<int> pipeline;
  pipeline.add_stage([](int x) {
    std::this_thread::sleep_for(2ms);
    return x;
  });
  pipeline.add_stage([](int x) {
    std::this_thread::sleep_for(2ms);
    return x;
  });
  std::vector<int> inputs(20, 1);
  pdc::support::Stopwatch clock;
  (void)pipeline.run(inputs);
  const double elapsed = clock.elapsed_millis();
  // Serial would be ≥ 80ms; pipelined should be well under.
  EXPECT_LT(elapsed, 70.0);
  ASSERT_EQ(pipeline.stage_busy_seconds().size(), 2u);
  EXPECT_GT(pipeline.stage_busy_seconds()[0], 0.0);
}

TEST(Pipeline, StringsAndEmptyInput) {
  Pipeline<std::string> pipeline;
  pipeline.add_stage([](std::string s) { return s + "!"; });
  EXPECT_TRUE(pipeline.run({}).empty());
  const auto out = pipeline.run({"a", "b"});
  EXPECT_EQ(out, (std::vector<std::string>{"a!", "b!"}));
}

TEST(Pipeline, NoStagesIsACheckFailure) {
  Pipeline<int> pipeline;
  EXPECT_THROW((void)pipeline.run({1}), pdc::support::CheckFailure);
}

// -------------------------------------------------------------------- sorts

struct SortCase {
  const char* name;
  std::size_t n;
  std::size_t cutoff;
};

class ParallelSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ParallelSortTest, MergeSortSorts) {
  const auto [name, n, cutoff] = GetParam();
  WorkStealingPool pool(3);
  pdc::support::Rng rng(42);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-1000000, 1000000));
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_merge_sort(pool, v, cutoff);
  EXPECT_EQ(v, expected);
}

TEST_P(ParallelSortTest, QuickSortSorts) {
  const auto [name, n, cutoff] = GetParam();
  WorkStealingPool pool(3);
  pdc::support::Rng rng(43);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-1000000, 1000000));
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_quick_sort(pool, v, cutoff);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ParallelSortTest,
    ::testing::Values(SortCase{"tiny", 10, 4}, SortCase{"small", 1000, 64},
                      SortCase{"medium", 50000, 512},
                      SortCase{"fine_grain", 20000, 32}),
    [](const auto& info) { return info.param.name; });

TEST(ParallelSort, HandlesDuplicatesAndSortedInput) {
  WorkStealingPool pool(2);
  std::vector<int> dup(10000, 7);
  parallel_quick_sort(pool, dup, 128);
  EXPECT_TRUE(std::is_sorted(dup.begin(), dup.end()));

  std::vector<int> sorted(10000);
  std::iota(sorted.begin(), sorted.end(), 0);
  auto expected = sorted;
  parallel_merge_sort(pool, sorted, 128);
  EXPECT_EQ(sorted, expected);

  std::vector<int> reverse(10000);
  std::iota(reverse.begin(), reverse.end(), 0);
  std::reverse(reverse.begin(), reverse.end());
  parallel_quick_sort(pool, reverse, 128);
  EXPECT_TRUE(std::is_sorted(reverse.begin(), reverse.end()));
}

TEST(ParallelSort, CustomComparator) {
  WorkStealingPool pool(2);
  std::vector<int> v{5, 3, 9, 1, 4};
  parallel_merge_sort(pool, v, 2, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

// ------------------------------------------------- lock-free scheduler path

// External (non-worker) posts travel through the bounded injection queue;
// flooding it far past its capacity must apply backpressure, not drop work.
TEST(ThreadPool, ExternalFloodBeyondInjectionCapacityRunsEverything) {
  ThreadPool pool(2);
  constexpr int kTasks = 10000;  // > injection capacity (4096)
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.post([&count] { count.fetch_add(1); }).is_ok());
  }
  pool.shutdown();  // drains before joining
  EXPECT_EQ(count.load(), kTasks);
}

// Worker-side posts go to the poster's own deque (unbounded), so recursive
// task trees can always make progress even on a single worker.
TEST(ThreadPool, RecursivePostsFromWorkersComplete) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::function<void(int)> spawn_tree = [&](int depth) {
    count.fetch_add(1);
    if (depth == 0) return;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(pool.post([&, depth] { spawn_tree(depth - 1); }).is_ok());
    }
  };
  ASSERT_TRUE(pool.post([&] { spawn_tree(9); }).is_ok());
  // Wait for the tree before shutdown: posts from workers after close are
  // refused (kClosed), exactly like the old pool's closed queue.
  constexpr int kExpected = (1 << 10) - 1;  // full binary tree, 10 levels
  while (count.load() < kExpected) std::this_thread::yield();
  pool.shutdown();
  EXPECT_EQ(count.load(), kExpected);
}

TEST(WorkStealing, ExternalSpawnFloodBeyondInjectionCapacity) {
  WorkStealingPool pool(2);
  constexpr int kTasks = 10000;  // > injection capacity (4096)
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.spawn([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(WorkStealing, ParkedWorkersGaugeReturnsToZeroAfterWork) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.spawn([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
  // Workers may be parked (idle) or mid-ladder, but never more than exist.
  EXPECT_LE(pool.parked_workers(), pool.size());
}

TEST(Task, MoveOnlyClosureRunsOnThePool) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(123);
  std::atomic<int> seen{0};
  ASSERT_TRUE(
      pool.post([p = std::move(payload), &seen] { seen = *p; }).is_ok());
  pool.shutdown();
  EXPECT_EQ(seen.load(), 123);
}

}  // namespace
