// Tests for pdc::net: datagram and stream semantics under impairments,
// checksums/integrity, framing, ARQ correctness under loss, client-server
// threading models, RPC dispatch.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "net/arq.hpp"
#include "net/checksum.hpp"
#include "net/framing.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "support/rng.hpp"

namespace {

using namespace pdc::net;
using namespace std::chrono_literals;
using pdc::support::StatusCode;

NetConfig fast_net() {
  NetConfig config;
  config.latency_ms = 0.01;
  return config;
}

Bytes make_data(std::size_t n, std::uint64_t seed = 1) {
  pdc::support::Rng rng(seed);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return data;
}

// ---------------------------------------------------------------- datagrams

TEST(Datagram, DeliversPayloadAndSource) {
  Network net(2, fast_net());
  auto a = net.open_datagram(0, 100);
  auto b = net.open_datagram(1, 200);
  a->send_to(b->local(), to_bytes("ping"));
  const auto dgram = b->recv();
  ASSERT_TRUE(dgram.is_ok());
  EXPECT_EQ(to_string(dgram.value().payload), "ping");
  EXPECT_EQ(dgram.value().from, a->local());
}

TEST(Datagram, RecvTimesOutWhenNothingArrives) {
  Network net(1, fast_net());
  auto sock = net.open_datagram(0, 1);
  EXPECT_EQ(sock->recv_for(20ms).status().code(), StatusCode::kTimeout);
}

TEST(Datagram, LossDropsSomeDatagrams) {
  NetConfig config = fast_net();
  config.loss = 0.5;
  config.seed = 7;
  Network net(2, config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  for (int i = 0; i < 200; ++i) tx->send_to(rx->local(), to_bytes("x"));
  int received = 0;
  while (rx->recv_for(20ms).is_ok()) ++received;
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(net.dropped(), 200u - static_cast<unsigned>(received));
}

TEST(Datagram, DuplicationDeliversExtras) {
  NetConfig config = fast_net();
  config.duplicate = 1.0;  // every datagram twice
  Network net(2, config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  for (int i = 0; i < 10; ++i) tx->send_to(rx->local(), to_bytes("d"));
  int received = 0;
  while (rx->recv_for(20ms).is_ok()) ++received;
  EXPECT_EQ(received, 20);
}

TEST(Datagram, SendToUnboundAddressIsSilentlyDropped) {
  Network net(2, fast_net());
  auto tx = net.open_datagram(0, 1);
  tx->send_to(Address{1, 999}, to_bytes("void"));
  EXPECT_EQ(tx->recv_for(20ms).status().code(), StatusCode::kTimeout);
}

TEST(Datagram, DoubleBindIsACheckFailure) {
  Network net(1, fast_net());
  auto first = net.open_datagram(0, 5);
  EXPECT_THROW((void)net.open_datagram(0, 5), pdc::support::CheckFailure);
}

TEST(Datagram, PortFreedAfterSocketDestroyed) {
  Network net(1, fast_net());
  { auto temp = net.open_datagram(0, 5); }
  EXPECT_NO_THROW((void)net.open_datagram(0, 5));
}

// ------------------------------------------------------------------ streams

TEST(Stream, ConnectAcceptRoundTrip) {
  Network net(2, fast_net());
  auto listener = net.listen(1, 80);
  std::thread server([&] {
    auto conn = listener->accept();
    ASSERT_TRUE(conn.is_ok());
    auto request = conn.value().recv();
    ASSERT_TRUE(request.is_ok());
    EXPECT_EQ(to_string(request.value()), "hello");
    ASSERT_TRUE(conn.value().send_text("world").is_ok());
    conn.value().close();
  });
  auto client = net.connect(0, Address{1, 80});
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().send_text("hello").is_ok());
  auto reply = client.value().recv();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(to_string(reply.value()), "world");
  server.join();
}

TEST(Stream, ReliableInOrderUnderLossyConfig) {
  // Stream traffic must be unaffected by the datagram impairments.
  NetConfig config = fast_net();
  config.loss = 0.9;
  config.jitter_ms = 1.0;
  Network net(2, config);
  auto listener = net.listen(1, 80);
  std::thread server([&] {
    auto conn = listener->accept().value();
    Bytes all;
    for (;;) {
      auto chunk = conn.recv();
      if (!chunk.is_ok()) break;
      all.insert(all.end(), chunk.value().begin(), chunk.value().end());
    }
    EXPECT_EQ(all.size(), 100u * 64);
    // In-order: the i-th byte encodes i/64.
    for (std::size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(static_cast<unsigned>(all[i]), (i / 64) % 256) << i;
    }
  });
  auto client = net.connect(0, Address{1, 80}).value();
  for (unsigned i = 0; i < 100; ++i) {
    Bytes chunk(64, static_cast<std::byte>(i % 256));
    ASSERT_TRUE(client.send(chunk).is_ok());
  }
  client.close();
  server.join();
}

TEST(Stream, RecvExactWaitsForAllBytes) {
  Network net(2, fast_net());
  auto listener = net.listen(1, 80);
  std::thread server([&] {
    auto conn = listener->accept().value();
    conn.send(make_data(10));
    std::this_thread::sleep_for(10ms);
    conn.send(make_data(10, 2));
    conn.close();
  });
  auto client = net.connect(0, Address{1, 80}).value();
  auto data = client.recv_exact(20);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 20u);
  EXPECT_EQ(client.recv_exact(1).status().code(), StatusCode::kClosed);
  server.join();
}

TEST(Stream, ConnectToNothingFails) {
  Network net(2, fast_net());
  EXPECT_EQ(net.connect(0, Address{1, 4242}).status().code(),
            StatusCode::kNotFound);
}

TEST(Stream, ListenerShutdownUnblocksAccept) {
  Network net(1, fast_net());
  auto listener = net.listen(0, 80);
  std::thread acceptor([&] {
    EXPECT_EQ(listener->accept().status().code(), StatusCode::kClosed);
  });
  std::this_thread::sleep_for(10ms);
  listener->shutdown();
  acceptor.join();
}

// ------------------------------------------------------- checksums/security

TEST(Checksum, Fletcher16KnownValuesAndSensitivity) {
  EXPECT_EQ(fletcher16(to_bytes("abcde")), 0xC8F0);
  EXPECT_EQ(fletcher16(to_bytes("abcdef")), 0x2057);
  EXPECT_NE(fletcher16(to_bytes("abcdef")), fletcher16(to_bytes("abcdeg")));
}

TEST(Checksum, FnvDiffersAcrossInputs) {
  EXPECT_NE(fnv1a(to_bytes("a")), fnv1a(to_bytes("b")));
  EXPECT_EQ(fnv1a(to_bytes("same")), fnv1a(to_bytes("same")));
}

TEST(Integrity, KeyedTagDetectsTamperingAndWrongKey) {
  const Bytes msg = to_bytes("transfer 100 to alice");
  const std::uint64_t key = 0xdeadbeef;
  const auto tag = keyed_tag(key, msg);
  EXPECT_TRUE(verify_tag(key, msg, tag));
  EXPECT_FALSE(verify_tag(key, to_bytes("transfer 900 to alice"), tag));
  EXPECT_FALSE(verify_tag(key + 1, msg, tag));
}

TEST(Integrity, XorCipherRoundTripsAndScrambles) {
  const Bytes msg = to_bytes("secret payload");
  const auto encrypted = xor_cipher(42, msg);
  EXPECT_NE(encrypted, msg);
  EXPECT_EQ(xor_cipher(42, encrypted), msg);
  EXPECT_NE(xor_cipher(43, encrypted), msg);  // wrong key garbles
}

// ------------------------------------------------------------------ framing

TEST(Framing, MessageCodecRoundTrip) {
  Network net(2, fast_net());
  auto listener = net.listen(1, 80);
  std::thread server([&] {
    auto conn = listener->accept().value();
    for (int i = 0; i < 3; ++i) {
      auto msg = MessageCodec::recv_message(conn);
      ASSERT_TRUE(msg.is_ok());
      MessageCodec::send_message(conn, msg.value());  // echo
    }
    conn.close();
  });
  auto client = net.connect(0, Address{1, 80}).value();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5000}}) {
    const Bytes msg = make_data(n, n + 1);
    ASSERT_TRUE(MessageCodec::send_message(client, msg).is_ok());
    auto echo = MessageCodec::recv_message(client);
    ASSERT_TRUE(echo.is_ok());
    EXPECT_EQ(echo.value(), msg);
  }
  server.join();
}

TEST(Framing, FrameEncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = Frame::Type::kData;
  frame.seq = 12345;
  frame.final = true;
  frame.payload = make_data(100);
  const auto decoded = Frame::decode(frame.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, Frame::Type::kData);
  EXPECT_EQ(decoded->seq, 12345u);
  EXPECT_TRUE(decoded->final);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(Framing, CorruptedFrameRejected) {
  Frame frame;
  frame.payload = make_data(64);
  Bytes wire = frame.encode();
  wire[10] ^= std::byte{0xff};
  EXPECT_FALSE(Frame::decode(wire).has_value());
  Bytes truncated(wire.begin(), wire.begin() + 4);
  EXPECT_FALSE(Frame::decode(truncated).has_value());
}

// ---------------------------------------------------------------------- ARQ

class ArqLossTest : public ::testing::TestWithParam<double> {};

TEST_P(ArqLossTest, StopAndWaitDeliversExactly) {
  NetConfig config = fast_net();
  config.loss = GetParam();
  config.seed = 11;
  Network net(2, config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const Bytes data = make_data(16 * 1024);

  std::thread receiver_thread([&] {
    auto received = arq_receive(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  auto stats = arq_send_stop_and_wait(*tx, rx->local(), data, {});
  receiver_thread.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
  if (GetParam() == 0.0) {
    EXPECT_EQ(stats.value().retransmissions, 0u);
    EXPECT_DOUBLE_EQ(stats.value().efficiency(), 1.0);
  } else {
    EXPECT_GT(stats.value().retransmissions, 0u);
  }
}

TEST_P(ArqLossTest, GoBackNDeliversExactly) {
  NetConfig config = fast_net();
  config.loss = GetParam();
  config.seed = 13;
  Network net(2, config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const Bytes data = make_data(16 * 1024, 99);

  std::thread receiver_thread([&] {
    auto received = arq_receive(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  ArqConfig arq;
  arq.window = 8;
  auto stats = arq_send_go_back_n(*tx, rx->local(), data, arq);
  receiver_thread.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
}

TEST_P(ArqLossTest, SelectiveRepeatDeliversExactly) {
  NetConfig config = fast_net();
  config.loss = GetParam();
  config.seed = 17;
  Network net(2, config);
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  const Bytes data = make_data(16 * 1024, 55);

  std::thread receiver_thread([&] {
    auto received = arq_receive_selective(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  ArqConfig arq;
  arq.window = 8;
  auto stats = arq_send_selective_repeat(*tx, rx->local(), data, arq);
  receiver_thread.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
  if (GetParam() == 0.0) EXPECT_EQ(stats.value().retransmissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, ArqLossTest,
                         ::testing::Values(0.0, 0.05, 0.2),
                         [](const auto& info) {
                           return "loss" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

TEST(Arq, SelectiveRepeatRetransmitsLessThanGoBackN) {
  // At meaningful loss, SR resends only the lost frames while GBN resends
  // whole windows — the defining efficiency difference.
  NetConfig config = fast_net();
  config.loss = 0.1;
  config.seed = 23;
  const Bytes data = make_data(32 * 1024, 77);
  ArqConfig arq;
  arq.window = 16;

  Network net_gbn(2, config);
  auto tx1 = net_gbn.open_datagram(0, 1);
  auto rx1 = net_gbn.open_datagram(1, 2);
  std::thread r1([&] { (void)arq_receive(*rx1); });
  const auto gbn = arq_send_go_back_n(*tx1, rx1->local(), data, arq);
  r1.join();

  Network net_sr(2, config);
  auto tx2 = net_sr.open_datagram(0, 1);
  auto rx2 = net_sr.open_datagram(1, 2);
  std::thread r2([&] { (void)arq_receive_selective(*rx2); });
  const auto sr = arq_send_selective_repeat(*tx2, rx2->local(), data, arq);
  r2.join();

  ASSERT_TRUE(gbn.is_ok());
  ASSERT_TRUE(sr.is_ok());
  EXPECT_LT(sr.value().retransmissions, gbn.value().retransmissions);
  EXPECT_GT(sr.value().efficiency(), gbn.value().efficiency());
}

TEST(Arq, SelectiveRepeatZeroBytes) {
  Network net(2, fast_net());
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  std::thread receiver([&] {
    auto received = arq_receive_selective(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_TRUE(received.value().empty());
  });
  EXPECT_TRUE(arq_send_selective_repeat(*tx, rx->local(), {}, {}).is_ok());
  receiver.join();
}

TEST(Arq, GoBackNFasterThanStopAndWaitOnLatency) {
  // With 1ms one-way latency, stop-and-wait pays an RTT per frame while a
  // window of 16 pipelines them.
  NetConfig config;
  config.latency_ms = 1.0;
  Network net(2, config);
  const Bytes data = make_data(32 * 1024);

  auto run = [&](bool gbn) {
    auto tx = net.open_datagram(0, gbn ? 11 : 21);
    auto rx = net.open_datagram(1, gbn ? 12 : 22);
    std::thread receiver_thread([&] { (void)arq_receive(*rx); });
    ArqConfig arq;
    arq.window = 16;
    arq.timeout = 50ms;
    auto stats = gbn ? arq_send_go_back_n(*tx, rx->local(), data, arq)
                     : arq_send_stop_and_wait(*tx, rx->local(), data, arq);
    receiver_thread.join();
    return stats.value().seconds;
  };
  const double t_saw = run(false);
  const double t_gbn = run(true);
  EXPECT_LT(t_gbn * 2, t_saw);  // at least 2x from pipelining
}

TEST(Arq, ZeroByteTransferCompletes) {
  Network net(2, fast_net());
  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  std::thread receiver_thread([&] {
    auto received = arq_receive(*rx);
    ASSERT_TRUE(received.is_ok());
    EXPECT_TRUE(received.value().empty());
  });
  auto stats = arq_send_stop_and_wait(*tx, rx->local(), {}, {});
  receiver_thread.join();
  EXPECT_TRUE(stats.is_ok());
}

TEST(Arq, SenderGivesUpWithoutReceiver) {
  Network net(2, fast_net());
  auto tx = net.open_datagram(0, 1);
  ArqConfig config;
  config.timeout = 1ms;
  config.max_retries = 3;
  const auto stats =
      arq_send_stop_and_wait(*tx, Address{1, 999}, make_data(100), config);
  EXPECT_EQ(stats.status().code(), StatusCode::kTimeout);
}

// ---------------------------------------------------------------- readiness

TEST(ReadySet, WatchSignalsOnceUntilRearm) {
  Network net(2, fast_net());
  auto listener = net.listen(0, 80);
  auto client = net.connect(1, Address{0, 80});
  ASSERT_TRUE(client.is_ok());
  auto accepted = listener->accept();
  ASSERT_TRUE(accepted.is_ok());
  StreamSocket server = std::move(accepted).value();

  ReadySet ready;
  std::vector<std::uint64_t> tags;
  server.watch(&ready, 42);
  EXPECT_EQ(ready.poll(tags, 0ms), 0u);  // nothing buffered yet

  ASSERT_TRUE(client.value().send(to_bytes("a")).is_ok());
  tags.clear();
  ASSERT_EQ(ready.poll(tags, 1000ms), 1u);
  EXPECT_EQ(tags[0], 42u);

  // The tag is enqueued at most once between rearm()s: more data arriving
  // before the consumer rearms does not re-signal.
  ASSERT_TRUE(client.value().send(to_bytes("b")).is_ok());
  std::this_thread::sleep_for(5ms);
  tags.clear();
  EXPECT_EQ(ready.poll(tags, 0ms), 0u);

  Bytes buffer;
  const auto drained = server.try_recv_into(buffer);
  EXPECT_EQ(drained.bytes, 2u);
  EXPECT_FALSE(drained.closed);
  EXPECT_EQ(to_string(buffer), "ab");

  // Drained and rearmed: quiet until new bytes or a close arrive.
  server.rearm();
  tags.clear();
  EXPECT_EQ(ready.poll(tags, 0ms), 0u);
  client.value().close();
  tags.clear();
  ASSERT_EQ(ready.poll(tags, 1000ms), 1u);
  buffer.clear();
  EXPECT_TRUE(server.try_recv_into(buffer).closed);
  server.unwatch();
}

TEST(ReadySet, RearmResignalsWhenDataIsStillPending) {
  Network net(2, fast_net());
  auto listener = net.listen(0, 80);
  auto client = net.connect(1, Address{0, 80});
  ASSERT_TRUE(client.is_ok());
  StreamSocket server = std::move(listener->accept()).value();

  ReadySet ready;
  std::vector<std::uint64_t> tags;
  server.watch(&ready, 7);
  ASSERT_TRUE(client.value().send(to_bytes("xy")).is_ok());
  ASSERT_EQ(ready.poll(tags, 1000ms), 1u);

  // Consumer takes only part of the data (plain recv), then rearms: the
  // leftover byte must re-signal immediately — no lost wakeup.
  auto first = server.recv_exact(1);
  ASSERT_TRUE(first.is_ok());
  server.rearm();
  tags.clear();
  ASSERT_EQ(ready.poll(tags, 1000ms), 1u);
  EXPECT_EQ(tags[0], 7u);
  server.unwatch();
}

TEST(Stream, ConnectAsyncReportsMissingListenerInline) {
  Network net(2, fast_net());
  bool called = false;
  net.connect_async(0, Address{1, 9},
                    [&](pdc::support::Result<StreamSocket> result) {
                      called = true;
                      EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
                    });
  EXPECT_TRUE(called);
}

TEST(Stream, ConnectAsyncCompletesOffThread) {
  Network net(2, fast_net());
  auto listener = net.listen(1, 7);
  std::promise<pdc::support::Result<StreamSocket>> done;
  net.connect_async(0, Address{1, 7},
                    [&](pdc::support::Result<StreamSocket> result) {
                      done.set_value(std::move(result));
                    });
  auto client = done.get_future().get();
  ASSERT_TRUE(client.is_ok());
  auto server = listener->accept();
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(client.value().send(to_bytes("hi")).is_ok());
  auto got = server.value().recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "hi");
}

TEST(Stream, ImpairedStreamStaysReliableAndOrdered) {
  NetConfig config = fast_net();
  config.impair_streams = true;
  config.jitter_ms = 2.0;  // without an injector, jitter supplies the delays
  config.seed = 42;
  Network net(2, config);
  auto listener = net.listen(1, 5);
  auto client = net.connect(0, Address{1, 5});
  ASSERT_TRUE(client.is_ok());
  StreamSocket server = std::move(listener->accept()).value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        client.value().send(to_bytes("m" + std::to_string(i) + ";")).is_ok());
  }
  // Reliable in-order delivery even though each chunk drew its own delay:
  // the per-direction due-time clamp forbids overtaking.
  std::string all;
  while (all.size() < 4 * 50 - 60) {  // enough bytes that order would break
    auto got = server.recv();
    ASSERT_TRUE(got.is_ok());
    all += to_string(got.value());
  }
  std::string expect;
  for (int i = 0; expect.size() < all.size(); ++i) {
    expect += "m" + std::to_string(i) + ";";
  }
  EXPECT_EQ(all, expect.substr(0, all.size()));
}

// ------------------------------------------------- zero-copy frame scanning

TEST(Framing, ScanMessageParsesFramesInPlace) {
  Bytes wire;
  MessageCodec::encode_message(to_bytes("alpha"), wire);
  Bytes second;
  MessageCodec::encode_message(to_bytes("beta"), second);
  wire.insert(wire.end(), second.begin(), second.end());

  std::size_t offset = 0;
  BytesView view{};
  ASSERT_EQ(MessageCodec::scan_message(wire, offset, view),
            MessageCodec::Scan::kFrame);
  EXPECT_EQ(to_string(view.to_owned()), "alpha");
  ASSERT_EQ(MessageCodec::scan_message(wire, offset, view),
            MessageCodec::Scan::kFrame);
  EXPECT_EQ(to_string(view.to_owned()), "beta");
  EXPECT_EQ(MessageCodec::scan_message(wire, offset, view),
            MessageCodec::Scan::kNeedMore);
  EXPECT_EQ(offset, wire.size());
}

TEST(Framing, ScanMessageNeedsWholeHeaderAndBody) {
  Bytes wire;
  MessageCodec::encode_message(to_bytes("payload"), wire);
  BytesView view{};
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
    std::size_t offset = 0;
    EXPECT_EQ(MessageCodec::scan_message(partial, offset, view),
              MessageCodec::Scan::kNeedMore);
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Framing, ScanMessageFlagsCorruption) {
  Bytes wire;
  MessageCodec::encode_message(to_bytes("payload"), wire);
  wire.back() ^= std::byte{0x01};
  std::size_t offset = 0;
  BytesView view{};
  EXPECT_EQ(MessageCodec::scan_message(wire, offset, view),
            MessageCodec::Scan::kCorrupt);
}

// ------------------------------------------------------------ client-server

class ServerModelTest : public ::testing::TestWithParam<ThreadingModel> {};

TEST_P(ServerModelTest, EchoServesConcurrentClients) {
  Network net(4, fast_net());
  ServerConfig config;
  config.model = GetParam();
  config.workers = 3;
  Server server(net, 0, 80,
                [](const Bytes& request) { return request; }, config);

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 1; c <= 3; ++c) {
    clients.emplace_back([&, c] {
      Client client(net, c);
      ASSERT_TRUE(client.connect(server.address()).is_ok());
      for (int i = 0; i < 20; ++i) {
        const std::string msg = "c" + std::to_string(c) + "#" + std::to_string(i);
        auto reply = client.call_text(msg);
        ASSERT_TRUE(reply.is_ok());
        EXPECT_EQ(reply.value(), msg);
      }
      client.close();
      ++ok;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(server.requests_served(), 60u);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Models, ServerModelTest,
                         ::testing::Values(ThreadingModel::kThreadPerConnection,
                                           ThreadingModel::kWorkerPool,
                                           ThreadingModel::kEventDriven),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case ThreadingModel::kThreadPerConnection:
                               return "thread_per_conn";
                             case ThreadingModel::kWorkerPool:
                               return "worker_pool";
                             case ThreadingModel::kEventDriven:
                               return "event_driven";
                           }
                           return "unknown";
                         });

TEST(Server, WorkerPoolStopDrainsQueuedConnections) {
  Network net(6, fast_net());
  ServerConfig config;
  config.model = ThreadingModel::kWorkerPool;
  config.workers = 1;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> blocked{false};
  Server server(
      net, 0, 80,
      [&](const Bytes& request) {
        if (to_string(request) == "block") {
          blocked = true;
          released.wait();
        }
        return request;
      },
      config);

  // Occupy the only worker: its connection is held until the handler is
  // released, so everything after it waits in the accept queue.
  std::thread blocker([&] {
    Client client(net, 1);
    ASSERT_TRUE(client.connect(server.address()).is_ok());
    (void)client.call_text("block");  // reply races stop(); not asserted
  });
  while (!blocked.load()) std::this_thread::yield();

  // Four more clients connect and send complete frames; nobody serves them.
  std::vector<std::thread> waiters;
  std::atomic<int> ok{0};
  for (int c = 2; c <= 5; ++c) {
    waiters.emplace_back([&, c] {
      Client client(net, c);
      ASSERT_TRUE(client.connect(server.address()).is_ok());
      const std::string msg = "q" + std::to_string(c);
      auto reply = client.call_text(msg);
      if (reply.is_ok() && reply.value() == msg) ++ok;
    });
  }
  std::this_thread::sleep_for(50ms);  // frames reach the server's buffers

  // stop() must serve the queued connections' buffered requests before
  // tearing down — none of the four may be silently dropped.
  std::thread stopper([&] { server.stop(); });
  std::this_thread::sleep_for(10ms);
  release.set_value();
  stopper.join();
  blocker.join();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(ok.load(), 4);
}

TEST(Server, EventDrivenViewHandlerEchoes) {
  Network net(3, fast_net());
  ServerConfig config;
  config.model = ThreadingModel::kEventDriven;
  config.workers = 2;
  config.view_handler = [](BytesView request) { return request.to_owned(); };
  Server server(net, 0, 80, nullptr, config);
  Client client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  for (int i = 0; i < 10; ++i) {
    const std::string msg = "zero-copy#" + std::to_string(i);
    auto reply = client.call_text(msg);
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(reply.value(), msg);
  }
  client.close();
  server.stop();
  EXPECT_EQ(server.requests_served(), 10u);
}

TEST(Server, StopUnblocksEverything) {
  Network net(2, fast_net());
  auto server = std::make_unique<Server>(
      net, 0, 80, [](const Bytes& b) { return b; });
  Client client(net, 1);
  ASSERT_TRUE(client.connect(server->address()).is_ok());
  ASSERT_TRUE(client.call(to_bytes("x")).is_ok());
  server->stop();
  server.reset();  // no hang
}

// ---------------------------------------------------------------------- RPC

TEST(Rpc, DispatchesRegisteredProcedures) {
  Network net(2, fast_net());
  RpcServer server(net, 0, 90);
  server.register_procedure("upper", [](const Bytes& in) {
    std::string s = to_string(in);
    for (auto& ch : s) ch = static_cast<char>(std::toupper(ch));
    return to_bytes(s);
  });
  server.register_procedure("len", [](const Bytes& in) {
    return to_bytes(std::to_string(in.size()));
  });

  RpcClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  EXPECT_EQ(client.call_text("upper", "hello").value(), "HELLO");
  EXPECT_EQ(client.call_text("len", "12345").value(), "5");
}

TEST(Rpc, UnknownProcedureReturnsNotFound) {
  Network net(2, fast_net());
  RpcServer server(net, 0, 90);
  RpcClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  EXPECT_EQ(client.call_text("nope", "x").status().code(), StatusCode::kNotFound);
}

TEST(Rpc, HandlerExceptionBecomesAbortedStatus) {
  Network net(2, fast_net());
  RpcServer server(net, 0, 90);
  server.register_procedure("boom", [](const Bytes&) -> Bytes {
    throw std::runtime_error("handler exploded");
  });
  RpcClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  const auto reply = client.call_text("boom", "");
  EXPECT_EQ(reply.status().code(), StatusCode::kAborted);
  EXPECT_NE(reply.status().message().find("exploded"), std::string::npos);
}

}  // namespace
