// Tests for pdc::core: taxonomy integrity, Table-I derivation from course
// templates, ABET checking against constructed and case-study programs,
// survey calibration to the paper's stated aggregates, CE2016/SE2014
// models vs Tables II/III, exemplar-registry completeness.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/bok.hpp"
#include "core/case_studies.hpp"
#include "core/competencies.hpp"
#include "core/curriculum.hpp"
#include "core/registry.hpp"
#include "core/survey.hpp"
#include "core/taxonomy.hpp"

namespace {

using namespace pdc::core;

// ----------------------------------------------------------------- taxonomy

TEST(Taxonomy, FourteenConceptsAsInTable1) {
  EXPECT_EQ(all_concepts().size(), 14u);
}

TEST(Taxonomy, FiveTable1Categories) {
  EXPECT_EQ(table1_categories().size(), 5u);
}

TEST(Taxonomy, EveryConceptHasNameAndPillar) {
  for (PdcConcept topic : all_concepts()) {
    EXPECT_STRNE(to_string(topic), "?");
    const Pillar pillar = pillar_of(topic);
    EXPECT_TRUE(pillar == Pillar::kConcurrency ||
                pillar == Pillar::kParallelism ||
                pillar == Pillar::kDistribution);
  }
}

TEST(Taxonomy, AllThreePillarsPopulated) {
  std::set<Pillar> seen;
  for (PdcConcept topic : all_concepts()) seen.insert(pillar_of(topic));
  EXPECT_EQ(seen.size(), 3u);
}

// ------------------------------------------------- Table I (from templates)

TEST(Table1, MatrixMatchesPaper) {
  // Spot-check the exact x-marks of Table I.
  using CC = CourseCategory;
  using C = PdcConcept;
  auto has = [](CC category, C topic) {
    return template_topics(category).count(topic) > 0;
  };
  // Programming with threads: SysProg, OS, Networks — not Org, not DB.
  EXPECT_TRUE(has(CC::kSystemsProgramming, C::kProgrammingWithThreads));
  EXPECT_TRUE(has(CC::kOperatingSystems, C::kProgrammingWithThreads));
  EXPECT_TRUE(has(CC::kComputerNetworks, C::kProgrammingWithThreads));
  EXPECT_FALSE(has(CC::kComputerOrganization, C::kProgrammingWithThreads));
  EXPECT_FALSE(has(CC::kDatabaseSystems, C::kProgrammingWithThreads));
  // Transactions: DB only.
  for (CC category : table1_categories()) {
    EXPECT_EQ(has(category, C::kTransactionsProcessing),
              category == CC::kDatabaseSystems);
  }
  // Parallelism and concurrency: all five.
  for (CC category : table1_categories()) {
    EXPECT_TRUE(has(category, C::kParallelismAndConcurrency));
  }
  // ILP / SIMD / Flynn / perf / multicore: Organization only.
  for (C topic : {C::kInstructionLevelParallelism, C::kSimdVectorProcessors,
                    C::kFlynnsTaxonomy, C::kPerformanceMeasurement,
                    C::kMulticoreProcessors}) {
    for (CC category : table1_categories()) {
      EXPECT_EQ(has(category, topic), category == CC::kComputerOrganization)
          << to_string(topic) << " vs " << to_string(category);
    }
  }
  // Client-server: SysProg + Networks.
  EXPECT_TRUE(has(CC::kSystemsProgramming, C::kClientServerProgramming));
  EXPECT_TRUE(has(CC::kComputerNetworks, C::kClientServerProgramming));
  EXPECT_FALSE(has(CC::kOperatingSystems, C::kClientServerProgramming));
  // Memory and caching: SysProg + Org + OS.
  EXPECT_TRUE(has(CC::kSystemsProgramming, C::kMemoryAndCaching));
  EXPECT_TRUE(has(CC::kComputerOrganization, C::kMemoryAndCaching));
  EXPECT_TRUE(has(CC::kOperatingSystems, C::kMemoryAndCaching));
  EXPECT_FALSE(has(CC::kComputerNetworks, C::kMemoryAndCaching));
}

TEST(Table1, EveryConceptAppearsInSomeColumn) {
  for (PdcConcept topic : all_concepts()) {
    bool anywhere = false;
    for (CourseCategory category : table1_categories()) {
      anywhere |= template_topics(category).count(topic) > 0;
    }
    EXPECT_TRUE(anywhere) << to_string(topic);
  }
}

// --------------------------------------------------------------- curriculum

TEST(Curriculum, RequiredCoverageIgnoresElectives) {
  Program program;
  Course elective = make_template_course(CourseCategory::kParallelProgramming,
                                         /*required=*/false);
  program.courses.push_back(elective);
  EXPECT_TRUE(program.required_coverage().empty());
  EXPECT_FALSE(program.has_dedicated_pdc_course());
}

TEST(Curriculum, DedicatedCourseDetected) {
  Program program;
  program.courses.push_back(
      make_template_course(CourseCategory::kParallelProgramming, true));
  EXPECT_TRUE(program.has_dedicated_pdc_course());
}

TEST(Curriculum, WeightedScoreGrowsWithCoverage) {
  Program narrow;
  narrow.courses.push_back(
      make_template_course(CourseCategory::kDatabaseSystems, true));
  Program broad = narrow;
  broad.courses.push_back(
      make_template_course(CourseCategory::kOperatingSystems, true));
  broad.courses.push_back(
      make_template_course(CourseCategory::kComputerNetworks, true));
  EXPECT_GT(broad.weighted_pdc_score(), narrow.weighted_pdc_score());
}

TEST(Abet, EmptyProgramFailsEverything) {
  const auto result = check_abet_cs(Program{});
  EXPECT_FALSE(result.compliant());
  EXPECT_FALSE(result.pdc);
  EXPECT_EQ(result.missing_pillars.size(), 3u);
}

TEST(Abet, BackboneProgramIsCompliant) {
  Program program;
  for (CourseCategory category :
       {CourseCategory::kComputerOrganization, CourseCategory::kOperatingSystems,
        CourseCategory::kDatabaseSystems, CourseCategory::kComputerNetworks}) {
    program.courses.push_back(make_template_course(category, true));
  }
  const auto result = check_abet_cs(program);
  EXPECT_TRUE(result.compliant()) << "missing pillars: "
                                  << result.missing_pillars.size();
}

TEST(Abet, MissingDistributionPillarReported) {
  Program program;
  // OS + architecture only: concurrency + parallelism, but nothing
  // distribution-flavoured beyond what OS carries... strip those topics.
  Course os = make_template_course(CourseCategory::kOperatingSystems, true);
  os.topics.erase(PdcConcept::kInterProcessCommunication);
  os.topics.erase(PdcConcept::kSharedVsDistributedMemory);
  Course org = make_template_course(CourseCategory::kComputerOrganization, true);
  org.topics.erase(PdcConcept::kSharedVsDistributedMemory);
  program.courses.push_back(os);
  program.courses.push_back(org);
  program.courses.push_back(
      make_template_course(CourseCategory::kDatabaseSystems, true));
  const auto result = check_abet_cs(program);
  EXPECT_FALSE(result.pdc);
  ASSERT_EQ(result.missing_pillars.size(), 1u);
  EXPECT_EQ(result.missing_pillars[0], Pillar::kDistribution);
}

TEST(Abet, TopicsEmbeddedElsewhereSatisfyAreas) {
  // No networking course, but client-server taught in systems programming
  // (the flexibility §II-A describes).
  Program program;
  program.courses.push_back(
      make_template_course(CourseCategory::kSystemsProgramming, true));
  program.courses.push_back(
      make_template_course(CourseCategory::kComputerOrganization, true));
  program.courses.push_back(
      make_template_course(CourseCategory::kDatabaseSystems, true));
  const auto result = check_abet_cs(program);
  EXPECT_TRUE(result.networking);
  EXPECT_TRUE(result.operating_systems);  // threads+IPC+atomicity embedded
  EXPECT_TRUE(result.compliant());
}

// ------------------------------------------------------------- case studies

TEST(CaseStudies, AllThreeAreAbetCompliant) {
  for (const Program& program : case_study_programs()) {
    const auto result = check_abet_cs(program);
    EXPECT_TRUE(result.compliant()) << program.institution;
  }
}

TEST(CaseStudies, LauAndRitHaveDedicatedCourseAucDoesNot) {
  EXPECT_TRUE(lau_program().has_dedicated_pdc_course());
  EXPECT_TRUE(rit_program().has_dedicated_pdc_course());
  EXPECT_FALSE(auc_program().has_dedicated_pdc_course());
}

TEST(CaseStudies, AucDistributedSystemsIsElective) {
  const auto program = auc_program();
  bool found = false;
  for (const Course& course : program.courses) {
    if (course.category == CourseCategory::kDistributedSystems) {
      found = true;
      EXPECT_FALSE(course.required);  // required only for the CE program
    }
  }
  EXPECT_TRUE(found);
}

TEST(CaseStudies, CoverageSpansAllPillarsEverywhere) {
  for (const Program& program : case_study_programs()) {
    std::set<Pillar> pillars;
    for (PdcConcept topic : program.required_coverage()) {
      pillars.insert(pillar_of(topic));
    }
    EXPECT_EQ(pillars.size(), 3u) << program.institution;
  }
}

// ------------------------------------------------------------------- survey

TEST(Survey, TwentyProgramsOneDedicated) {
  const auto programs = generate_survey();
  EXPECT_EQ(programs.size(), 20u);
  std::size_t dedicated = 0;
  for (const Program& program : programs) {
    dedicated += program.has_dedicated_pdc_course();
  }
  EXPECT_EQ(dedicated, 1u);  // §III: "only one program had a dedicated
                             // parallel programming course"
}

TEST(Survey, EveryProgramIsAccredited) {
  for (const Program& program : generate_survey()) {
    EXPECT_TRUE(check_abet_cs(program).compliant()) << program.institution;
  }
}

TEST(Survey, GenerationIsDeterministic) {
  const auto a = generate_survey();
  const auto b = generate_survey();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].courses.size(), b[i].courses.size());
    EXPECT_EQ(a[i].weighted_pdc_score(), b[i].weighted_pdc_score());
  }
}

TEST(Survey, Fig2CountsAreSaneAndOrdered) {
  const auto programs = generate_survey();
  const auto counts = topic_program_counts(programs);
  EXPECT_EQ(counts.size(), all_concepts().size());
  for (const auto& [topic, count] : counts) {
    EXPECT_LE(count, programs.size()) << to_string(topic);
  }
  // "Parallelism and concurrency" rides every backbone course: everyone
  // covers it. Transactions too (DB is universal backbone).
  EXPECT_EQ(counts.at(PdcConcept::kParallelismAndConcurrency), 20u);
  // Dedicated-course-only reach: SIMD appears via Organization templates
  // too, so it's common — but client-server must beat SIMD? Not
  // necessarily; assert instead the structural floor: every topic that
  // survives in >0 programs.
  EXPECT_GT(counts.at(PdcConcept::kProgrammingWithThreads), 15u);
}

TEST(Survey, Fig3SharesWithinRange) {
  const auto programs = generate_survey();
  const auto share = course_share_for_pdc(programs);
  for (const auto& [category, pct] : share) {
    EXPECT_GE(pct, 0.0);
    EXPECT_LE(pct, 100.0);
  }
  // Backbone categories carry PDC in (almost) every program; the dedicated
  // course in exactly one program = 5%.
  EXPECT_GT(share.at(CourseCategory::kOperatingSystems), 80.0);
  EXPECT_GT(share.at(CourseCategory::kComputerOrganization), 80.0);
  EXPECT_DOUBLE_EQ(share.at(CourseCategory::kParallelProgramming), 5.0);
}

TEST(Survey, WeightedScoresPositive) {
  const auto programs = generate_survey();
  const auto scores = weighted_scores(programs);
  EXPECT_EQ(scores.size(), 20u);
  for (const auto& [institution, score] : scores) {
    EXPECT_GT(score, 0.0) << institution;
  }
}

TEST(Survey, ConfigurableCohortSize) {
  SurveyConfig config;
  config.programs = 5;
  config.dedicated_course_programs = 2;
  config.seed = 7;
  const auto programs = generate_survey(config);
  EXPECT_EQ(programs.size(), 5u);
  std::size_t dedicated = 0;
  for (const auto& program : programs) {
    dedicated += program.has_dedicated_pdc_course();
  }
  EXPECT_EQ(dedicated, 2u);
}

TEST(Survey, BothApproachesViable) {
  // §VI: "Both approaches are viable and meet the current ABET criteria."
  const auto comparison = compare_approaches(generate_survey());
  EXPECT_EQ(comparison.dedicated_programs, 1u);
  EXPECT_EQ(comparison.scattered_programs, 19u);
  EXPECT_DOUBLE_EQ(comparison.dedicated_compliance_rate, 1.0);
  EXPECT_DOUBLE_EQ(comparison.scattered_compliance_rate, 1.0);
  // A dedicated course adds topics on top of the backbone: more breadth.
  EXPECT_GE(comparison.dedicated_mean_breadth, comparison.scattered_mean_breadth);
}

TEST(Survey, CaseStudiesSpanBothApproaches) {
  const auto comparison = compare_approaches(case_study_programs());
  EXPECT_EQ(comparison.dedicated_programs, 2u);   // LAU, RIT
  EXPECT_EQ(comparison.scattered_programs, 1u);   // AUC
  EXPECT_DOUBLE_EQ(comparison.dedicated_compliance_rate, 1.0);
  EXPECT_DOUBLE_EQ(comparison.scattered_compliance_rate, 1.0);
}

// ----------------------------------------------------------- CC2020

TEST(Competencies, SixAsQuotedInThePaper) {
  EXPECT_EQ(cc2020_competencies().size(), 6u);
}

TEST(Competencies, CoverAllThreePillars) {
  std::set<Pillar> pillars;
  for (const auto& competency : cc2020_competencies()) {
    pillars.insert(competency.pillar);
  }
  EXPECT_EQ(pillars.size(), 3u);
}

TEST(Competencies, ExemplarModulesExistOnDisk) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(__FILE__).parent_path().parent_path() / "src";
  for (const auto& competency : cc2020_competencies()) {
    EXPECT_TRUE(fs::exists(src / competency.module)) << competency.name;
    EXPECT_FALSE(competency.test.empty());
    EXPECT_FALSE(competency.description.empty());
  }
}

// ---------------------------------------------------------------------- BoK

TEST(Bok, Ce2016HasTwelveAreas) { EXPECT_EQ(ce2016().size(), 12u); }

TEST(Bok, Se2014HasTenAreas) { EXPECT_EQ(se2014().size(), 10u); }

TEST(Bok, Table2AreasMatchPaper) {
  const auto areas = pdc_areas(ce2016());
  ASSERT_EQ(areas.size(), 4u);
  std::set<std::string> names;
  for (const auto* area : areas) names.insert(area->name);
  EXPECT_TRUE(names.count("Computing Algorithms"));
  EXPECT_TRUE(names.count("Computer Architecture and Organization"));
  EXPECT_TRUE(names.count("Systems Resource Management"));
  EXPECT_TRUE(names.count("Software Design"));
  // Architecture area carries TWO PDC core units (Table II).
  for (const auto* area : areas) {
    if (area->name == "Computer Architecture and Organization") {
      EXPECT_EQ(area->pdc_core_units().size(), 2u);
    }
  }
}

TEST(Bok, Table3TopicsAtApplicationLevel) {
  const auto areas = pdc_areas(se2014());
  ASSERT_EQ(areas.size(), 1u);
  EXPECT_EQ(areas[0]->name, "Computing Essentials");
  const auto units = areas[0]->pdc_core_units();
  ASSERT_EQ(units.size(), 2u);
  for (const auto& unit : units) {
    EXPECT_EQ(unit.level, CognitiveLevel::kApplication);
    EXPECT_TRUE(unit.core);
  }
}

// ----------------------------------------------------------------- registry

TEST(Registry, EveryConceptHasAnExemplar) {
  for (PdcConcept topic : all_concepts()) {
    const auto& exemplars = exemplars_for(topic);
    EXPECT_FALSE(exemplars.empty()) << to_string(topic);
    for (const Exemplar& exemplar : exemplars) {
      EXPECT_FALSE(exemplar.module.empty());
      EXPECT_FALSE(exemplar.description.empty());
      EXPECT_FALSE(exemplar.test.empty());
    }
  }
}

TEST(Registry, ModulePathsExistOnDisk) {
  // The registry must not drift from the source tree.
  namespace fs = std::filesystem;
  const fs::path src = fs::path(__FILE__).parent_path().parent_path() / "src";
  for (const auto& [topic, exemplars] : exemplar_registry()) {
    for (const Exemplar& exemplar : exemplars) {
      EXPECT_TRUE(fs::exists(src / exemplar.module))
          << to_string(topic) << " -> " << exemplar.module;
    }
  }
}

}  // namespace
