// Tests for end-to-end request tracing: span contexts in net frames, the
// tail-sampling SpanCollector, critical-path analysis, exemplars, the
// /trace/slowest | /trace/byid telemetry endpoints, federation of kept
// traces, and LoadGen's leader-routed discovery.
//
// The sim test runs a real 3-rank ReplicatedKV under testkit::SimScheduler
// with traced client ops: with a fixed seed the rendered span trees —
// timestamps, span ids, critical paths — must be byte-identical across
// runs. The stress test closes spans from free-running threads while a
// scraper renders; under the tsan preset it doubles as the race check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/replicated_kv.hpp"
#include "mp/world.hpp"
#include "net/framing.hpp"
#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "testkit/hooks.hpp"
#include "testkit/sim_scheduler.hpp"

namespace pdc {
namespace {

using net::MessageCodec;
using obs::MetricsRegistry;
using obs::SpanContext;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

net::NetConfig fast_net() {
  net::NetConfig config;
  config.latency_ms = 0.01;
  return config;
}

// ------------------------------------------------------------- framing

TEST(SpanFraming, TracedFrameRoundTripsContext) {
  const net::Bytes payload = net::to_bytes("hello spans");
  net::Bytes wire;
  MessageCodec::encode_message(payload, wire, SpanContext{42, 7});
  EXPECT_EQ(wire.size(), MessageCodec::kHeaderBytes +
                             MessageCodec::kTraceHeaderBytes + payload.size());
  std::size_t offset = 0;
  net::BytesView out;
  SpanContext trace;
  ASSERT_EQ(MessageCodec::scan_message(wire, offset, out, trace),
            MessageCodec::Scan::kFrame);
  EXPECT_EQ(trace.trace_id, 42u);
  EXPECT_EQ(trace.span_id, 7u);
  EXPECT_EQ(out.to_owned(), payload);
  EXPECT_EQ(offset, wire.size());
}

TEST(SpanFraming, InvalidContextEncodesTheLegacyFrameByteForByte) {
  const net::Bytes payload = net::to_bytes("no trace");
  net::Bytes plain;
  MessageCodec::encode_message(payload, plain);
  net::Bytes traced_off;
  MessageCodec::encode_message(payload, traced_off, SpanContext{});
  EXPECT_EQ(plain, traced_off);  // tracing off costs zero wire bytes

  std::size_t offset = 0;
  net::BytesView out;
  SpanContext trace{9, 9};  // must be zeroed for untraced frames
  ASSERT_EQ(MessageCodec::scan_message(plain, offset, out, trace),
            MessageCodec::Scan::kFrame);
  EXPECT_EQ(trace.trace_id, 0u);
  EXPECT_EQ(trace.span_id, 0u);
}

TEST(SpanFraming, UntracedScanSkipsTheTraceHeader) {
  const net::Bytes payload = net::to_bytes("skip me");
  net::Bytes wire;
  MessageCodec::encode_message(payload, wire, SpanContext{5, 6});
  std::size_t offset = 0;
  net::BytesView out;
  // The 3-arg scan (pre-tracing signature) must still parse traced
  // frames, discarding the context.
  ASSERT_EQ(MessageCodec::scan_message(wire, offset, out),
            MessageCodec::Scan::kFrame);
  EXPECT_EQ(out.to_owned(), payload);
  EXPECT_EQ(offset, wire.size());
}

TEST(SpanFraming, PartialAndCorruptTracedFrames) {
  const net::Bytes payload = net::to_bytes("checksummed");
  net::Bytes wire;
  MessageCodec::encode_message(payload, wire, SpanContext{3, 4});

  // Every strict prefix is kNeedMore, never a bogus parse.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    net::Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    std::size_t offset = 0;
    net::BytesView out;
    SpanContext trace;
    EXPECT_EQ(MessageCodec::scan_message(prefix, offset, out, trace),
              MessageCodec::Scan::kNeedMore);
  }

  // Payload corruption still trips the checksum (it covers the payload,
  // not the trace header, so the header bytes ride outside it).
  net::Bytes corrupt = wire;
  corrupt.back() = static_cast<std::byte>(
      static_cast<unsigned char>(corrupt.back()) ^ 0xff);
  std::size_t offset = 0;
  net::BytesView out;
  SpanContext trace;
  EXPECT_EQ(MessageCodec::scan_message(corrupt, offset, out, trace),
            MessageCodec::Scan::kCorrupt);
}

// ------------------------------------------------------- critical path

TEST(CriticalPath, HandBuiltTreeAttributesSelfTimeExactly) {
  obs::TraceSummary trace;
  trace.trace_id = 1;
  trace.root_us = 100;
  auto span = [](std::uint64_t id, std::uint64_t parent, std::uint64_t start,
                 std::uint64_t end, const char* name) {
    obs::SpanNode node;
    node.span_id = id;
    node.parent_id = parent;
    node.start_us = start;
    node.end_us = end;
    node.name = name;
    return node;
  };
  trace.spans = {
      span(1, 0, 0, 100, "request"),       span(2, 1, 0, 10, "client.queue"),
      span(3, 1, 20, 90, "server.drain"),  span(4, 3, 25, 60, "raft.replicate"),
      span(5, 3, 60, 85, "raft.apply"),
  };

  const auto hops = obs::critical_path(trace);
  ASSERT_EQ(hops.size(), 5u);
  EXPECT_EQ(hops[0].name, "request");
  EXPECT_EQ(hops[0].self_us, 20u);  // [10,20) gap + [90,100) tail
  EXPECT_EQ(hops[1].name, "client.queue");
  EXPECT_EQ(hops[1].self_us, 10u);
  EXPECT_EQ(hops[2].name, "server.drain");
  EXPECT_EQ(hops[2].self_us, 10u);  // [20,25) lead-in + [85,90) tail
  EXPECT_EQ(hops[3].name, "raft.replicate");
  EXPECT_EQ(hops[3].self_us, 35u);
  EXPECT_EQ(hops[4].name, "raft.apply");
  EXPECT_EQ(hops[4].self_us, 25u);
  // The on-path self-times cover the root latency exactly.
  std::uint64_t total = 0;
  for (const auto& hop : hops) total += hop.self_us;
  EXPECT_EQ(total, trace.root_us);
}

TEST(CriticalPath, WireFormRoundTrips) {
  obs::TraceSummary trace;
  trace.trace_id = 77;
  trace.root_us = 1234;
  trace.error = true;
  trace.source = "2";
  obs::SpanNode node;
  node.span_id = 9;
  node.parent_id = 0;
  node.start_us = 5;
  node.end_us = 1239;
  node.error = true;
  node.name = "request";
  trace.spans.push_back(node);

  const std::string wire = obs::trace_summaries_wire({trace});
  const auto parsed = obs::parse_traces_wire(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().trace_id, 77u);
  EXPECT_EQ(parsed->front().root_us, 1234u);
  EXPECT_TRUE(parsed->front().error);
  EXPECT_EQ(parsed->front().source, "2");
  ASSERT_EQ(parsed->front().spans.size(), 1u);
  EXPECT_EQ(parsed->front().spans.front().name, "request");
  EXPECT_EQ(parsed->front().spans.front().end_us, 1239u);

  EXPECT_FALSE(obs::parse_traces_wire("x nonsense\n").has_value());
  // A span line before any trace line is malformed.
  EXPECT_FALSE(obs::parse_traces_wire("s 1 0 0 1 0 orphan\n").has_value());
}

// ------------------------------------------------------- tail sampling

/// Ends a single-span trace whose root latency is ~`latency_us` by
/// backdating the root's start (jitter stays far inside a power-of-two
/// bucket for latencies this large). now_us() counts from its first call
/// in the process, so young clocks are floored before backdating.
void complete_trace_with_latency(std::uint64_t trace_id,
                                 std::uint64_t latency_us,
                                 bool error = false) {
  while (obs::now_us() < latency_us) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto root = obs::span_root("request", trace_id, obs::now_us() - latency_us);
  obs::span_end(root, error);
}

TEST(TailSampling, AscendingLatenciesRotateTheStoreWithExactCounts) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 2;
  obs::SpanCollector collector(config);
  collector.start();
  // 100ms, 200ms, ... 500ms: each newcomer beats the store's minimum.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    complete_trace_with_latency(i, i * 10'000);
  }
  EXPECT_EQ(collector.traces_completed(), 5u);
  EXPECT_EQ(collector.traces_kept(), 2u);
  EXPECT_EQ(collector.traces_evicted(), 3u);
  EXPECT_EQ(collector.traces_dropped(), 0u);
  // Rotating threshold = smallest kept root latency (trace 4, ~400ms).
  EXPECT_GE(collector.threshold_us(), 40'000u);
  EXPECT_LT(collector.threshold_us(), 50'000u);
  const auto slowest = collector.slowest(8);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].trace_id, 5u);  // descending root latency
  EXPECT_EQ(slowest[1].trace_id, 4u);
  collector.stop();

  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.span.started"), 5u);
  EXPECT_EQ(snapshot.counter("pdc.span.finished"), 5u);
  // Evicted traces stay on the sampled side of the span ledger.
  EXPECT_EQ(snapshot.counter("pdc.span.sampled") +
                snapshot.counter("pdc.span.dropped"),
            snapshot.counter("pdc.span.finished"));
}

TEST(TailSampling, DescendingLatenciesDropTheFastTail) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 2;
  obs::SpanCollector collector(config);
  collector.start();
  for (std::uint64_t i = 5; i >= 1; --i) {
    complete_trace_with_latency(6 - i, i * 10'000);
  }
  EXPECT_EQ(collector.traces_completed(), 5u);
  EXPECT_EQ(collector.traces_kept(), 2u);
  EXPECT_EQ(collector.traces_evicted(), 0u);
  EXPECT_EQ(collector.traces_dropped(), 3u);  // never beat the threshold
  collector.stop();
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.span.sampled"), 2u);
  EXPECT_EQ(snapshot.counter("pdc.span.dropped"), 3u);
}

TEST(TailSampling, ErrorTracesAreKeptAndNeverEvicted) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 1;
  obs::SpanCollector collector(config);
  collector.start();
  complete_trace_with_latency(1, 50'000);            // fills the plain store
  complete_trace_with_latency(2, 1'000, /*error=*/true);  // fast but broken
  complete_trace_with_latency(3, 70'000);            // evicts 1, never 2
  EXPECT_EQ(collector.traces_kept(), 2u);
  EXPECT_EQ(collector.traces_evicted(), 1u);
  ASSERT_TRUE(collector.by_id(2).has_value());  // the error trace survived
  ASSERT_TRUE(collector.by_id(3).has_value());
  EXPECT_FALSE(collector.by_id(1).has_value());
  EXPECT_NE(collector.byid_json(1).find("\"error\":\"no kept trace"),
            std::string::npos);
  collector.stop();
}

TEST(TailSampling, ExemplarsPinKeptTracesToTheirBucket) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollector collector;
  collector.start();
  complete_trace_with_latency(11, 3u << 14);  // mid [2^15, 2^16)
  complete_trace_with_latency(12, 3u << 10);  // mid [2^11, 2^12)
  const auto trace = collector.by_id(11);
  ASSERT_TRUE(trace.has_value());
  const auto pins = collector.exemplars();
  const std::size_t bucket = obs::Histogram::bucket_of(trace->root_us);
  ASSERT_TRUE(pins[bucket].has_value());
  EXPECT_EQ(pins[bucket]->trace_id, 11u);
  const std::string json = collector.exemplars_json();
  EXPECT_NE(json.find("\"trace_id\":11"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":12"), std::string::npos);
  EXPECT_NE(json.find("\"le\":"), std::string::npos);
  collector.stop();
}

// ----------------------------------------------- server span adoption

/// One traced request against each threading model: the server's
/// "server.drain" span must join the client's trace as a child of the
/// request's frame context.
void expect_server_drain_linkage(net::ThreadingModel model) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollector collector;
  collector.start();
  net::Network net(2, fast_net());
  net::ServerConfig config;
  config.model = model;
  config.workers = 2;
  net::Server server(net, 0, 80,
                     [](const net::Bytes& request) { return request; }, config);
  auto socket = net.connect(1, server.address());
  ASSERT_TRUE(socket.is_ok());
  net::StreamSocket stream = std::move(socket).value();

  auto root = obs::span_root("request", 77);
  ASSERT_TRUE(root.recording());
  const std::uint64_t root_span_id = root.context().span_id;
  ASSERT_TRUE(MessageCodec::send_message(stream, net::to_bytes("ping"),
                                         root.context())
                  .is_ok());
  auto reply = MessageCodec::recv_message(stream);
  ASSERT_TRUE(reply.is_ok());
  obs::span_end(root);

  // The reply can outrun the server's span_end; the drain span then lands
  // as a late settle on the kept trace. Wait for it.
  obs::TraceSummary trace;
  for (int spin = 0; spin < 2000; ++spin) {
    auto kept = collector.by_id(77);
    if (kept.has_value() && kept->spans.size() == 2) {
      trace = *kept;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(trace.spans.size(), 2u);
  const obs::SpanNode& drain =
      trace.spans[0].parent_id == 0 ? trace.spans[1] : trace.spans[0];
  EXPECT_EQ(drain.name, "server.drain");
  EXPECT_EQ(drain.parent_id, root_span_id);
  stream.close();
  server.stop();
  collector.stop();
}

TEST(ServerSpans, ThreadPerConnectionAdoptsTheFrameContext) {
  expect_server_drain_linkage(net::ThreadingModel::kThreadPerConnection);
}

TEST(ServerSpans, WorkerPoolAdoptsTheFrameContext) {
  expect_server_drain_linkage(net::ThreadingModel::kWorkerPool);
}

TEST(ServerSpans, EventDrivenAdoptsTheFrameContext) {
  expect_server_drain_linkage(net::ThreadingModel::kEventDriven);
}

// ------------------------------------------------- deterministic sim KV

/// Fixed-seed 3-rank ReplicatedKV with traced client ops from rank 0.
/// Returns the collector's full slowest-trace rendering.
std::string traced_kv_render(std::uint64_t seed) {
  MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 8;
  obs::SpanCollector collector(config);
  collector.start();
  auto storage = std::make_shared<std::vector<dist::RaftPersistentState>>(3);
  auto done = std::make_shared<std::atomic<bool>>(false);
  mp::World world(3);
  auto bodies = world.rank_bodies([storage, done](mp::Communicator& comm) {
    const auto rank = comm.rank();
    dist::KvConfig cfg;
    cfg.raft.seed = 99;
    dist::ReplicatedKV kv(comm, (*storage)[static_cast<std::size_t>(rank)],
                          cfg);
    if (rank == 0) {
      for (int op = 0; op < 4; ++op) {
        auto root = obs::span_root("request",
                                   1000 + static_cast<std::uint64_t>(op));
        obs::SpanScope scope(root.context());
        const std::string key = "k" + std::to_string(op / 2);
        const auto result =
            op % 2 == 0 ? kv.put(key, "v" + std::to_string(op)) : kv.get(key);
        obs::span_end(root, !result.ok());
      }
      done->store(true);
    } else {
      while (!done->load()) {
        kv.step();
        testkit::poll_pause("kv.pump", 0.5e-3);
      }
    }
  });
  SchedulerOptions options;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  EXPECT_TRUE(report.ok()) << report.error;
  collector.stop();
  return collector.slowest_json(8);
}

TEST(SimSpans, FixedSeedSpanTreesAndCriticalPathsAreByteStable) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string a = traced_kv_render(31);
  const std::string b = traced_kv_render(31);
  EXPECT_EQ(a, b);
  // The tree crossed every layer: client root, KV intake, raft consensus.
  EXPECT_NE(a.find("\"request\""), std::string::npos);
  EXPECT_NE(a.find("\"server.drain\""), std::string::npos);
  EXPECT_NE(a.find("\"raft.replicate\""), std::string::npos);
  EXPECT_NE(a.find("\"raft.apply\""), std::string::npos);
  EXPECT_NE(a.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(a.find("\"completed\":4"), std::string::npos);
}

// ----------------------------------------------- telemetry endpoints

TEST(SpanTelemetry, SlowestAndByIdServeKeptTraces) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollector collector;
  collector.start();
  complete_trace_with_latency(21, 40'000);
  complete_trace_with_latency(22, 20'000);

  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());

  // Unattached: the span endpoints answer the error shape.
  EXPECT_NE(client.get("/trace/slowest").value().find(
                "no span collector attached"),
            std::string::npos);
  server.attach_spans(&collector);

  const std::string slowest = client.get("/trace/slowest?n=1").value();
  EXPECT_NE(slowest.find("\"trace_id\":21"), std::string::npos);
  EXPECT_EQ(slowest.find("\"trace_id\":22"), std::string::npos);  // n=1
  EXPECT_NE(slowest.find("\"kept\":2"), std::string::npos);

  const std::string byid = client.get("/trace/byid?id=22").value();
  EXPECT_NE(byid.find("\"trace_id\":22"), std::string::npos);
  EXPECT_NE(client.get("/trace/byid?id=404").value().find(
                "no kept trace with id 404"),
            std::string::npos);

  const std::string wire = client.get("/trace/slowest.wire?n=8").value();
  const auto parsed = obs::parse_traces_wire(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);

  // Exemplars ride the ordinary metrics scrape once spans are attached.
  const std::string metrics = client.get("/metrics.json").value();
  EXPECT_NE(metrics.find("\"exemplars\":{\"pdc.trace.root_us\":["),
            std::string::npos);
  EXPECT_NE(metrics.find("\"trace_id\":21"), std::string::npos);

  client.close();
  server.stop();
  collector.stop();
}

TEST(SpanTelemetry, NoopBuildAnswersOneErrorShapeAcrossTheTraceFamily) {
  if (obs::kObsEnabled) GTEST_SKIP() << "needs a PDCKIT_OBS_NOOP build";
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  const std::string expected =
      "{\"error\":\"tracing disabled (PDCKIT_OBS_NOOP)\"}\n";
  for (const char* endpoint :
       {"/trace", "/trace/slowest", "/trace/slowest?n=3",
        "/trace/slowest.wire", "/trace/byid?id=1"}) {
    EXPECT_EQ(client.get(endpoint).value(), expected) << endpoint;
  }
  // The streaming transport answers the same body as a single frame.
  std::vector<std::string> chunks;
  ASSERT_TRUE(client
                  .stream_trace(3, 0,
                                [&](const std::string& chunk) {
                                  chunks.push_back(chunk);
                                })
                  .is_ok());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks.front(), expected);
  client.close();
  server.stop();
}

TEST(SpanTelemetry, AggregatorFederatesAndSourceStampsKeptTraces) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollector collector;
  collector.start();
  complete_trace_with_latency(31, 30'000);
  complete_trace_with_latency(32, 60'000);

  net::Network net(3, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  server.attach_spans(&collector);
  obs::Aggregator aggregator(net, 1, 9200, {{server.address(), "2"}});

  const auto merged = aggregator.federate_traces(8);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].trace_id, 32u);  // slowest first
  EXPECT_EQ(merged[0].source, "2");    // insert-if-absent stamping
  EXPECT_EQ(merged[1].trace_id, 31u);

  obs::TelemetryClient client(net, 2);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());
  const std::string body = client.get("/trace/slowest?n=1").value();
  EXPECT_NE(body.find("\"trace_id\":32"), std::string::npos);
  EXPECT_NE(body.find("\"source\":\"2\""), std::string::npos);
  EXPECT_EQ(body.find("\"trace_id\":31"), std::string::npos);
  // The wire form re-federates: a second tier would keep the stamp.
  const std::string wire = client.get("/trace/slowest.wire?n=8").value();
  const auto parsed = obs::parse_traces_wire(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->front().source, "2");
  client.close();
  aggregator.stop();
  server.stop();
  collector.stop();
}

// ------------------------------------------------- leader-routed LoadGen

TEST(LoadGenRouting, FollowsRedirectsToTheLeaderBeforeTheStorm) {
  net::Network net(4, fast_net());
  net::ServerConfig config;
  config.model = net::ThreadingModel::kEventDriven;
  // "Follower" redirects probes; the "leader" claims leadership and
  // echoes storm traffic.
  net::Server leader(net, 1, 81, [](const net::Bytes& request) {
    if (net::to_string(request) == "LEADER?") return net::to_bytes("LEADER");
    return request;
  }, config);
  const net::Address leader_address = leader.address();
  net::Server follower(net, 0, 80, [leader_address](const net::Bytes& request) {
    if (net::to_string(request) == "LEADER?") {
      return net::to_bytes("REDIRECT " + std::to_string(leader_address.host) +
                           " " + std::to_string(leader_address.port));
    }
    return request;
  }, config);

  net::LoadGenConfig load;
  load.connections = 16;
  load.requests = 200;
  load.duration_s = 0.05;
  load.drivers = 2;
  load.first_client_host = 2;
  load.client_hosts = 2;
  load.route_to_leader = true;
  load.probe_request = [] { return net::to_bytes("LEADER?"); };
  load.redirect_of =
      [](const net::Bytes& reply) -> std::optional<net::Address> {
    const std::string text = net::to_string(reply);
    if (text.rfind("REDIRECT ", 0) != 0) return std::nullopt;
    std::istringstream in(text.substr(9));
    net::Address address;
    in >> address.host >> address.port;
    return address;
  };
  net::LoadGen gen(net, follower.address());
  const auto report = gen.run(load);
  EXPECT_EQ(report.target, leader_address);
  EXPECT_EQ(report.redirects, 1u);
  EXPECT_EQ(report.sent, 200u);
  EXPECT_EQ(report.received, report.sent);
  // Every storm request landed on the leader, none on the follower.
  EXPECT_EQ(leader.requests_served(), 201u);   // probe + storm
  EXPECT_EQ(follower.requests_served(), 1u);   // probe only
  follower.stop();
  leader.stop();
}

// -------------------------------------------------------------- stress

// Free-running producers close spans while a scraper renders the kept
// store; under the tsan preset this is the span-plane race check.
TEST(SpanStress, ConcurrentFinishVersusSlowestScrape) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::SpanCollectorConfig config;
  config.keep_slowest = 16;
  obs::SpanCollector collector(config);
  collector.start();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kTracesPerThread = 400;
  // Floor the young clock so per-trace backdates never underflow.
  while (obs::now_us() < 64'000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<bool> scraping{true};
  std::thread scraper([&] {
    while (scraping.load(std::memory_order_relaxed)) {
      (void)collector.slowest_json(8);
      (void)collector.exemplars_json();
      (void)collector.by_id(1);
      (void)collector.threshold_us();
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t] {
      for (std::uint64_t i = 1; i <= kTracesPerThread; ++i) {
        const std::uint64_t trace_id =
            static_cast<std::uint64_t>(t) * 1'000'000 + i;
        auto root = obs::span_root("request", trace_id,
                                   obs::now_us() - (i % 64) * 1'000);
        auto child = obs::span_begin("server.drain", root.context());
        obs::span_end(child, i % 97 == 0);
        obs::span_end(root);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  scraping.store(false, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(collector.traces_completed(), kThreads * kTracesPerThread);
  collector.stop();
  const auto snapshot = MetricsRegistry::instance().scrape();
  // Conservation: everything started finished, everything finished is
  // accounted sampled or dropped — no span leaks under contention.
  EXPECT_EQ(snapshot.counter("pdc.span.started"),
            snapshot.counter("pdc.span.finished"));
  EXPECT_EQ(snapshot.counter("pdc.span.sampled") +
                snapshot.counter("pdc.span.dropped"),
            snapshot.counter("pdc.span.finished"));
}

}  // namespace
}  // namespace pdc
