// Tests for pdc::db: lock manager semantics and deadlock victims, strict
// 2PL transactions (atomicity, rollback, isolation), serializability
// analysis, timestamp ordering, and concurrent workloads.
#include <gtest/gtest.h>

#include <thread>

#include "concurrency/barrier.hpp"
#include "db/lock_manager.hpp"
#include "db/recovery.hpp"
#include "db/serializability.hpp"
#include "db/timestamp.hpp"
#include "db/transaction.hpp"
#include "db/workload.hpp"
#include "support/rng.hpp"

namespace {

using namespace pdc::db;
using pdc::support::StatusCode;

// ------------------------------------------------------------- lock manager

TEST(LockManager, SharedLocksCoexist) {
  LockManager locks;
  EXPECT_TRUE(locks.lock(1, "a", LockMode::kShared).is_ok());
  EXPECT_TRUE(locks.lock(2, "a", LockMode::kShared).is_ok());
  EXPECT_TRUE(locks.holds(1, "a"));
  EXPECT_TRUE(locks.holds(2, "a"));
  locks.unlock_all(1);
  EXPECT_FALSE(locks.holds(1, "a"));
}

TEST(LockManager, ExclusiveBlocksUntilRelease) {
  LockManager locks;
  ASSERT_TRUE(locks.lock(1, "a", LockMode::kExclusive).is_ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(locks.lock(2, "a", LockMode::kExclusive).is_ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  locks.unlock_all(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManager, UpgradeWhenSoleSharer) {
  LockManager locks;
  ASSERT_TRUE(locks.lock(1, "a", LockMode::kShared).is_ok());
  ASSERT_TRUE(locks.lock(1, "a", LockMode::kExclusive).is_ok());
  EXPECT_TRUE(locks.holds(1, "a"));
  // Another reader must now block or fail; verify via a second thread that
  // only proceeds after unlock.
  std::atomic<bool> granted{false};
  std::thread reader([&] {
    ASSERT_TRUE(locks.lock(2, "a", LockMode::kShared).is_ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(granted.load());
  locks.unlock_all(1);
  reader.join();
}

TEST(LockManager, XOwnerMayReadItsOwnKey) {
  LockManager locks;
  ASSERT_TRUE(locks.lock(1, "a", LockMode::kExclusive).is_ok());
  EXPECT_TRUE(locks.lock(1, "a", LockMode::kShared).is_ok());  // subsumed
  EXPECT_TRUE(locks.holds(1, "a"));
}

TEST(LockManager, DeadlockChoosesYoungestVictim) {
  LockManager locks;
  ASSERT_TRUE(locks.lock(1, "a", LockMode::kExclusive).is_ok());
  ASSERT_TRUE(locks.lock(2, "b", LockMode::kExclusive).is_ok());

  pdc::support::Status status1, status2;
  std::thread t1([&] { status1 = locks.lock(1, "b", LockMode::kExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread t2([&] { status2 = locks.lock(2, "a", LockMode::kExclusive); });
  t2.join();
  // Txn 2 (youngest) must be the victim.
  EXPECT_EQ(status2.code(), StatusCode::kAborted);
  locks.unlock_all(2);  // victim's rollback
  t1.join();
  EXPECT_TRUE(status1.is_ok());
  EXPECT_EQ(locks.deadlocks_detected(), 1u);
}

// ------------------------------------------------------------- transactions

TEST(Transaction, CommitPublishesWrites) {
  Database db;
  Txn txn = db.begin();
  ASSERT_TRUE(txn.put("x", "1").is_ok());
  ASSERT_TRUE(txn.commit().is_ok());
  EXPECT_EQ(db.peek("x").value_or(""), "1");
  EXPECT_EQ(db.stats().committed, 1u);
}

TEST(Transaction, AbortRollsBackAllWrites) {
  Database db;
  {
    Txn setup = db.begin();
    ASSERT_TRUE(setup.put("x", "original").is_ok());
    ASSERT_TRUE(setup.commit().is_ok());
  }
  Txn txn = db.begin();
  ASSERT_TRUE(txn.put("x", "changed").is_ok());
  ASSERT_TRUE(txn.put("y", "new").is_ok());
  ASSERT_TRUE(txn.erase("x").is_ok());
  txn.abort();
  EXPECT_EQ(db.peek("x").value_or(""), "original");
  EXPECT_FALSE(db.peek("y").has_value());
}

TEST(Transaction, DestructionOfActiveTxnAborts) {
  Database db;
  { Txn txn = db.begin(); (void)txn.put("ghost", "1"); }
  EXPECT_FALSE(db.peek("ghost").has_value());
  EXPECT_EQ(db.stats().aborted, 1u);
}

TEST(Transaction, GetReturnsNotFoundForMissingKey) {
  Database db;
  Txn txn = db.begin();
  EXPECT_EQ(txn.get("nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(txn.commit().is_ok());
}

TEST(Transaction, RepeatedWritesUndoToOriginal) {
  Database db;
  {
    Txn setup = db.begin();
    ASSERT_TRUE(setup.put("k", "v0").is_ok());
    ASSERT_TRUE(setup.commit().is_ok());
  }
  Txn txn = db.begin();
  ASSERT_TRUE(txn.put("k", "v1").is_ok());
  ASSERT_TRUE(txn.put("k", "v2").is_ok());
  txn.abort();
  EXPECT_EQ(db.peek("k").value_or(""), "v0");
}

TEST(Transaction, DeadlockVictimIsRolledBackAndReports) {
  Database db;
  {
    Txn setup = db.begin();
    ASSERT_TRUE(setup.put("a", "0").is_ok());
    ASSERT_TRUE(setup.put("b", "0").is_ok());
    ASSERT_TRUE(setup.commit().is_ok());
  }
  pdc::concurrency::CyclicBarrier barrier(2);
  std::atomic<int> aborted_count{0};
  auto worker = [&](const std::string& first, const std::string& second) {
    Txn txn = db.begin();
    ASSERT_TRUE(txn.put(first, "mine").is_ok());
    barrier.arrive_and_wait();  // both hold their first key
    const auto status = txn.put(second, "mine");
    if (!status.is_ok()) {
      EXPECT_EQ(status.code(), StatusCode::kAborted);
      EXPECT_FALSE(txn.active());  // already rolled back
      ++aborted_count;
      return;
    }
    ASSERT_TRUE(txn.commit().is_ok());
  };
  std::thread t1(worker, "a", "b");
  std::thread t2(worker, "b", "a");
  t1.join();
  t2.join();
  EXPECT_EQ(aborted_count.load(), 1);  // exactly one victim
  EXPECT_EQ(db.stats().deadlock_aborts, 1u);
  // Survivor's writes are visible; DB is consistent.
  EXPECT_EQ(db.peek("a").value_or(""), "mine");
  EXPECT_EQ(db.peek("b").value_or(""), "mine");
}

TEST(Transaction, ConcurrentIncrementsSerialize) {
  Database db;
  {
    Txn setup = db.begin();
    ASSERT_TRUE(setup.put("counter", "0").is_ok());
    ASSERT_TRUE(setup.commit().is_ok());
  }
  constexpr int kThreads = 4, kIncrements = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        // Read-modify-write with retry: two transactions S-locking then
        // upgrading deadlock — detection aborts one, which retries.
        for (;;) {
          Txn txn = db.begin();
          const auto current = txn.get("counter");
          if (!current.is_ok()) continue;  // deadlock victim: txn rolled back
          const int parsed = std::stoi(current.value());
          if (!txn.put("counter", std::to_string(parsed + 1)).is_ok()) {
            continue;
          }
          if (txn.commit().is_ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.peek("counter").value_or(""),
            std::to_string(kThreads * kIncrements));
}

// ----------------------------------------------------------- serializability

TEST(Serializability, SerialScheduleIsSerializable) {
  const Schedule schedule{
      {1, OpType::kRead, "x"}, {1, OpType::kWrite, "x"},
      {2, OpType::kRead, "x"}, {2, OpType::kWrite, "x"},
  };
  EXPECT_TRUE(conflict_serializable(schedule));
  const auto order = serialization_order(schedule);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{1, 2}));
}

TEST(Serializability, ClassicUnserializableInterleaving) {
  // T1 reads x, T2 writes x, T2 reads y... the lost-update shape:
  // r1(x) w2(x) w1(x) — edges 1->2 and 2->1.
  const Schedule schedule{
      {1, OpType::kRead, "x"},
      {2, OpType::kWrite, "x"},
      {1, OpType::kWrite, "x"},
  };
  EXPECT_FALSE(conflict_serializable(schedule));
  EXPECT_FALSE(serialization_order(schedule).has_value());
}

TEST(Serializability, ReadsDoNotConflict) {
  const Schedule schedule{
      {1, OpType::kRead, "x"},
      {2, OpType::kRead, "x"},
      {1, OpType::kRead, "x"},
  };
  EXPECT_TRUE(conflict_serializable(schedule));
  EXPECT_TRUE(precedence_edges(schedule).empty());
}

TEST(Serializability, InterleavedButEquivalentToSerial) {
  // Disjoint keys: any interleaving is serializable.
  const Schedule schedule{
      {1, OpType::kWrite, "x"},
      {2, OpType::kWrite, "y"},
      {1, OpType::kWrite, "x"},
      {2, OpType::kWrite, "y"},
  };
  EXPECT_TRUE(conflict_serializable(schedule));
}

TEST(Serializability, EdgesAreDeduplicated) {
  const Schedule schedule{
      {1, OpType::kWrite, "x"},
      {2, OpType::kWrite, "x"},
      {1, OpType::kWrite, "y"},
      {2, OpType::kWrite, "y"},
  };
  EXPECT_EQ(precedence_edges(schedule).size(), 1u);  // 1->2 once
}

// --------------------------------------------------------- timestamp ordering

TEST(TimestampOrdering, InOrderOpsAllCommit) {
  const Schedule schedule{
      {1, OpType::kWrite, "x"},
      {2, OpType::kRead, "x"},
      {3, OpType::kWrite, "x"},
  };
  const auto stats = run_timestamp_ordering(schedule);
  EXPECT_EQ(stats.committed, 3u);
  EXPECT_EQ(stats.aborted, 0u);
}

TEST(TimestampOrdering, LateWriteAfterYoungerReadAborts) {
  // Txn 1's write arrives after txn 2 already read x: 1 must abort.
  const Schedule schedule{
      {2, OpType::kRead, "x"},
      {1, OpType::kWrite, "x"},
  };
  const auto stats = run_timestamp_ordering(schedule);
  EXPECT_EQ(stats.aborted, 1u);
}

TEST(TimestampOrdering, LateReadAfterYoungerWriteAborts) {
  const Schedule schedule{
      {2, OpType::kWrite, "x"},
      {1, OpType::kRead, "x"},
  };
  const auto stats = run_timestamp_ordering(schedule);
  EXPECT_EQ(stats.aborted, 1u);
}

TEST(TimestampOrdering, ThomasWriteRuleSkipsInsteadOfAborting) {
  const Schedule schedule{
      {2, OpType::kWrite, "x"},
      {1, OpType::kWrite, "x"},  // obsolete write
  };
  const auto basic = run_timestamp_ordering(schedule, false);
  EXPECT_EQ(basic.aborted, 1u);
  const auto thomas = run_timestamp_ordering(schedule, true);
  EXPECT_EQ(thomas.aborted, 0u);
  EXPECT_EQ(thomas.thomas_skips, 1u);
}

TEST(TimestampOrdering, AbortedTxnOpsIgnored) {
  const Schedule schedule{
      {2, OpType::kRead, "x"},
      {1, OpType::kWrite, "x"},  // 1 aborts here
      {1, OpType::kWrite, "y"},  // ignored
      {3, OpType::kRead, "y"},   // y untouched by txn 1
  };
  const auto stats = run_timestamp_ordering(schedule);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(stats.committed, 2u);
  EXPECT_EQ(stats.operations_executed, 2u);
}

// ------------------------------------------------------------------ workload

TEST(Workload, AllTransactionsEventuallyCommit) {
  Database db;
  WorkloadConfig config;
  config.clients = 4;
  config.txns_per_client = 50;
  config.keys = 16;
  config.zipf_skew = 0.9;  // contended
  config.write_fraction = 0.7;
  const auto result = run_2pl_workload(db, config);
  EXPECT_EQ(result.committed, 200u);
  EXPECT_EQ(db.stats().committed, 200u);
}

TEST(Workload, ContentionIncreasesDeadlockAborts) {
  WorkloadConfig uncontended;
  uncontended.clients = 4;
  uncontended.txns_per_client = 100;
  uncontended.keys = 4096;
  uncontended.write_fraction = 0.8;
  uncontended.yield_between_ops = true;  // force interleaving on 1 core

  WorkloadConfig contended = uncontended;
  contended.keys = 8;
  contended.zipf_skew = 1.0;

  Database db1, db2;
  const auto low = run_2pl_workload(db1, uncontended);
  const auto high = run_2pl_workload(db2, contended);
  EXPECT_GE(high.deadlock_aborts, low.deadlock_aborts);
  EXPECT_GT(high.deadlock_aborts, 0u);  // hot keys + writes must deadlock
}

TEST(Workload, ScheduleGeneratorShapesMatch) {
  WorkloadConfig config;
  config.clients = 3;
  config.txns_per_client = 5;
  config.ops_per_txn = 4;
  const auto schedule = make_schedule(config);
  EXPECT_EQ(schedule.size(), 3u * 5 * 4);
  // All txn ids appear, each with exactly ops_per_txn operations.
  std::map<std::size_t, int> counts;
  for (const auto& op : schedule) counts[op.txn]++;
  EXPECT_EQ(counts.size(), 15u);
  for (const auto& [txn, count] : counts) EXPECT_EQ(count, 4) << txn;
}

TEST(Workload, Property_Every2plHistoryIsConflictSerializable) {
  // The fundamental theorem of 2PL, checked against real concurrent
  // executions: whatever interleaving the scheduler produced, the
  // committed history must be conflict-serializable. Several seeds and
  // contention levels to diversify interleavings.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Database db;
    db.record_history(true);
    WorkloadConfig config;
    config.clients = 4;
    config.txns_per_client = 50;
    config.keys = 8;  // hot: plenty of conflicts
    config.zipf_skew = 1.0;
    config.write_fraction = 0.6;
    config.yield_between_ops = true;
    config.seed = seed;
    (void)run_2pl_workload(db, config);
    const auto history = db.committed_history();
    EXPECT_FALSE(history.empty());
    EXPECT_TRUE(conflict_serializable(history)) << "seed " << seed;
  }
}

TEST(Workload, HistoryExcludesAbortedTransactions) {
  Database db;
  db.record_history(true);
  {
    Txn committed_txn = db.begin();
    ASSERT_TRUE(committed_txn.put("a", "1").is_ok());
    ASSERT_TRUE(committed_txn.commit().is_ok());
  }
  {
    Txn doomed = db.begin();
    ASSERT_TRUE(doomed.put("a", "2").is_ok());
    doomed.abort();
  }
  const auto history = db.committed_history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].key, "a");
  EXPECT_EQ(history[0].type, OpType::kWrite);
}

TEST(Workload, TimestampOrderingAbortsRiseWithContention) {
  WorkloadConfig uncontended;
  uncontended.clients = 8;
  uncontended.txns_per_client = 50;
  uncontended.keys = 4096;

  WorkloadConfig contended = uncontended;
  contended.keys = 8;
  contended.zipf_skew = 1.0;

  const auto low = run_timestamp_ordering(make_schedule(uncontended));
  const auto high = run_timestamp_ordering(make_schedule(contended));
  EXPECT_GT(high.abort_rate(), low.abort_rate());
}

// ---------------------------------------------------------------- recovery

TEST(WalRecovery, CommittedDataSurvivesCrash) {
  WalStore store;
  const auto txn = store.begin();
  store.put(txn, "x", "42");
  store.put(txn, "y", "7");
  store.commit(txn);
  // NO-FORCE: nothing was flushed; the log alone must carry the data.
  store.crash();
  const auto stats = store.recover();
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.redone, 2u);
  EXPECT_EQ(store.read("x").value_or(""), "42");
  EXPECT_EQ(store.read("y").value_or(""), "7");
}

TEST(WalRecovery, UncommittedDataNeverSurfaces) {
  WalStore store;
  const auto txn = store.begin();
  store.put(txn, "x", "dirty");
  store.flush_page("x");  // STEAL: dirty page reaches stable storage
  store.crash();
  const auto stats = store.recover();
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_GE(stats.undone, 1u);
  EXPECT_FALSE(store.read("x").has_value());
}

TEST(WalRecovery, StealPlusCommitMix) {
  WalStore store;
  // Committed baseline.
  const auto setup = store.begin();
  store.put(setup, "a", "old");
  store.commit(setup);
  store.flush_page("a");

  const auto winner = store.begin();
  const auto loser = store.begin();
  store.put(winner, "a", "new");
  store.put(loser, "b", "ghost");
  store.flush_page("b");  // loser's dirty page stolen
  store.commit(winner);   // winner's page NOT flushed
  store.crash();

  store.recover();
  EXPECT_EQ(store.read("a").value_or(""), "new");   // redo won
  EXPECT_FALSE(store.read("b").has_value());        // undo won
}

TEST(WalRecovery, EraseIsRecoverable) {
  WalStore store;
  const auto setup = store.begin();
  store.put(setup, "k", "v");
  store.commit(setup);

  const auto txn = store.begin();
  store.erase(txn, "k");
  store.commit(txn);
  store.crash();
  store.recover();
  EXPECT_FALSE(store.read("k").has_value());
}

TEST(WalRecovery, CleanAbortThenCrash) {
  WalStore store;
  const auto setup = store.begin();
  store.put(setup, "k", "original");
  store.commit(setup);
  store.flush_page("k");

  const auto txn = store.begin();
  store.put(txn, "k", "scribble");
  store.flush_page("k");  // stolen before the abort
  store.abort(txn);
  EXPECT_EQ(store.read("k").value_or(""), "original");  // cache view fixed
  store.crash();
  store.recover();
  EXPECT_EQ(store.read("k").value_or(""), "original");  // stable view fixed
}

TEST(WalRecovery, RecoveryIsIdempotent) {
  WalStore store;
  const auto txn = store.begin();
  store.put(txn, "x", "1");
  store.commit(txn);
  store.crash();
  store.recover();
  const auto again = store.recover();  // e.g. crash during recovery
  EXPECT_EQ(again.committed_txns, 1u);
  EXPECT_EQ(store.read("x").value_or(""), "1");
}

TEST(WalRecovery, ConflictingConcurrentWritersRejected) {
  WalStore store;
  const auto t1 = store.begin();
  const auto t2 = store.begin();
  store.put(t1, "k", "a");
  EXPECT_THROW(store.put(t2, "k", "b"), pdc::support::CheckFailure);
}

TEST(WalRecovery, RandomizedCrashProperty) {
  // Property: after ANY interleaving of puts/flushes and a crash, recovery
  // exposes exactly the committed transactions' final values.
  pdc::support::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    WalStore store;
    std::map<std::string, std::string> committed_view;
    for (int t = 0; t < 10; ++t) {
      const auto txn = store.begin();
      const bool will_commit = rng.bernoulli(0.6);
      std::map<std::string, std::string> writes;
      const auto ops = 1 + rng.index(3);
      for (std::size_t o = 0; o < ops; ++o) {
        // Disjoint keyspace per txn avoids 2PL conflicts (sequential txns
        // here anyway, but keys repeat across txns).
        const std::string key = "k" + std::to_string(rng.index(6));
        const std::string value =
            "t" + std::to_string(t) + "o" + std::to_string(o);
        store.put(txn, key, value);
        writes[key] = value;
        if (rng.bernoulli(0.5)) store.flush_page(key);
      }
      if (will_commit) {
        store.commit(txn);
        for (auto& [key, value] : writes) committed_view[key] = value;
      } else {
        // Crash with this transaction in flight half the time; otherwise
        // clean abort.
        if (rng.bernoulli(0.5)) {
          store.crash();
          store.recover();
        } else {
          store.abort(txn);
        }
      }
    }
    store.crash();
    store.recover();
    for (const auto& [key, value] : committed_view) {
      EXPECT_EQ(store.read(key).value_or("<missing>"), value)
          << "round " << round << " key " << key;
    }
    for (int k = 0; k < 6; ++k) {
      const std::string key = "k" + std::to_string(k);
      if (!committed_view.count(key)) {
        EXPECT_FALSE(store.read(key).has_value()) << "round " << round;
      }
    }
  }
}

}  // namespace
