// Tests for pdc::concurrency: semaphores, monitor, bounded queue, barriers,
// spinlocks, RW lock, Peterson's algorithm, lock-order checker.
//
// Threaded tests use modest thread counts and generous invariants so they
// are deterministic on any scheduler (including single-core hosts).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "concurrency/barrier.hpp"
#include "concurrency/bounded_queue.hpp"
#include "concurrency/mpmc_queue.hpp"
#include "concurrency/lock_order.hpp"
#include "concurrency/monitor.hpp"
#include "concurrency/rwlock.hpp"
#include "concurrency/semaphore.hpp"
#include "concurrency/spinlock.hpp"

namespace {

using namespace pdc::concurrency;
using namespace std::chrono_literals;
using pdc::support::StatusCode;

// ---------------------------------------------------------------- semaphore

TEST(Semaphore, TryAcquireReflectsPermits) {
  CountingSemaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, TimedAcquireTimesOut) {
  CountingSemaphore sem(0);
  EXPECT_FALSE(sem.try_acquire_for(10ms));
}

TEST(Semaphore, ReleaseUnblocksWaiter) {
  CountingSemaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    sem.acquire();
    acquired = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(acquired.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Semaphore, BoundedReleasePastMaxIsACheckFailure) {
  CountingSemaphore sem(1, 1);
  EXPECT_THROW(sem.release(), pdc::support::CheckFailure);
}

TEST(Semaphore, EnforcesMutualExclusionAsBinary) {
  BinarySemaphore sem(true);
  int shared = 0;
  std::atomic<int> max_inside{0};
  std::atomic<int> inside{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        sem.acquire();
        max_inside = std::max(max_inside.load(), ++inside);
        ++shared;
        --inside;
        sem.release();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(shared, 2000);
  EXPECT_EQ(max_inside.load(), 1);
}

TEST(Semaphore, MultiReleaseWakesMultipleWaiters) {
  CountingSemaphore sem(0);
  CountdownLatch done(3);
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&] {
      sem.acquire();
      done.count_down();
    });
  }
  sem.release(3);
  done.wait();
  for (auto& t : ts) t.join();
}

// ------------------------------------------------------------------ monitor

TEST(Monitor, WithMutatesUnderLock) {
  Monitor<int> m(0);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) m.with([](int& v) { ++v; });
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(m.read([](const int& v) { return v; }), 4000);
}

TEST(Monitor, WaitBlocksUntilPredicate) {
  Monitor<int> m(0);
  std::atomic<bool> resumed{false};
  std::thread waiter([&] {
    m.wait([](const int& v) { return v >= 3; }, [&](int&) { resumed = true; });
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(resumed.load());
  m.with([](int& v) { v = 1; });
  m.with([](int& v) { v = 3; });
  waiter.join();
  EXPECT_TRUE(resumed.load());
}

TEST(Monitor, WaitForTimesOut) {
  Monitor<int> m(0);
  const bool ok = m.wait_for(10ms, [](const int& v) { return v > 0; },
                             [](int&) {});
  EXPECT_FALSE(ok);
}

TEST(Monitor, WithReturnsValue) {
  Monitor<std::vector<int>> m;
  const std::size_t n = m.with([](std::vector<int>& v) {
    v.push_back(1);
    return v.size();
  });
  EXPECT_EQ(n, 1u);
}

// ------------------------------------------------------------ bounded queue

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i).is_ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1).is_ok());
  EXPECT_EQ(q.try_push(2).code(), StatusCode::kUnavailable);
}

TEST(BoundedQueue, TryPopFailsWhenEmpty) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.try_pop().status().code(), StatusCode::kUnavailable);
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.pop_for(10ms).status().code(), StatusCode::kTimeout);
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7).is_ok());
  ASSERT_TRUE(q.push(8).is_ok());
  q.close();
  EXPECT_EQ(q.push(9).code(), StatusCode::kClosed);
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_EQ(q.pop().status().code(), StatusCode::kClosed);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    EXPECT_EQ(q.pop().status().code(), StatusCode::kClosed);
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BoundedQueue, MpmcTransfersEveryItemExactlyOnce) {
  BoundedQueue<int> q(8);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i).is_ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto r = q.pop();
        if (!r.is_ok()) break;
        sum += r.value();
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ----------------------------------------------------------------- barriers

TEST(CyclicBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4, kPhases = 10;
  CyclicBarrier barrier(kThreads);
  std::vector<std::size_t> phase_of(kThreads, 0);
  std::atomic<bool> torn{false};
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::size_t p = 0; p < kPhases; ++p) {
        phase_of[t] = p;
        const std::size_t gen = barrier.arrive_and_wait();
        if (gen != p) torn = true;  // generations must advance in lockstep
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(torn.load());
}

TEST(CyclicBarrier, CompletionActionRunsOncePerGeneration) {
  constexpr std::size_t kThreads = 3, kPhases = 5;
  std::atomic<int> completions{0};
  CyclicBarrier barrier(kThreads, [&] { ++completions; });
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (std::size_t p = 0; p < kPhases; ++p) barrier.arrive_and_wait();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(completions.load(), static_cast<int>(kPhases));
}

TEST(SenseReversingBarrier, SynchronizesAcrossReuse) {
  constexpr std::size_t kThreads = 4, kPhases = 20;
  SenseReversingBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      SenseReversingBarrier::LocalSense sense;
      for (std::size_t p = 0; p < kPhases; ++p) {
        ++counter;
        barrier.arrive_and_wait(sense);
        // After the barrier every thread of this phase has incremented.
        if (counter.load() < static_cast<int>((p + 1) * kThreads)) bad = true;
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads * kPhases));
}

TEST(CountdownLatch, WaitReleasesAtZero) {
  CountdownLatch latch(2);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // returns immediately
}

TEST(CountdownLatch, CountingBelowZeroIsACheckFailure) {
  CountdownLatch latch(1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), pdc::support::CheckFailure);
}

// ---------------------------------------------------------------- spinlocks

template <typename Lock>
void hammer_lock() {
  Lock lock;
  long shared = 0;
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::scoped_lock guard(lock);
        ++shared;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(shared, long{kThreads} * kIters);
}

TEST(Spinlock, TasMutualExclusion) { hammer_lock<TasLock>(); }
TEST(Spinlock, TtasMutualExclusion) { hammer_lock<TtasLock>(); }
TEST(Spinlock, TicketMutualExclusion) { hammer_lock<TicketLock>(); }

TEST(Spinlock, TryLockFailsWhenHeld) {
  TtasLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, TicketTryLockFailsWhenHeld) {
  TicketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(McsLock, MutualExclusionUnderContention) {
  McsLock lock;
  long shared = 0;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        McsLock::Guard guard(lock);
        if (inside.fetch_add(1) != 0) violated = true;
        ++shared;
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(shared, 8000);
}

TEST(McsLock, HandoffThroughExplicitNodes) {
  McsLock lock;
  McsLock::Node a;
  lock.lock(a);
  std::atomic<bool> second_acquired{false};
  std::thread waiter([&] {
    McsLock::Node b;
    lock.lock(b);
    second_acquired = true;
    lock.unlock(b);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_acquired.load());
  lock.unlock(a);
  waiter.join();
  EXPECT_TRUE(second_acquired.load());
}

TEST(PetersonLock, TwoThreadMutualExclusion) {
  PetersonLock lock;
  long shared = 0;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  auto body = [&](int self) {
    for (int i = 0; i < 5000; ++i) {
      lock.lock(self);
      if (inside.fetch_add(1) != 0) violated = true;
      ++shared;
      inside.fetch_sub(1);
      lock.unlock(self);
    }
  };
  std::thread t0(body, 0), t1(body, 1);
  t0.join();
  t1.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(shared, 10000);
}

// ------------------------------------------------------------------- rwlock

TEST(RwLock, WriterExcludesWriters) {
  RwLock lock;
  long shared = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        lock.lock();
        ++shared;
        lock.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(shared, 4000);
}

TEST(RwLock, ReadersShareWritersExclude) {
  RwLock lock;
  std::atomic<int> readers{0};
  std::atomic<int> writers{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&] {  // readers
      for (int i = 0; i < 500; ++i) {
        SharedGuard guard(lock);
        ++readers;
        if (writers.load() != 0) violated = true;
        --readers;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {  // writers
      for (int i = 0; i < 200; ++i) {
        lock.lock();
        if (writers.fetch_add(1) != 0 || readers.load() != 0) violated = true;
        writers.fetch_sub(1);
        lock.unlock();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(RwLock, TryLockSharedFailsUnderWriter) {
  RwLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST(RwLock, MultipleReadersConcurrently) {
  RwLock lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
  lock.unlock_shared();
}

// --------------------------------------------------------------- lock order

TEST(LockOrder, ConsistentOrderIsClean) {
  LockOrderRegistry registry;
  OrderedMutex a(registry, "A"), b(registry, "B");
  for (int i = 0; i < 10; ++i) {
    OrderedGuard ga(a);
    OrderedGuard gb(b);
  }
  EXPECT_TRUE(registry.clean());
}

TEST(LockOrder, InversionIsReported) {
  LockOrderRegistry registry;
  OrderedMutex a(registry, "A"), b(registry, "B");
  {
    OrderedGuard ga(a);
    OrderedGuard gb(b);
  }
  {
    OrderedGuard gb(b);
    OrderedGuard ga(a);  // A-after-B inverts the established A->B order
  }
  ASSERT_FALSE(registry.clean());
  EXPECT_NE(registry.violations()[0].find("'A'"), std::string::npos);
  EXPECT_NE(registry.violations()[0].find("'B'"), std::string::npos);
}

TEST(LockOrder, TransitiveCycleIsReported) {
  LockOrderRegistry registry;
  OrderedMutex a(registry, "A"), b(registry, "B"), c(registry, "C");
  {
    OrderedGuard ga(a);
    OrderedGuard gb(b);
  }
  {
    OrderedGuard gb(b);
    OrderedGuard gc(c);
  }
  {
    OrderedGuard gc(c);
    OrderedGuard ga(a);  // closes the A->B->C->A cycle
  }
  EXPECT_FALSE(registry.clean());
}

TEST(LockOrder, IndependentPairsAreClean) {
  LockOrderRegistry registry;
  OrderedMutex a(registry, "A"), b(registry, "B"), c(registry, "C"),
      d(registry, "D");
  {
    OrderedGuard ga(a);
    OrderedGuard gb(b);
  }
  {
    OrderedGuard gc(c);
    OrderedGuard gd(d);
  }
  {
    OrderedGuard gd(d);  // D before A is a fresh order, no cycle
    OrderedGuard ga(a);
  }
  EXPECT_TRUE(registry.clean());
}

// --------------------------------------------------------------- MPMC queue

TEST(MpmcQueue, RoundsCapacityUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpmcQueue<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpmcQueue, FifoWithinCapacity) {
  MpmcQueue<int> q(4);
  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(q.try_push(std::move(i)));
  int overflow = 99;
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 99);  // full push leaves the value untouched
  for (int expect = 1; expect <= 4; ++expect) {
    int got = 0;
    ASSERT_TRUE(q.try_pop(got));
    EXPECT_EQ(got, expect);
  }
  int got = 0;
  EXPECT_FALSE(q.try_pop(got));
}

TEST(MpmcQueue, CarriesMoveOnlyValues) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> got;
  ASSERT_TRUE(q.try_pop(got));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 7);
}

TEST(MpmcQueue, ConcurrentProducersConsumersConserveSum) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 5000;
  MpmcQueue<int> q(64);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> producing{true};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i + 1;
        while (!q.try_push(std::move(value))) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int got = 0;
      for (;;) {
        if (q.try_pop(got)) {
          consumed_sum.fetch_add(got, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (!producing.load(std::memory_order_acquire)) {
          if (!q.try_pop(got)) break;  // drained after producers finished
          consumed_sum.fetch_add(got, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  producing.store(false, std::memory_order_release);
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  constexpr long long kTotal = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed_count.load(), kTotal);
  EXPECT_EQ(consumed_sum.load(), kTotal * (kTotal + 1) / 2);
}

}  // namespace
