// Tests for pdc::simt: fiber scheduling, kernel indexing, shared memory +
// barriers, coalescing and divergence metrics, occupancy, streams/events.
#include <gtest/gtest.h>

#include <numeric>

#include "simt/device.hpp"
#include "support/rng.hpp"
#include "simt/fiber.hpp"
#include "simt/occupancy.hpp"
#include "simt/stream.hpp"

namespace {

using namespace pdc::simt;

// -------------------------------------------------------------------- fiber

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber fiber([&] { x = 42; });
  EXPECT_EQ(fiber.resume(), Fiber::State::kFinished);
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber fiber([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(2);
    Fiber::yield();
    trace.push_back(3);
  });
  EXPECT_EQ(fiber.resume(), Fiber::State::kSuspended);
  trace.push_back(10);
  EXPECT_EQ(fiber.resume(), Fiber::State::kSuspended);
  trace.push_back(20);
  EXPECT_EQ(fiber.resume(), Fiber::State::kFinished);
  EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, InterleavesMultipleFibers) {
  std::string log;
  Fiber a([&] { log += 'a'; Fiber::yield(); log += 'A'; });
  Fiber b([&] { log += 'b'; Fiber::yield(); log += 'B'; });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(log, "abAB");
}

TEST(Fiber, ResumingFinishedFiberIsACheckFailure) {
  Fiber fiber([] {});
  fiber.resume();
  EXPECT_THROW(fiber.resume(), pdc::support::CheckFailure);
}

// ------------------------------------------------------------------ kernels

TEST(Device, VectorAdd) {
  Device device;
  constexpr std::size_t kN = 1000;
  auto a = device.alloc<float>(kN);
  auto b = device.alloc<float>(kN);
  auto c = device.alloc<float>(kN);
  std::vector<float> ha(kN), hb(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ha[i] = static_cast<float>(i);
    hb[i] = static_cast<float>(2 * i);
  }
  device.write(a, ha);
  device.write(b, hb);

  const auto stats = device.launch_1d(kN, 128, [&](ThreadCtx& ctx) {
    const std::size_t i = ctx.global_x();
    if (ctx.branch(i < kN)) {
      ctx.store(c, i, ctx.load(a, i) + ctx.load(b, i));
    }
  });

  const auto hc = device.read(c);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_FLOAT_EQ(hc[i], static_cast<float>(3 * i));
  }
  EXPECT_EQ(stats.blocks, (kN + 127) / 128);
  EXPECT_EQ(stats.threads, stats.blocks * 128);
}

TEST(Device, GridAndBlockIndexing2D) {
  Device device;
  const Dim3 grid{3, 2, 1};
  const Dim3 block{4, 4, 1};
  auto out = device.alloc<int>(grid.count() * block.count());
  device.launch(grid, block, 0, [&](ThreadCtx& ctx) {
    // Unique global slot from the full 2-D coordinates.
    const auto gx = ctx.block_idx().x * ctx.block_dim().x + ctx.thread_idx().x;
    const auto gy = ctx.block_idx().y * ctx.block_dim().y + ctx.thread_idx().y;
    const auto width = ctx.grid_dim().x * ctx.block_dim().x;
    ctx.store(out, gy * width + gx, static_cast<int>(gy * 1000 + gx));
  });
  const auto host = device.read(out);
  const unsigned width = 12, height = 8;
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      EXPECT_EQ(host[y * width + x], static_cast<int>(y * 1000 + x));
    }
  }
}

TEST(Device, SharedMemoryBlockReduction) {
  Device device;
  constexpr unsigned kBlock = 64;
  constexpr unsigned kBlocks = 8;
  auto in = device.alloc<int>(kBlock * kBlocks);
  auto out = device.alloc<int>(kBlocks);
  std::vector<int> host(kBlock * kBlocks);
  std::iota(host.begin(), host.end(), 0);
  device.write(in, host);

  const auto stats = device.launch(
      Dim3{kBlocks}, Dim3{kBlock}, kBlock * sizeof(int), [&](ThreadCtx& ctx) {
        int* shared = ctx.shared<int>();
        const auto tid = ctx.thread_idx().x;
        shared[tid] = ctx.load(in, ctx.global_x());
        ctx.sync_threads();
        // Tree reduction in shared memory.
        for (unsigned stride = kBlock / 2; stride > 0; stride /= 2) {
          if (ctx.branch(tid < stride)) shared[tid] += shared[tid + stride];
          ctx.sync_threads();
        }
        if (tid == 0) ctx.store(out, ctx.block_idx().x, shared[0]);
      });

  const auto sums = device.read(out);
  for (unsigned b = 0; b < kBlocks; ++b) {
    int expected = 0;
    for (unsigned i = 0; i < kBlock; ++i) {
      expected += static_cast<int>(b * kBlock + i);
    }
    EXPECT_EQ(sums[b], expected);
  }
  EXPECT_GT(stats.barriers, 0u);  // the syncs really delimited epochs
}

TEST(Device, EarlyReturnWithOthersSyncing) {
  // Guarded-return kernels (the `if (i >= n) return;` idiom) must not hang
  // when the surviving threads keep synchronizing.
  Device device;
  auto out = device.alloc<int>(8);
  device.launch(Dim3{1}, Dim3{16}, 8 * sizeof(int), [&](ThreadCtx& ctx) {
    const auto tid = ctx.thread_idx().x;
    if (tid >= 8) return;
    int* shared = ctx.shared<int>();
    shared[tid] = static_cast<int>(tid);
    ctx.sync_threads();
    ctx.store(out, tid, shared[7 - tid]);
  });
  const auto host = device.read(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(host[static_cast<std::size_t>(i)], 7 - i);
}

TEST(Device, OutOfBoundsAccessIsACheckFailure) {
  Device device;
  auto buf = device.alloc<int>(4);
  EXPECT_THROW(
      device.launch_1d(1, 1, [&](ThreadCtx& ctx) { ctx.load(buf, 100); }),
      pdc::support::CheckFailure);
}

TEST(Device, OversizedBlockIsACheckFailure) {
  Device device;
  EXPECT_THROW(device.launch(Dim3{1}, Dim3{4096}, 0, [](ThreadCtx&) {}),
               pdc::support::CheckFailure);
}

TEST(Device, OversizedSharedMemoryIsACheckFailure) {
  Device device;
  EXPECT_THROW(
      device.launch(Dim3{1}, Dim3{32}, 1 << 20, [](ThreadCtx&) {}),
      pdc::support::CheckFailure);
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, UnitStrideIsFullyCoalesced) {
  Device device;  // warp = 32, segment = 128B, float = 4B
  constexpr std::size_t kN = 32 * 64;
  auto buf = device.alloc<float>(kN);
  const auto stats = device.launch_1d(kN, 128, [&](ThreadCtx& ctx) {
    ctx.store(buf, ctx.global_x(), 1.0f);
  });
  // 32 lanes × 4B consecutive = exactly one 128B segment per transaction.
  EXPECT_EQ(stats.segments, stats.transactions);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0);
}

TEST(Metrics, LargeStrideDestroysCoalescing) {
  Device device;
  constexpr std::size_t kWarps = 16;
  constexpr std::size_t kStride = 32;  // each lane lands in its own segment
  auto buf = device.alloc<float>(32 * kWarps * kStride);
  const auto stats = device.launch_1d(32 * kWarps, 32, [&](ThreadCtx& ctx) {
    ctx.store(buf, ctx.global_x() * kStride, 1.0f);
  });
  EXPECT_EQ(stats.segments, stats.transactions * 32);
  EXPECT_NEAR(stats.coalescing_efficiency(), 1.0 / 32, 1e-9);
}

TEST(Metrics, DivergenceDetectedWithinWarp) {
  Device device;
  auto buf = device.alloc<int>(64);
  const auto stats = device.launch_1d(64, 64, [&](ThreadCtx& ctx) {
    if (ctx.branch(ctx.global_x() % 2 == 0)) {
      ctx.store(buf, ctx.global_x(), 1);
    }
  });
  EXPECT_EQ(stats.divergence_rate(), 1.0);  // every warp splits odd/even
}

TEST(Metrics, UniformBranchIsNotDivergent) {
  Device device;
  auto buf = device.alloc<int>(64);
  const auto stats = device.launch_1d(64, 32, [&](ThreadCtx& ctx) {
    // Condition uniform across each warp (block-level).
    if (ctx.branch(ctx.block_idx().x == 0)) {
      ctx.store(buf, ctx.global_x(), 1);
    }
  });
  EXPECT_GT(stats.branches, 0u);
  EXPECT_EQ(stats.divergent_branches, 0u);
  EXPECT_EQ(stats.divergence_rate(), 0.0);
}

TEST(Metrics, CyclesGrowWithSegments) {
  Device device;
  auto buf = device.alloc<float>(32 * 32 * 8);
  const auto coalesced = device.launch_1d(32, 32, [&](ThreadCtx& ctx) {
    ctx.store(buf, ctx.global_x(), 1.0f);
  });
  const auto strided = device.launch_1d(32, 32, [&](ThreadCtx& ctx) {
    ctx.store(buf, ctx.global_x() * 32, 1.0f);
  });
  EXPECT_GT(strided.cycles, coalesced.cycles);
}

TEST(Metrics, TotalsAccumulateAcrossLaunches) {
  Device device;
  auto buf = device.alloc<int>(64);
  device.launch_1d(64, 32, [&](ThreadCtx& ctx) { ctx.store(buf, ctx.global_x(), 1); });
  device.launch_1d(64, 32, [&](ThreadCtx& ctx) { ctx.store(buf, ctx.global_x(), 2); });
  EXPECT_EQ(device.totals().blocks, 4u);
  EXPECT_EQ(device.totals().threads, 128u);
}

TEST(Metrics, SmallWarpConfigRespected) {
  DeviceConfig config;
  config.warp_size = 4;
  Device device(config);
  auto buf = device.alloc<int>(8);
  const auto stats = device.launch_1d(8, 8, [&](ThreadCtx& ctx) {
    if (ctx.branch(ctx.lane() == 0)) ctx.store(buf, ctx.global_x(), 1);
  });
  EXPECT_EQ(stats.warps, 2u);
  EXPECT_EQ(stats.divergent_branches, 2u);
}

TEST(Metrics, AtomicAddCorrectAndCountsContention) {
  Device device;
  auto counter = device.alloc<long>(1);
  const auto stats = device.launch_1d(256, 64, [&](ThreadCtx& ctx) {
    ctx.atomic_add(counter, 0, long{1});
  });
  EXPECT_EQ(device.read(counter)[0], 256);
  EXPECT_EQ(stats.atomics, 256u);
  // All 32 lanes of each warp hit the same address: 31 serializations per
  // warp, 8 warps.
  EXPECT_EQ(stats.atomic_serializations, 8u * 31);
}

TEST(Metrics, SpreadAtomicsDoNotSerialize) {
  Device device;
  auto counters = device.alloc<long>(256);
  const auto stats = device.launch_1d(256, 64, [&](ThreadCtx& ctx) {
    ctx.atomic_add(counters, ctx.global_x(), long{1});
  });
  EXPECT_EQ(stats.atomics, 256u);
  EXPECT_EQ(stats.atomic_serializations, 0u);
}

TEST(Metrics, HistogramPrivatizationReducesSerialization) {
  // The canonical atomics lab: a global histogram with few bins serializes
  // heavily; per-block privatization in shared memory followed by one
  // flush per bin nearly eliminates global contention.
  constexpr std::size_t kN = 2048;
  constexpr unsigned kBins = 8;
  std::vector<int> data(kN);
  pdc::support::Rng rng(5);
  for (auto& v : data) v = static_cast<int>(rng.index(kBins));

  Device device;
  auto input = device.alloc<int>(kN);
  device.write(input, data);

  auto global_hist = device.alloc<long>(kBins);
  const auto naive = device.launch_1d(kN, 128, [&](ThreadCtx& ctx) {
    const int bin = ctx.load(input, ctx.global_x());
    ctx.atomic_add(global_hist, static_cast<std::size_t>(bin), long{1});
  });

  auto priv_hist = device.alloc<long>(kBins);
  const auto privatized = device.launch(
      Dim3{static_cast<unsigned>(kN / 128)}, Dim3{128}, kBins * sizeof(long),
      [&](ThreadCtx& ctx) {
        long* local = ctx.shared<long>();
        const auto tid = ctx.thread_idx().x;
        if (tid < kBins) local[tid] = 0;
        ctx.sync_threads();
        // Shared-memory increment: a block-local atomic, far cheaper than
        // a global one (exact here — the simulator steps lanes of a block
        // sequentially within an epoch).
        ++local[ctx.load(input, ctx.global_x())];
        ctx.sync_threads();
        if (tid < kBins) {
          ctx.atomic_add(priv_hist, tid, local[tid]);
        }
      });

  // Same histogram both ways.
  const auto h1 = device.read(global_hist);
  const auto h2 = device.read(priv_hist);
  for (unsigned b = 0; b < kBins; ++b) EXPECT_EQ(h1[b], h2[b]) << b;
  // And far less global-atomic serialization.
  EXPECT_GT(naive.atomic_serializations, 10 * privatized.atomic_serializations);
}

// ---------------------------------------------------------------- occupancy

TEST(Occupancy, UnconstrainedKernelReachesFull) {
  const auto result = occupancy(SmConfig{}, 256, 0, 0);
  EXPECT_EQ(result.blocks_per_sm, 8u);
  EXPECT_DOUBLE_EQ(result.occupancy, 1.0);
}

TEST(Occupancy, TinyBlocksAreBlockCountLimited) {
  const auto result = occupancy(SmConfig{}, 32, 0, 0);
  EXPECT_EQ(result.limiter, OccupancyLimiter::kBlocks);
  EXPECT_EQ(result.blocks_per_sm, 32u);
  EXPECT_DOUBLE_EQ(result.occupancy, 0.5);
}

TEST(Occupancy, SharedMemoryLimits) {
  // 48KB of shared per block on a 96KB SM -> 2 blocks.
  const auto result = occupancy(SmConfig{}, 256, 0, 48 * 1024);
  EXPECT_EQ(result.limiter, OccupancyLimiter::kSharedMemory);
  EXPECT_EQ(result.blocks_per_sm, 2u);
  EXPECT_DOUBLE_EQ(result.occupancy, 0.25);
}

TEST(Occupancy, RegistersLimit) {
  // 64 regs × 512 threads = 32768 regs per block; 65536 per SM -> 2 blocks.
  const auto result = occupancy(SmConfig{}, 512, 64, 0);
  EXPECT_EQ(result.limiter, OccupancyLimiter::kRegisters);
  EXPECT_EQ(result.blocks_per_sm, 2u);
  EXPECT_DOUBLE_EQ(result.occupancy, 0.5);
}

TEST(Occupancy, LimiterNamesRender) {
  EXPECT_STREQ(to_string(OccupancyLimiter::kThreads), "threads");
  EXPECT_STREQ(to_string(OccupancyLimiter::kSharedMemory), "shared_memory");
}

// ------------------------------------------------------------------ streams

TEST(Stream, InOrderWriteLaunchRead) {
  Device device;
  auto buf = device.alloc<int>(100);
  std::vector<int> input(100);
  std::iota(input.begin(), input.end(), 0);
  std::vector<int> output;

  Stream stream(device);
  stream.write(buf, input);
  stream.launch(Dim3{1}, Dim3{100}, 0, [&, buf](ThreadCtx& ctx) mutable {
    const auto i = ctx.global_x();
    ctx.store(buf, i, ctx.load(buf, i) * 2);
  });
  stream.read(buf, &output);
  stream.synchronize();

  ASSERT_EQ(output.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(output[static_cast<std::size_t>(i)], 2 * i);
}

TEST(Stream, EventsOrderAcrossStreams) {
  Device device;
  auto buf = device.alloc<int>(1);
  Stream producer(device);
  Stream consumer(device);
  Event ready;

  producer.launch(Dim3{1}, Dim3{1}, 0,
                  [buf](ThreadCtx& ctx) mutable { ctx.store(buf, 0, 7); });
  producer.record(ready);

  std::vector<int> seen;
  consumer.wait(ready);
  consumer.read(buf, &seen);
  consumer.synchronize();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 7);  // the write was ordered before the read
}

TEST(Stream, EventQueryTransitions) {
  Device device;
  Stream stream(device);
  Event gate_reached;
  Event release;

  stream.record(gate_reached);
  stream.wait(release);  // parks the stream
  Event after;
  stream.record(after);

  gate_reached.synchronize();
  EXPECT_FALSE(after.query());
  // Fire `release` by recording it on a second stream.
  Stream opener(device);
  opener.record(release);
  after.synchronize();
  EXPECT_TRUE(after.query());
}

TEST(Stream, TwoStreamsRunIndependently) {
  Device device;
  auto a = device.alloc<int>(256);
  auto b = device.alloc<int>(256);
  Stream sa(device);
  Stream sb(device);
  for (int round = 0; round < 4; ++round) {
    sa.launch(Dim3{2}, Dim3{128}, 0,
              [a](ThreadCtx& ctx) mutable { ctx.store(a, ctx.global_x(), 1); });
    sb.launch(Dim3{2}, Dim3{128}, 0,
              [b](ThreadCtx& ctx) mutable { ctx.store(b, ctx.global_x(), 2); });
  }
  sa.synchronize();
  sb.synchronize();
  EXPECT_EQ(device.read(a)[200], 1);
  EXPECT_EQ(device.read(b)[200], 2);
}

}  // namespace
