// Tests for pdc::dist: logical clocks, distributed mutual exclusion,
// election, 2PC, Chandy–Lamport snapshots, CMH deadlock detection, load
// balancing, consistent hashing, migration.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <numeric>

#include "dist/balance.hpp"
#include "dist/causal.hpp"
#include "dist/clock_sync.hpp"
#include "dist/clocks.hpp"
#include "dist/deadlock.hpp"
#include "dist/election.hpp"
#include "dist/mutex.hpp"
#include "dist/snapshot.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"

namespace {

using namespace pdc::dist;
using pdc::mp::Communicator;
using pdc::mp::World;

// ------------------------------------------------------------------- clocks

TEST(LamportClock, TickIsMonotonic) {
  LamportClock clock;
  EXPECT_EQ(clock.tick(), 1u);
  EXPECT_EQ(clock.tick(), 2u);
  EXPECT_EQ(clock.now(), 2u);
}

TEST(LamportClock, MergeJumpsPastReceived) {
  LamportClock clock;
  clock.tick();
  EXPECT_EQ(clock.merge(10), 11u);
  EXPECT_EQ(clock.merge(3), 12u);  // local already ahead
}

TEST(VectorClock, CompareCoversAllOutcomes) {
  using V = std::vector<std::uint64_t>;
  EXPECT_EQ(VectorClock::compare(V{1, 0}, V{1, 0}), Causality::kEqual);
  EXPECT_EQ(VectorClock::compare(V{1, 0}, V{1, 1}), Causality::kBefore);
  EXPECT_EQ(VectorClock::compare(V{2, 1}, V{1, 1}), Causality::kAfter);
  EXPECT_EQ(VectorClock::compare(V{1, 0}, V{0, 1}), Causality::kConcurrent);
}

TEST(VectorClock, MessageChainEstablishesHappenedBefore) {
  VectorClock a(3, 0), b(3, 1), c(3, 2);
  a.tick();                 // event at A
  const auto send_a = a.now();
  b.merge(send_a);          // B receives from A
  const auto send_b = b.now();
  c.merge(send_b);          // C receives from B
  EXPECT_TRUE(happened_before(send_a, c.now()));
  EXPECT_TRUE(happened_before(send_b, c.now()));
}

TEST(VectorClock, IndependentEventsAreConcurrent) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();
  b.tick();
  EXPECT_TRUE(concurrent(a.now(), b.now()));
  EXPECT_EQ(to_string(Causality::kConcurrent), std::string("concurrent"));
}

TEST(VectorClock, ToStringRenders) {
  VectorClock v(3, 1);
  v.tick();
  EXPECT_EQ(v.to_string(), "[0 1 0]");
}

// ----------------------------------------------------------- causal order

TEST(CausalOrder, BuffersUntilCausalPastArrives) {
  // Observer is process 2 of 3. m2 (from 1) causally follows m1 (from 0)
  // but arrives first: it must wait.
  CausalOrderBuffer buffer(3, 2);
  CausalMessage m1{0, {1, 0, 0}, 100};
  CausalMessage m2{1, {1, 1, 0}, 200};

  auto first = buffer.offer(m2);
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(buffer.buffered(), 1u);

  auto second = buffer.offer(m1);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].payload, 100);  // causal order restored
  EXPECT_EQ(second[1].payload, 200);
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(CausalOrder, FifoGapFromOneSenderBlocks) {
  CausalOrderBuffer buffer(2, 1);
  CausalMessage second_msg{0, {2, 0}, 2};
  CausalMessage first_msg{0, {1, 0}, 1};
  EXPECT_TRUE(buffer.offer(second_msg).empty());
  const auto released = buffer.offer(first_msg);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].payload, 1);
  EXPECT_EQ(released[1].payload, 2);
}

TEST(CausalOrder, ConcurrentMessagesDeliverInAnyOrderImmediately) {
  CausalOrderBuffer buffer(3, 2);
  CausalMessage from0{0, {1, 0, 0}, 10};
  CausalMessage from1{1, {0, 1, 0}, 20};  // concurrent with from0
  EXPECT_EQ(buffer.offer(from1).size(), 1u);
  EXPECT_EQ(buffer.offer(from0).size(), 1u);
}

TEST(CausalOrder, OwnSendsAdvanceTheVector) {
  CausalOrderBuffer buffer(2, 0);
  const auto stamp = buffer.stamp_send();
  EXPECT_EQ(stamp, (std::vector<std::uint64_t>{1, 0}));
  // A peer message that already saw our send is deliverable.
  CausalMessage reply{1, {1, 1}, 5};
  EXPECT_EQ(buffer.offer(reply).size(), 1u);
}

TEST(CausalBroadcastSpmd, ChainDeliversInCausalOrderEverywhere) {
  constexpr int kRanks = 3;
  World world(kRanks);
  world.run([](Communicator& comm) {
    CausalBroadcast cb(comm);
    std::vector<std::int64_t> delivered;
    auto drain = [&] {
      for (const auto& message : cb.poll()) {
        delivered.push_back(message.payload);
      }
    };
    // Rank 0 starts the chain; rank 1 responds after seeing it. Nobody
    // receives their own broadcast: rank 0 gets only the reply (1), rank 1
    // only the original (1), rank 2 both (2).
    if (comm.rank() == 0) cb.broadcast(100);
    const std::size_t expect = comm.rank() == 2 ? 2u : 1u;
    bool replied = comm.rank() != 1;
    while (delivered.size() < expect || !replied) {
      drain();
      if (!replied && !delivered.empty() && delivered[0] == 100) {
        cb.broadcast(200);  // causally after 100
        replied = true;
      }
      std::this_thread::yield();
    }
    if (comm.rank() == 2) {
      // The payoff: even if 200 raced ahead on the wire, delivery order
      // respects causality.
      EXPECT_EQ(delivered, (std::vector<std::int64_t>{100, 200}));
    }
    EXPECT_EQ(cb.buffered(), 0u);
  });
}

// --------------------------------------------------------------- clock sync

TEST(ClockSync, DriftingClockReadsSkewed) {
  DriftingClock clock(5.0, 0.01);  // +5s offset, 1% fast
  EXPECT_DOUBLE_EQ(clock.read(0.0), 5.0);
  EXPECT_DOUBLE_EQ(clock.read(100.0), 106.0);
  clock.adjust(-5.0);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 0.0);
}

TEST(ClockSync, CristianReducesSkewToDelayScale) {
  pdc::support::Rng rng(31);
  std::vector<DriftingClock> clocks;
  clocks.emplace_back(0.0, 0.0);  // reference server
  for (int i = 0; i < 8; ++i) {
    clocks.emplace_back(rng.uniform(-5.0, 5.0), 0.0);
  }
  constexpr double kDelay = 0.010;  // 10ms mean one-way
  const auto result = cristian_sync(clocks, 1000.0, kDelay, rng);
  EXPECT_GT(result.max_error_before, 1.0);  // seconds of skew before
  EXPECT_LT(result.max_error_after, 10 * kDelay);  // delay-scale after
  EXPECT_EQ(result.messages, 16u);  // request+response per client
}

TEST(ClockSync, BerkeleyConvergesWithoutReference) {
  pdc::support::Rng rng(37);
  std::vector<DriftingClock> clocks;
  for (int i = 0; i < 6; ++i) {
    clocks.emplace_back(rng.uniform(-3.0, 3.0), 0.0);
  }
  const auto result = berkeley_sync(clocks, 500.0, 0.005, rng);
  EXPECT_GT(result.max_error_before, 0.5);
  EXPECT_LT(result.max_error_after, result.max_error_before / 10);
}

TEST(ClockSync, RepeatedSyncFightsDrift) {
  pdc::support::Rng rng(41);
  std::vector<DriftingClock> clocks;
  clocks.emplace_back(0.0, 0.0);
  clocks.emplace_back(0.0, 1e-4);   // 100ppm fast
  clocks.emplace_back(0.0, -1e-4);  // 100ppm slow
  // Without sync, after 10000s the skew is ~1s; sync every 1000s keeps it
  // near the delay scale.
  double worst = 0.0;
  for (int epoch = 1; epoch <= 10; ++epoch) {
    const double now = epoch * 1000.0;
    const auto result = cristian_sync(clocks, now, 0.002, rng);
    worst = std::max(worst, result.max_error_after);
  }
  EXPECT_LT(worst, 0.2);  // vs ~1.0 unsynced
}

TEST(ClockSync, MpCristianReducesSkewToDelayScale) {
  // The message-passing variant: rank 0 serves, everyone else converges
  // to it within the delay scale after one exchange.
  constexpr int kRanks = 4;
  constexpr double kDelay = 0.010;  // 10ms mean one-way
  const double offsets[kRanks] = {0.0, 4.0, -3.0, 2.5};
  std::atomic<std::uint64_t> total_messages{0};
  World world(kRanks);
  world.run([&](Communicator& comm) {
    DriftingClock clock(offsets[comm.rank()], 0.0);
    pdc::support::Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    const auto result = cristian_sync_mp(comm, clock, /*true_time=*/1000.0,
                                         kDelay, rng);
    total_messages += result.messages;
    if (comm.rank() == 0) {
      // The server's clock is authoritative: never adjusted, one response
      // per client.
      EXPECT_EQ(result.applied_delta, 0.0);
      EXPECT_EQ(result.messages, static_cast<std::uint64_t>(kRanks - 1));
      EXPECT_DOUBLE_EQ(clock.read(1000.0), 1000.0);
    } else {
      EXPECT_EQ(result.messages, 1u);
      EXPECT_GT(std::abs(result.applied_delta), 1.0);  // seconds of skew fixed
      EXPECT_LT(std::abs(clock.read(1000.0) - 1000.0), 10 * kDelay);
    }
  });
  // One request per client plus one response each from the server.
  EXPECT_EQ(total_messages.load(), 2u * (kRanks - 1));
}

// ----------------------------------------------------- mutual exclusion

TEST(RicartAgrawala, MutualExclusionHolds) {
  constexpr int kRanks = 4, kEntries = 10;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::atomic<long> counter{0};

  World world(kRanks);
  world.run([&](Communicator& comm) {
    RicartAgrawala mutex(comm);
    for (int e = 0; e < kEntries; ++e) {
      mutex.enter();
      if (inside.fetch_add(1) != 0) violated = true;
      counter.fetch_add(1);
      inside.fetch_sub(1);
      mutex.leave();
    }
    mutex.finish();
  });
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter.load(), kRanks * kEntries);
}

TEST(RicartAgrawala, MessageCountPerEntryIsTwoPMinusOne) {
  // 2(p-1) messages per entry: p-1 requests + p-1 replies; DONE adds p-1
  // per rank once.
  constexpr int kRanks = 3, kEntries = 5;
  std::atomic<std::uint64_t> total_messages{0};
  World world(kRanks);
  world.run([&](Communicator& comm) {
    RicartAgrawala mutex(comm);
    for (int e = 0; e < kEntries; ++e) {
      mutex.enter();
      mutex.leave();
    }
    mutex.finish();
    total_messages += mutex.messages_sent();
  });
  const std::uint64_t expected =
      kRanks * (kEntries * 2 * (kRanks - 1) + (kRanks - 1));
  EXPECT_EQ(total_messages.load(), expected);
}

TEST(TokenRing, AllEntriesGrantedExclusively) {
  constexpr int kRanks = 5;
  constexpr std::size_t kEntries = 8;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::atomic<long> counter{0};

  World world(kRanks);
  world.run([&](Communicator& comm) {
    run_token_ring(comm, kEntries, [&] {
      if (inside.fetch_add(1) != 0) violated = true;
      counter.fetch_add(1);
      inside.fetch_sub(1);
    });
  });
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter.load(), kRanks * static_cast<long>(kEntries));
}

TEST(TokenRing, SingleRankShortCircuits) {
  World world(1);
  world.run([&](Communicator& comm) {
    int entries = 0;
    const auto hops = run_token_ring(comm, 3, [&] { ++entries; });
    EXPECT_EQ(entries, 3);
    EXPECT_EQ(hops, 0u);
  });
}

// ----------------------------------------------------------------- election

TEST(RingElection, HighestAliveWins) {
  constexpr int kRanks = 5;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    const std::vector<bool> alive(kRanks, true);
    const auto result =
        ring_election(comm, alive, /*initiate=*/comm.rank() == 2);
    EXPECT_EQ(result.leader, kRanks - 1);
  });
}

TEST(RingElection, SkipsDeadRanks) {
  constexpr int kRanks = 5;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    std::vector<bool> alive(kRanks, true);
    alive[4] = false;  // the would-be leader is dead
    alive[1] = false;
    if (!alive[static_cast<std::size_t>(comm.rank())]) {
      EXPECT_EQ(ring_election(comm, alive, false).leader, -1);
      return;
    }
    const auto result =
        ring_election(comm, alive, /*initiate=*/comm.rank() == 0);
    EXPECT_EQ(result.leader, 3);
  });
}

TEST(RingElection, MultipleInitiatorsAgree) {
  constexpr int kRanks = 4;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    const std::vector<bool> alive(kRanks, true);
    const auto result = ring_election(comm, alive, /*initiate=*/true);
    EXPECT_EQ(result.leader, kRanks - 1);
  });
}

TEST(BullyElection, HighestAliveWins) {
  constexpr int kRanks = 4;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    const std::vector<bool> alive(kRanks, true);
    const auto result = bully_election(comm, alive, /*initiator=*/0);
    EXPECT_EQ(result.leader, kRanks - 1);
  });
}

TEST(BullyElection, TakesOverWhenTopIsDead) {
  constexpr int kRanks = 4;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    std::vector<bool> alive(kRanks, true);
    alive[3] = false;
    if (comm.rank() == 3) {
      EXPECT_EQ(bully_election(comm, alive, 0).leader, -1);
      return;
    }
    const auto result = bully_election(comm, alive, /*initiator=*/0);
    EXPECT_EQ(result.leader, 2);
  });
}

// ---------------------------------------------------------------------- 2PC

TEST(TwoPhaseCommit, UnanimousVotesCommit) {
  constexpr int kRanks = 4;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    const auto stats = comm.rank() == 0
                           ? run_2pc_coordinator(comm)
                           : run_2pc_participant(comm, /*vote_commit=*/true);
    EXPECT_EQ(stats.decision, TxnDecision::kCommitted);
    EXPECT_FALSE(stats.timed_out);
  });
}

TEST(TwoPhaseCommit, SingleNoVoteAborts) {
  constexpr int kRanks = 4;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    const auto stats =
        comm.rank() == 0
            ? run_2pc_coordinator(comm)
            : run_2pc_participant(comm, /*vote_commit=*/comm.rank() != 2);
    EXPECT_EQ(stats.decision, TxnDecision::kAborted);
  });
}

TEST(TwoPhaseCommit, CoordinatorCrashLeadsToPresumedAbort) {
  constexpr int kRanks = 3;
  World world(kRanks);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const auto stats = run_2pc_coordinator(comm, /*crash_before_decision=*/true);
      EXPECT_EQ(stats.decision, TxnDecision::kAborted);
    } else {
      const auto stats = run_2pc_participant(comm, true,
                                             std::chrono::milliseconds(50));
      EXPECT_EQ(stats.decision, TxnDecision::kAborted);
      EXPECT_TRUE(stats.timed_out);
    }
  });
}

TEST(TwoPhaseCommit, DecisionNamesRender) {
  EXPECT_STREQ(to_string(TxnDecision::kCommitted), "committed");
  EXPECT_STREQ(to_string(TxnDecision::kAborted), "aborted");
}

// ----------------------------------------------------------------- snapshot

class SnapshotTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotTest, TokenConservationInvariant) {
  const int ranks = GetParam();
  constexpr std::int64_t kInitial = 20;
  constexpr std::size_t kSends = 200;

  std::atomic<std::int64_t> recorded_total{0};
  std::atomic<std::int64_t> final_total{0};
  World world(ranks);
  world.run([&](Communicator& comm) {
    const auto result = run_token_snapshot(comm, kInitial, kSends,
                                           /*initiator=*/comm.rank() == 0,
                                           /*seed=*/77);
    recorded_total += result.recorded_local + result.recorded_in_flight;
    final_total += result.final_tokens;
    if (comm.rank() != 0) EXPECT_EQ(result.markers_sent,
                                    static_cast<std::uint64_t>(comm.size() - 1));
  });
  EXPECT_EQ(recorded_total.load(), kInitial * ranks);
  EXPECT_EQ(final_total.load(), kInitial * ranks);
}

INSTANTIATE_TEST_SUITE_P(Worlds, SnapshotTest, ::testing::Values(1, 2, 3, 6),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// ----------------------------------------------------------------- deadlock

TEST(CmhDeadlock, ChainIsNotDeadlock) {
  CmhDeadlockDetector detector(4);
  detector.add_wait(0, 1);
  detector.add_wait(1, 2);
  detector.add_wait(2, 3);
  EXPECT_FALSE(detector.detect(0));
  EXPECT_FALSE(detector.detect_any());
}

TEST(CmhDeadlock, CycleDetectedFromMember) {
  CmhDeadlockDetector detector(4);
  detector.add_wait(0, 1);
  detector.add_wait(1, 2);
  detector.add_wait(2, 0);
  EXPECT_TRUE(detector.detect(0));
  EXPECT_TRUE(detector.detect(1));
  EXPECT_GT(detector.probes_sent(), 0u);
}

TEST(CmhDeadlock, NonMemberInitiatorDoesNotSelfDetect) {
  // 3 waits into a cycle {0,1,2} but is not on it: probes from 3 never
  // return to 3, so 3 is not deadlocked (it would be unblocked if the
  // cycle resolved... it wouldn't, but CMH answers "am I deadlocked" only
  // for cycles through the initiator).
  CmhDeadlockDetector detector(4);
  detector.add_wait(0, 1);
  detector.add_wait(1, 2);
  detector.add_wait(2, 0);
  detector.add_wait(3, 0);
  EXPECT_FALSE(detector.detect(3));
  EXPECT_TRUE(detector.detect_any());
}

TEST(CmhDeadlock, RemoveWaitBreaksCycle) {
  CmhDeadlockDetector detector(3);
  detector.add_wait(0, 1);
  detector.add_wait(1, 0);
  EXPECT_TRUE(detector.detect(0));
  detector.remove_wait(1, 0);
  EXPECT_FALSE(detector.detect(0));
}

TEST(CmhDeadlock, DiamondWithoutCycleTerminates) {
  CmhDeadlockDetector detector(5);
  detector.add_wait(0, 1);
  detector.add_wait(0, 2);
  detector.add_wait(1, 3);
  detector.add_wait(2, 3);
  detector.add_wait(3, 4);
  EXPECT_FALSE(detector.detect(0));
  // Duplicate suppression: 3's edges chased once, not twice.
  EXPECT_LE(detector.probes_sent(), 6u);
}

// ------------------------------------------------------------ load balancing

TEST(Balance, PoliciesOrderOnSkewedWork) {
  const auto tasks = make_skewed_tasks(400, 5);
  const auto rr = simulate_round_robin(tasks, 8);
  const auto ll = simulate_least_loaded(tasks, 8);
  const auto ws = simulate_work_stealing(tasks, 8);
  EXPECT_GT(rr.makespan, ll.makespan);
  // Stealing repairs imbalance at least as well as sharing repairs it at
  // submission (modulo the tail task that bounds both).
  EXPECT_LE(ws.makespan, rr.makespan);
  EXPECT_GT(ws.steals, 0u);
  EXPECT_GT(ll.utilization(), rr.utilization());
}

TEST(Balance, UniformWorkIsBalancedEverywhere) {
  const std::vector<double> tasks(64, 1.0);
  const auto rr = simulate_round_robin(tasks, 8);
  const auto ws = simulate_work_stealing(tasks, 8);
  EXPECT_DOUBLE_EQ(rr.makespan, 8.0);
  EXPECT_DOUBLE_EQ(ws.makespan, 8.0);
  EXPECT_DOUBLE_EQ(rr.utilization(), 1.0);
}

TEST(Balance, MakespanNeverBelowCriticalTask) {
  std::vector<double> tasks(20, 0.1);
  tasks.push_back(50.0);  // one giant task bounds every policy
  for (const auto& result :
       {simulate_round_robin(tasks, 4), simulate_least_loaded(tasks, 4),
        simulate_work_stealing(tasks, 4)}) {
    EXPECT_GE(result.makespan, 50.0);
  }
}

TEST(Balance, SingleWorkerSerializes) {
  const std::vector<double> tasks{1, 2, 3};
  const auto result = simulate_work_stealing(tasks, 1);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
  EXPECT_EQ(result.steals, 0u);
}

// -------------------------------------------------------- consistent hashing

TEST(HashRing, DistributesKeysAcrossNodes) {
  ConsistentHashRing ring(64);
  for (int n = 0; n < 4; ++n) ring.add_node("node" + std::to_string(n));
  std::map<std::string, int> counts;
  for (int k = 0; k < 4000; ++k) {
    counts[ring.node_for("key" + std::to_string(k))]++;
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, 400) << node;  // no node starved (fair within ~2.5x)
  }
}

TEST(HashRing, AddingNodeMovesOnlyItsShare) {
  ConsistentHashRing ring(64);
  for (int n = 0; n < 4; ++n) ring.add_node("node" + std::to_string(n));
  std::vector<std::string> before;
  for (int k = 0; k < 2000; ++k) {
    before.push_back(ring.node_for("key" + std::to_string(k)));
  }
  ring.add_node("node4");
  int moved = 0;
  for (int k = 0; k < 2000; ++k) {
    const auto& now = ring.node_for("key" + std::to_string(k));
    if (now != before[static_cast<std::size_t>(k)]) {
      EXPECT_EQ(now, "node4");  // keys only move TO the new node
      ++moved;
    }
  }
  EXPECT_GT(moved, 100);   // it did take its share...
  EXPECT_LT(moved, 1000);  // ...but far less than a rehash-everything
}

TEST(HashRing, RemovingNodeOnlyRemapsItsKeys) {
  ConsistentHashRing ring(64);
  for (int n = 0; n < 4; ++n) ring.add_node("node" + std::to_string(n));
  std::vector<std::string> before;
  for (int k = 0; k < 2000; ++k) {
    before.push_back(ring.node_for("key" + std::to_string(k)));
  }
  ring.remove_node("node2");
  for (int k = 0; k < 2000; ++k) {
    const auto& now = ring.node_for("key" + std::to_string(k));
    if (before[static_cast<std::size_t>(k)] != "node2") {
      EXPECT_EQ(now, before[static_cast<std::size_t>(k)]);
    } else {
      EXPECT_NE(now, "node2");
    }
  }
}

TEST(HashRing, LookupIsDeterministic) {
  ConsistentHashRing ring(16);
  ring.add_node("a");
  ring.add_node("b");
  EXPECT_EQ(ring.node_for("x"), ring.node_for("x"));
  EXPECT_EQ(ring.node_count(), 2u);
}

// ------------------------------------------------------------------ migration

TEST(Migration, ReducesImbalanceBelowThreshold) {
  std::vector<std::vector<double>> hosts{
      {10, 10, 10, 5, 5}, {1}, {2, 1}, {1}};
  const auto result = rebalance_by_migration(hosts, 6.0);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_LT(result.final_imbalance, result.initial_imbalance);
  EXPECT_LE(result.final_imbalance, 6.0 + 1e-9);
}

TEST(Migration, BalancedSystemNeedsNoMigration) {
  std::vector<std::vector<double>> hosts{{5.0}, {5.0}, {5.0}};
  const auto result = rebalance_by_migration(hosts, 1.0);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_DOUBLE_EQ(result.final_imbalance, 0.0);
}

TEST(Migration, UnsplittableLoadStopsGracefully) {
  // One monolithic process cannot be moved without inverting the imbalance.
  std::vector<std::vector<double>> hosts{{100.0}, {}};
  const auto result = rebalance_by_migration(hosts, 1.0);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_DOUBLE_EQ(result.final_imbalance, 100.0);
}

}  // namespace
