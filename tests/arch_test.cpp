// Tests for pdc::arch: cache behaviour and replacement/write policies,
// MESI protocol transitions and sharing classification, pipeline hazard
// accounting, Tomasulo scheduling, analytic models, Flynn taxonomy.
#include <gtest/gtest.h>

#include "arch/cache.hpp"
#include "arch/flynn.hpp"
#include "arch/mesi.hpp"
#include "arch/models.hpp"
#include "arch/pipeline.hpp"
#include "arch/tomasulo.hpp"

namespace {

using namespace pdc::arch;

// -------------------------------------------------------------------- cache

CacheConfig small_cache() {
  CacheConfig config;
  config.size_bytes = 1024;
  config.line_bytes = 64;
  config.associativity = 2;
  return config;
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_cache());
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_TRUE(cache.access(0, false));
  EXPECT_TRUE(cache.access(63, false));   // same line
  EXPECT_FALSE(cache.access(64, false));  // next line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, ConflictEvictionInSet) {
  auto config = small_cache();  // 1KB / 64B / 2-way => 8 sets
  Cache cache(config);
  // Three lines mapping to set 0: line ids 0, 8, 16.
  const std::uint64_t a = 0, b = 8 * 64, c = 16 * 64;
  cache.access(a, false);
  cache.access(b, false);
  cache.access(c, false);  // evicts a (LRU)
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_TRUE(cache.contains(c));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, LruVersusFifoVictimChoice) {
  // Pattern A B A C: LRU evicts B; FIFO evicts A (oldest fill).
  auto config = small_cache();
  const std::uint64_t A = 0, B = 8 * 64, C = 16 * 64;

  Cache lru(config);
  lru.access(A, false);
  lru.access(B, false);
  lru.access(A, false);  // refresh A
  lru.access(C, false);
  EXPECT_TRUE(lru.contains(A));
  EXPECT_FALSE(lru.contains(B));

  config.replacement = Replacement::kFifo;
  Cache fifo(config);
  fifo.access(A, false);
  fifo.access(B, false);
  fifo.access(A, false);
  fifo.access(C, false);
  EXPECT_FALSE(fifo.contains(A));
  EXPECT_TRUE(fifo.contains(B));
}

TEST(Cache, WriteBackCountsDirtyEvictions) {
  Cache cache(small_cache());
  cache.access(0, true);        // dirty
  cache.access(8 * 64, false);  // clean
  cache.access(16 * 64, false); // evicts line 0 (dirty)
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().memory_writes, 0u);
}

TEST(Cache, WriteThroughNoAllocate) {
  auto config = small_cache();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  EXPECT_FALSE(cache.access(0, true));   // store miss: no allocation
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.stats().memory_writes, 1u);
  cache.access(0, false);  // load allocates
  EXPECT_TRUE(cache.access(0, true));  // store hit still writes through
  EXPECT_EQ(cache.stats().memory_writes, 2u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, FullyAssociativeHasNoConflictMisses) {
  auto config = small_cache();
  config.associativity = 0;  // fully associative: 16 ways
  Cache cache(config);
  // 16 distinct lines fit regardless of address spacing.
  for (std::uint64_t i = 0; i < 16; ++i) cache.access(i * 8 * 64, false);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(cache.access(i * 8 * 64, false));
  }
}

TEST(Cache, SequentialScanLargerThanCacheMissesEveryLine) {
  Cache cache(small_cache());
  const std::size_t lines = 64;  // 4KB scan over a 1KB cache
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < lines; ++i) {
      cache.access(i * 64, false);
    }
  }
  EXPECT_EQ(cache.stats().misses, 2 * lines);  // no reuse survives
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, InvalidateDropsLineAndReportsDirty) {
  Cache cache(small_cache());
  cache.access(128, true);
  EXPECT_TRUE(cache.invalidate(128));   // was dirty
  EXPECT_FALSE(cache.contains(128));
  EXPECT_FALSE(cache.invalidate(128));  // already gone
}

// --------------------------------------------------------------------- MESI

CacheConfig coherent_cache() {
  CacheConfig config;
  config.size_bytes = 4096;
  config.line_bytes = 64;
  config.associativity = 4;
  return config;
}

TEST(Mesi, FirstReadIsExclusive) {
  MesiSystem sys(2, coherent_cache());
  sys.read(0, 0x100);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kExclusive);
  EXPECT_EQ(sys.stats().bus_reads, 1u);
}

TEST(Mesi, SecondReaderDegradesToShared) {
  MesiSystem sys(2, coherent_cache());
  sys.read(0, 0x100);
  sys.read(1, 0x100);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kShared);
  EXPECT_EQ(sys.state_of(1, 0x100), MesiState::kShared);
}

TEST(Mesi, SilentUpgradeFromExclusive) {
  MesiSystem sys(2, coherent_cache());
  sys.read(0, 0x100);
  sys.write(0, 0x100);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kModified);
  EXPECT_EQ(sys.stats().upgrades, 0u);  // E->M costs no bus transaction
  EXPECT_EQ(sys.stats().bus_read_exclusive, 0u);
}

TEST(Mesi, SharedWriteIssuesUpgradeAndInvalidates) {
  MesiSystem sys(2, coherent_cache());
  sys.read(0, 0x100);
  sys.read(1, 0x100);
  sys.write(0, 0x100);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kModified);
  EXPECT_EQ(sys.state_of(1, 0x100), MesiState::kInvalid);
  EXPECT_EQ(sys.stats().upgrades, 1u);
  EXPECT_EQ(sys.stats().invalidations, 1u);
}

TEST(Mesi, DirtySnoopCausesWritebackAndIntervention) {
  MesiSystem sys(2, coherent_cache());
  sys.write(0, 0x100);  // M at core 0
  sys.read(1, 0x100);   // snoop hits dirty line
  EXPECT_EQ(sys.stats().writebacks, 1u);
  EXPECT_EQ(sys.stats().interventions, 1u);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kShared);
  EXPECT_EQ(sys.state_of(1, 0x100), MesiState::kShared);
}

TEST(Mesi, TrueSharingClassified) {
  MesiSystem sys(2, coherent_cache());
  sys.read(1, 0x100);   // core 1 holds the line
  sys.write(0, 0x100);  // core 0 writes word 0 -> invalidates core 1
  sys.read(1, 0x100);   // core 1 re-reads the written word
  EXPECT_EQ(sys.stats().coherence_misses, 1u);
  EXPECT_EQ(sys.stats().true_sharing_misses, 1u);
  EXPECT_EQ(sys.stats().false_sharing_misses, 0u);
}

TEST(Mesi, FalseSharingClassified) {
  MesiSystem sys(2, coherent_cache());
  sys.read(1, 0x120);   // core 1 uses word 8 of line 0x100
  sys.write(0, 0x100);  // core 0 writes word 0 of the same line
  sys.read(1, 0x120);   // core 1 re-reads ITS word: nothing it reads changed
  EXPECT_EQ(sys.stats().coherence_misses, 1u);
  EXPECT_EQ(sys.stats().false_sharing_misses, 1u);
  EXPECT_EQ(sys.stats().true_sharing_misses, 0u);
}

TEST(Mesi, PingPongWritesInvalidateEachRound) {
  MesiSystem sys(2, coherent_cache());
  for (int round = 0; round < 10; ++round) {
    sys.write(0, 0x200);
    sys.write(1, 0x200);
  }
  // After the first write, every subsequent write invalidates the peer.
  EXPECT_EQ(sys.stats().invalidations, 19u);
  EXPECT_GE(sys.stats().coherence_misses, 18u);
}

TEST(Mesi, PaddedCountersAvoidFalseSharing) {
  // The classic lab: two cores incrementing distinct counters. Packed into
  // one line they false-share; padded to separate lines they do not.
  const auto run = [](std::uint64_t addr0, std::uint64_t addr1) {
    MesiSystem sys(2, coherent_cache());
    for (int i = 0; i < 100; ++i) {
      sys.write(0, addr0);
      sys.write(1, addr1);
    }
    return sys.stats();
  };
  const auto packed = run(0x100, 0x104);  // same line, different words
  const auto padded = run(0x100, 0x140);  // different lines
  EXPECT_GT(packed.false_sharing_misses, 100u);
  EXPECT_EQ(padded.false_sharing_misses, 0u);
  EXPECT_EQ(padded.invalidations, 0u);
  EXPECT_LT(padded.misses, packed.misses / 10);
}

TEST(Mesi, MsiPrivateReadLandsShared) {
  MesiSystem sys(2, coherent_cache(), 4, CoherenceProtocol::kMsi);
  sys.read(0, 0x100);
  EXPECT_EQ(sys.state_of(0, 0x100), MesiState::kShared);  // no E in MSI
}

TEST(Mesi, MsiPaysUpgradeWhereMesiIsSilent) {
  // Private read-then-write on each protocol: the E state's whole purpose.
  const auto run = [](CoherenceProtocol protocol) {
    MesiSystem sys(2, coherent_cache(), 4, protocol);
    for (std::uint64_t i = 0; i < 50; ++i) {
      sys.read(0, 0x1000 + i * 64);
      sys.write(0, 0x1000 + i * 64);
    }
    return sys.stats();
  };
  const auto msi = run(CoherenceProtocol::kMsi);
  const auto mesi = run(CoherenceProtocol::kMesi);
  EXPECT_EQ(mesi.upgrades, 0u);
  EXPECT_EQ(msi.upgrades, 50u);
  EXPECT_EQ(msi.misses, mesi.misses);  // same data movement otherwise
}

TEST(Mesi, ProtocolsAgreeOnSharedData) {
  // With genuinely shared lines, MSI and MESI produce identical
  // invalidation traffic (the E state never arises).
  const auto run = [](CoherenceProtocol protocol) {
    MesiSystem sys(2, coherent_cache(), 4, protocol);
    for (int i = 0; i < 20; ++i) {
      sys.read(0, 0x100);
      sys.read(1, 0x100);
      sys.write(0, 0x100);
    }
    return sys.stats();
  };
  const auto msi = run(CoherenceProtocol::kMsi);
  const auto mesi = run(CoherenceProtocol::kMesi);
  EXPECT_EQ(msi.invalidations, mesi.invalidations);
  EXPECT_EQ(msi.coherence_misses, mesi.coherence_misses);
}

TEST(Mesi, EvictionIsNotACoherenceMiss) {
  auto config = coherent_cache();
  config.size_bytes = 128;  // 2 lines only
  config.associativity = 1;
  MesiSystem sys(1, config);
  sys.read(0, 0);
  sys.read(0, 128);  // conflicts with line 0 in a direct-mapped 2-set cache
  sys.read(0, 0);
  EXPECT_EQ(sys.stats().coherence_misses, 0u);
}

// ----------------------------------------------------------------- pipeline

TEST(Pipeline, IndependentInstructionsReachIdealCpi) {
  std::vector<TraceInstr> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({Op::kAlu, 1 + i % 8, 20, 21, static_cast<std::uint64_t>(i), false});
  }
  const auto stats = simulate_pipeline(trace, {.forwarding = false});
  EXPECT_EQ(stats.cycles, 5u + 99u);
  EXPECT_EQ(stats.raw_stalls, 0u);
  EXPECT_NEAR(stats.cpi(), 1.04, 0.001);
}

TEST(Pipeline, RawDistanceOneStallsWithoutForwarding) {
  std::vector<TraceInstr> trace{
      {Op::kAlu, 1, 2, 3, 0, false},
      {Op::kAlu, 4, 1, 3, 4, false},  // depends on previous
  };
  const auto stats = simulate_pipeline(trace, {.forwarding = false});
  EXPECT_EQ(stats.raw_stalls, 2u);
  const auto forwarded = simulate_pipeline(trace, {.forwarding = true});
  EXPECT_EQ(forwarded.raw_stalls, 0u);
}

TEST(Pipeline, RawDistanceTwoStallsOneCycleWithoutForwarding) {
  std::vector<TraceInstr> trace{
      {Op::kAlu, 1, 2, 3, 0, false},
      {Op::kAlu, 5, 6, 7, 4, false},
      {Op::kAlu, 4, 1, 3, 8, false},  // distance 2 from the writer
  };
  const auto stats = simulate_pipeline(trace, {.forwarding = false});
  EXPECT_EQ(stats.raw_stalls, 1u);
}

TEST(Pipeline, RawDistanceThreeIsFree) {
  std::vector<TraceInstr> trace{
      {Op::kAlu, 1, 2, 3, 0, false},
      {Op::kAlu, 5, 6, 7, 4, false},
      {Op::kAlu, 8, 6, 7, 8, false},
      {Op::kAlu, 4, 1, 3, 12, false},  // distance 3: register file forwards
  };
  const auto stats = simulate_pipeline(trace, {.forwarding = false});
  EXPECT_EQ(stats.raw_stalls, 0u);
}

TEST(Pipeline, LoadUseStallsEvenWithForwarding) {
  std::vector<TraceInstr> trace{
      {Op::kLoad, 1, 2, -1, 0, false},
      {Op::kAlu, 3, 1, 4, 4, false},  // needs the load result immediately
  };
  const auto stats = simulate_pipeline(trace, {.forwarding = true});
  EXPECT_EQ(stats.raw_stalls, 1u);
  EXPECT_EQ(stats.load_use_stalls, 1u);
}

TEST(Pipeline, StallShieldsLaterDependence) {
  // After a 1-cycle load-use stall the consumer is 2 issue slots away from
  // a subsequent dependent instruction; forwarding covers it fully.
  std::vector<TraceInstr> trace{
      {Op::kLoad, 1, 2, -1, 0, false},
      {Op::kAlu, 3, 1, 4, 4, false},
      {Op::kAlu, 5, 3, 4, 8, false},
  };
  const auto stats = simulate_pipeline(trace, {.forwarding = true});
  EXPECT_EQ(stats.raw_stalls, 1u);
}

TEST(Pipeline, TwoBitPredictorBeatsNotTakenOnLoops) {
  const auto trace = make_loop_trace(50, 2);
  PipelineConfig nt{.forwarding = true, .predictor = BranchPredictor::kAlwaysNotTaken};
  PipelineConfig two{.forwarding = true, .predictor = BranchPredictor::kTwoBit};
  const auto stats_nt = simulate_pipeline(trace, nt);
  const auto stats_two = simulate_pipeline(trace, two);
  EXPECT_EQ(stats_nt.mispredictions, 49u);  // every taken back-edge
  EXPECT_LE(stats_two.mispredictions, 3u);  // warm-up + final exit
  EXPECT_LT(stats_two.cycles, stats_nt.cycles);
}

TEST(Pipeline, OneBitMispredictsTwicePerAlternation) {
  // Alternating T/N/T/N... pattern: 1-bit mispredicts every time once
  // warmed; 2-bit (initialized weakly not-taken) also struggles, but the
  // documented 1-bit pathology must show.
  std::vector<TraceInstr> trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back({Op::kBranch, -1, 1, -1, 0x40, i % 2 == 0});
  }
  const auto one = simulate_pipeline(trace, {.predictor = BranchPredictor::kOneBit});
  EXPECT_GE(one.mispredictions, 38u);
}

TEST(Pipeline, MispredictPenaltyCharged) {
  std::vector<TraceInstr> trace{
      {Op::kBranch, -1, 1, -1, 0, true},  // not-taken predictor misses
  };
  const auto stats = simulate_pipeline(
      trace, {.predictor = BranchPredictor::kAlwaysNotTaken});
  EXPECT_EQ(stats.flush_cycles, 2u);
  EXPECT_EQ(stats.cycles, 5u + 2u);
}

TEST(Pipeline, EmptyTraceIsZero) {
  const auto stats = simulate_pipeline({});
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.cpi(), 0.0);
}

// ----------------------------------------------------------------- tomasulo

TEST(Tomasulo, StraightLineIndependentOpsPipeline) {
  std::vector<FpInstr> trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back({FpOp::kFAdd, 1 + i % 8, 20, 21, static_cast<std::uint64_t>(i), false});
  }
  const auto stats = simulate_tomasulo(trace, {});
  EXPECT_EQ(stats.instructions, 20u);
  // Issue-bound: ~1 IPC once the pipeline fills.
  EXPECT_GT(stats.ipc(), 0.5);
}

TEST(Tomasulo, DependentChainSerializesOnLatency) {
  std::vector<FpInstr> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back({FpOp::kFMul, 1, 1, 2, static_cast<std::uint64_t>(i), false});
  }
  TomasuloConfig config;
  const auto stats = simulate_tomasulo(trace, config);
  // Each multiply must wait for its predecessor: >= 10 × 6 cycles.
  EXPECT_GE(stats.cycles, 10u * config.fmul_latency);
}

TEST(Tomasulo, RenamingRemovesWawHazards) {
  // Two writes to the same register with independent sources: the second
  // need not wait for the first (it renames).
  std::vector<FpInstr> trace{
      {FpOp::kFDiv, 1, 2, 3, 0, false},   // long op writing r1
      {FpOp::kFAdd, 1, 4, 5, 4, false},   // WAW on r1, independent sources
      {FpOp::kFAdd, 6, 1, 5, 8, false},   // reads the *new* r1
  };
  const auto stats = simulate_tomasulo(trace, {});
  // The divide dominates: issue(1) + 12-cycle execute + write = 14 total,
  // with both adds completing alongside it. WAW serialization would push
  // the adds past the divide's writeback (≥ 17 cycles).
  EXPECT_LE(stats.cycles, 14u);
}

TEST(Tomasulo, ReservationStationPressureStallsIssue) {
  TomasuloConfig tiny;
  tiny.adder_stations = 1;
  std::vector<FpInstr> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back({FpOp::kFAdd, 1, 1, 2, static_cast<std::uint64_t>(i), false});
  }
  const auto stats = simulate_tomasulo(trace, tiny);
  EXPECT_GT(stats.rs_full_stall_cycles, 0u);
}

TEST(Tomasulo, NonSpeculativeStallsOnEveryBranch) {
  const auto trace = make_fp_loop_trace(30, 0.9);
  const auto stats = simulate_tomasulo(trace, {.speculative = false});
  EXPECT_GT(stats.branch_stall_cycles, 0u);
  EXPECT_EQ(stats.branches, 30u);
}

TEST(Tomasulo, SpeculationBeatsNonSpeculativeOnPredictableBranches) {
  const auto trace = make_fp_loop_trace(100, 1.0);  // perfectly predictable
  const auto non_spec = simulate_tomasulo(trace, {.speculative = false});
  TomasuloConfig spec;
  spec.speculative = true;
  spec.rob_entries = 32;
  const auto speculative = simulate_tomasulo(trace, spec);
  EXPECT_LT(speculative.cycles, non_spec.cycles);
  EXPECT_GT(speculative.ipc(), non_spec.ipc());
}

TEST(Tomasulo, SpeculationAdvantageShrinksWithUnpredictableBranches) {
  const auto predictable = make_fp_loop_trace(100, 1.0);
  const auto random = make_fp_loop_trace(100, 0.5);
  TomasuloConfig spec;
  spec.speculative = true;
  auto gain = [&](const std::vector<FpInstr>& t) {
    const auto ns = simulate_tomasulo(t, {.speculative = false});
    const auto sp = simulate_tomasulo(t, spec);
    return static_cast<double>(ns.cycles) / static_cast<double>(sp.cycles);
  };
  EXPECT_GT(gain(predictable), gain(random));
}

TEST(Tomasulo, TinyRobLimitsWindow) {
  const auto trace = make_fp_loop_trace(50, 1.0);
  TomasuloConfig wide, narrow;
  wide.speculative = narrow.speculative = true;
  wide.rob_entries = 64;
  narrow.rob_entries = 2;
  const auto w = simulate_tomasulo(trace, wide);
  const auto n = simulate_tomasulo(trace, narrow);
  EXPECT_LT(w.cycles, n.cycles);
  EXPECT_GT(n.rob_full_stall_cycles, 0u);
}

TEST(Tomasulo, EmptyTrace) {
  const auto stats = simulate_tomasulo({}, {});
  EXPECT_EQ(stats.cycles, 0u);
}

// ------------------------------------------------------------------- models

TEST(Models, AmdahlKnownPoints) {
  EXPECT_NEAR(amdahl_speedup(0.5, 2), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(amdahl_speedup(0.95, 1), 1.0, 1e-12);
  EXPECT_NEAR(amdahl_speedup(1.0, 8), 8.0, 1e-12);
  EXPECT_NEAR(amdahl_speedup(0.0, 64), 1.0, 1e-12);
}

TEST(Models, AmdahlSaturatesAtLimit) {
  EXPECT_NEAR(amdahl_limit(0.95), 20.0, 1e-12);
  EXPECT_LT(amdahl_speedup(0.95, 1 << 20), 20.0);
  EXPECT_GT(amdahl_speedup(0.95, 1 << 20), 19.9);
}

TEST(Models, GustafsonScalesLinearly) {
  EXPECT_NEAR(gustafson_speedup(0.5, 2), 1.5, 1e-12);
  EXPECT_NEAR(gustafson_speedup(0.95, 100), 0.05 + 95.0, 1e-12);
  // Gustafson dominates Amdahl for the same f and p.
  EXPECT_GT(gustafson_speedup(0.9, 64), amdahl_speedup(0.9, 64));
}

TEST(Models, KarpFlattRecoversSerialFraction) {
  // Feeding back a perfect Amdahl speedup recovers e = 1 - f.
  const double f = 0.8;
  for (std::size_t p : {2, 4, 8, 16}) {
    const double s = amdahl_speedup(f, p);
    EXPECT_NEAR(karp_flatt_serial_fraction(s, p), 1.0 - f, 1e-12);
  }
}

TEST(Models, EfficiencyAndMeasuredSpeedup) {
  EXPECT_NEAR(efficiency(6.0, 8), 0.75, 1e-12);
  EXPECT_NEAR(measured_speedup(10.0, 2.5), 4.0, 1e-12);
}

// -------------------------------------------------------------------- flynn

TEST(Flynn, ClassifiesAllQuadrants) {
  EXPECT_EQ(classify_flynn(1, 1), FlynnClass::kSisd);
  EXPECT_EQ(classify_flynn(1, 32), FlynnClass::kSimd);
  EXPECT_EQ(classify_flynn(3, 1), FlynnClass::kMisd);
  EXPECT_EQ(classify_flynn(8, 8), FlynnClass::kMimd);
}

TEST(Flynn, NamesAndDescriptions) {
  EXPECT_STREQ(to_string(FlynnClass::kSimd), "SIMD");
  for (auto c : {FlynnClass::kSisd, FlynnClass::kSimd, FlynnClass::kMisd,
                 FlynnClass::kMimd}) {
    EXPECT_FALSE(describe(c).empty());
  }
}

}  // namespace
