// Tests for pdc::mp: point-to-point semantics (matching, ordering,
// wildcards, probe, nonblocking), every collective against a sequential
// reference, communicator split, and SPMD launch behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "mp/world.hpp"

namespace {

using namespace pdc::mp;

// ------------------------------------------------------------ point-to-point

TEST(P2P, SendRecvValue) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1234, 1, 7);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 1234);
    }
  });
}

TEST(P2P, SendRecvArray) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(100);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(data.data(), data.size(), 1);
    } else {
      std::vector<double> data(100, -1.0);
      const RecvInfo info = comm.recv(data.data(), data.size(), 0);
      EXPECT_EQ(info.count<double>(), 100u);
      EXPECT_EQ(info.source, 0);
      for (std::size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(data[i], double(i));
    }
  });
}

TEST(P2P, NonOvertakingSameSourceTag) {
  World world(2);
  world.run([](Communicator& comm) {
    constexpr int kN = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send_value(i, 1, 5);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(P2P, TagSelectsMessage) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(111, 1, /*tag=*/1);
      comm.send_value(222, 1, /*tag=*/2);
    } else {
      // Receive in reverse tag order: matching is by tag, not arrival.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(P2P, WildcardSourceReceivesFromAnyone) {
  World world(4);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      long sum = 0;
      for (int i = 0; i < 3; ++i) sum += comm.recv_value<long>(kAnySource, 3);
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      comm.send_value(long{comm.rank()}, 0, 3);
    }
  });
}

TEST(P2P, ProbeReportsSizeAndSource) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data(17, 9);
      comm.send_vector(data, 1, 4);
    } else {
      const RecvInfo info = comm.probe(kAnySource, kAnyTag);
      EXPECT_EQ(info.source, 0);
      EXPECT_EQ(info.tag, 4);
      EXPECT_EQ(info.count<int>(), 17u);
      const auto data = comm.recv_vector<int>(info.source, info.tag);
      EXPECT_EQ(data.size(), 17u);
      EXPECT_EQ(data[16], 9);
    }
  });
}

TEST(P2P, RecvVectorSizesFromPayload) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> bytes(321, 0xAB);
      comm.send_vector(bytes, 1);
    } else {
      const auto bytes = comm.recv_vector<std::uint8_t>(0);
      EXPECT_EQ(bytes.size(), 321u);
    }
  });
}

TEST(P2P, IrecvTestPollsUntilArrival) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      const int token = comm.recv_value<int>(1, 1);  // rendezvous
      comm.send_value(token * 2, 1, 2);
    } else {
      int result = 0;
      Request request = comm.irecv(&result, 1, 0, 2);
      EXPECT_FALSE(request.test());  // nothing sent yet
      comm.send_value(21, 0, 1);
      const RecvInfo info = request.wait();
      EXPECT_EQ(result, 42);
      EXPECT_EQ(info.source, 0);
    }
  });
}

TEST(P2P, IsendCompletesImmediately) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      const double x = 2.5;
      Request request = comm.isend(&x, 1, 1);
      EXPECT_TRUE(request.test());
      request.wait();
    } else {
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0), 2.5);
    }
  });
}

TEST(P2P, SendrecvRingRotation) {
  World world(5);
  world.run([](Communicator& comm) {
    const int p = comm.size();
    const int right = (comm.rank() + 1) % p;
    const int left = (comm.rank() - 1 + p) % p;
    const int mine = comm.rank() * 10;
    int received = -1;
    comm.sendrecv(&mine, 1, right, 0, &received, 1, left, 0);
    EXPECT_EQ(received, left * 10);
  });
}

TEST(P2P, HeadToHeadExchangeCompletes) {
  // Eager sends make the classic symmetric-deadlock pattern safe here;
  // this pins that documented behaviour.
  World world(2);
  world.run([](Communicator& comm) {
    const int other = 1 - comm.rank();
    comm.send_value(comm.rank(), other, 0);
    EXPECT_EQ(comm.recv_value<int>(other, 0), other);
  });
}

// ----------------------------------------------------------------- spmd run

TEST(World, SizeOneRuns) {
  World world(1);
  int visits = 0;
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    int v = 3;
    comm.broadcast(&v, 1, 0);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(World, RankExceptionPropagates) {
  World world(3);
  EXPECT_THROW(world.run([](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
  }),
               std::runtime_error);
}

TEST(World, ConsecutiveRunsAreIsolated) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) comm.send_value(1, 1);
    // rank 1 deliberately does not receive: the message must not leak
  });
  world.run([](Communicator& comm) {
    if (comm.rank() == 1) {
      int x = 0;
      Request r = comm.irecv(&x, 1, 0, kAnyTag);
      EXPECT_FALSE(r.test());  // fresh fabric: nothing pending
    }
  });
}

TEST(World, WtimeIsMonotonic) {
  const double a = Communicator::wtime();
  const double b = Communicator::wtime();
  EXPECT_GE(b, a);
}

// -------------------------------------------------------------- collectives

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  World world(GetParam());
  std::atomic<int> arrivals{0};
  world.run([&](Communicator& comm) {
    ++arrivals;
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrivals.load(), comm.size());
  });
}

TEST_P(CollectiveTest, BroadcastFromEveryRoot) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data(10, comm.rank() == root ? root + 100 : -1);
      comm.broadcast(data.data(), data.size(), root);
      for (int v : data) EXPECT_EQ(v, root + 100);
    }
  });
}

TEST_P(CollectiveTest, ReduceSumAtRoot) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<long> mine(5);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = comm.rank() + static_cast<long>(i) * 1000;
    }
    std::vector<long> result(5, -1);
    comm.reduce(mine.data(), result.data(), mine.size(), std::plus<long>{}, 0);
    if (comm.rank() == 0) {
      const long ranks = long{p} * (p - 1) / 2;
      for (std::size_t i = 0; i < result.size(); ++i) {
        EXPECT_EQ(result[i], ranks + static_cast<long>(i) * 1000 * p);
      }
    }
  });
}

TEST_P(CollectiveTest, ReduceMax) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int mine = (comm.rank() * 7919) % 101;  // scrambled
    int top = -1;
    comm.reduce(&mine, &top, 1, [](int a, int b) { return std::max(a, b); },
                comm.size() - 1);
    if (comm.rank() == comm.size() - 1) {
      int expected = 0;
      for (int r = 0; r < comm.size(); ++r) {
        expected = std::max(expected, (r * 7919) % 101);
      }
      EXPECT_EQ(top, expected);
    }
  });
}

TEST_P(CollectiveTest, AllreduceTreeMatchesReference) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<int> mine(7, comm.rank() + 1);
    std::vector<int> out(7);
    comm.allreduce(mine.data(), out.data(), mine.size(), std::plus<int>{});
    for (int v : out) EXPECT_EQ(v, p * (p + 1) / 2);
  });
}

TEST_P(CollectiveTest, AllreduceRingMatchesReference) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    // Deliberately not divisible by p, plus a count smaller than p.
    for (std::size_t count : {std::size_t{1}, std::size_t{13}, std::size_t{64}}) {
      std::vector<long> mine(count);
      for (std::size_t i = 0; i < count; ++i) {
        mine[i] = comm.rank() * 100 + static_cast<long>(i);
      }
      std::vector<long> out(count);
      comm.allreduce_ring(mine.data(), out.data(), count, std::plus<long>{});
      for (std::size_t i = 0; i < count; ++i) {
        const long expected =
            100L * p * (p - 1) / 2 + static_cast<long>(i) * p;
        EXPECT_EQ(out[i], expected) << "count=" << count << " i=" << i;
      }
    }
  });
}

TEST_P(CollectiveTest, ScatterDistributesBlocks) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<int> all;
    if (comm.rank() == 1 % p) {
      all.resize(static_cast<std::size_t>(p) * 3);
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(3, -1);
    comm.scatter(all.data(), mine.data(), 3, 1 % p);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(mine[static_cast<std::size_t>(i)], comm.rank() * 3 + i);
  });
}

TEST_P(CollectiveTest, GatherCollectsBlocks) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<int> mine{comm.rank(), comm.rank() * 2};
    std::vector<int> all(static_cast<std::size_t>(p) * 2, -1);
    comm.gather(mine.data(), all.data(), 2, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r) * 2], r);
        EXPECT_EQ(all[static_cast<std::size_t>(r) * 2 + 1], r * 2);
      }
    }
  });
}

TEST_P(CollectiveTest, AllgatherEveryRankSeesAll) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    const double mine = comm.rank() * 1.5;
    std::vector<double> all(static_cast<std::size_t>(p), -1.0);
    comm.allgather(&mine, all.data(), 1);
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 1.5);
    }
  });
}

TEST_P(CollectiveTest, AlltoallTransposesBlocks) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<int> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)] = comm.rank() * 1000 + d;
    }
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    comm.alltoall(send.data(), recv.data(), 1);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], s * 1000 + comm.rank());
    }
  });
}

TEST_P(CollectiveTest, GathervCollectsUnevenBlocks) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    // Rank r contributes r+1 elements, each valued r.
    const auto mine_count = static_cast<std::size_t>(comm.rank() + 1);
    std::vector<int> mine(mine_count, comm.rank());
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r + 1);
      total += static_cast<std::size_t>(r + 1);
    }
    std::vector<int> all(total, -1);
    comm.gatherv(mine.data(), mine_count, all.data(), counts, 0);
    if (comm.rank() == 0) {
      std::size_t offset = 0;
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          EXPECT_EQ(all[offset++], r);
        }
      }
    }
  });
}

TEST_P(CollectiveTest, ScattervDistributesUnevenBlocks) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const int p = comm.size();
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(2 * r + 1);
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<long> all;
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          all.push_back(r * 100 + static_cast<long>(i));
        }
      }
    }
    const std::size_t mine_count = counts[static_cast<std::size_t>(comm.rank())];
    std::vector<long> mine(mine_count, -1);
    comm.scatterv(all.data(), counts, mine.data(), mine_count, 0);
    for (std::size_t i = 0; i < mine_count; ++i) {
      EXPECT_EQ(mine[i], comm.rank() * 100 + static_cast<long>(i));
    }
  });
}

TEST_P(CollectiveTest, InclusiveScanPrefixSums) {
  World world(GetParam());
  world.run([](Communicator& comm) {
    const long mine = comm.rank() + 1;
    long prefix = 0;
    comm.scan(&mine, &prefix, 1, std::plus<long>{});
    const long r = comm.rank() + 1;
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

TEST_P(CollectiveTest, ScanWithNonCommutativeOp) {
  // Affine-map composition: associative but non-commutative, so this
  // catches any operand-order mistake in the doubling algorithm.
  struct Affine {
    long a, b;  // x -> a*x + b
  };
  auto compose = [](Affine lower, Affine mine) {
    // Apply `lower` first, then `mine`.
    return Affine{mine.a * lower.a, mine.a * lower.b + mine.b};
  };
  World world(GetParam());
  world.run([&](Communicator& comm) {
    const Affine mine{2, long{comm.rank()}};
    Affine folded{1, 0};
    comm.scan(&mine, &folded, 1, compose);
    Affine expected{1, 0};
    for (int r = 0; r <= comm.rank(); ++r) {
      expected = compose(expected, Affine{2, long{r}});
    }
    EXPECT_EQ(folded.a, expected.a);
    EXPECT_EQ(folded.b, expected.b);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// -------------------------------------------------------------------- split

TEST(Split, EvenOddGroups) {
  World world(6);
  world.run([](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work inside the sub-communicator and stay isolated.
    int sum = 0;
    const int mine = comm.rank();
    sub.allreduce(&mine, &sum, 1, std::plus<int>{});
    const int expected = comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_EQ(sum, expected);
  });
}

TEST(Split, KeyReversesRankOrder) {
  World world(4);
  world.run([](Communicator& comm) {
    Communicator sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Split, PointToPointWithinGroup) {
  World world(4);
  world.run([](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    ASSERT_EQ(sub.size(), 2);
    if (sub.rank() == 0) {
      sub.send_value(comm.rank() * 11, 1);
    } else {
      // The message must come from the group peer, carrying its world id.
      const int peer_world = comm.rank() - 1;
      EXPECT_EQ(sub.recv_value<int>(0), peer_world * 11);
    }
  });
}

TEST(Split, SingletonGroups) {
  World world(3);
  world.run([](Communicator& comm) {
    Communicator sub = comm.split(comm.rank(), 0);
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    int v = comm.rank();
    sub.broadcast(&v, 1, 0);
    EXPECT_EQ(v, comm.rank());
  });
}

}  // namespace
