// Tests for pdc::obs — metrics registry, trace rings, causal spans, and
// the Chrome trace exporter.
//
// The determinism tests run real protocol code (2PC over mp::World) under
// testkit::SimScheduler: with a fixed seed the exported trace JSON must
// be byte-identical across runs, which is what makes traces diffable
// artifacts in lab grading. The stress tests hammer the sharded registry
// and the trace rings from free-running threads — under the tsan preset
// they double as the data-race check.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"
#include "testkit/hooks.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace pdc {
namespace {

using obs::MetricsRegistry;
using testkit::SchedulePolicy;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  auto& counter = MetricsRegistry::instance().counter("test.counter.basic");
  counter.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), kThreads * kIncrements);
}

TEST(Metrics, GaugeTracksValueAndHighWater) {
  auto& gauge = MetricsRegistry::instance().gauge("test.gauge.basic");
  gauge.reset();
  gauge.add(5);
  gauge.add(7);
  gauge.sub(3);
  EXPECT_EQ(gauge.value(), 9);
  EXPECT_EQ(gauge.high_water(), 12);
}

TEST(Metrics, HistogramBucketsPowersOfTwo) {
  auto& hist = MetricsRegistry::instance().histogram("test.hist.buckets");
  hist.reset();
  hist.record(std::uint64_t{0});    // bucket 0: v < 1
  hist.record(std::uint64_t{1});    // bucket 1: [1, 2)
  hist.record(std::uint64_t{2});    // bucket 2: [2, 4)
  hist.record(std::uint64_t{3});    // bucket 2
  hist.record(std::uint64_t{100});  // bucket 7: [64, 128)
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("test.hist.buckets");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 5u);
  EXPECT_EQ(sample->sum, 106u);
  ASSERT_GE(sample->buckets.size(), 8u);
  EXPECT_EQ(sample->buckets[0], 1u);
  EXPECT_EQ(sample->buckets[1], 1u);
  EXPECT_EQ(sample->buckets[2], 2u);
  EXPECT_EQ(sample->buckets[7], 1u);
}

// The pool's queue-depth gauge must balance: +1 per accepted task, -1 per
// dequeue. Before PR 3 the add happened before the accept decision, so a
// rejected post could leave the gauge permanently skewed; now acceptance
// and accounting are one step. At quiescence the value must read 0 while
// the high-water mark proves tasks were actually in flight.
TEST(Metrics, PoolQueueDepthGaugeBalancesToZero) {
  auto& gauge = MetricsRegistry::instance().gauge("pdc.pool.queue_depth");
  gauge.reset();
  {
    pdc::parallel::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.post([&count] { count.fetch_add(1); }).is_ok());
    }
    pool.shutdown();  // drains: every accepted task executes
    EXPECT_EQ(count.load(), 200);
    // Posts after shutdown are refused and must not move the gauge.
    EXPECT_FALSE(pool.post([] {}).is_ok());
  }
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GT(gauge.high_water(), 0);
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("pdc.pool.queue_depth");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 0);
}

TEST(Metrics, ScrapeJsonContainsRegisteredMetrics) {
  MetricsRegistry::instance().counter("test.json.counter").inc(3);
  const std::string json = MetricsRegistry::instance().scrape().to_json();
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos) << json;
}

// Same increments, every interleaving: the counter total must be exact
// regardless of how the scheduler slices the threads (the per-shard
// fetch_adds are unordered but never lost).
TEST(Metrics, CounterExactUnderSimInterleavings) {
  for (std::uint64_t seed : {1u, 9u, 23u, 77u}) {
    auto& counter = MetricsRegistry::instance().counter("test.counter.sim");
    counter.reset();
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < 3; ++t) {
      bodies.emplace_back([&counter] {
        for (int i = 0; i < 50; ++i) {
          counter.inc();
          testkit::yield_point("count");
        }
      });
    }
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    SimScheduler scheduler(options);
    const auto report = scheduler.run(std::move(bodies));
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_EQ(counter.total(), 150u) << "seed " << seed;
  }
}

TEST(Metrics, HistogramExactUnderSimInterleavings) {
  auto& hist = MetricsRegistry::instance().histogram("test.hist.sim");
  hist.reset();
  std::vector<std::function<void()>> bodies;
  for (int t = 1; t <= 3; ++t) {
    bodies.emplace_back([&hist, t] {
      for (int i = 0; i < 20; ++i) {
        hist.record(static_cast<std::uint64_t>(t));
        testkit::yield_point("record");
      }
    });
  }
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRoundRobin;
  options.seed = 4;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("test.hist.sim");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 60u);
  EXPECT_EQ(sample->sum, 20u * (1 + 2 + 3));
}

// Free-running hammer on one counter + gauge + histogram from several
// threads; under -DPDCKIT_SANITIZE=thread this is the registry race check.
TEST(Metrics, ShardedRegistryStress) {
  auto& registry = MetricsRegistry::instance();
  auto& counter = registry.counter("test.stress.counter");
  auto& gauge = registry.gauge("test.stress.gauge");
  auto& hist = registry.histogram("test.stress.hist");
  counter.reset();
  gauge.reset();
  hist.reset();
  constexpr int kThreads = 4;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        counter.inc();
        gauge.add(1);
        hist.record(static_cast<std::uint64_t>(i % 128));
        gauge.sub(1);
        if (i % 1000 == 0) (void)registry.scrape();  // concurrent reader
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(gauge.value(), 0);
  const auto snapshot = registry.scrape();
  const auto* sample = snapshot.find("test.stress.hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, static_cast<std::uint64_t>(kThreads) * kOps);
}

// --------------------------------------------------------------- traces

TEST(Trace, CollectorCapturesSpansFromRealThreads) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::TraceCollector collector;
  collector.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      obs::ScopedSpan outer("outer");
      for (int i = 0; i < 5; ++i) {
        obs::ScopedSpan inner("inner", static_cast<std::uint64_t>(i));
        obs::trace_instant("tick", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  collector.stop();
  // 3 threads x (1 outer B/E + 5 x (inner B/E + instant)) = 51.
  EXPECT_EQ(collector.event_count(), 51u);
  EXPECT_EQ(collector.dropped_events(), 0u);
  const std::string json = collector.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, EmitsAreDroppedWhenNoCollectorRuns) {
  // Must not crash, allocate rings that leak into later sessions, or
  // produce wire metadata.
  obs::trace_begin("orphan");
  obs::trace_end("orphan");
  const obs::WireTrace trace = obs::wire_capture("orphan.send");
  EXPECT_TRUE(trace.empty());
  obs::wire_accept(trace, "orphan.recv");
}

// Counts occurrences of `needle` in `haystack`.
std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// One fixed-seed 2PC run (3 ranks, unanimous commit) under the sim
// scheduler with a collector attached; returns the exported JSON.
std::string traced_2pc_run(std::uint64_t seed) {
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  collector.start();
  mp::World world(3);
  auto bodies = world.rank_bodies([](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dist::run_2pc_coordinator(comm);
    } else {
      (void)dist::run_2pc_participant(comm, /*vote_commit=*/true);
    }
  });
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(collector.dropped_events(), 0u);
  return collector.chrome_trace_json();
}

// The golden-determinism property: same seed, same trace, byte for byte.
// Virtual-clock timestamps + session-local ids are what make this hold.
TEST(Trace, FixedSeed2pcTraceIsByteStable) {
  const std::string first = traced_2pc_run(42);
  const std::string second = traced_2pc_run(42);
  EXPECT_EQ(first, second);
}

TEST(Trace, TwoPhaseCommitTraceIsCausallyStitched) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string json = traced_2pc_run(42);

  // All three ranks appear as named tracks: per participant, one
  // thread_name metadata record plus the rank-level span's B/E pair.
  EXPECT_NE(json.find("\"2pc.coordinator\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"2pc.participant\""), 6u);

  // The protocol phases and the decision instants are present.
  EXPECT_NE(json.find("\"2pc.prepare\""), std::string::npos);
  EXPECT_NE(json.find("\"2pc.decide\""), std::string::npos);
  EXPECT_NE(json.find("\"2pc.decide_commit\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"2pc.learned_commit\""), 2u);

  // Causal stitching: every delivered message is one flow-start ("s")
  // paired with one flow-end ("f"). With a reliable fabric nothing is
  // dropped, so the counts match, and there is at least one flow per
  // protocol message class (prepare, vote, decision, ack) per participant.
  const std::size_t starts = count_occurrences(json, "\"ph\":\"s\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"f\"");
  EXPECT_EQ(starts, ends);
  EXPECT_GE(starts, 8u);

  // The same run's metrics show the protocol rounds.
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.2pc.commit"), 1u);
  EXPECT_EQ(snapshot.counter("pdc.2pc.vote_sent"), 2u);
  EXPECT_EQ(snapshot.counter("pdc.2pc.ack_sent"), 2u);
  EXPECT_GE(snapshot.counter("pdc.mp.sent"), 8u);
}

TEST(Trace, DistinctSeedsProduceDistinctSchedulesSameInvariants) {
  const std::string a = traced_2pc_run(7);
  const std::string b = traced_2pc_run(1234);
  // Different interleavings; both structurally sound (paired flows).
  EXPECT_EQ(count_occurrences(a, "\"ph\":\"s\""),
            count_occurrences(a, "\"ph\":\"f\""));
  EXPECT_EQ(count_occurrences(b, "\"ph\":\"s\""),
            count_occurrences(b, "\"ph\":\"f\""));
}

// ------------------------------------------------------------ bench report

TEST(BenchReport, SerializesTablesAndMetrics) {
  support::TextTable table("demo table");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  obs::BenchReport report("unit_test_bench");
  report.add_table(table);
  report.add_metric("speedup", 1.5);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"demo table\""), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
}

TEST(BenchReport, WriteIsNoOpWithoutEnvVar) {
  obs::BenchReport report("unit_test_bench");
  EXPECT_FALSE(report.write_if_requested());
}

// ------------------------------------------------------------ replay glue

TEST(Replay, FailingInterleavingComesBackWithTrace) {
  // Classic lost update: non-atomic read-modify-write with a preemption
  // point between the read and the write.
  auto make_run = [] {
    auto value = std::make_shared<int>(0);
    testkit::RunPlan plan;
    for (int t = 0; t < 2; ++t) {
      plan.threads.emplace_back([value] {
        obs::ScopedSpan span("increment");
        const int read = *value;
        testkit::yield_point("between read and write");
        *value = read + 1;
      });
    }
    plan.check = [value]() -> std::string {
      return *value == 2 ? "" : "lost update";
    };
    return plan;
  };
  testkit::ExplorerConfig config;
  config.policy = SchedulePolicy::kRoundRobin;
  config.iterations = 20;
  const testkit::ScheduleExplorer explorer(config);
  const obs::ReplayDump dump = obs::explore_and_dump(explorer, make_run);
  ASSERT_TRUE(dump.failed());
  EXPECT_EQ(dump.failure, "lost update");
  if (obs::kObsEnabled) {
    EXPECT_NE(dump.chrome_trace.find("\"increment\""), std::string::npos);
  }
  EXPECT_FALSE(dump.minimal_trace.empty());
}

TEST(Replay, PassingExplorationHasNoTrace) {
  auto make_run = [] {
    auto value = std::make_shared<std::atomic<int>>(0);
    testkit::RunPlan plan;
    for (int t = 0; t < 2; ++t) {
      plan.threads.emplace_back([value] {
        value->fetch_add(1);
        testkit::yield_point("atomic inc");
      });
    }
    plan.check = [value]() -> std::string {
      return value->load() == 2 ? "" : "lost update";
    };
    return plan;
  };
  testkit::ExplorerConfig config;
  config.iterations = 10;
  const testkit::ScheduleExplorer explorer(config);
  const obs::ReplayDump dump = obs::explore_and_dump(explorer, make_run);
  EXPECT_FALSE(dump.failed());
  EXPECT_TRUE(dump.chrome_trace.empty());
}

}  // namespace
}  // namespace pdc
