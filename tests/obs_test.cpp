// Tests for pdc::obs — metrics registry, trace rings, causal spans, and
// the Chrome trace exporter.
//
// The determinism tests run real protocol code (2PC over mp::World) under
// testkit::SimScheduler: with a fixed seed the exported trace JSON must
// be byte-identical across runs, which is what makes traces diffable
// artifacts in lab grading. The stress tests hammer the sharded registry
// and the trace rings from free-running threads — under the tsan preset
// they double as the data-race check.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/clock_sync.hpp"
#include "dist/election.hpp"
#include "dist/mutex.hpp"
#include "dist/snapshot.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "net/framing.hpp"
#include "net/network.hpp"
#include "obs/bench_report.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/replay.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "testkit/hooks.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace pdc {
namespace {

using obs::MetricsRegistry;
using testkit::SchedulePolicy;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  auto& counter = MetricsRegistry::instance().counter("test.counter.basic");
  counter.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), kThreads * kIncrements);
}

TEST(Metrics, GaugeTracksValueAndHighWater) {
  auto& gauge = MetricsRegistry::instance().gauge("test.gauge.basic");
  gauge.reset();
  gauge.add(5);
  gauge.add(7);
  gauge.sub(3);
  EXPECT_EQ(gauge.value(), 9);
  EXPECT_EQ(gauge.high_water(), 12);
}

TEST(Metrics, HistogramBucketsPowersOfTwo) {
  auto& hist = MetricsRegistry::instance().histogram("test.hist.buckets");
  hist.reset();
  hist.record(std::uint64_t{0});    // bucket 0: v < 1
  hist.record(std::uint64_t{1});    // bucket 1: [1, 2)
  hist.record(std::uint64_t{2});    // bucket 2: [2, 4)
  hist.record(std::uint64_t{3});    // bucket 2
  hist.record(std::uint64_t{100});  // bucket 7: [64, 128)
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("test.hist.buckets");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 5u);
  EXPECT_EQ(sample->sum, 106u);
  ASSERT_GE(sample->buckets.size(), 8u);
  EXPECT_EQ(sample->buckets[0], 1u);
  EXPECT_EQ(sample->buckets[1], 1u);
  EXPECT_EQ(sample->buckets[2], 2u);
  EXPECT_EQ(sample->buckets[7], 1u);
}

// The pool's queue-depth gauge must balance: +1 per accepted task, -1 per
// dequeue. Before PR 3 the add happened before the accept decision, so a
// rejected post could leave the gauge permanently skewed; now acceptance
// and accounting are one step. At quiescence the value must read 0 while
// the high-water mark proves tasks were actually in flight.
TEST(Metrics, PoolQueueDepthGaugeBalancesToZero) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  auto& gauge = MetricsRegistry::instance().gauge("pdc.pool.queue_depth");
  gauge.reset();
  {
    pdc::parallel::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.post([&count] { count.fetch_add(1); }).is_ok());
    }
    pool.shutdown();  // drains: every accepted task executes
    EXPECT_EQ(count.load(), 200);
    // Posts after shutdown are refused and must not move the gauge.
    EXPECT_FALSE(pool.post([] {}).is_ok());
  }
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GT(gauge.high_water(), 0);
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("pdc.pool.queue_depth");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 0);
}

TEST(Metrics, ScrapeJsonContainsRegisteredMetrics) {
  MetricsRegistry::instance().counter("test.json.counter").inc(3);
  const std::string json = MetricsRegistry::instance().scrape().to_json();
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos) << json;
}

// Same increments, every interleaving: the counter total must be exact
// regardless of how the scheduler slices the threads (the per-shard
// fetch_adds are unordered but never lost).
TEST(Metrics, CounterExactUnderSimInterleavings) {
  for (std::uint64_t seed : {1u, 9u, 23u, 77u}) {
    auto& counter = MetricsRegistry::instance().counter("test.counter.sim");
    counter.reset();
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < 3; ++t) {
      bodies.emplace_back([&counter] {
        for (int i = 0; i < 50; ++i) {
          counter.inc();
          testkit::yield_point("count");
        }
      });
    }
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    SimScheduler scheduler(options);
    const auto report = scheduler.run(std::move(bodies));
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_EQ(counter.total(), 150u) << "seed " << seed;
  }
}

TEST(Metrics, HistogramExactUnderSimInterleavings) {
  auto& hist = MetricsRegistry::instance().histogram("test.hist.sim");
  hist.reset();
  std::vector<std::function<void()>> bodies;
  for (int t = 1; t <= 3; ++t) {
    bodies.emplace_back([&hist, t] {
      for (int i = 0; i < 20; ++i) {
        hist.record(static_cast<std::uint64_t>(t));
        testkit::yield_point("record");
      }
    });
  }
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRoundRobin;
  options.seed = 4;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  ASSERT_TRUE(report.ok()) << report.error;
  const auto snapshot = MetricsRegistry::instance().scrape();
  const auto* sample = snapshot.find("test.hist.sim");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 60u);
  EXPECT_EQ(sample->sum, 20u * (1 + 2 + 3));
}

// Free-running hammer on one counter + gauge + histogram from several
// threads; under -DPDCKIT_SANITIZE=thread this is the registry race check.
TEST(Metrics, ShardedRegistryStress) {
  auto& registry = MetricsRegistry::instance();
  auto& counter = registry.counter("test.stress.counter");
  auto& gauge = registry.gauge("test.stress.gauge");
  auto& hist = registry.histogram("test.stress.hist");
  counter.reset();
  gauge.reset();
  hist.reset();
  constexpr int kThreads = 4;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        counter.inc();
        gauge.add(1);
        hist.record(static_cast<std::uint64_t>(i % 128));
        gauge.sub(1);
        if (i % 1000 == 0) (void)registry.scrape();  // concurrent reader
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.total(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(gauge.value(), 0);
  const auto snapshot = registry.scrape();
  const auto* sample = snapshot.find("test.stress.hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, static_cast<std::uint64_t>(kThreads) * kOps);
}

// --------------------------------------------------------------- traces

TEST(Trace, CollectorCapturesSpansFromRealThreads) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::TraceCollector collector;
  collector.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      obs::ScopedSpan outer("outer");
      for (int i = 0; i < 5; ++i) {
        obs::ScopedSpan inner("inner", static_cast<std::uint64_t>(i));
        obs::trace_instant("tick", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  collector.stop();
  // 3 threads x (1 outer B/E + 5 x (inner B/E + instant)) = 51.
  EXPECT_EQ(collector.event_count(), 51u);
  EXPECT_EQ(collector.dropped_events(), 0u);
  const std::string json = collector.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, EmitsAreDroppedWhenNoCollectorRuns) {
  // Must not crash, allocate rings that leak into later sessions, or
  // produce wire metadata.
  obs::trace_begin("orphan");
  obs::trace_end("orphan");
  const obs::WireTrace trace = obs::wire_capture("orphan.send");
  EXPECT_TRUE(trace.empty());
  obs::wire_accept(trace, "orphan.recv");
}

// Counts occurrences of `needle` in `haystack`.
std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// One fixed-seed 2PC run (3 ranks, unanimous commit) under the sim
// scheduler with a collector attached; returns the exported JSON.
std::string traced_2pc_run(std::uint64_t seed) {
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  collector.start();
  mp::World world(3);
  auto bodies = world.rank_bodies([](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dist::run_2pc_coordinator(comm);
    } else {
      (void)dist::run_2pc_participant(comm, /*vote_commit=*/true);
    }
  });
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(collector.dropped_events(), 0u);
  return collector.chrome_trace_json();
}

// The golden-determinism property: same seed, same trace, byte for byte.
// Virtual-clock timestamps + session-local ids are what make this hold.
TEST(Trace, FixedSeed2pcTraceIsByteStable) {
  const std::string first = traced_2pc_run(42);
  const std::string second = traced_2pc_run(42);
  EXPECT_EQ(first, second);
}

TEST(Trace, TwoPhaseCommitTraceIsCausallyStitched) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string json = traced_2pc_run(42);

  // All three ranks appear as named tracks: per participant, one
  // thread_name metadata record plus the rank-level span's B/E pair.
  EXPECT_NE(json.find("\"2pc.coordinator\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"2pc.participant\""), 6u);

  // The protocol phases and the decision instants are present.
  EXPECT_NE(json.find("\"2pc.prepare\""), std::string::npos);
  EXPECT_NE(json.find("\"2pc.decide\""), std::string::npos);
  EXPECT_NE(json.find("\"2pc.decide_commit\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"2pc.learned_commit\""), 2u);

  // Causal stitching: every delivered message is one flow-start ("s")
  // paired with one flow-end ("f"). With a reliable fabric nothing is
  // dropped, so the counts match, and there is at least one flow per
  // protocol message class (prepare, vote, decision, ack) per participant.
  const std::size_t starts = count_occurrences(json, "\"ph\":\"s\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"f\"");
  EXPECT_EQ(starts, ends);
  EXPECT_GE(starts, 8u);

  // The same run's metrics show the protocol rounds.
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.2pc.commit"), 1u);
  EXPECT_EQ(snapshot.counter("pdc.2pc.vote_sent"), 2u);
  EXPECT_EQ(snapshot.counter("pdc.2pc.ack_sent"), 2u);
  EXPECT_GE(snapshot.counter("pdc.mp.sent"), 8u);
}

TEST(Trace, DistinctSeedsProduceDistinctSchedulesSameInvariants) {
  const std::string a = traced_2pc_run(7);
  const std::string b = traced_2pc_run(1234);
  // Different interleavings; both structurally sound (paired flows).
  EXPECT_EQ(count_occurrences(a, "\"ph\":\"s\""),
            count_occurrences(a, "\"ph\":\"f\""));
  EXPECT_EQ(count_occurrences(b, "\"ph\":\"s\""),
            count_occurrences(b, "\"ph\":\"f\""));
}

// ------------------------------------------------------------- quantiles

// The interpolated estimate must land inside the power-of-two bucket that
// contains the nearest-rank percentile of the raw samples — that is the
// resolution the histogram actually stores.
TEST(Quantiles, EstimateLandsInTheExactValuesBucket) {
  obs::Histogram hist;
  hist.reset();
  std::vector<double> samples;
  support::Rng rng(123);
  for (int i = 0; i < 4000; ++i) {
    const double value = rng.uniform(0.0, 5000.0);
    hist.record(value);
    samples.push_back(std::floor(value));  // record() truncates
  }
  const auto snap = hist.snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = support::percentile(samples, q * 100.0);
    const std::size_t bucket =
        obs::Histogram::bucket_of(static_cast<std::uint64_t>(exact));
    const double lower = bucket == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(bucket) - 1);
    const double upper = obs::Histogram::bucket_upper(bucket);
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, lower) << "q=" << q << " exact=" << exact;
    EXPECT_LE(estimate, upper) << "q=" << q << " exact=" << exact;
  }
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
}

TEST(Quantiles, EdgeCases) {
  obs::Histogram empty;
  empty.reset();
  EXPECT_EQ(empty.snapshot().quantile(0.5), 0.0);

  obs::Histogram zeros;
  zeros.reset();
  for (int i = 0; i < 4; ++i) zeros.record(std::uint64_t{0});
  const double z = zeros.snapshot().quantile(0.5);
  EXPECT_GE(z, 0.0);
  EXPECT_LT(z, 1.0);  // all mass in bucket 0 = [0, 1)

  // The unbounded tail has no upper edge: the estimate is its lower bound.
  obs::Histogram tail;
  tail.reset();
  tail.record(std::uint64_t{1} << 40);
  EXPECT_DOUBLE_EQ(tail.snapshot().quantile(0.99),
                   std::ldexp(1.0, obs::kHistogramBuckets - 2));

  // q is clamped to [0, 1]; non-histogram samples answer 0.
  obs::Histogram one;
  one.reset();
  one.record(std::uint64_t{3});
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(-1.0), one.snapshot().quantile(0.0));
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(2.0), one.snapshot().quantile(1.0));
  obs::MetricSample counter_sample;
  counter_sample.kind = obs::MetricKind::kCounter;
  counter_sample.count = 10;
  EXPECT_EQ(counter_sample.quantile(0.9), 0.0);
}

// -------------------------------------------------------- pool depth

// Owner-side pushes feed both the aggregate deque-depth histogram and the
// per-worker one registered at pool construction.
TEST(Metrics, PoolsExportPerWorkerDequeDepth) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  {
    parallel::ThreadPool pool(2);
    std::atomic<int> done{0};
    pool.submit([&] {
        for (int i = 0; i < 8; ++i) {
          pool.submit([&] { done.fetch_add(1); });
        }
      })
        .get();
    while (done.load() < 8) std::this_thread::yield();
  }
  {
    parallel::WorkStealingPool pool(2);
    std::atomic<int> done{0};
    pool.spawn([&] {
      for (int i = 0; i < 8; ++i) {
        pool.spawn([&] { done.fetch_add(1); });
      }
    });
    // Don't wait_idle() while the children are in flight: the caller helps
    // run tasks there, which would turn the inner spawns into external
    // injections instead of owner pushes.
    while (done.load() < 8) std::this_thread::yield();
    EXPECT_EQ(done.load(), 8);
  }
  const auto snapshot = MetricsRegistry::instance().scrape();
  for (const char* prefix : {"pdc.pool.deque_depth", "pdc.steal.deque_depth"}) {
    const auto* aggregate = snapshot.find(prefix);
    ASSERT_NE(aggregate, nullptr) << prefix;
    EXPECT_EQ(aggregate->count, 8u) << prefix;  // one record per owner push
    const auto* w0 = snapshot.find(std::string(prefix) + ".w0");
    const auto* w1 = snapshot.find(std::string(prefix) + ".w1");
    ASSERT_NE(w0, nullptr) << prefix;
    ASSERT_NE(w1, nullptr) << prefix;
    EXPECT_EQ(w0->count + w1->count, aggregate->count) << prefix;
  }
}

// ------------------------------------------------- dist protocol traces

// One fixed-seed sim run of `body` on `ranks` ranks with a collector and a
// clean registry; returns the exported JSON.
std::string traced_world_run(int ranks, std::uint64_t seed,
                             const std::function<void(mp::Communicator&)>& body) {
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  collector.start();
  mp::World world(ranks);
  auto bodies = world.rank_bodies(body);
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(collector.dropped_events(), 0u);
  return collector.chrome_trace_json();
}

void expect_paired_flows_with_bytes(const std::string& json,
                                    std::size_t min_flows) {
  const std::size_t starts = count_occurrences(json, "\"ph\":\"s\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"f\"");
  EXPECT_EQ(starts, ends);
  EXPECT_GE(starts, min_flows);
  // Every flow event carries the payload size in its args.
  EXPECT_EQ(count_occurrences(json, "\"bytes\":"), starts + ends);
}

TEST(Trace, RingElectionTraceIsCausallyStitched) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string json = traced_world_run(3, 11, [](mp::Communicator& comm) {
    const std::vector<bool> alive(3, true);
    (void)dist::ring_election(comm, alive, /*initiate=*/comm.rank() == 0);
  });
  EXPECT_NE(json.find("\"election.ring\""), std::string::npos);
  EXPECT_NE(json.find("\"election.elected\""), std::string::npos);
  // The leader exits the moment its own id returns, so the final
  // coordinator hand-back addressed to it is sent but never received:
  // exactly one flow arrow stays open.
  const std::size_t starts = count_occurrences(json, "\"ph\":\"s\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"f\"");
  EXPECT_EQ(starts, ends + 1);
  EXPECT_GE(ends, 3u);
  EXPECT_EQ(count_occurrences(json, "\"bytes\":"), starts + ends);
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.election.won"), 1u);
  EXPECT_GE(snapshot.counter("pdc.election.messages"), 3u);
}

TEST(Trace, MutexTraceShowsAcquireAndRelease) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  constexpr int kRanks = 3, kEntries = 2;
  const std::string json =
      traced_world_run(kRanks, 13, [](mp::Communicator& comm) {
        dist::RicartAgrawala mutex(comm);
        for (int e = 0; e < kEntries; ++e) {
          mutex.enter();
          mutex.leave();
        }
        mutex.finish();
      });
  EXPECT_NE(json.find("\"mutex.acquire\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"mutex.enter\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"mutex.release\""), 6u);
  expect_paired_flows_with_bytes(json, 8);
  // Per entry: p-1 request messages out, p-1 replies back.
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.mutex.requests"),
            static_cast<std::uint64_t>(kRanks) * kEntries * (kRanks - 1));
  EXPECT_EQ(snapshot.counter("pdc.mutex.replies"),
            static_cast<std::uint64_t>(kRanks) * kEntries * (kRanks - 1));
}

TEST(Trace, SnapshotTraceShowsMarkersAndCompletion) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string json = traced_world_run(3, 17, [](mp::Communicator& comm) {
    (void)dist::run_token_snapshot(comm, /*initial_tokens=*/10, /*sends=*/40,
                                   /*initiator=*/comm.rank() == 0, /*seed=*/77);
  });
  EXPECT_NE(json.find("\"snapshot.run\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"snapshot.record_state\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"snapshot.complete\""), 3u);
  expect_paired_flows_with_bytes(json, 6);
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.snapshot.markers"), 3u * 2u);
}

TEST(Trace, ClockSyncTraceShowsServerAndExchanges) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const std::string json = traced_world_run(3, 19, [](mp::Communicator& comm) {
    dist::DriftingClock clock(comm.rank() * 2.0, 0.0);
    support::Rng rng(100 + static_cast<std::uint64_t>(comm.rank()));
    (void)dist::cristian_sync_mp(comm, clock, /*true_time=*/1000.0,
                                 /*mean_delay=*/0.01, rng);
  });
  EXPECT_NE(json.find("\"clocksync.serve\""), std::string::npos);
  EXPECT_NE(json.find("\"clocksync.exchange\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"clocksync.adjust\""), 2u);
  // Two clients, one request + one response each.
  expect_paired_flows_with_bytes(json, 4);
  const auto snapshot = MetricsRegistry::instance().scrape();
  EXPECT_EQ(snapshot.counter("pdc.clocksync.served"), 2u);
  EXPECT_EQ(snapshot.counter("pdc.clocksync.syncs"), 2u);
}

// ---------------------------------------------------------- telemetry

net::NetConfig fast_net() {
  net::NetConfig config;
  config.latency_ms = 0.01;
  return config;
}

// Prometheus grammar over a hand-fed registry (no network involved).
TEST(Telemetry, ExpositionGrammar) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  registry.counter("test.expo.counter").inc(3);
  registry.gauge("test.expo.gauge").add(2);
  registry.histogram("test.expo.hist").record(std::uint64_t{5});
  const std::string text = obs::prometheus_exposition(registry.scrape());
  EXPECT_NE(text.find("# TYPE test_expo_counter counter\ntest_expo_counter 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge_high_water 2\n"), std::string::npos);
  // 5 lands in [4, 8): cumulative buckets step from 0 to 1 at le="8".
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"4\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"8\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_hist_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("test_expo_hist_count 1\n"), std::string::npos);
  // Every histogram exposition carries the three quantile summaries.
  for (const char* label : {"0.5", "0.9", "0.99"}) {
    EXPECT_NE(text.find("test_expo_hist{quantile=\"" + std::string(label) +
                        "\"} "),
              std::string::npos);
  }
}

TEST(Telemetry, DeltaJsonReportsOnlyActivity) {
  obs::MetricsSnapshot prev, cur;
  obs::MetricSample active;
  active.name = "a.counter";
  active.kind = obs::MetricKind::kCounter;
  active.count = 5;
  obs::MetricSample idle;
  idle.name = "b.counter";
  idle.kind = obs::MetricKind::kCounter;
  idle.count = 2;
  obs::MetricSample gauge;
  gauge.name = "c.gauge";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = 4;
  gauge.high_water = 9;
  obs::MetricSample hist;
  hist.name = "d.hist";
  hist.kind = obs::MetricKind::kHistogram;
  hist.count = 3;
  hist.sum = 12;
  hist.buckets = {0, 0, 0, 3};  // three samples in [4, 8)
  prev.samples = {active, idle, hist};
  active.count = 9;
  hist.count = 4;
  hist.sum = 17;
  hist.buckets[3] = 4;
  cur.samples = {active, idle, gauge, hist};

  const std::string frame = obs::delta_json(prev, cur, 7);
  EXPECT_NE(frame.find("\"cursor\":7"), std::string::npos);
  EXPECT_NE(frame.find("\"a.counter\":4"), std::string::npos);
  // Zero-delta counters are omitted; gauges always report.
  EXPECT_EQ(frame.find("b.counter"), std::string::npos);
  EXPECT_NE(frame.find("\"c.gauge\":{\"value\":4,\"high_water\":9}"),
            std::string::npos);
  // Histogram deltas are count/sum; quantiles are cumulative.
  EXPECT_NE(frame.find("\"d.hist\":{\"count\":1,\"sum\":5,\"p50\":"),
            std::string::npos);

  // Frame 1 diffs against the empty snapshot: full totals.
  const std::string first = obs::delta_json(obs::MetricsSnapshot{}, cur, 1);
  EXPECT_NE(first.find("\"cursor\":1"), std::string::npos);
  EXPECT_NE(first.find("\"a.counter\":9"), std::string::npos);
  EXPECT_NE(first.find("\"b.counter\":2"), std::string::npos);
}

// One full telemetry round: a fixed-seed sim workload, then every GET
// endpoint over the real client-server stack. /metrics is fetched first —
// the self-metrics histogram is still empty then, so its body depends only
// on the sim run (real-time render latencies land in it from the second
// request on).
struct TelemetryRound {
  std::string metrics;
  std::string healthz;
  std::string metrics_json;
  std::string trace;
};

TelemetryRound telemetry_round(std::uint64_t seed) {
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  collector.start();
  mp::World world(3);
  auto bodies = world.rank_bodies([](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dist::run_2pc_coordinator(comm);
    } else {
      (void)dist::run_2pc_participant(comm, /*vote_commit=*/true);
    }
  });
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  collector.stop();
  EXPECT_TRUE(report.ok()) << report.error;

  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, /*host=*/0, /*port=*/9100);
  server.attach_collector(&collector);
  obs::TelemetryClient client(net, /*host=*/1);
  EXPECT_TRUE(client.connect(server.address()).is_ok());
  TelemetryRound round;
  round.metrics = client.get("/metrics").value();
  round.healthz = client.get("/healthz").value();
  round.metrics_json = client.get("/metrics.json").value();
  round.trace = client.get("/trace").value();
  client.close();
  server.stop();
  return round;
}

// The tentpole determinism property: two identical fixed-seed runs serve
// byte-identical /metrics expositions (and /trace dumps).
TEST(Telemetry, GoldenMetricsExpositionIsByteStable) {
  const TelemetryRound a = telemetry_round(42);
  const TelemetryRound b = telemetry_round(42);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.healthz, "ok\n");
}

TEST(Telemetry, EndpointsServeRegistryAndTrace) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  const TelemetryRound round = telemetry_round(42);
  EXPECT_NE(round.metrics.find("# TYPE pdc_2pc_commit counter"),
            std::string::npos);
  EXPECT_NE(round.metrics.find("pdc_2pc_commit 1\n"), std::string::npos);
  EXPECT_NE(round.metrics.find("pdc_telemetry_render_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(round.metrics_json.find("\"pdc.2pc.commit\":1"), std::string::npos);
  EXPECT_NE(round.metrics_json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(round.trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(round.trace.find("\"2pc.prepare\""), std::string::npos);
}

TEST(Telemetry, UnknownEndpointAndMissingCollectorAnswerErrors) {
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  EXPECT_EQ(client.get("/healthz").value(), "ok\n");
  EXPECT_NE(client.get("/nope").value().find("unknown endpoint"),
            std::string::npos);
  // A NOOP build answers the whole /trace family with one "tracing
  // disabled" shape; an enabled build reports the missing collector.
  EXPECT_NE(client.get("/trace").value().find(
                obs::kObsEnabled ? "no trace collector" : "tracing disabled"),
            std::string::npos);
  client.close();
}

TEST(Telemetry, SubscriptionDeliversMonotoneCursors) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  registry.counter("test.sub.counter").inc(7);
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  std::vector<std::string> frames;
  ASSERT_TRUE(client
                  .subscribe(/*frames=*/3, /*interval_ms=*/0,
                             [&](const std::string& frame) {
                               frames.push_back(frame);
                             })
                  .is_ok());
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_NE(frames[0].find("\"cursor\":1"), std::string::npos);
  EXPECT_NE(frames[1].find("\"cursor\":2"), std::string::npos);
  EXPECT_NE(frames[2].find("\"cursor\":3"), std::string::npos);
  // Frame 1 carries full totals; later frames omit the idle counter.
  EXPECT_NE(frames[0].find("\"test.sub.counter\":7"), std::string::npos);
  EXPECT_EQ(frames[1].find("test.sub.counter"), std::string::npos);
  EXPECT_EQ(frames[2].find("test.sub.counter"), std::string::npos);
  client.close();
}

TEST(Telemetry, SubscriptionRejectsBadRequests) {
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  for (const char* bad : {"/subscribe", "/subscribe 0"}) {
    auto socket = net.connect(1, server.address());
    ASSERT_TRUE(socket.is_ok());
    ASSERT_TRUE(net::MessageCodec::send_message(socket.value(),
                                                net::to_bytes(std::string(bad)))
                    .is_ok());
    auto reply = net::MessageCodec::recv_message(socket.value());
    ASSERT_TRUE(reply.is_ok());
    EXPECT_NE(net::to_string(reply.value()).find("usage"), std::string::npos)
        << bad;
    socket.value().close();
  }
}

// Free-running writers against a scraping client; under
// -DPDCKIT_SANITIZE=thread this is the telemetry-plane race check.
TEST(Telemetry, ScrapeUnderLoadStress) {
  MetricsRegistry::instance().reset();
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop] {
      auto& counter = MetricsRegistry::instance().counter("test.load.counter");
      auto& hist = MetricsRegistry::instance().histogram("test.load.hist");
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.inc();
        hist.record(i++ % 512);
      }
    });
  }
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  std::string last;
  for (int i = 0; i < 50; ++i) {
    auto body = client.get(i % 2 == 0 ? "/metrics" : "/metrics.json");
    ASSERT_TRUE(body.is_ok());
    last = std::move(body).value();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  EXPECT_NE(last.find("test.load.counter"), std::string::npos);
  client.close();
}

// ------------------------------------------------- labels & federation

TEST(Labels, MetricKeyCanonicalAndParseRoundTrip) {
  obs::MetricKey key{"pdc.demo", {{"b", "2"}, {"a", "x\"y\\z\n"}}};
  key.canonicalize();
  ASSERT_EQ(key.labels.size(), 2u);
  EXPECT_EQ(key.labels.front().first, "a");  // sorted by key
  const std::string canon = key.canonical();
  EXPECT_EQ(canon, "pdc.demo{a=\"x\\\"y\\\\z\\n\",b=\"2\"}");
  const auto parsed = obs::MetricKey::parse(canon);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key);

  const auto flat = obs::MetricKey::parse("pdc.flat");
  ASSERT_TRUE(flat.has_value());
  EXPECT_TRUE(flat->labels.empty());

  obs::MetricKey dup{"m", {{"k", "1"}, {"k", "2"}}};
  dup.canonicalize();  // duplicate keys: first occurrence wins
  ASSERT_EQ(dup.labels.size(), 1u);
  EXPECT_EQ(dup.labels[0].second, "1");

  EXPECT_FALSE(obs::MetricKey::parse("x{a=\"1\"").has_value());   // no brace
  EXPECT_FALSE(obs::MetricKey::parse("x{a=1}").has_value());      // no quotes
  EXPECT_FALSE(obs::MetricKey::parse("x{a=\"1\"}z").has_value()); // trailing
}

TEST(Labels, RegistryInternsPermutationsAsOneSeries) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("test.lab", {{"x", "1"}, {"y", "2"}});
  auto& b = reg.counter("test.lab", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);  // permutations canonicalize to one series
  auto& flat = reg.counter("test.lab");
  EXPECT_NE(&flat, &a);  // the flat series is its own key
  a.inc(3);
  flat.inc(1);

  const auto snap = reg.scrape();
  const auto* labeled = snap.find("test.lab{x=\"1\",y=\"2\"}");
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->count, 3u);
  EXPECT_EQ(labeled->base, "test.lab");
  ASSERT_EQ(labeled->labels.size(), 2u);
  EXPECT_EQ(snap.counter("test.lab"), 1u);
  // Mixed families nest in JSON: unlabeled series under the "" key.
  EXPECT_NE(snap.to_json().find(
                "\"test.lab\":{\"\":1,\"x=\\\"1\\\",y=\\\"2\\\"\":3}"),
            std::string::npos);
}

TEST(Labels, WireFormatRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("w.c").inc(5);
  reg.counter("w.c", {{"rank", "0"}}).inc(2);
  reg.gauge("w.g", {{"host", "h\"x"}}).add(-3);
  reg.histogram("w.h", {{"rank", "1"}}).record(std::uint64_t{1000});
  const auto snap = reg.scrape();
  const auto back = obs::MetricsSnapshot::from_wire(snap.to_wire());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->samples, snap.samples);

  EXPECT_FALSE(obs::MetricsSnapshot::from_wire("pdcwire 2\n").has_value());
  EXPECT_FALSE(obs::MetricsSnapshot::from_wire("bogus").has_value());
}

TEST(Labels, MpRanksAndNetHostsGetLabeledTwins) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  mp::World world(3);
  world.run([](mp::Communicator& comm) {
    if (comm.rank() == 0) {
      (void)dist::run_2pc_coordinator(comm);
    } else {
      (void)dist::run_2pc_participant(comm, /*vote_commit=*/true);
    }
  });
  net::Network net(2, fast_net());
  auto tx = net.open_datagram(0, 7000);
  auto rx = net.open_datagram(1, 7001);
  tx->send_to(rx->local(), net::to_bytes(std::string("hi")));
  ASSERT_TRUE(rx->recv().is_ok());

  const auto snap = MetricsRegistry::instance().scrape();
  for (const char* rank : {"0", "1", "2"}) {
    EXPECT_GT(snap.counter("pdc.mp.rank_sent{rank=\"" + std::string(rank) +
                           "\"}"),
              0u);
    EXPECT_GT(snap.counter("pdc.mp.rank_received{rank=\"" + std::string(rank) +
                           "\"}"),
              0u);
  }
  EXPECT_GE(snap.counter("pdc.net.host_sent{host=\"0\"}"), 1u);
  EXPECT_GE(snap.counter("pdc.net.host_received{host=\"1\"}"), 1u);
}

TEST(Federation, HistogramMergeIsAssociativeAndCommutative) {
  support::Rng rng(123);
  auto random_snap = [&rng] {
    obs::Histogram h;
    const std::int64_t n = rng.uniform_int(1, 200);
    for (std::int64_t i = 0; i < n; ++i) {
      h.record(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
    }
    return h.snapshot();
  };
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_snap(), b = random_snap(), c = random_snap();
    obs::Histogram::Snapshot left = a;
    left.merge(b);
    left.merge(c);  // (a + b) + c
    obs::Histogram::Snapshot bc = b;
    bc.merge(c);
    obs::Histogram::Snapshot right = a;
    right.merge(bc);  // a + (b + c)
    EXPECT_EQ(left, right);
    obs::Histogram::Snapshot ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
  }
}

namespace {

obs::SourceSnapshot counting_source(const std::string& name,
                                    std::uint64_t seed) {
  obs::MetricsRegistry reg;
  support::Rng rng(seed);
  reg.counter("prop.requests").inc(static_cast<std::uint64_t>(
      rng.uniform_int(1, 1000)));
  reg.counter("prop.errors", {{"kind", "timeout"}})
      .inc(static_cast<std::uint64_t>(rng.uniform_int(0, 50)));
  auto& hist = reg.histogram("prop.latency_us");
  const std::int64_t n = rng.uniform_int(10, 300);
  for (std::int64_t i = 0; i < n; ++i) {
    hist.record(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16)));
  }
  return {name, reg.scrape()};
}

}  // namespace

// Gauge-free inputs merge to byte-identical output under any source
// permutation (gauges are last-write and deliberately order-dependent).
TEST(Federation, MergeIsPermutationInvariantWithoutGauges) {
  const auto a = counting_source("0", 11);
  const auto b = counting_source("1", 22);
  const auto c = counting_source("2", 33);
  const std::string abc = obs::merge_federated({a, b, c}).to_wire();
  const std::string cab = obs::merge_federated({c, a, b}).to_wire();
  const std::string bca = obs::merge_federated({b, c, a}).to_wire();
  EXPECT_EQ(abc, cab);
  EXPECT_EQ(abc, bca);
}

TEST(Federation, MergeStampsSourcesAndAggregates) {
  obs::MetricsRegistry r0, r1;
  r0.counter("f.c").inc(3);
  r0.gauge("f.g").add(5);
  r1.counter("f.c").inc(4);
  r1.gauge("f.g").add(9);
  const auto merged =
      obs::merge_federated({{"0", r0.scrape()}, {"1", r1.scrape()}});
  EXPECT_EQ(merged.counter("f.c"), 7u);  // aggregate: counters sum
  EXPECT_EQ(merged.counter("f.c{rank=\"0\"}"), 3u);
  EXPECT_EQ(merged.counter("f.c{rank=\"1\"}"), 4u);
  const auto* gauge = merged.find("f.g");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 9);  // aggregate: gauges last-write

  // Second tier: series already stamped keep their attribution (no double
  // stamp) and feed no second aggregate (no double count); only the
  // first-tier aggregate gets this tier's label.
  const auto tier2 = obs::merge_federated({{"9", merged}});
  EXPECT_EQ(tier2.counter("f.c"), 7u);
  EXPECT_EQ(tier2.counter("f.c{rank=\"9\"}"), 7u);
  EXPECT_EQ(tier2.counter("f.c{rank=\"0\"}"), 3u);
  EXPECT_EQ(tier2.counter("f.c{rank=\"1\"}"), 4u);
}

// Acceptance: quantiles of the merged histogram equal quantiles of one
// histogram fed every rank's samples — bucket merge loses nothing.
TEST(Federation, MergedQuantilesMatchConcatenatedSamples) {
  obs::Histogram h0, h1, all;
  std::vector<double> raw;
  support::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    (i % 2 == 0 ? h0 : h1).record(v);
    all.record(v);
    raw.push_back(static_cast<double>(v));
  }
  obs::Histogram::Snapshot merged = h0.snapshot();
  merged.merge(h1.snapshot());
  EXPECT_EQ(merged, all.snapshot());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), all.snapshot().quantile(q));
    // And the estimate stays inside the exact percentile's bucket — same
    // resolution contract the single-process Quantiles test pins down.
    const double exact = support::percentile(raw, q * 100.0);
    const std::size_t bucket =
        obs::Histogram::bucket_of(static_cast<std::uint64_t>(exact));
    const double lower =
        bucket == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(bucket) - 1);
    EXPECT_GE(merged.quantile(q), lower) << "q=" << q;
    EXPECT_LE(merged.quantile(q), obs::Histogram::bucket_upper(bucket))
        << "q=" << q;
  }
}

namespace {

/// One federated round: a fixed-seed 4-rank 2PC where each rank records
/// into its own registry, served by four TelemetryServers and merged by an
/// Aggregator (the examples/telemetry_federation workload, condensed).
struct FederatedRound {
  std::string exposition;
  obs::MetricsSnapshot merged;
};

FederatedRound federated_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> regs;
  for (int r = 0; r < kRanks; ++r) {
    regs.push_back(std::make_unique<obs::MetricsRegistry>());
  }
  mp::World world(kRanks);
  auto bodies = world.rank_bodies([&regs](mp::Communicator& comm) {
    const int rank = comm.rank();
    auto& reg = *regs[static_cast<std::size_t>(rank)];
    const dist::TpcStats stats =
        rank == 0 ? dist::run_2pc_coordinator(comm)
                  : dist::run_2pc_participant(comm, /*vote_commit=*/true);
    reg.counter("app.2pc.messages").inc(stats.messages_sent);
    auto& hist = reg.histogram("app.step_us");
    for (std::uint64_t i = 1; i <= 64; ++i) {
      hist.record(i * static_cast<std::uint64_t>(rank + 1));
    }
  });
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  EXPECT_TRUE(report.ok()) << report.error;

  net::Network net(kRanks + 2, fast_net());
  std::vector<std::unique_ptr<obs::TelemetryServer>> servers;
  std::vector<obs::ScrapeTarget> targets;
  for (int r = 0; r < kRanks; ++r) {
    obs::TelemetryConfig config;
    config.registry = regs[static_cast<std::size_t>(r)].get();
    servers.push_back(std::make_unique<obs::TelemetryServer>(
        net, /*host=*/r, /*port=*/9100, config));
    targets.push_back({servers.back()->address(), std::to_string(r)});
  }
  obs::Aggregator aggregator(net, /*host=*/kRanks, /*port=*/9200,
                             std::move(targets));
  obs::TelemetryClient client(net, /*host=*/kRanks + 1);
  EXPECT_TRUE(client.connect(aggregator.address()).is_ok());
  FederatedRound round;
  round.exposition = client.get("/metrics").value();
  round.merged = aggregator.federate();
  client.close();
  return round;
}

}  // namespace

// Acceptance: two identical fixed-seed multi-rank runs federate to
// byte-identical /metrics bodies, and every per-rank series carries its
// rank label.
TEST(Federation, GoldenFederatedScrapeIsByteStable) {
  const FederatedRound a = federated_round(7);
  const FederatedRound b = federated_round(7);
  EXPECT_EQ(a.exposition, b.exposition);
  for (const char* rank : {"0", "1", "2", "3"}) {
    EXPECT_NE(a.exposition.find("app_2pc_messages{rank=\"" +
                                std::string(rank) + "\"}"),
              std::string::npos);
  }

  // The aggregate histogram is the exact bucket merge of the per-rank
  // series: counts add up and quantiles match the rebuilt merge.
  const auto* aggregate = a.merged.find("app.step_us");
  ASSERT_NE(aggregate, nullptr);
  obs::Histogram::Snapshot rebuilt;
  std::uint64_t per_rank_total = 0;
  for (const char* rank : {"0", "1", "2", "3"}) {
    const auto* sample =
        a.merged.find("app.step_us{rank=\"" + std::string(rank) + "\"}");
    ASSERT_NE(sample, nullptr);
    per_rank_total += sample->count;
    rebuilt.count += sample->count;
    rebuilt.sum += sample->sum;
    for (std::size_t i = 0; i < sample->buckets.size(); ++i) {
      rebuilt.buckets[i] += sample->buckets[i];
    }
  }
  EXPECT_EQ(aggregate->count, per_rank_total);
  EXPECT_EQ(aggregate->count, 4u * 64u);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(aggregate->quantile(q), rebuilt.quantile(q));
  }
}

// The event-driven server model serves the same telemetry plane
// byte-for-byte: a deterministic custom registry exposed through
// kEventDriven and kThreadPerConnection yields identical bodies (the
// golden byte-stability contract holds regardless of threading model).
TEST(Telemetry, EventDrivenModelServesIdenticalBytes) {
  obs::MetricsRegistry registry;
  registry.counter("app.requests").inc(41);
  registry.gauge("app.depth").add(17);
  auto& hist = registry.histogram("app.lat_us");
  for (std::uint64_t i = 1; i <= 32; ++i) hist.record(i * i);

  auto fetch = [&](net::ThreadingModel model) {
    net::Network net(2, fast_net());
    obs::TelemetryConfig config;
    config.model = model;
    config.registry = &registry;
    obs::TelemetryServer server(net, 0, 9100, config);
    obs::TelemetryClient client(net, 1);
    EXPECT_TRUE(client.connect(server.address()).is_ok());
    const std::string metrics = client.get("/metrics").value();
    const std::string wire = client.get("/metrics.wire").value();
    client.close();
    server.stop();
    return metrics + "\x1f" + wire;
  };
  const std::string baseline = fetch(net::ThreadingModel::kThreadPerConnection);
  const std::string event = fetch(net::ThreadingModel::kEventDriven);
  EXPECT_EQ(event, baseline);
  EXPECT_NE(event.find("app_requests 41"), std::string::npos);
}

TEST(Federation, AggregatorRunsEventDriven) {
  obs::MetricsRegistry r0, r1;
  r0.counter("ev.hits").inc(3);
  r1.counter("ev.hits").inc(4);
  net::Network net(4, fast_net());
  obs::TelemetryConfig c0, c1;
  c0.registry = &r0;
  c0.model = net::ThreadingModel::kEventDriven;
  c1.registry = &r1;
  c1.model = net::ThreadingModel::kEventDriven;
  obs::TelemetryServer s0(net, 0, 9100, c0);
  obs::TelemetryServer s1(net, 1, 9100, c1);
  obs::AggregatorConfig aggregator_config;
  aggregator_config.model = net::ThreadingModel::kEventDriven;
  obs::Aggregator aggregator(net, 2, 9200,
                             {{s0.address(), "0"}, {s1.address(), "1"}},
                             aggregator_config);
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());
  const std::string body = client.get("/metrics").value();
  EXPECT_NE(body.find("ev_hits{rank=\"0\"} 3"), std::string::npos);
  EXPECT_NE(body.find("ev_hits{rank=\"1\"} 4"), std::string::npos);
  EXPECT_EQ(aggregator.federate().counter("ev.hits"), 7u);
  client.close();
}

TEST(Federation, ControlVerbsResetAndSnapshotNow) {
  obs::MetricsRegistry r0, r1;
  r0.counter("ctl.hits").inc(2);
  r1.counter("ctl.hits").inc(5);
  net::Network net(4, fast_net());
  obs::TelemetryConfig c0, c1;
  c0.registry = &r0;
  c1.registry = &r1;
  obs::TelemetryServer s0(net, 0, 9100, c0);
  obs::TelemetryServer s1(net, 1, 9100, c1);
  obs::Aggregator aggregator(
      net, 2, 9200, {{s0.address(), "0"}, {s1.address(), "1"}});
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());

  // snapshot-now on the aggregator is an immediate federated JSON body.
  const std::string snap = client.get("snapshot-now").value();
  EXPECT_NE(snap.find("\"ctl.hits\""), std::string::npos);
  EXPECT_NE(snap.find(":7"), std::string::npos);

  // reset broadcasts to every rank; the next scrape is zeroed.
  EXPECT_EQ(client.get("reset").value(), "ok\n");
  EXPECT_EQ(r0.scrape().counter("ctl.hits"), 0u);
  EXPECT_EQ(r1.scrape().counter("ctl.hits"), 0u);
  EXPECT_EQ(aggregator.federate().counter("ctl.hits"), 0u);
  client.close();
}

// Free-running labeled-counter writers racing federated scrapes; under
// -DPDCKIT_SANITIZE=thread this is the federation race check.
TEST(Federation, LabeledWritesRacingFederatedScrapeStress) {
  obs::MetricsRegistry r0, r1;
  net::Network net(4, fast_net());
  obs::TelemetryConfig c0, c1;
  c0.registry = &r0;
  c1.registry = &r1;
  obs::TelemetryServer s0(net, 0, 9100, c0);
  obs::TelemetryServer s1(net, 1, 9100, c1);
  obs::Aggregator aggregator(
      net, 2, 9200, {{s0.address(), "0"}, {s1.address(), "1"}});

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop, &r0, &r1, t] {
      auto& mine = (t % 2 == 0 ? r0 : r1);
      auto& counter =
          mine.counter("race.ops", {{"worker", std::to_string(t)}});
      auto& hist = mine.histogram("race.lat_us", {{"worker", "all"}});
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.inc();
        hist.record(i++ % 512);
      }
    });
  }
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());
  std::string last;
  for (int i = 0; i < 25; ++i) {
    auto body = client.get(i % 2 == 0 ? "/metrics" : "/metrics.wire");
    ASSERT_TRUE(body.is_ok());
    last = std::move(body).value();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  EXPECT_NE(last.find("race"), std::string::npos);
  client.close();
}

// -------------------------------------------------------- trace stream

TEST(TraceStream, ChunksMatchPostStopDump) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::TraceCollector collector;
  collector.start();
  for (std::uint64_t i = 0; i < 100; ++i) obs::trace_instant("stream.tick", i);
  obs::TraceStreamCursor cursor;
  const auto chunk1 = collector.stream_chunk(cursor);
  EXPECT_EQ(chunk1.events, 100u);
  EXPECT_EQ(chunk1.dropped, 0u);
  for (std::uint64_t i = 0; i < 50; ++i) obs::trace_instant("stream.tock", i);
  const auto chunk2 = collector.stream_chunk(cursor);
  EXPECT_EQ(chunk2.events, 50u);
  const auto chunk3 = collector.stream_chunk(cursor);  // drained
  EXPECT_EQ(chunk3.events, 0u);
  EXPECT_TRUE(chunk3.events_json.empty());
  collector.stop();

  // A lap-free client saw every event; each streamed object is
  // byte-identical to its dump twin (the dump separates with ",\n", the
  // stream with "," — normalize before the contiguous-substring check).
  EXPECT_EQ(collector.event_count(), 150u);
  EXPECT_EQ(cursor.dropped, 0u);
  const std::string dump = collector.chrome_trace_json();
  const auto dump_style = [](std::string events) {
    for (std::size_t at = events.find("},{"); at != std::string::npos;
         at = events.find("},{", at + 3)) {
      events.replace(at, 3, "},\n{");
    }
    return events;
  };
  EXPECT_NE(dump.find(dump_style(chunk1.events_json)), std::string::npos);
  EXPECT_NE(dump.find(dump_style(chunk2.events_json)), std::string::npos);
}

TEST(TraceStream, RingLapCountsDropped) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::TraceCollector collector;
  collector.start();
  const std::uint64_t overshoot = 500;
  for (std::uint64_t i = 0; i < obs::kTraceRingCapacity + overshoot; ++i) {
    obs::trace_instant("lap.tick", i);
  }
  obs::TraceStreamCursor cursor;
  const auto chunk = collector.stream_chunk(cursor);
  EXPECT_EQ(chunk.dropped, overshoot);  // the lap is visible to the client
  EXPECT_EQ(cursor.dropped, overshoot);
  EXPECT_EQ(chunk.events, obs::kTraceRingCapacity);
  collector.stop();
  EXPECT_EQ(collector.dropped_events(), overshoot);
}

TEST(TraceStream, EndpointStreamsLiveChunks) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  server.attach_collector(&collector);
  collector.start();
  for (std::uint64_t i = 0; i < 32; ++i) obs::trace_instant("live.tick", i);

  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  std::vector<std::string> frames;
  ASSERT_TRUE(client
                  .stream_trace(/*frames=*/2, /*interval_ms=*/0,
                                [&](const std::string& frame) {
                                  frames.push_back(frame);
                                })
                  .is_ok());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_NE(frames[0].find("\"cursor\":1"), std::string::npos);
  EXPECT_NE(frames[1].find("\"cursor\":2"), std::string::npos);
  EXPECT_NE(frames[0].find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(frames[0].find("\"live.tick\""), std::string::npos);
  collector.stop();

  // The post-hoc dump holds the streamed events too.
  const std::string dump = client.get("/trace").value();
  EXPECT_NE(dump.find("\"live.tick\""), std::string::npos);
  client.close();

  const auto snap = MetricsRegistry::instance().scrape();
  EXPECT_GE(snap.counter("pdc.trace.stream.chunks"), 2u);
  EXPECT_GE(snap.counter("pdc.trace.stream.events"), 32u);
}

TEST(TraceStream, EndpointReportsDroppedOnDeliberateLap) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  obs::TraceCollector collector;
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  server.attach_collector(&collector);
  collector.start();
  const std::uint64_t overshoot = 200;
  for (std::uint64_t i = 0; i < obs::kTraceRingCapacity + overshoot; ++i) {
    obs::trace_instant("lap.net.tick", i);
  }
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  std::vector<std::string> frames;
  ASSERT_TRUE(client
                  .stream_trace(/*frames=*/1, /*interval_ms=*/0,
                                [&](const std::string& frame) {
                                  frames.push_back(frame);
                                })
                  .is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].find("\"dropped\":" + std::to_string(overshoot)),
            std::string::npos);
  collector.stop();
  client.close();
  EXPECT_GE(MetricsRegistry::instance().scrape().counter(
                "pdc.trace.stream.dropped"),
            overshoot);
}

TEST(TraceStream, TraceEndpointAnswersJsonErrorWhileRunning) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::TraceCollector collector;
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  server.attach_collector(&collector);
  collector.start();
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  const std::string body = client.get("/trace").value();
  EXPECT_NE(body.find("\"error\":\"trace collector still running\""),
            std::string::npos);
  EXPECT_NE(body.find("/trace/stream"), std::string::npos);  // the hint
  collector.stop();
  EXPECT_NE(client.get("/trace").value().find("\"traceEvents\""),
            std::string::npos);
  client.close();
}

// ------------------------------------------------------------ bench report

TEST(BenchReport, SerializesTablesAndMetrics) {
  support::TextTable table("demo table");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  obs::BenchReport report("unit_test_bench");
  report.add_table(table);
  report.add_metric("speedup", 1.5);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"demo table\""), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
}

TEST(BenchReport, WriteIsNoOpWithoutEnvVar) {
  obs::BenchReport report("unit_test_bench");
  EXPECT_FALSE(report.write_if_requested());
}

// ------------------------------------------------------------ replay glue

TEST(Replay, FailingInterleavingComesBackWithTrace) {
  // Classic lost update: non-atomic read-modify-write with a preemption
  // point between the read and the write.
  auto make_run = [] {
    auto value = std::make_shared<int>(0);
    testkit::RunPlan plan;
    for (int t = 0; t < 2; ++t) {
      plan.threads.emplace_back([value] {
        obs::ScopedSpan span("increment");
        const int read = *value;
        testkit::yield_point("between read and write");
        *value = read + 1;
      });
    }
    plan.check = [value]() -> std::string {
      return *value == 2 ? "" : "lost update";
    };
    return plan;
  };
  testkit::ExplorerConfig config;
  config.policy = SchedulePolicy::kRoundRobin;
  config.iterations = 20;
  const testkit::ScheduleExplorer explorer(config);
  const obs::ReplayDump dump = obs::explore_and_dump(explorer, make_run);
  ASSERT_TRUE(dump.failed());
  EXPECT_EQ(dump.failure, "lost update");
  if (obs::kObsEnabled) {
    EXPECT_NE(dump.chrome_trace.find("\"increment\""), std::string::npos);
  }
  EXPECT_FALSE(dump.minimal_trace.empty());
}

TEST(Replay, PassingExplorationHasNoTrace) {
  auto make_run = [] {
    auto value = std::make_shared<std::atomic<int>>(0);
    testkit::RunPlan plan;
    for (int t = 0; t < 2; ++t) {
      plan.threads.emplace_back([value] {
        value->fetch_add(1);
        testkit::yield_point("atomic inc");
      });
    }
    plan.check = [value]() -> std::string {
      return value->load() == 2 ? "" : "lost update";
    };
    return plan;
  };
  testkit::ExplorerConfig config;
  config.iterations = 10;
  const testkit::ScheduleExplorer explorer(config);
  const obs::ReplayDump dump = obs::explore_and_dump(explorer, make_run);
  EXPECT_FALSE(dump.failed());
  EXPECT_TRUE(dump.chrome_trace.empty());
}

}  // namespace
}  // namespace pdc
