// Stress tier (ctest -L stress; registered only with PDCKIT_STRESS=ON).
//
// Longer-running schedule exploration and fault-injection campaigns than
// the unit tier affords: wide seed sweeps, more logical threads, larger
// transfers at higher loss. These keep the default tier fast while still
// existing as a buildable target everywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "dist/mutex.hpp"
#include "dist/two_phase_commit.hpp"
#include "mp/world.hpp"
#include "net/arq.hpp"
#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "parallel/chase_lev.hpp"
#include "parallel/thread_pool.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/hooks.hpp"
#include "testkit/schedule_explorer.hpp"
#include "testkit/sim_scheduler.hpp"

namespace {

using namespace pdc;
using namespace pdc::testkit;

struct RacyCounter {
  int counter = 0;
  void increment() {
    const int loaded = counter;
    testkit::yield_point("racy.between-load-and-store");
    counter = loaded + 1;
  }
};

// Every policy must find the lost-update race in a wide sweep, and the
// failing seed must replay identically.
TEST(StressExplorer, AllPoliciesFindTheRace) {
  for (const auto policy :
       {SchedulePolicy::kRoundRobin, SchedulePolicy::kRandom,
        SchedulePolicy::kPreemptionBounded}) {
    ExplorerConfig config;
    config.policy = policy;
    config.iterations = 2000;
    config.base_seed = 1;
    ScheduleExplorer explorer(config);
    auto make_run = [] {
      auto state = std::make_shared<RacyCounter>();
      RunPlan plan;
      for (int t = 0; t < 4; ++t) {
        plan.threads.push_back([state] {
          for (int i = 0; i < 3; ++i) state->increment();
        });
      }
      plan.check = [state]() -> std::string {
        return state->counter == 12
                   ? ""
                   : "lost update: " + std::to_string(state->counter);
      };
      return plan;
    };
    const auto result = explorer.explore(make_run);
    ASSERT_TRUE(result.failure_found) << to_string(policy);
    std::string replay_failure;
    (void)explorer.replay(result.failing_seed, make_run, &replay_failure);
    EXPECT_EQ(replay_failure, result.failure) << to_string(policy);
  }
}

// MPMC queue invariant sweep: across many seeds, every pushed item is
// popped exactly once and shutdown is always orderly.
TEST(StressExplorer, BoundedQueueMpmcInvariantsAcrossSeeds) {
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRandom;
  config.iterations = 400;
  config.base_seed = 1337;
  ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    struct State {
      concurrency::BoundedQueue<int> queue{2};
      std::atomic<int> popped_sum{0};
      std::atomic<int> popped_count{0};
    };
    auto state = std::make_shared<State>();
    RunPlan plan;
    for (int producer = 0; producer < 2; ++producer) {
      plan.threads.push_back([state, producer] {
        for (int i = 0; i < 3; ++i) {
          ASSERT_TRUE(state->queue.push(producer * 3 + i).is_ok());
        }
      });
    }
    for (int consumer = 0; consumer < 2; ++consumer) {
      plan.threads.push_back([state] {
        for (int i = 0; i < 3; ++i) {
          auto item = state->queue.pop();
          ASSERT_TRUE(item.is_ok());
          state->popped_sum += item.value();
          ++state->popped_count;
        }
      });
    }
    plan.check = [state]() -> std::string {
      if (state->popped_count.load() != 6) {
        return "popped " + std::to_string(state->popped_count.load()) +
               " items, expected 6";
      }
      if (state->popped_sum.load() != 0 + 1 + 2 + 3 + 4 + 5) {
        return "popped sum " + std::to_string(state->popped_sum.load()) +
               ", expected 15 (item lost or duplicated)";
      }
      return "";
    };
    return plan;
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
}

// Chase–Lev deque under exhaustive seed exploration: one owner pushing and
// popping, two thieves stealing, with a capacity-2 buffer so growth races
// the steals. The deque's cl.* yield points let the SimScheduler interleave
// the claim sequences (including the last-element CAS race) seed by seed;
// the invariant is exactly-once delivery of every element.
TEST(StressExplorer, ChaseLevDequeExactlyOnceAcrossSeeds) {
  ExplorerConfig config;
  config.policy = SchedulePolicy::kRandom;
  config.iterations = 400;
  config.base_seed = 4242;
  ScheduleExplorer explorer(config);
  const auto result = explorer.explore([] {
    struct State {
      parallel::ChaseLevDeque<int> deque{/*initial_capacity=*/2};
      std::atomic<int> claimed_sum{0};
      std::atomic<int> claimed_count{0};
    };
    auto state = std::make_shared<State>();
    RunPlan plan;
    plan.threads.push_back([state] {  // owner: pushes, then drains
      for (int i = 1; i <= 8; ++i) state->deque.push(i);
      int got = 0;
      while (state->deque.pop(got)) {
        state->claimed_sum += got;
        ++state->claimed_count;
      }
    });
    for (int thief = 0; thief < 2; ++thief) {
      plan.threads.push_back([state] {
        int got = 0;
        for (int attempt = 0; attempt < 24; ++attempt) {
          if (state->deque.steal(got) == parallel::StealResult::kStolen) {
            state->claimed_sum += got;
            ++state->claimed_count;
          }
        }
      });
    }
    plan.check = [state]() -> std::string {
      // The owner's drain loop empties whatever the thieves left, so all 8
      // elements are claimed exactly once between the three threads.
      if (state->claimed_count.load() != 8) {
        return "claimed " + std::to_string(state->claimed_count.load()) +
               " elements, expected 8 (lost or duplicated claim)";
      }
      if (state->claimed_sum.load() != 36) {
        return "claimed sum " + std::to_string(state->claimed_sum.load()) +
               ", expected 36";
      }
      return "";
    };
    return plan;
  });
  EXPECT_FALSE(result.failure_found) << result.describe();
}

// Ricart–Agrawala across a seed sweep with 4 ranks.
TEST(StressSim, RicartAgrawalaSeedSweep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    mp::World world(4);
    struct Shared {
      std::atomic<int> inside{0};
      std::atomic<int> max_inside{0};
    };
    auto shared = std::make_shared<Shared>();
    auto bodies = world.rank_bodies([shared](mp::Communicator& comm) {
      dist::RicartAgrawala mutex(comm);
      for (int i = 0; i < 2; ++i) {
        mutex.enter();
        const int now = ++shared->inside;
        int expected = shared->max_inside.load();
        while (now > expected &&
               !shared->max_inside.compare_exchange_weak(expected, now)) {
        }
        testkit::yield_point("ra.cs");
        --shared->inside;
        mutex.leave();
      }
      mutex.finish();
    });
    SchedulerOptions options;
    options.policy = SchedulePolicy::kRandom;
    options.seed = seed;
    options.max_steps = 1u << 22;
    options.record_trace = false;
    SimScheduler scheduler(options);
    auto report = scheduler.run(std::move(bodies));
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": " << report.error;
    EXPECT_EQ(shared->max_inside.load(), 1) << "seed " << seed;
  }
}

// 2PC at heavy loss across several injector seeds.
TEST(StressFaults, TwoPhaseCommitSeedSweepUnderLoss) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    mp::World world(4);
    FaultConfig faults;
    faults.drop = 0.4;
    faults.duplicate = 0.1;
    faults.seed = seed;
    world.set_fault_injector(std::make_shared<FaultInjector>(faults));
    std::vector<dist::TpcStats> stats(4);
    world.run([&](mp::Communicator& comm) {
      stats[static_cast<std::size_t>(comm.rank())] =
          comm.rank() == 0
              ? dist::run_2pc_coordinator(comm)
              : dist::run_2pc_participant(comm, /*vote_commit=*/true,
                                          std::chrono::milliseconds(5000));
    });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(stats[static_cast<std::size_t>(r)].decision,
                dist::TxnDecision::kCommitted)
          << "seed " << seed << " rank " << r;
    }
  }
}

// Large ARQ transfer at 40% injected loss plus duplication and reordering.
TEST(StressFaults, GoBackNLargeTransferUnderHeavyImpairment) {
  net::NetConfig config;
  config.latency_ms = 0.05;
  net::Network net(2, config);
  FaultConfig faults;
  faults.drop = 0.4;
  faults.duplicate = 0.15;
  faults.reorder = 0.1;
  faults.reorder_ms = 1.0;
  faults.seed = 24601;
  net.set_fault_injector(std::make_shared<FaultInjector>(faults));

  auto tx = net.open_datagram(0, 1);
  auto rx = net.open_datagram(1, 2);
  net::Bytes data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 31) & 0xff);
  }

  std::thread receiver([&] {
    auto received = net::arq_receive(*rx, std::chrono::milliseconds(10000));
    ASSERT_TRUE(received.is_ok());
    EXPECT_EQ(received.value(), data);
  });
  net::ArqConfig arq;
  arq.window = 8;
  arq.max_retries = 5000;
  auto stats = net::arq_send_go_back_n(*tx, rx->local(), data, arq);
  receiver.join();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().bytes_delivered, data.size());
}

// ThreadPool churn: posts racing shutdown must never crash; every status
// is either ok or kClosed.
TEST(StressPool, PostsRacingShutdownAreOrderly) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<parallel::ThreadPool>(2);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::thread poster([&] {
      for (int i = 0; i < 200; ++i) {
        if (pool->post([&] { ++executed; }).is_ok()) ++accepted;
      }
    });
    std::this_thread::yield();
    pool->shutdown();
    poster.join();
    EXPECT_EQ(executed.load(), accepted.load());
    pool.reset();
  }
}

// The fault-injected load test at a scale worth pointing TSan at: tens of
// thousands of open-loop requests over thousands of connections exercise
// every cross-thread edge at once — dispatcher -> ReadySet wakeups, shard
// single-flight scheduling, batch steals re-homing tasks, and the
// generator's driver threads (build with -DPDCKIT_SANITIZE=thread and
// -DPDCKIT_STRESS=ON to run it under the race detector).
TEST(StressServer, EventDrivenLoadWithFaultsConservesRequests) {
  net::NetConfig net_config;
  net_config.latency_ms = 0.01;
  net_config.impair_streams = true;
  net_config.seed = 0xbead;
  net::Network net(4, net_config);
  FaultConfig fault_config;
  fault_config.drop = 0.05;
  fault_config.reorder = 0.05;
  fault_config.reorder_ms = 0.3;
  fault_config.seed = 0xbead;
  auto injector = std::make_shared<FaultInjector>(fault_config);
  net.set_fault_injector(injector);

  net::ServerConfig server_config;
  server_config.model = net::ThreadingModel::kEventDriven;
  server_config.workers = 3;
  server_config.view_handler = [](net::BytesView request) {
    return request.to_owned();
  };
  net::Server server(net, 0, 80, nullptr, server_config);

  net::LoadGenConfig load;
  load.connections = 4000;
  load.requests = 40000;
  load.duration_s = 1.0;
  load.curve = net::ArrivalCurve::kThunderingHerd;
  load.drivers = 2;
  load.first_client_host = 1;
  load.client_hosts = 3;
  net::LoadGen gen(net, server.address());
  const auto report = gen.run(load);
  server.stop();
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.closed_early, 0u);
  EXPECT_EQ(report.sent, 40000u);
  EXPECT_EQ(report.received, report.sent);
  EXPECT_EQ(server.requests_served(), report.sent);
  EXPECT_EQ(injector->stats().messages, 2u * report.sent);
}

}  // namespace
