// Tests for the continuous profiling plane (PR 7): worker slots and the
// sampling profiler, the lock-contention observatory, the /profile
// telemetry endpoints, and the aggregator's profile federation + top-k
// views.
//
// The golden test is the subsystem's determinism anchor: a fixed-seed
// SimScheduler run with virtual-clock sampling (run_sim_sampler as one of
// the logical threads) must fold to byte-identical output across runs.
// The stress test races the wall-clock sampler against two live pools —
// under the tsan preset it is the seqlock-slot data-race check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "net/network.hpp"
#include "obs/federation.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "testkit/hooks.hpp"
#include "testkit/sim_scheduler.hpp"

namespace pdc {
namespace {

using obs::MetricsRegistry;
using obs::Profiler;
using obs::WorkerSlot;
using obs::WorkerState;
using testkit::SchedulePolicy;
using testkit::SchedulerOptions;
using testkit::SimScheduler;

net::NetConfig fast_net() {
  net::NetConfig config;
  config.latency_ms = 0.01;
  return config;
}

// ------------------------------------------------------------ slots

TEST(Profile, WordPacksStateAndLabel) {
  const std::uint64_t word = WorkerSlot::pack(WorkerState::kRunning, 42);
  EXPECT_EQ(WorkerSlot::state_of(word), WorkerState::kRunning);
  EXPECT_EQ(WorkerSlot::label_of(word), 42u);
  EXPECT_EQ(WorkerSlot::pack(WorkerState::kIdle, 0), 0u);
}

TEST(Profile, PublishedSlotShowsUpInSamples) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  auto& prof = Profiler::instance();
  prof.reset();
  WorkerSlot* slot = prof.register_worker("test.slot.w0");
  ASSERT_NE(slot, nullptr);
  Profiler::bind_current_thread(slot);
  ASSERT_EQ(Profiler::current_slot(), slot);

  const std::uint32_t label = prof.intern_label("test.phase");
  slot->publish(WorkerState::kRunning, label);
  prof.sample_once();
  slot->publish(WorkerState::kParked);
  prof.sample_once();
  prof.sample_once();

  const std::string folded = prof.folded();
  EXPECT_NE(folded.find("test.slot.w0;running;test.phase 1\n"),
            std::string::npos);
  EXPECT_NE(folded.find("test.slot.w0;parked 2\n"), std::string::npos);
  EXPECT_EQ(prof.samples(), 3u);

  Profiler::bind_current_thread(nullptr);
  prof.release_worker(slot);
  // Released slots are invisible to later samples.
  prof.reset();
  prof.sample_once();
  EXPECT_EQ(prof.folded().find("test.slot.w0"), std::string::npos);
}

TEST(Profile, ProfiledTaskRestoresNestedScopes) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  auto& prof = Profiler::instance();
  WorkerSlot* slot = prof.register_worker("test.nest.w0");
  Profiler::bind_current_thread(slot);
  const std::uint32_t outer = prof.intern_label("outer");
  const std::uint32_t inner = prof.intern_label("inner");
  slot->publish(WorkerState::kIdle);
  {
    obs::ProfiledTask a(outer);
    EXPECT_EQ(WorkerSlot::label_of(slot->word()), outer);
    {
      obs::ProfiledTask b(inner);
      EXPECT_EQ(WorkerSlot::label_of(slot->word()), inner);
    }
    EXPECT_EQ(WorkerSlot::label_of(slot->word()), outer);
    EXPECT_EQ(WorkerSlot::state_of(slot->word()), WorkerState::kRunning);
  }
  EXPECT_EQ(WorkerSlot::state_of(slot->word()), WorkerState::kIdle);
  Profiler::bind_current_thread(nullptr);
  prof.release_worker(slot);
}

// ------------------------------------------------------ folded format

TEST(Profile, FoldedParseRenderRoundTrip) {
  obs::FoldedProfile folded{{"w0;running;task", 7}, {"w1;parked", 3}};
  const std::string text = obs::render_folded(folded);
  EXPECT_EQ(text, "w0;running;task 7\nw1;parked 3\n");
  EXPECT_EQ(obs::parse_folded(text), folded);
  // Malformed lines (an error JSON body, junk counts) parse as empty /
  // get skipped; duplicate keys sum.
  EXPECT_TRUE(obs::parse_folded("{\"error\":\"profiling disabled\"}\n").empty());
  const auto summed = obs::parse_folded("a;b 1\nnonsense\na;b 2\nc x\n");
  ASSERT_EQ(summed.size(), 1u);
  EXPECT_EQ(summed.at("a;b"), 3u);
}

TEST(Profile, TopKByValueOrdersAndTruncates) {
  auto top = obs::top_k_by_value(
      {{"b", 5}, {"a", 5}, {"c", 9}, {"d", 1}}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "c");   // largest value first
  EXPECT_EQ(top[1].first, "a");   // ties break on key
  EXPECT_EQ(top[2].first, "b");
}

// ---------------------------------------------------- golden (sim)

// A fixed-seed sim round: three logical workers publish phase-labeled
// work at fixed virtual durations while run_sim_sampler samples at 1 ms
// of virtual time. Returns the folded accumulation.
std::string sim_profile_round(std::uint64_t seed) {
  auto& prof = Profiler::instance();
  prof.reset();
  constexpr int kWorkers = 3;
  std::atomic<int> remaining{kWorkers};
  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < kWorkers; ++w) {
    bodies.push_back([w, &remaining, &prof] {
      WorkerSlot* slot = prof.register_worker("sim.w" + std::to_string(w));
      Profiler::bind_current_thread(slot);
      const std::uint32_t compute = prof.intern_label("phase.compute");
      const std::uint32_t exchange = prof.intern_label("phase.exchange");
      for (int round = 0; round < 4; ++round) {
        {
          obs::ProfiledTask task(compute);
          testkit::poll_pause("w.compute", 0.004 * (w + 1));
        }
        {
          obs::ProfiledTask task(exchange);
          testkit::poll_pause("w.exchange", 0.002);
        }
        obs::publish_worker_state(WorkerState::kIdle);
        testkit::poll_pause("w.idle", 0.001);
      }
      Profiler::bind_current_thread(nullptr);
      prof.release_worker(slot);
      remaining.fetch_sub(1);
    });
  }
  bodies.push_back([&remaining, &prof] {
    prof.run_sim_sampler(/*period_seconds=*/0.001,
                         [&] { return remaining.load() == 0; });
  });
  SchedulerOptions options;
  options.policy = SchedulePolicy::kRandom;
  options.seed = seed;
  options.max_steps = 1u << 22;
  SimScheduler scheduler(options);
  const auto report = scheduler.run(std::move(bodies));
  EXPECT_TRUE(report.ok()) << report.error;
  return prof.folded();
}

// Acceptance: virtual-clock sampling under a fixed seed is byte-stable —
// two identical runs fold identically, and the slower workers (longer
// compute phases) accumulate proportionally more running samples.
TEST(Profile, GoldenSimFoldedIsByteStable) {
  const std::string a = sim_profile_round(17);
  const std::string b = sim_profile_round(17);
  EXPECT_EQ(a, b);
  if (!obs::kObsEnabled) {
    EXPECT_TRUE(a.empty());
    return;
  }
  const obs::FoldedProfile folded = obs::parse_folded(a);
  std::uint64_t running[3] = {0, 0, 0};
  for (int w = 0; w < 3; ++w) {
    auto it = folded.find("sim.w" + std::to_string(w) +
                          ";running;phase.compute");
    ASSERT_NE(it, folded.end()) << "w" << w;
    running[w] = it->second;
  }
  // w2's compute phase is 3x w0's in virtual time: the sample counts
  // must reflect that ordering exactly (virtual clock, not noise).
  EXPECT_LT(running[0], running[1]);
  EXPECT_LT(running[1], running[2]);
}

// ------------------------------------------------------- contention

TEST(Profile, ContentionTopKRanksSkewedSitesHotFirst) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  // Two synthetic sites with deliberately skewed wait totals.
  for (int i = 0; i < 8; ++i) {
    PDC_CONTENTION_SITE("test.site.hot").record(1000);
  }
  PDC_CONTENTION_SITE("test.site.cold").record(10);

  const auto stats =
      obs::contention_topk(MetricsRegistry::instance().scrape(), 2);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].site, "test.site.hot");
  EXPECT_EQ(stats[0].count, 8u);
  EXPECT_EQ(stats[0].total_wait_us, 8000u);
  EXPECT_DOUBLE_EQ(stats[0].mean_us, 1000.0);
  EXPECT_EQ(stats[1].site, "test.site.cold");
  // Sites declared in this process resolve to their file:line.
  EXPECT_NE(stats[0].file.find("profile_test.cpp"), std::string::npos);
  EXPECT_GT(stats[0].line, 0);
  ASSERT_TRUE(obs::contention_site_location("test.site.hot").has_value());
  EXPECT_FALSE(obs::contention_site_location("test.site.never").has_value());

  const std::string json = obs::contention_json(stats);
  EXPECT_NE(json.find("\"site\":\"test.site.hot\""), std::string::npos);
  EXPECT_NE(json.find("\"total_wait_us\":8000"), std::string::npos);
}

// A real primitive feeding its site: a capacity-1 queue guarantees the
// producer's second push blocks until the consumer drains one.
TEST(Profile, BoundedQueueBlockFeedsContentionSite) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  MetricsRegistry::instance().reset();
  concurrency::BoundedQueue<int> queue(1);
  std::thread producer([&queue] {
    ASSERT_TRUE(queue.push(1).is_ok());
    ASSERT_TRUE(queue.push(2).is_ok());  // blocks until the pop below
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(queue.pop().is_ok());
  producer.join();
  const auto stats =
      obs::contention_topk(MetricsRegistry::instance().scrape(), 10);
  bool found = false;
  for (const auto& s : stats) {
    if (s.site == "queue.push") {
      found = true;
      EXPECT_GE(s.count, 1u);
    }
  }
  EXPECT_TRUE(found) << obs::contention_json(stats);
}

// ----------------------------------------------------------- stress

// Wall-clock sampler racing two live pools' slot publishes; under
// -DPDCKIT_SANITIZE=thread this is the profiling-plane race check.
TEST(Profile, SamplerRacingWorkersStress) {
  auto& prof = Profiler::instance();
  prof.reset();
  prof.start(/*period_us=*/200);
  {
    parallel::ThreadPool pool(2);
    parallel::WorkStealingPool stealers(2);
    std::atomic<int> count{0};
    // Keep both pools busy until the sampler has provably observed them
    // (a fixed task count can finish inside the first sampling period).
    int posted = 0;
    while (obs::kObsEnabled ? prof.samples() < 20 : posted < 2000) {
      for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(pool.post([&count] { count.fetch_add(1); }).is_ok());
        stealers.spawn([&count] { count.fetch_add(1); });
        posted += 2;
      }
      stealers.wait_idle();
    }
    pool.shutdown();
    EXPECT_EQ(count.load(), posted);
  }
  prof.stop();
  EXPECT_FALSE(prof.running());
  if (obs::kObsEnabled) {
    // The sampler saw the pool workers (named slots from both pools).
    EXPECT_GE(prof.samples(), 20u);
    const std::string folded = prof.folded();
    EXPECT_NE(folded.find("pool.w"), std::string::npos);
    EXPECT_NE(folded.find("steal.w"), std::string::npos);
  }
  prof.reset();
}

// -------------------------------------------------- endpoints (net)

TEST(Profile, TelemetryProfileEndpoints) {
  auto& prof = Profiler::instance();
  prof.reset();
  WorkerSlot* slot = prof.register_worker("ep.w0");
  Profiler::bind_current_thread(slot);
  if (obs::kObsEnabled) {
    slot->publish(WorkerState::kRunning, Profiler::kTaskLabel);
    prof.sample_once();
    MetricsRegistry::instance().reset();
    PDC_CONTENTION_SITE("test.ep.site").record(500);
  }

  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  const std::string folded = client.get("/profile/folded").value();
  const std::string contention =
      client.get("/profile/contention?n=5").value();
  const std::string window =
      client.get("/profile?ms=5&period_us=500").value();
  client.close();

  if (!obs::kObsEnabled) {
    // NOOP builds keep the endpoints but answer a clean error body.
    for (const std::string& body : {folded, contention, window}) {
      EXPECT_NE(body.find("\"error\""), std::string::npos);
      EXPECT_NE(body.find("PDCKIT_OBS_NOOP"), std::string::npos);
    }
  } else {
    EXPECT_NE(folded.find("ep.w0;running;task 1\n"), std::string::npos);
    EXPECT_NE(contention.find("\"site\":\"test.ep.site\""),
              std::string::npos);
    // The collect window saw the still-published running state without
    // touching the global accumulation.
    EXPECT_NE(window.find("ep.w0;running;task"), std::string::npos);
    EXPECT_EQ(prof.samples(), 1u);
  }
  Profiler::bind_current_thread(nullptr);
  prof.release_worker(slot);
  prof.reset();
}

TEST(Telemetry, SubscribeFilterRestrictsSeries) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  auto& registry = MetricsRegistry::instance();
  registry.reset();
  registry.counter("flt.keep.a").inc(3);
  registry.counter("flt.drop.b").inc(2);
  net::Network net(2, fast_net());
  obs::TelemetryServer server(net, 0, 9100);
  obs::TelemetryClient client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  std::vector<std::string> frames;
  ASSERT_TRUE(client
                  .subscribe(/*frames=*/1, /*interval_ms=*/0,
                             [&](const std::string& frame) {
                               frames.push_back(frame);
                             },
                             /*filter=*/"flt.keep.")
                  .is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_NE(frames[0].find("\"flt.keep.a\":3"), std::string::npos);
  EXPECT_EQ(frames[0].find("flt.drop.b"), std::string::npos);
  // Server self-metrics are filtered out too, not just app series.
  EXPECT_EQ(frames[0].find("pdc."), std::string::npos);
  client.close();
}

// ------------------------------------------------------- federation

TEST(Federation, TopKByValueAndRate) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::MetricsRegistry r0, r1;
  r0.counter("top.a").inc(10);
  r1.counter("top.a").inc(5);
  r0.counter("top.b").inc(3);
  net::Network net(4, fast_net());
  obs::TelemetryConfig c0, c1;
  c0.registry = &r0;
  c1.registry = &r1;
  obs::TelemetryServer s0(net, 0, 9100, c0);
  obs::TelemetryServer s1(net, 1, 9100, c1);
  obs::Aggregator aggregator(
      net, 2, 9200, {{s0.address(), "0"}, {s1.address(), "1"}});
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());

  // by=value ranks merged totals: the fleet-wide aggregate (15) first.
  const std::string by_value =
      client.get("/metrics/topk?n=2&by=value").value();
  EXPECT_NE(by_value.find("\"by\":\"value\""), std::string::npos);
  const auto aggregate_pos =
      by_value.find("{\"series\":\"top.a\",\"value\":15}");
  ASSERT_NE(aggregate_pos, std::string::npos) << by_value;
  EXPECT_EQ(by_value.find("top.b"), std::string::npos);  // truncated at 2

  // by=rate diffs against the previous by=rate call: the first call
  // reports totals, the second only the increase in between.
  (void)client.get("/metrics/topk?n=10&by=rate").value();
  r0.counter("top.a").inc(7);
  const std::string by_rate =
      client.get("/metrics/topk?n=10&by=rate").value();
  EXPECT_NE(by_rate.find("{\"series\":\"top.a\",\"value\":7}"),
            std::string::npos)
      << by_rate;
  EXPECT_EQ(by_rate.find("top.b"), std::string::npos);  // idle series

  EXPECT_NE(client.get("/metrics/topk?by=bogus").value().find("error"),
            std::string::npos);
  client.close();
}

TEST(Federation, HotAddAndRemoveTargets) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  obs::MetricsRegistry r0, r1;
  r0.counter("hot.a").inc(1);
  r1.counter("hot.b").inc(2);
  net::Network net(4, fast_net());
  obs::TelemetryConfig c0, c1;
  c0.registry = &r0;
  c1.registry = &r1;
  obs::TelemetryServer s0(net, 0, 9100, c0);
  obs::TelemetryServer s1(net, 1, 9100, c1);
  obs::Aggregator aggregator(net, 2, 9200, {{s0.address(), "0"}});
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());

  std::string body = client.get("/metrics.json").value();
  EXPECT_NE(body.find("hot.a"), std::string::npos);
  EXPECT_EQ(body.find("hot.b"), std::string::npos);

  // A mid-run added rank appears in the very next merged scrape.
  const std::string verb = "add-target " +
                           std::to_string(s1.address().host) + " " +
                           std::to_string(s1.address().port) + " 1";
  EXPECT_EQ(client.get(verb).value(), "ok\n");
  EXPECT_EQ(aggregator.target_count(), 2u);
  body = client.get("/metrics.json").value();
  EXPECT_NE(body.find("\"hot.b\":{\"\":2,\"rank=\\\"1\\\"\":2}"),
            std::string::npos)
      << body;

  // ... and a removed one disappears from the next scrape.
  EXPECT_EQ(client.get("remove-target 0").value(), "ok\n");
  body = client.get("/metrics.json").value();
  EXPECT_EQ(body.find("hot.a"), std::string::npos);
  EXPECT_NE(body.find("hot.b"), std::string::npos);
  EXPECT_NE(client.get("remove-target nope").value().find("error"),
            std::string::npos);
  EXPECT_NE(client.get("add-target oops").value().find("usage"),
            std::string::npos);
  client.close();
}

TEST(Federation, FoldedProfilesMergeRankStamped) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with PDCKIT_OBS_NOOP";
  auto& prof = Profiler::instance();
  prof.reset();
  WorkerSlot* slot = prof.register_worker("fed.w0");
  Profiler::bind_current_thread(slot);
  slot->publish(WorkerState::kRunning,
                prof.intern_label("fed.phase"));
  prof.sample_once();
  prof.sample_once();

  // Both "ranks" are this process, so each serves the same folded text;
  // the aggregator must stamp each copy with its source.
  net::Network net(4, fast_net());
  obs::TelemetryServer s0(net, 0, 9100);
  obs::TelemetryServer s1(net, 1, 9100);
  obs::Aggregator aggregator(
      net, 2, 9200, {{s0.address(), "0"}, {s1.address(), "1"}});
  obs::TelemetryClient client(net, 3);
  ASSERT_TRUE(client.connect(aggregator.address()).is_ok());
  const std::string merged = client.get("/profile/folded").value();
  EXPECT_NE(merged.find("rank=0;fed.w0;running;fed.phase 2\n"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("rank=1;fed.w0;running;fed.phase 2\n"),
            std::string::npos);
  client.close();
  Profiler::bind_current_thread(nullptr);
  prof.release_worker(slot);
  prof.reset();
}

}  // namespace
}  // namespace pdc
