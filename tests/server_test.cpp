// Event-driven server under open-loop load: LoadGen arrival curves,
// request conservation with an active FaultInjector (impair_streams maps
// drop/reorder decisions onto retransmit-penalty delays, so the stream
// service stays reliable), and fixed-seed determinism all the way through
// a telemetry scrape of the run's totals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/loadgen.hpp"
#include "net/network.hpp"
#include "net/server.hpp"
#include "obs/telemetry.hpp"
#include "testkit/fault_injector.hpp"

namespace {

using namespace pdc;
using namespace pdc::net;

NetConfig fast_net() {
  NetConfig config;
  config.latency_ms = 0.01;
  return config;
}

// ------------------------------------------------------------------ curves

TEST(LoadGenCurves, ScheduleIsSortedSizedAndInWindow) {
  for (const auto curve :
       {ArrivalCurve::kConstant, ArrivalCurve::kDiurnal, ArrivalCurve::kBurst,
        ArrivalCurve::kThunderingHerd}) {
    LoadGenConfig config;
    config.requests = 4000;
    config.duration_s = 2.0;
    config.curve = curve;
    const auto times = LoadGen::arrival_times(config);
    ASSERT_EQ(times.size(), config.requests);
    for (std::size_t i = 1; i < times.size(); ++i) {
      ASSERT_LE(times[i - 1], times[i]);
    }
    EXPECT_GE(times.front(), 0.0);
    EXPECT_LE(times.back(), config.duration_s);
  }
}

TEST(LoadGenCurves, ScheduleIsDeterministic) {
  LoadGenConfig config;
  config.requests = 1000;
  config.curve = ArrivalCurve::kDiurnal;
  EXPECT_EQ(LoadGen::arrival_times(config), LoadGen::arrival_times(config));
}

TEST(LoadGenCurves, ThunderingHerdConcentratesArrivals) {
  LoadGenConfig config;
  config.requests = 10000;
  config.duration_s = 1.0;
  config.curve = ArrivalCurve::kThunderingHerd;
  config.herds = 2;
  const auto times = LoadGen::arrival_times(config);
  // Nearly all arrivals should land within 1% of a herd center.
  std::size_t near = 0;
  for (const double t : times) {
    if (std::abs(t - 0.25) < 0.01 || std::abs(t - 0.75) < 0.01) ++near;
  }
  EXPECT_GT(near, times.size() * 9 / 10);
}

TEST(LoadGenCurves, BurstCurvePutsExtraMassInWindows) {
  LoadGenConfig config;
  config.requests = 10000;
  config.duration_s = 1.0;
  config.curve = ArrivalCurve::kBurst;
  config.bursts = 2;
  config.burst_height = 8.0;
  const auto times = LoadGen::arrival_times(config);
  // Each burst window is 5% of the run at 8x baseline: the two windows
  // (10% of wall time) should hold well over a third of the requests.
  std::size_t in_windows = 0;
  for (const double t : times) {
    if (std::abs(t - 0.25) < 0.025 || std::abs(t - 0.75) < 0.025) ++in_windows;
  }
  EXPECT_GT(in_windows, times.size() / 3);
}

// ------------------------------------------------- load against the server

struct RunTotals {
  LoadGenReport report;
  std::uint64_t served = 0;
  testkit::FaultStats faults;
};

/// One fixed-seed load run against an event-driven echo server on an
/// impaired network. Every probabilistic decision (payloads, fault stream)
/// derives from `seed`, so identical seeds must produce identical totals.
RunTotals run_impaired_load(std::uint64_t seed) {
  NetConfig net_config = fast_net();
  net_config.impair_streams = true;
  net_config.seed = seed;
  Network net(4, net_config);
  testkit::FaultConfig fault_config;
  fault_config.drop = 0.05;     // becomes a retransmit penalty, not loss
  fault_config.reorder = 0.05;  // becomes delay, not reordering
  fault_config.delay_ms = 0.02;
  fault_config.reorder_ms = 0.5;
  fault_config.seed = seed;
  auto injector = std::make_shared<testkit::FaultInjector>(fault_config);
  net.set_fault_injector(injector);

  ServerConfig server_config;
  server_config.model = ThreadingModel::kEventDriven;
  server_config.workers = 2;
  server_config.view_handler = [](BytesView request) {
    return request.to_owned();
  };
  Server server(net, 0, 80, nullptr, server_config);

  LoadGenConfig load;
  load.connections = 256;
  load.requests = 4000;
  load.duration_s = 0.25;
  load.curve = ArrivalCurve::kBurst;
  load.drivers = 2;
  load.first_client_host = 1;
  load.client_hosts = 3;
  load.seed = seed;
  LoadGen gen(net, server.address());
  RunTotals totals;
  totals.report = gen.run(load);
  server.stop();
  totals.served = server.requests_served();
  totals.faults = injector->stats();
  return totals;
}

// Satellite acceptance: faults delay but never destroy — every request
// sent is served and answered (conservation), nothing closes early.
TEST(ServerLoad, FaultsDelayButConserveRequests) {
  const RunTotals totals = run_impaired_load(0xfeed);
  EXPECT_EQ(totals.report.connect_failures, 0u);
  EXPECT_EQ(totals.report.closed_early, 0u);
  EXPECT_EQ(totals.report.sent, 4000u);
  EXPECT_EQ(totals.report.received, totals.report.sent);
  EXPECT_EQ(totals.served, totals.report.sent);
  // The injector really ran: both directions of every request consult it.
  EXPECT_EQ(totals.faults.messages, 2u * totals.report.sent);
  EXPECT_GT(totals.faults.dropped + totals.faults.reordered, 0u);
  EXPECT_GT(totals.report.p99_us, 0.0);
}

// Fixed seed => identical totals, all the way through a telemetry scrape:
// the run's counters rendered by a TelemetryServer (itself event-driven)
// must be byte-identical across runs.
TEST(ServerLoad, FixedSeedScrapeIsByteStable) {
  auto scrape = [](std::uint64_t seed) {
    const RunTotals totals = run_impaired_load(seed);
    // Deterministic registry: only the run's totals, no timing-dependent
    // series (latency quantiles are real-time and excluded by design).
    obs::MetricsRegistry registry;
    registry.counter("storm.sent").inc(totals.report.sent);
    registry.counter("storm.received").inc(totals.report.received);
    registry.counter("storm.served").inc(totals.served);
    registry.counter("storm.faults.messages").inc(totals.faults.messages);
    registry.counter("storm.faults.dropped").inc(totals.faults.dropped);
    registry.counter("storm.faults.reordered").inc(totals.faults.reordered);
    Network net(2, fast_net());
    obs::TelemetryConfig config;
    config.model = ThreadingModel::kEventDriven;
    config.registry = &registry;
    obs::TelemetryServer server(net, 0, 9100, config);
    obs::TelemetryClient client(net, 1);
    EXPECT_TRUE(client.connect(server.address()).is_ok());
    const std::string body = client.get("/metrics").value();
    client.close();
    server.stop();
    return body;
  };
  const std::string a = scrape(0x5eed);
  const std::string b = scrape(0x5eed);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("storm_sent 4000"), std::string::npos);
}

// Raw handler on the event loop: returning true suppresses the reply (the
// handler owns the socket's response schedule).
TEST(ServerLoad, EventDrivenRawHandlerCanSuppressReplies) {
  Network net(2, fast_net());
  ServerConfig config;
  config.model = ThreadingModel::kEventDriven;
  config.raw_handler = [](const Bytes&, StreamSocket& socket) {
    (void)MessageCodec::send_message(socket, to_bytes("raw"));
    return true;
  };
  Server server(net, 0, 80, [](const Bytes& b) { return b; }, config);
  Client client(net, 1);
  ASSERT_TRUE(client.connect(server.address()).is_ok());
  auto reply = client.call_text("ignored");
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value(), "raw");
  client.close();
  server.stop();
}

}  // namespace
