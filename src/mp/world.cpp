#include "mp/world.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace pdc::mp {

World::World(int size) : size_(size) {
  PDC_CHECK_MSG(size >= 1, "world size must be at least 1");
}

void World::run(const std::function<void(Communicator&)>& fn) {
  auto fabric = std::make_shared<detail::Fabric>(size_);
  std::vector<int> members(static_cast<std::size_t>(size_));
  std::iota(members.begin(), members.end(), 0);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    ranks.emplace_back([&, r] {
      Communicator comm(fabric, members, r, /*user_context=*/0);
      try {
        fn(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : ranks) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pdc::mp
