#include "mp/world.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "testkit/fault_injector.hpp"

namespace pdc::mp {

namespace {
std::shared_ptr<detail::Fabric> make_fabric(
    int size, std::shared_ptr<testkit::FaultInjector> injector) {
  auto fabric = std::make_shared<detail::Fabric>(size);
  fabric->injector = std::move(injector);
  return fabric;
}
}  // namespace

World::World(int size) : size_(size) {
  PDC_CHECK_MSG(size >= 1, "world size must be at least 1");
}

void World::set_fault_injector(
    std::shared_ptr<testkit::FaultInjector> injector) {
  injector_ = std::move(injector);
}

void World::run(const std::function<void(Communicator&)>& fn) {
  auto fabric = make_fabric(size_, injector_);
  std::vector<int> members(static_cast<std::size_t>(size_));
  std::iota(members.begin(), members.end(), 0);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    ranks.emplace_back([&, r] {
      Communicator comm(fabric, members, r, /*user_context=*/0);
      try {
        fn(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : ranks) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<std::function<void()>> World::rank_bodies(
    std::function<void(Communicator&)> fn) {
  auto fabric = make_fabric(size_, injector_);
  auto members = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(size_));
  std::iota(members->begin(), members->end(), 0);
  auto shared_fn =
      std::make_shared<std::function<void(Communicator&)>>(std::move(fn));

  std::vector<std::function<void()>> bodies;
  bodies.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    bodies.push_back([fabric, members, shared_fn, r] {
      Communicator comm(fabric, *members, r, /*user_context=*/0);
      (*shared_fn)(comm);
    });
  }
  return bodies;
}

}  // namespace pdc::mp
