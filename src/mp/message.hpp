// Message envelope and payload types for the message-passing runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"

namespace pdc::mp {

/// Wildcard source rank for receives (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

using Payload = std::vector<std::byte>;

/// Envelope carried with every payload. `context` isolates communicators
/// and separates collective traffic from user point-to-point traffic.
/// `trace` piggybacks the sender's causal metadata (span id + Lamport
/// time) so an obs::TraceCollector can stitch send→recv across ranks;
/// it is all-zero (and free) when no collector is running.
struct Envelope {
  std::uint32_t context = 0;
  int source = 0;
  int tag = 0;
  obs::WireTrace trace;
};

/// Delivered message: envelope + payload bytes.
struct Message {
  Envelope envelope;
  Payload payload;
};

/// Receive completion information (MPI_Status analogue).
struct RecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;

  /// Element count given the receive's element type.
  template <typename T>
  [[nodiscard]] std::size_t count() const {
    return bytes / sizeof(T);
  }
};

}  // namespace pdc::mp
