#include "mp/comm.hpp"

#include <algorithm>
#include <chrono>

#include "obs/obs.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/hooks.hpp"

namespace pdc::mp {

namespace detail {

void Fabric::deliver(std::size_t box, Message message, int src) {
  // Collective/internal contexts (odd) and un-instrumented fabrics take
  // the direct path.
  if (!injector || message.envelope.context % 2 != 0) {
    boxes[box]->deliver(std::move(message));
    return;
  }
  const testkit::FaultDecision decision =
      injector->next(src, static_cast<int>(box));
  if (decision.drop) PDC_OBS_COUNT("pdc.mp.dropped");
  if (decision.copies > 1) PDC_OBS_COUNT("pdc.mp.duplicated");
  if (decision.reordered) PDC_OBS_COUNT("pdc.mp.reordered");
  std::vector<HeldMessage> due;
  {
    std::scoped_lock lock(held_mutex_);
    // Age previously held (reordered) messages first so the current one
    // cannot release itself.
    for (auto it = held_.begin(); it != held_.end();) {
      if (--it->remaining <= 0) {
        due.push_back(std::move(*it));
        it = held_.erase(it);
      } else {
        ++it;
      }
    }
    if (!decision.drop && decision.reordered) {
      held_.push_back(HeldMessage{box, std::move(message),
                                  injector->config().reorder_after});
    }
  }
  if (!decision.drop && !decision.reordered) {
    for (std::size_t copy = 1; copy < decision.copies; ++copy) {
      boxes[box]->deliver(message);  // duplicate: deliver a copy first
    }
    boxes[box]->deliver(std::move(message));
  }
  for (auto& held : due) {
    boxes[held.box]->deliver(std::move(held.message));
  }
}

}  // namespace detail

double Communicator::wtime() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Communicator::barrier() {
  const int p = size();
  char token = 0;
  int round = 0;
  // Dissemination: in round k each rank signals rank+2^k and waits for
  // rank-2^k; after ceil(log2 p) rounds every rank transitively heard from
  // every other.
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    coll_send(&token, 1, (rank_ + dist) % p, kTagBarrier + round);
    coll_recv(&token, 1, (rank_ - dist + p) % p, kTagBarrier + round);
  }
}

Communicator Communicator::split(int color, int key) {
  const int p = size();
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  // Gather everyone's (color, key) at rank 0.
  std::vector<Entry> entries(static_cast<std::size_t>(p));
  const Entry mine{color, key, rank_};
  gather(&mine, entries.data(), 1, 0);

  // Assignment message sent back to each rank: its new context, its new
  // rank, the group size, followed by the group's world ranks.
  std::vector<std::int64_t> assignment;
  if (rank_ == 0) {
    // Group entries by color, order each group by (key, old_rank).
    std::vector<Entry> sorted = entries;
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      if (a.color != b.color) return a.color < b.color;
      if (a.key != b.key) return a.key < b.key;
      return a.old_rank < b.old_rank;
    });
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j < sorted.size() && sorted[j].color == sorted[i].color) ++j;
      const auto group_context = fabric_->next_context.fetch_add(2);
      // Member list in new-rank order, as world ranks.
      std::vector<std::int64_t> world_ranks;
      for (std::size_t k = i; k < j; ++k) {
        world_ranks.push_back(members_[static_cast<std::size_t>(sorted[k].old_rank)]);
      }
      for (std::size_t k = i; k < j; ++k) {
        std::vector<std::int64_t> message;
        message.push_back(group_context);
        message.push_back(static_cast<std::int64_t>(k - i));  // new rank
        message.push_back(static_cast<std::int64_t>(world_ranks.size()));
        message.insert(message.end(), world_ranks.begin(), world_ranks.end());
        if (sorted[k].old_rank == 0) {
          assignment = message;
        } else {
          coll_send(message.data(), message.size(), sorted[k].old_rank,
                    kTagSplit);
        }
      }
      i = j;
    }
  } else {
    const RecvInfo info = [&] {
      Message m = mailbox().match(user_context_ + 1, 0, kTagSplit);
      assignment.resize(m.payload.size() / sizeof(std::int64_t));
      return unpack(m, assignment.data(), assignment.size());
    }();
    (void)info;
  }

  PDC_CHECK(assignment.size() >= 3);
  const auto new_context = static_cast<std::uint32_t>(assignment[0]);
  const int new_rank = static_cast<int>(assignment[1]);
  const auto group_size = static_cast<std::size_t>(assignment[2]);
  PDC_CHECK(assignment.size() == 3 + group_size);
  std::vector<int> new_members(group_size);
  for (std::size_t k = 0; k < group_size; ++k) {
    new_members[k] = static_cast<int>(assignment[3 + k]);
  }
  return Communicator(fabric_, std::move(new_members), new_rank, new_context);
}

}  // namespace pdc::mp
