// World: launches an SPMD program over N ranks (threads) and joins them.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mp/comm.hpp"

namespace pdc::testkit {
class FaultInjector;
}  // namespace pdc::testkit

namespace pdc::mp {

/// An SPMD launcher. `World(4).run(program)` starts four ranks executing
/// `program(comm)` concurrently and returns when all have finished — the
/// mpirun of the in-process runtime. A fresh delivery fabric is created per
/// run, so consecutive runs cannot leak messages into each other.
class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  /// Attaches a fault injector to all subsequent runs. Point-to-point
  /// traffic on user contexts is then dropped/duplicated/reordered per the
  /// injector's seeded decision stream; collective (internal) contexts stay
  /// reliable. Pass nullptr to detach.
  void set_fault_injector(std::shared_ptr<testkit::FaultInjector> injector);

  /// Runs one SPMD program. The first exception thrown by any rank is
  /// rethrown here after every rank has been joined.
  void run(const std::function<void(Communicator&)>& fn);

  /// Builds one closure per rank over a fresh fabric, without spawning
  /// threads. This is the seam for testkit::SimScheduler: hand the bodies
  /// to the scheduler and the SPMD program runs under a deterministic,
  /// seed-controlled interleaving instead of free-running OS threads.
  /// Exceptions propagate out of each body unchanged.
  [[nodiscard]] std::vector<std::function<void()>> rank_bodies(
      std::function<void(Communicator&)> fn);

 private:
  int size_;
  std::shared_ptr<testkit::FaultInjector> injector_;
};

}  // namespace pdc::mp
