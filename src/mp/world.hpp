// World: launches an SPMD program over N ranks (threads) and joins them.
#pragma once

#include <functional>

#include "mp/comm.hpp"

namespace pdc::mp {

/// An SPMD launcher. `World(4).run(program)` starts four ranks executing
/// `program(comm)` concurrently and returns when all have finished — the
/// mpirun of the in-process runtime. A fresh delivery fabric is created per
/// run, so consecutive runs cannot leak messages into each other.
class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  /// Runs one SPMD program. The first exception thrown by any rank is
  /// rethrown here after every rank has been joined.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  int size_;
};

}  // namespace pdc::mp
