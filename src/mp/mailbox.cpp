#include "mp/mailbox.hpp"

#include "testkit/hooks.hpp"

namespace pdc::mp {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool matches(const Envelope& envelope, std::uint32_t context, int source,
             int tag) {
  return envelope.context == context &&
         (source == kAnySource || envelope.source == source) &&
         (tag == kAnyTag || envelope.tag == tag);
}
}  // namespace

void Mailbox::deliver(Message message) {
  std::scoped_lock lock(mutex_);
  queue_.push_back(std::move(message));
  // Notify under the lock: the unlock-then-notify variant races with a
  // matcher that drains the queue and destroys the mailbox (see
  // concurrency/bounded_queue.hpp), and testkit's scheduler needs the
  // notification ordered with the state change.
  testkit::notify_all(arrived_);
}

std::size_t Mailbox::find_locked(std::uint32_t context, int source,
                                 int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i].envelope, context, source, tag)) return i;
  }
  return kNpos;
}

Message Mailbox::match(std::uint32_t context, int source, int tag) {
  testkit::yield_point("mailbox.match");
  std::unique_lock lock(mutex_);
  std::size_t idx;
  testkit::wait(lock, arrived_,
                [&] {
                  idx = find_locked(context, source, tag);
                  return idx != kNpos;
                },
                "mailbox.match.wait");
  Message message = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return message;
}

std::optional<Message> Mailbox::try_match(std::uint32_t context, int source,
                                          int tag) {
  testkit::yield_point("mailbox.try_match");
  std::scoped_lock lock(mutex_);
  const std::size_t idx = find_locked(context, source, tag);
  if (idx == kNpos) return std::nullopt;
  Message message = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return message;
}

RecvInfo Mailbox::probe(std::uint32_t context, int source, int tag) {
  testkit::yield_point("mailbox.probe");
  std::unique_lock lock(mutex_);
  std::size_t idx;
  testkit::wait(lock, arrived_,
                [&] {
                  idx = find_locked(context, source, tag);
                  return idx != kNpos;
                },
                "mailbox.probe.wait");
  const Message& message = queue_[idx];
  return RecvInfo{message.envelope.source, message.envelope.tag,
                  message.payload.size()};
}

std::optional<RecvInfo> Mailbox::try_probe(std::uint32_t context, int source,
                                           int tag) {
  testkit::yield_point("mailbox.try_probe");
  std::scoped_lock lock(mutex_);
  const std::size_t idx = find_locked(context, source, tag);
  if (idx == kNpos) return std::nullopt;
  const Message& message = queue_[idx];
  return RecvInfo{message.envelope.source, message.envelope.tag,
                  message.payload.size()};
}

std::size_t Mailbox::pending() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

}  // namespace pdc::mp
