// Communicator: MPI-flavoured message passing between ranks.
//
// The programming model is distributed-memory regardless of the physical
// substrate (the LLNL MPI tutorial's framing): ranks here are threads, and
// all sharing happens through explicit messages. Sends are eager/buffered —
// the payload is copied into the destination mailbox immediately, so a send
// never blocks (MPI buffered-mode semantics; the classic head-to-head
// blocking-send deadlock therefore cannot occur, which is documented
// behaviour, not an accident).
//
// Collectives are implemented on top of point-to-point with the textbook
// algorithms: dissemination barrier, binomial-tree broadcast and reduce,
// ring allgather, pairwise alltoall, Hillis–Steele scan, and a
// bandwidth-optimal ring allreduce alongside the tree reduce+bcast variant
// (compared in bench/perf_collectives).
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pdc::testkit {
class FaultInjector;
}  // namespace pdc::testkit

namespace pdc::mp {

namespace detail {

/// Shared delivery fabric: one mailbox per world rank plus a context
/// allocator for derived communicators.
///
/// When a testkit::FaultInjector is attached (World::set_fault_injector),
/// every USER-context message (even contexts) consults it on delivery and
/// may be dropped, duplicated, or held back past later traffic. Collective
/// and internal contexts (odd) are never impaired — collectives assume a
/// reliable transport, and the lessons inject faults only where protocols
/// are supposed to tolerate them.
struct Fabric {
  explicit Fabric(int size) {
    boxes.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) boxes.push_back(std::make_unique<Mailbox>());
  }

  /// Delivery entry point used by Communicator; applies fault injection.
  /// `src` is the sender's world rank so the injector can apply per-link
  /// faults (network partitions). Defined in comm.cpp (needs the
  /// FaultInjector definition).
  void deliver(std::size_t box, Message message, int src);

  std::vector<std::unique_ptr<Mailbox>> boxes;
  std::atomic<std::uint32_t> next_context{2};  // 0/1 belong to the world comm

  std::shared_ptr<testkit::FaultInjector> injector;  // may be null

 private:
  struct HeldMessage {  // reordered: released after `remaining` deliveries
    std::size_t box;
    Message message;
    int remaining;
  };
  std::mutex held_mutex_;
  std::deque<HeldMessage> held_;
};

}  // namespace detail

/// Handle for a nonblocking operation (MPI_Request analogue).
class Request {
 public:
  Request() = default;

  /// True when complete; a completed irecv has filled its buffer.
  bool test() {
    if (!state_) return true;
    if (state_->done) return true;
    if (auto info = state_->try_complete()) {
      state_->info = *info;
      state_->done = true;
    }
    return state_->done;
  }

  /// Blocks until complete; returns the receive info (zeroed for sends).
  RecvInfo wait() {
    if (!state_) return {};
    if (!state_->done) {
      state_->info = state_->block();
      state_->done = true;
    }
    return state_->info;
  }

 private:
  friend class Communicator;
  struct State {
    std::function<std::optional<RecvInfo>()> try_complete;
    std::function<RecvInfo()> block;
    bool done = false;
    RecvInfo info;
  };
  std::shared_ptr<State> state_;
};

class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  /// Monotonic wall time in seconds (MPI_Wtime analogue).
  static double wtime();

  // ------------------------------------------------------------------ p2p

  /// Copies `count` elements to `dest`'s mailbox. Never blocks.
  template <typename T>
  void send(const T* data, std::size_t count, int dest, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_peer(dest);
    PDC_CHECK_MSG(tag >= 0, "negative tags are reserved for wildcards");
    Payload payload(count * sizeof(T));
    std::memcpy(payload.data(), data, payload.size());
    deliver(dest, user_context_, tag, std::move(payload));
  }

  template <typename T>
  void send_value(const T& value, int dest, int tag = 0) {
    send(&value, 1, dest, tag);
  }

  template <typename T>
  void send_vector(const std::vector<T>& values, int dest, int tag = 0) {
    send(values.data(), values.size(), dest, tag);
  }

  /// Blocks until a matching message arrives; fills up to `capacity`
  /// elements. The sent count must not exceed `capacity`.
  template <typename T>
  RecvInfo recv(T* data, std::size_t capacity, int source = kAnySource,
                int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message message = mailbox().match(user_context_, source, tag);
    return unpack(message, data, capacity);
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    T value{};
    recv(&value, 1, source, tag);
    return value;
  }

  /// Receives a whole message as a vector, sized from the actual payload.
  template <typename T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag) {
    Message message = mailbox().match(user_context_, source, tag);
    PDC_CHECK(message.payload.size() % sizeof(T) == 0);
    std::vector<T> values(message.payload.size() / sizeof(T));
    std::memcpy(values.data(), message.payload.data(), message.payload.size());
    PDC_OBS_COUNT("pdc.mp.received");
    if (rank_received_ != nullptr) rank_received_->inc();
    obs::wire_accept(message.envelope.trace, "mp.recv",
                     static_cast<std::uint64_t>(message.envelope.source),
                     message.payload.size());
    return values;
  }

  /// Blocks until a matching message is available without consuming it.
  RecvInfo probe(int source = kAnySource, int tag = kAnyTag) {
    return mailbox().probe(user_context_, source, tag);
  }

  /// Non-blocking probe: envelope of the first matching queued message.
  std::optional<RecvInfo> iprobe(int source = kAnySource, int tag = kAnyTag) {
    return mailbox().try_probe(user_context_, source, tag);
  }

  /// Nonblocking send: with eager delivery this completes immediately; the
  /// Request is provided for source-compatibility with the MPI idiom.
  template <typename T>
  Request isend(const T* data, std::size_t count, int dest, int tag = 0) {
    send(data, count, dest, tag);
    return Request{};
  }

  /// Nonblocking receive into caller-owned storage, completed by
  /// test()/wait(). The buffer must outlive the request.
  template <typename T>
  Request irecv(T* data, std::size_t capacity, int source = kAnySource,
                int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Request request;
    request.state_ = std::make_shared<Request::State>();
    request.state_->try_complete = [this, data, capacity, source, tag]()
        -> std::optional<RecvInfo> {
      auto message = mailbox().try_match(user_context_, source, tag);
      if (!message) return std::nullopt;
      return unpack(*message, data, capacity);
    };
    request.state_->block = [this, data, capacity, source, tag] {
      Message message = mailbox().match(user_context_, source, tag);
      return unpack(message, data, capacity);
    };
    return request;
  }

  /// Combined send+receive (MPI_Sendrecv): safe in rings because the send
  /// is eager.
  template <typename T>
  RecvInfo sendrecv(const T* send_data, std::size_t send_count, int dest,
                    int send_tag, T* recv_data, std::size_t recv_capacity,
                    int source, int recv_tag) {
    send(send_data, send_count, dest, send_tag);
    return recv(recv_data, recv_capacity, source, recv_tag);
  }

  // ---------------------------------------------------------- collectives
  // All ranks of the communicator must call each collective in the same
  // order (standard MPI contract).

  /// Dissemination barrier: ceil(log2 p) rounds, no root bottleneck.
  void barrier();

  /// Binomial-tree broadcast from `root`.
  template <typename T>
  void broadcast(T* data, std::size_t count, int root) {
    const int p = size();
    if (p == 1) return;
    const int r = relative(root);
    int mask = 1;
    while (mask < p) {
      if (r & mask) {
        coll_recv(data, count, absolute((r - mask), root), kTagBcast);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (r + mask < p) {
        coll_send(data, count, absolute(r + mask, root), kTagBcast);
      }
      mask >>= 1;
    }
  }

  /// Binomial-tree reduction to `root`. `op` must be associative and
  /// commutative (element-wise over `count` elements).
  template <typename T, typename Op>
  void reduce(const T* input, T* output, std::size_t count, Op op, int root) {
    const int p = size();
    std::vector<T> acc(input, input + count);
    std::vector<T> incoming(count);
    const int r = relative(root);
    int mask = 1;
    while (mask < p) {
      if (r & mask) {
        coll_send(acc.data(), count, absolute(r - mask, root), kTagReduce);
        break;
      }
      if (r + mask < p) {
        coll_recv(incoming.data(), count, absolute(r + mask, root), kTagReduce);
        for (std::size_t i = 0; i < count; ++i) acc[i] = op(acc[i], incoming[i]);
      }
      mask <<= 1;
    }
    if (rank_ == root) std::copy(acc.begin(), acc.end(), output);
  }

  /// Tree allreduce: reduce to rank 0 then broadcast. Latency-optimal for
  /// small messages.
  template <typename T, typename Op>
  void allreduce(const T* input, T* output, std::size_t count, Op op) {
    reduce(input, output, count, op, 0);
    broadcast(output, count, 0);
  }

  /// Ring allreduce (reduce-scatter + allgather): bandwidth-optimal for
  /// large messages — each rank moves 2(p-1)/p of the data instead of
  /// log2(p) full copies.
  template <typename T, typename Op>
  void allreduce_ring(const T* input, T* output, std::size_t count, Op op) {
    const int p = size();
    std::copy(input, input + count, output);
    if (p == 1) return;
    // Block b covers [offsets[b], offsets[b+1]).
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int b = 0; b < p; ++b) {
      offsets[static_cast<std::size_t>(b) + 1] =
          offsets[static_cast<std::size_t>(b)] +
          count / static_cast<std::size_t>(p) +
          (static_cast<std::size_t>(b) < count % static_cast<std::size_t>(p) ? 1 : 0);
    }
    auto block_len = [&](int b) {
      return offsets[static_cast<std::size_t>(b) + 1] - offsets[static_cast<std::size_t>(b)];
    };
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    std::vector<T> incoming(count);
    // Phase 1: reduce-scatter. After p-1 steps rank r owns block (r+1)%p.
    for (int step = 0; step < p - 1; ++step) {
      const int send_block = (rank_ - step + 2 * p) % p;
      const int recv_block = (rank_ - step - 1 + 2 * p) % p;
      coll_send(output + offsets[static_cast<std::size_t>(send_block)],
                block_len(send_block), right, kTagRingReduce);
      coll_recv(incoming.data(), block_len(recv_block), left, kTagRingReduce);
      T* dst = output + offsets[static_cast<std::size_t>(recv_block)];
      for (std::size_t i = 0; i < block_len(recv_block); ++i) {
        dst[i] = op(dst[i], incoming[i]);
      }
    }
    // Phase 2: allgather of the finished blocks.
    for (int step = 0; step < p - 1; ++step) {
      const int send_block = (rank_ + 1 - step + 2 * p) % p;
      const int recv_block = (rank_ - step + 2 * p) % p;
      coll_send(output + offsets[static_cast<std::size_t>(send_block)],
                block_len(send_block), right, kTagRingGather);
      coll_recv(output + offsets[static_cast<std::size_t>(recv_block)],
                block_len(recv_block), left, kTagRingGather);
    }
  }

  /// Root sends `count_per` elements to each rank (linear).
  template <typename T>
  void scatter(const T* send_data, T* recv_data, std::size_t count_per,
               int root) {
    if (rank_ == root) {
      for (int dest = 0; dest < size(); ++dest) {
        const T* block = send_data + static_cast<std::size_t>(dest) * count_per;
        if (dest == root) {
          std::copy(block, block + count_per, recv_data);
        } else {
          coll_send(block, count_per, dest, kTagScatter);
        }
      }
    } else {
      coll_recv(recv_data, count_per, root, kTagScatter);
    }
  }

  /// Each rank sends `count_per` elements to root (linear).
  template <typename T>
  void gather(const T* send_data, T* recv_data, std::size_t count_per,
              int root) {
    if (rank_ == root) {
      for (int src = 0; src < size(); ++src) {
        T* block = recv_data + static_cast<std::size_t>(src) * count_per;
        if (src == root) {
          std::copy(send_data, send_data + count_per, block);
        } else {
          coll_recv(block, count_per, src, kTagGather);
        }
      }
    } else {
      coll_send(send_data, count_per, root, kTagGather);
    }
  }

  /// Variable-count gather (MPI_Gatherv): rank r contributes `send_count`
  /// elements; at root, `recv_counts[r]` gives each contribution's length
  /// and blocks are placed contiguously in rank order.
  template <typename T>
  void gatherv(const T* send_data, std::size_t send_count, T* recv_data,
               const std::vector<std::size_t>& recv_counts, int root) {
    if (rank_ == root) {
      PDC_CHECK(recv_counts.size() == static_cast<std::size_t>(size()));
      PDC_CHECK(recv_counts[static_cast<std::size_t>(root)] == send_count);
      std::size_t offset = 0;
      for (int src = 0; src < size(); ++src) {
        const std::size_t count = recv_counts[static_cast<std::size_t>(src)];
        if (src == root) {
          std::copy(send_data, send_data + count, recv_data + offset);
        } else {
          coll_recv(recv_data + offset, count, src, kTagGatherv);
        }
        offset += count;
      }
    } else {
      coll_send(send_data, send_count, root, kTagGatherv);
    }
  }

  /// Variable-count scatter (MPI_Scatterv): root sends `send_counts[r]`
  /// elements to rank r from contiguous rank-ordered blocks; each rank's
  /// `recv_count` must equal its slice length.
  template <typename T>
  void scatterv(const T* send_data, const std::vector<std::size_t>& send_counts,
                T* recv_data, std::size_t recv_count, int root) {
    if (rank_ == root) {
      PDC_CHECK(send_counts.size() == static_cast<std::size_t>(size()));
      std::size_t offset = 0;
      for (int dest = 0; dest < size(); ++dest) {
        const std::size_t count = send_counts[static_cast<std::size_t>(dest)];
        if (dest == root) {
          PDC_CHECK(count == recv_count);
          std::copy(send_data + offset, send_data + offset + count, recv_data);
        } else {
          coll_send(send_data + offset, count, dest, kTagScatterv);
        }
        offset += count;
      }
    } else {
      coll_recv(recv_data, recv_count, root, kTagScatterv);
    }
  }

  /// Ring allgather: p-1 steps, each forwarding the block received last.
  template <typename T>
  void allgather(const T* send_data, T* recv_data, std::size_t count_per) {
    const int p = size();
    std::copy(send_data, send_data + count_per,
              recv_data + static_cast<std::size_t>(rank_) * count_per);
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const int send_block = (rank_ - step + 2 * p) % p;
      const int recv_block = (rank_ - step - 1 + 2 * p) % p;
      coll_send(recv_data + static_cast<std::size_t>(send_block) * count_per,
                count_per, right, kTagAllgather);
      coll_recv(recv_data + static_cast<std::size_t>(recv_block) * count_per,
                count_per, left, kTagAllgather);
    }
  }

  /// Pairwise-exchange alltoall: rank r sends block d to rank d.
  template <typename T>
  void alltoall(const T* send_data, T* recv_data, std::size_t count_per) {
    const int p = size();
    std::copy(send_data + static_cast<std::size_t>(rank_) * count_per,
              send_data + static_cast<std::size_t>(rank_ + 1) * count_per,
              recv_data + static_cast<std::size_t>(rank_) * count_per);
    for (int offset = 1; offset < p; ++offset) {
      const int dest = (rank_ + offset) % p;
      const int src = (rank_ - offset + p) % p;
      coll_send(send_data + static_cast<std::size_t>(dest) * count_per,
                count_per, dest, kTagAlltoall);
      coll_recv(recv_data + static_cast<std::size_t>(src) * count_per,
                count_per, src, kTagAlltoall);
    }
  }

  /// Inclusive scan (Hillis–Steele): output = op-fold of ranks 0..rank.
  /// `op` must be associative; applied as op(lower_ranks, mine).
  template <typename T, typename Op>
  void scan(const T* input, T* output, std::size_t count, Op op) {
    const int p = size();
    std::copy(input, input + count, output);
    std::vector<T> incoming(count);
    for (int d = 1; d < p; d <<= 1) {
      // Send the running prefix up; fold the one from below on top.
      if (rank_ + d < p) coll_send(output, count, rank_ + d, kTagScan + d);
      if (rank_ - d >= 0) {
        coll_recv(incoming.data(), count, rank_ - d, kTagScan + d);
        for (std::size_t i = 0; i < count; ++i) {
          output[i] = op(incoming[i], output[i]);
        }
      }
    }
  }

  /// Collective split (MPI_Comm_split): ranks with equal `color` form a new
  /// communicator, ordered by (key, old rank). Every rank must call it.
  Communicator split(int color, int key);

 private:
  friend class World;

  Communicator(std::shared_ptr<detail::Fabric> fabric, std::vector<int> members,
               int rank, std::uint32_t user_context)
      : fabric_(std::move(fabric)), members_(std::move(members)), rank_(rank),
        user_context_(user_context) {
    if constexpr (obs::kObsEnabled) {
      // Per-rank labeled series next to the flat pdc.mp.* aggregates, so a
      // federated scrape can attribute traffic per world rank even when
      // every rank shares the process-wide registry. Cached here — the
      // PDC_OBS_* macros' function-local statics cannot hold a per-rank
      // label — and interned for the process lifetime, so the pointers
      // stay valid across communicator copies and splits.
      const std::string r = std::to_string(world_rank());
      auto& registry = obs::MetricsRegistry::instance();
      rank_sent_ = &registry.counter("pdc.mp.rank_sent", {{"rank", r}});
      rank_received_ = &registry.counter("pdc.mp.rank_received", {{"rank", r}});
    }
  }

  // Internal collective tags; the collective context keeps them disjoint
  // from user traffic.
  static constexpr int kTagBcast = 1;
  static constexpr int kTagReduce = 2;
  static constexpr int kTagScatter = 3;
  static constexpr int kTagGather = 4;
  static constexpr int kTagAllgather = 5;
  static constexpr int kTagAlltoall = 6;
  static constexpr int kTagRingReduce = 7;
  static constexpr int kTagRingGather = 8;
  static constexpr int kTagGatherv = 9;
  static constexpr int kTagScatterv = 10;
  static constexpr int kTagBarrier = 64;   // + round index
  static constexpr int kTagScan = 128;     // + distance
  static constexpr int kTagSplit = 256;

  void check_peer(int peer) const {
    PDC_CHECK_MSG(peer >= 0 && peer < size(), "peer rank out of range");
  }

  Mailbox& mailbox() { return *fabric_->boxes[static_cast<std::size_t>(members_[static_cast<std::size_t>(rank_)])]; }

  void deliver(int dest, std::uint32_t context, int tag, Payload payload) {
    PDC_OBS_COUNT("pdc.mp.sent");
    PDC_OBS_COUNT("pdc.mp.sent_bytes", payload.size());
    if (rank_sent_ != nullptr) rank_sent_->inc();
    Message message{Envelope{context, rank_, tag, {}}, std::move(payload)};
    // Captured on the sending thread so the flow arrow starts inside the
    // sender's current span, not wherever the fabric delivers from.
    message.envelope.trace =
        obs::wire_capture("mp.send", static_cast<std::uint64_t>(dest),
                          message.payload.size());
    fabric_->deliver(
        static_cast<std::size_t>(members_[static_cast<std::size_t>(dest)]),
        std::move(message), world_rank());
  }

  template <typename T>
  void coll_send(const T* data, std::size_t count, int dest, int tag) {
    Payload payload(count * sizeof(T));
    std::memcpy(payload.data(), data, payload.size());
    deliver(dest, user_context_ + 1, tag, std::move(payload));
  }

  template <typename T>
  void coll_recv(T* data, std::size_t capacity, int source, int tag) {
    Message message = mailbox().match(user_context_ + 1, source, tag);
    unpack(message, data, capacity);
  }

  template <typename T>
  RecvInfo unpack(const Message& message, T* data, std::size_t capacity) {
    PDC_CHECK_MSG(message.payload.size() % sizeof(T) == 0,
                  "payload size not a multiple of the element size");
    PDC_CHECK_MSG(message.payload.size() <= capacity * sizeof(T),
                  "message larger than the receive buffer");
    std::memcpy(data, message.payload.data(), message.payload.size());
    PDC_OBS_COUNT("pdc.mp.received");
    if (rank_received_ != nullptr) rank_received_->inc();
    obs::wire_accept(message.envelope.trace, "mp.recv",
                     static_cast<std::uint64_t>(message.envelope.source),
                     message.payload.size());
    return RecvInfo{message.envelope.source, message.envelope.tag,
                    message.payload.size()};
  }

  /// Rank relative to `root` (tree algorithms are written root-at-zero).
  [[nodiscard]] int relative(int root) const {
    return (rank_ - root + size()) % size();
  }
  [[nodiscard]] int absolute(int rel, int root) const {
    return (rel + root) % size();
  }

  [[nodiscard]] int world_rank() const {
    return members_[static_cast<std::size_t>(rank_)];
  }

  std::shared_ptr<detail::Fabric> fabric_;
  std::vector<int> members_;  // world rank of each communicator rank
  int rank_;                  // my rank within this communicator
  std::uint32_t user_context_;
  obs::Counter* rank_sent_ = nullptr;      // pdc.mp.rank_sent{rank=...}
  obs::Counter* rank_received_ = nullptr;  // pdc.mp.rank_received{rank=...}
};

}  // namespace pdc::mp
