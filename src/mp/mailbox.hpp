// Per-rank mailbox: the delivery substrate under Communicator.
//
// Messages are matched MPI-style: a receive names (context, source, tag)
// where source/tag may be wildcards; candidates are considered in arrival
// order, which yields MPI's non-overtaking guarantee for any fixed
// (context, source, tag) triple.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "mp/message.hpp"
#include "support/status.hpp"

namespace pdc::mp {

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a delivered message (called by the sender's thread).
  void deliver(Message message);

  /// Blocks until a matching message arrives, then removes and returns it.
  Message match(std::uint32_t context, int source, int tag);

  /// Non-blocking match; nullopt when nothing matches right now.
  std::optional<Message> try_match(std::uint32_t context, int source, int tag);

  /// Blocks until a matching message is queued and returns a copy of its
  /// envelope and size without removing it (MPI_Probe analogue).
  RecvInfo probe(std::uint32_t context, int source, int tag);

  /// Non-blocking probe (MPI_Iprobe analogue): envelope of the first
  /// matching queued message, or nullopt.
  std::optional<RecvInfo> try_probe(std::uint32_t context, int source, int tag);

  /// Number of queued (unreceived) messages — diagnostics only.
  [[nodiscard]] std::size_t pending() const;

 private:
  /// Index of the first queued message matching the triple, or npos.
  [[nodiscard]] std::size_t find_locked(std::uint32_t context, int source,
                                        int tag) const;

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Message> queue_;
};

}  // namespace pdc::mp
