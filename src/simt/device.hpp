// Manycore SIMT device simulator (the CUDA-class substrate of DESIGN.md).
//
// The LAU case-study course (paper §IV-A) spends ~60% of its time on the
// SIMT execution model: grid/block/thread indexing, per-block shared
// memory, barrier synchronization, warp divergence, and global-memory
// coalescing. This simulator executes kernels written against exactly that
// model and *measures* those properties:
//
//  - every simulated thread is a fiber, so sync_threads() works from any
//    control flow;
//  - execution proceeds in barrier-delimited epochs; within an epoch the
//    lanes of a warp are stepped together, and the k-th global access of
//    each lane forms one warp memory transaction whose cost is the number
//    of distinct 128-byte segments it touches (the coalescing rule);
//  - divergence is recorded per warp via ThreadCtx::branch(cond): a warp
//    whose lanes disagree on a branch pays for both sides.
//
// A simple cost model turns the counters into simulated cycles so kernel
// variants can be ranked the way the course's profiling labs do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace pdc::simt {

/// CUDA-style 3-component extent/index.
struct Dim3 {
  unsigned x = 1, y = 1, z = 1;
  [[nodiscard]] std::size_t count() const {
    return std::size_t{x} * y * z;
  }
};

/// Cost model and structural limits of the simulated device.
struct DeviceConfig {
  unsigned warp_size = 32;
  std::size_t max_threads_per_block = 1024;
  std::size_t max_shared_bytes = 48 * 1024;
  std::size_t memory_segment_bytes = 128;  // coalescing granularity
  // Cycle costs (abstract units).
  std::uint64_t cycles_per_warp_epoch = 4;     // issue cost per warp per epoch
  std::uint64_t cycles_per_segment = 32;       // DRAM segment fetch
  std::uint64_t cycles_per_divergent_branch = 8;
  std::uint64_t cycles_per_atomic = 4;  // per serialized atomic slot
  std::size_t fiber_stack_bytes = 64 * 1024;
  /// Simulated host<->device copy bandwidth in bytes/second for Stream
  /// copies (models the DMA engine so copy/compute overlap is observable
  /// in wall time); 0 = copies are instantaneous.
  double copy_bandwidth_bytes_per_sec = 0.0;
};

/// Typed handle to a device global-memory allocation. Host code moves data
/// with Device::write/read; kernels access it through ThreadCtx::load/store
/// so every access is instrumented.
template <typename T>
struct Buffer {
  std::size_t id = SIZE_MAX;
  std::size_t size = 0;  // element count
};

/// Counters for one kernel launch.
struct LaunchStats {
  std::size_t blocks = 0;
  std::size_t threads = 0;
  std::size_t warps = 0;           // total warps across all blocks
  std::uint64_t warp_epochs = 0;   // warp × epoch execution quanta
  std::uint64_t barriers = 0;      // sync_threads() epochs (per block)
  std::uint64_t transactions = 0;  // warp-level memory instructions
  std::uint64_t segments = 0;      // 128B segments actually fetched
  std::uint64_t ideal_segments = 0;  // lower bound given bytes touched
  std::uint64_t branches = 0;        // branch() calls at warp granularity
  std::uint64_t divergent_branches = 0;
  std::uint64_t atomics = 0;             // atomic RMW operations
  std::uint64_t atomic_serializations = 0;  // extra slots when warp lanes
                                            // hit the same address
  std::uint64_t cycles = 0;  // per the DeviceConfig cost model

  /// 1.0 = perfectly coalesced; approaches 1/warp_size when fully strided.
  [[nodiscard]] double coalescing_efficiency() const {
    if (segments == 0) return 1.0;
    return static_cast<double>(ideal_segments) / static_cast<double>(segments);
  }

  /// Fraction of warp-level branches whose lanes disagreed.
  [[nodiscard]] double divergence_rate() const {
    if (branches == 0) return 0.0;
    return static_cast<double>(divergent_branches) /
           static_cast<double>(branches);
  }
};

class Device;

/// Per-thread kernel context: indexing, shared memory, barrier, and
/// instrumented global memory access.
class ThreadCtx {
 public:
  [[nodiscard]] Dim3 thread_idx() const { return thread_idx_; }
  [[nodiscard]] Dim3 block_idx() const { return block_idx_; }
  [[nodiscard]] Dim3 block_dim() const { return block_dim_; }
  [[nodiscard]] Dim3 grid_dim() const { return grid_dim_; }

  /// Linearized global thread id along x (the common 1-D pattern).
  [[nodiscard]] std::size_t global_x() const {
    return std::size_t{block_idx_.x} * block_dim_.x + thread_idx_.x;
  }

  /// Linear thread id within the block.
  [[nodiscard]] std::size_t linear_tid() const { return linear_tid_; }
  [[nodiscard]] unsigned lane() const;
  [[nodiscard]] std::size_t warp_id() const;

  /// Block-wide barrier (__syncthreads). Every thread of the block that has
  /// not returned must reach it.
  void sync_threads();

  /// Shared memory of the block, as requested at launch.
  template <typename T>
  T* shared() {
    PDC_CHECK_MSG(shared_ != nullptr, "kernel launched without shared memory");
    return reinterpret_cast<T*>(shared_);
  }
  [[nodiscard]] std::size_t shared_bytes() const { return shared_bytes_; }

  /// Instrumented global-memory read.
  template <typename T>
  T load(const Buffer<T>& buffer, std::size_t index) {
    record_access(buffer.id, index * sizeof(T), sizeof(T));
    return *reinterpret_cast<const T*>(global_ptr(buffer.id, index * sizeof(T), sizeof(T)));
  }

  /// Instrumented global-memory write.
  template <typename T>
  void store(Buffer<T>& buffer, std::size_t index, const T& value) {
    record_access(buffer.id, index * sizeof(T), sizeof(T));
    *reinterpret_cast<T*>(global_ptr(buffer.id, index * sizeof(T), sizeof(T))) = value;
  }

  /// Declares a branch with condition `taken`; lanes of a warp that
  /// disagree within the same epoch position make the warp divergent.
  /// Returns `taken` so it wraps conditions inline:
  ///   if (ctx.branch(i < n)) { ... }
  bool branch(bool taken);

  /// Atomic read-modify-write add on global memory (atomicAdd). Returns
  /// the previous value. Within a warp, lanes that hit the SAME address in
  /// the same instruction slot serialize — the contention cost the
  /// histogram lab measures (blocks run one at a time here, so the RMW
  /// itself needs no host synchronization).
  template <typename T>
  T atomic_add(Buffer<T>& buffer, std::size_t index, T delta) {
    record_atomic(buffer.id, index * sizeof(T));
    record_access(buffer.id, index * sizeof(T), sizeof(T));
    T* cell = reinterpret_cast<T*>(global_ptr(buffer.id, index * sizeof(T), sizeof(T)));
    const T previous = *cell;
    *cell = previous + delta;
    return previous;
  }

 private:
  friend class Device;

  void record_access(std::size_t buffer_id, std::size_t offset,
                     std::size_t bytes);
  void record_atomic(std::size_t buffer_id, std::size_t offset);
  std::byte* global_ptr(std::size_t buffer_id, std::size_t offset,
                        std::size_t bytes);

  Device* device_ = nullptr;
  struct BlockRun* block_ = nullptr;  // execution state shared by the block
  Dim3 thread_idx_, block_idx_, block_dim_, grid_dim_;
  std::size_t linear_tid_ = 0;
  std::byte* shared_ = nullptr;
  std::size_t shared_bytes_ = 0;
  std::size_t access_seq_ = 0;  // per-epoch access counter
  std::size_t branch_seq_ = 0;  // per-epoch branch counter
  std::size_t atomic_seq_ = 0;  // per-epoch atomic counter
};

using Kernel = std::function<void(ThreadCtx&)>;

/// The simulated device: global-memory allocator plus kernel executor.
/// Launches run synchronously on the calling thread; use simt::Stream for
/// asynchronous launches and copies.
class Device {
 public:
  explicit Device(DeviceConfig config = {});

  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  /// Allocates `count` elements of device global memory (zero-initialized).
  template <typename T>
  Buffer<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Buffer<T>{alloc_bytes(count * sizeof(T)), count};
  }

  /// Host -> device copy (bulk, not instrumented: models cudaMemcpy).
  template <typename T>
  void write(Buffer<T>& buffer, const std::vector<T>& host) {
    PDC_CHECK(host.size() <= buffer.size);
    write_bytes(buffer.id, host.data(), host.size() * sizeof(T));
  }

  /// Device -> host copy.
  template <typename T>
  std::vector<T> read(const Buffer<T>& buffer) {
    std::vector<T> host(buffer.size);
    read_bytes(buffer.id, host.data(), buffer.size * sizeof(T));
    return host;
  }

  /// Runs `kernel` over grid × block threads; returns the launch counters.
  LaunchStats launch(Dim3 grid, Dim3 block, std::size_t shared_bytes,
                     const Kernel& kernel);

  /// Convenience 1-D launch without shared memory.
  LaunchStats launch_1d(std::size_t total_threads, unsigned block_size,
                        const Kernel& kernel) {
    const unsigned blocks = static_cast<unsigned>(
        (total_threads + block_size - 1) / block_size);
    return launch(Dim3{blocks, 1, 1}, Dim3{block_size, 1, 1}, 0, kernel);
  }

  /// Cumulative stats across all launches since construction.
  /// Thread-safe snapshot (streams launch concurrently).
  [[nodiscard]] LaunchStats totals() const;

 private:
  friend class ThreadCtx;

  std::size_t alloc_bytes(std::size_t bytes);
  void write_bytes(std::size_t id, const void* src, std::size_t bytes);
  void read_bytes(std::size_t id, void* dst, std::size_t bytes) const;

  DeviceConfig config_;
  // deque: growing never invalidates existing allocations, so a stream can
  // alloc while another stream's kernel is executing.
  std::deque<std::vector<std::byte>> allocations_;
  mutable std::mutex mutex_;  // guards allocations_ growth and totals_
  LaunchStats totals_;
};

}  // namespace pdc::simt
