// Minimal cooperative fibers (ucontext-based) for the SIMT simulator.
//
// Each simulated GPU thread runs on its own fiber so kernels can call
// sync_threads() from arbitrary control flow — the property that makes the
// simulator faithful to the CUDA programming model rather than a
// split-kernel approximation. Fibers never migrate between OS threads, so
// plain ucontext is safe.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace pdc::simt {

class Fiber {
 public:
  enum class State { kReady, kRunning, kSuspended, kFinished };

  /// Creates a fiber that will run `body` when first resumed.
  /// `stack_bytes` must accommodate the kernel's deepest call chain.
  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = 64 * 1024);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes. Returns the new state
  /// (kSuspended or kFinished). Must be called from the owning OS thread.
  /// An exception escaping the fiber body is captured and rethrown here
  /// (exceptions cannot unwind across a context switch).
  State resume();

  /// Suspends the *currently running* fiber, returning control to the
  /// resume() caller. Only valid while a fiber is running.
  static void yield();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool finished() const { return state_ == State::kFinished; }

 private:
  static void trampoline();

  std::function<void()> body_;
  std::vector<char> stack_;
  ucontext_t context_;
  ucontext_t return_context_;
  State state_ = State::kReady;
  std::exception_ptr error_;
  // Bounds of the stack resume() was running on when it switched to this
  // fiber — AddressSanitizer must be told about both directions of every
  // manual stack switch. Unused (and zero-cost) in non-ASan builds.
  const void* asan_return_stack_bottom_ = nullptr;
  std::size_t asan_return_stack_size_ = 0;
};

}  // namespace pdc::simt
