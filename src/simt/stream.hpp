// Asynchronous streams and events over the SIMT device.
//
// The LAU course's advanced unit covers "concurrent streams": overlapping
// host<->device copies with kernel execution. Each Stream is an in-order
// queue served by its own worker; copies spend wall time according to the
// device's simulated DMA bandwidth, so a two-stream pipeline measurably
// beats a single-stream one (bench/lab_lau_simt).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "concurrency/bounded_queue.hpp"
#include "simt/device.hpp"

namespace pdc::simt {

/// CUDA-event analogue: recorded on a stream, waitable from the host or
/// another stream.
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Host-side wait until the event has been recorded.
  void synchronize() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->recorded; });
  }

  [[nodiscard]] bool query() const {
    std::scoped_lock lock(state_->mutex);
    return state_->recorded;
  }

 private:
  friend class Stream;
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool recorded = false;
  };

  void fire() const {
    {
      std::scoped_lock lock(state_->mutex);
      state_->recorded = true;
    }
    state_->cv.notify_all();
  }

  std::shared_ptr<State> state_;
};

class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();  // synchronizes, then joins the worker

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Asynchronous kernel launch; completion observable via events or
  /// synchronize().
  void launch(Dim3 grid, Dim3 block, std::size_t shared_bytes, Kernel kernel);

  /// Asynchronous host->device copy. The host vector is copied into the
  /// operation, so the caller's buffer may be reused immediately.
  template <typename T>
  void write(Buffer<T> buffer, std::vector<T> host) {
    const std::size_t bytes = host.size() * sizeof(T);
    enqueue([this, buffer, host = std::move(host), bytes]() mutable {
      simulate_copy_delay(bytes);
      Buffer<T> b = buffer;
      device_.write(b, host);
    });
  }

  /// Asynchronous device->host copy into caller-owned storage, which must
  /// stay alive until the stream reaches this operation.
  template <typename T>
  void read(Buffer<T> buffer, std::vector<T>* out) {
    enqueue([this, buffer, out] {
      simulate_copy_delay(buffer.size * sizeof(T));
      *out = device_.read(buffer);
    });
  }

  /// Records `event` once all previously enqueued work has completed.
  void record(const Event& event) {
    enqueue([event] { event.fire(); });
  }

  /// Makes this stream wait (in-order) until `event` fires.
  void wait(const Event& event) {
    enqueue([event] { event.synchronize(); });
  }

  /// Blocks the host until everything enqueued so far has run.
  void synchronize();

 private:
  void enqueue(std::function<void()> op);
  void simulate_copy_delay(std::size_t bytes) const;

  Device& device_;
  concurrency::BoundedQueue<std::function<void()>> queue_;
  std::thread worker_;
};

}  // namespace pdc::simt
