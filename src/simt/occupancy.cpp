#include "simt/occupancy.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pdc::simt {

const char* to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kThreads: return "threads";
    case OccupancyLimiter::kBlocks: return "blocks";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kSharedMemory: return "shared_memory";
  }
  return "unknown";
}

OccupancyResult occupancy(const SmConfig& sm, std::size_t block_threads,
                          std::size_t registers_per_thread,
                          std::size_t shared_bytes_per_block) {
  PDC_CHECK(block_threads >= 1);
  OccupancyResult result;
  result.max_warps = sm.max_threads_per_sm / sm.warp_size;

  const std::size_t by_threads = sm.max_threads_per_sm / block_threads;
  const std::size_t by_blocks = sm.max_blocks_per_sm;
  const std::size_t by_regs =
      registers_per_thread == 0
          ? SIZE_MAX
          : sm.registers_per_sm / (registers_per_thread * block_threads);
  const std::size_t by_shared = shared_bytes_per_block == 0
                                    ? SIZE_MAX
                                    : sm.shared_bytes_per_sm / shared_bytes_per_block;

  result.blocks_per_sm = std::min({by_threads, by_blocks, by_regs, by_shared});
  if (result.blocks_per_sm == by_threads) {
    result.limiter = OccupancyLimiter::kThreads;
  }
  if (result.blocks_per_sm == by_blocks) {
    result.limiter = OccupancyLimiter::kBlocks;
  }
  if (result.blocks_per_sm == by_regs) {
    result.limiter = OccupancyLimiter::kRegisters;
  }
  if (result.blocks_per_sm == by_shared) {
    result.limiter = OccupancyLimiter::kSharedMemory;
  }

  const std::size_t warps_per_block =
      (block_threads + sm.warp_size - 1) / sm.warp_size;
  result.active_warps =
      std::min(result.blocks_per_sm * warps_per_block, result.max_warps);
  result.occupancy = result.max_warps == 0
                         ? 0.0
                         : static_cast<double>(result.active_warps) /
                               static_cast<double>(result.max_warps);
  return result;
}

}  // namespace pdc::simt
