#include "simt/stream.hpp"

#include <chrono>

namespace pdc::simt {

Stream::Stream(Device& device)
    : device_(device), queue_(4096), worker_([this] {
        for (;;) {
          auto op = queue_.pop();
          if (!op.is_ok()) break;
          op.value()();
        }
      }) {}

Stream::~Stream() {
  queue_.close();
  worker_.join();
}

void Stream::launch(Dim3 grid, Dim3 block, std::size_t shared_bytes,
                    Kernel kernel) {
  enqueue([this, grid, block, shared_bytes, kernel = std::move(kernel)] {
    device_.launch(grid, block, shared_bytes, kernel);
  });
}

void Stream::synchronize() {
  Event done;
  record(done);
  done.synchronize();
}

void Stream::enqueue(std::function<void()> op) {
  const auto status = queue_.push(std::move(op));
  PDC_CHECK_MSG(status.is_ok(), "operation enqueued on a destroyed stream");
}

void Stream::simulate_copy_delay(std::size_t bytes) const {
  const double bw = device_.config().copy_bandwidth_bytes_per_sec;
  if (bw <= 0.0) return;
  const auto delay = std::chrono::duration<double>(static_cast<double>(bytes) / bw);
  std::this_thread::sleep_for(delay);
}

}  // namespace pdc::simt
