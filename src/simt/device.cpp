#include "simt/device.hpp"

#include <array>
#include <cstring>
#include <memory>

#include "simt/fiber.hpp"

namespace pdc::simt {

// Execution state of the block currently running (one block at a time).
struct BlockRun {
  const DeviceConfig* config = nullptr;
  LaunchStats* stats = nullptr;

  // Per-warp, per-epoch instrumentation. The k-th access of each lane in an
  // epoch forms warp transaction k; its cost is the distinct 128B segments.
  struct WarpWindow {
    std::vector<std::unordered_set<std::uint64_t>> segments_by_seq;
    std::vector<std::size_t> bytes_by_seq;
    // branch seq -> {seen taken, seen not-taken}
    std::vector<std::array<bool, 2>> branch_by_seq;
    // atomic seq -> address -> lanes hitting it this slot
    std::vector<std::unordered_map<std::uint64_t, std::size_t>> atomics_by_seq;
  };
  std::vector<WarpWindow> warps;

  void account_and_reset_epoch() {
    for (auto& warp : warps) {
      for (std::size_t s = 0; s < warp.segments_by_seq.size(); ++s) {
        const auto touched = warp.segments_by_seq[s].size();
        if (touched == 0) continue;
        ++stats->transactions;
        stats->segments += touched;
        const std::size_t seg = config->memory_segment_bytes;
        stats->ideal_segments +=
            std::max<std::uint64_t>(1, (warp.bytes_by_seq[s] + seg - 1) / seg);
      }
      for (const auto& seen : warp.branch_by_seq) {
        if (!seen[0] && !seen[1]) continue;
        ++stats->branches;
        if (seen[0] && seen[1]) {
          ++stats->divergent_branches;
          stats->cycles += config->cycles_per_divergent_branch;
        }
      }
      for (const auto& slot : warp.atomics_by_seq) {
        for (const auto& [address, lanes] : slot) {
          stats->atomics += lanes;
          // One slot proceeds for free; additional lanes at the SAME
          // address serialize behind it.
          stats->atomic_serializations += lanes - 1;
          stats->cycles += config->cycles_per_atomic * lanes;
        }
      }
      warp.segments_by_seq.clear();
      warp.bytes_by_seq.clear();
      warp.branch_by_seq.clear();
      warp.atomics_by_seq.clear();
    }
  }
};

unsigned ThreadCtx::lane() const {
  return static_cast<unsigned>(linear_tid_ % device_->config().warp_size);
}

std::size_t ThreadCtx::warp_id() const {
  return linear_tid_ / device_->config().warp_size;
}

void ThreadCtx::sync_threads() { Fiber::yield(); }

bool ThreadCtx::branch(bool taken) {
  auto& warp = block_->warps[warp_id()];
  const std::size_t seq = branch_seq_++;
  if (warp.branch_by_seq.size() <= seq) warp.branch_by_seq.resize(seq + 1, {false, false});
  warp.branch_by_seq[seq][taken ? 0 : 1] = true;
  return taken;
}

void ThreadCtx::record_atomic(std::size_t buffer_id, std::size_t offset) {
  auto& warp = block_->warps[warp_id()];
  const std::size_t seq = atomic_seq_++;
  if (warp.atomics_by_seq.size() <= seq) warp.atomics_by_seq.resize(seq + 1);
  ++warp.atomics_by_seq[seq][(std::uint64_t{buffer_id} << 40) | offset];
}

void ThreadCtx::record_access(std::size_t buffer_id, std::size_t offset,
                              std::size_t bytes) {
  auto& warp = block_->warps[warp_id()];
  const std::size_t seq = access_seq_++;
  if (warp.segments_by_seq.size() <= seq) {
    warp.segments_by_seq.resize(seq + 1);
    warp.bytes_by_seq.resize(seq + 1, 0);
  }
  const std::size_t seg_bytes = device_->config().memory_segment_bytes;
  const std::uint64_t first = offset / seg_bytes;
  const std::uint64_t last = (offset + bytes - 1) / seg_bytes;
  for (std::uint64_t s = first; s <= last; ++s) {
    warp.segments_by_seq[seq].insert((std::uint64_t{buffer_id} << 40) | s);
  }
  warp.bytes_by_seq[seq] += bytes;
}

// Lock-free on the access path: allocations must not be created while a
// kernel is in flight (the usual CUDA discipline of allocating up front);
// existing storage blocks are stable for the device's lifetime.
std::byte* ThreadCtx::global_ptr(std::size_t buffer_id, std::size_t offset,
                                 std::size_t bytes) {
  PDC_CHECK_MSG(buffer_id < device_->allocations_.size(), "invalid buffer");
  auto& storage = device_->allocations_[buffer_id];
  PDC_CHECK_MSG(offset + bytes <= storage.size(),
                "device memory access out of bounds");
  return storage.data() + offset;
}

Device::Device(DeviceConfig config) : config_(config) {
  PDC_CHECK(config_.warp_size >= 1);
  PDC_CHECK(config_.memory_segment_bytes >= 1);
}

std::size_t Device::alloc_bytes(std::size_t bytes) {
  std::scoped_lock lock(mutex_);
  allocations_.emplace_back(bytes);
  return allocations_.size() - 1;
}

void Device::write_bytes(std::size_t id, const void* src, std::size_t bytes) {
  std::unique_lock lock(mutex_);
  PDC_CHECK(id < allocations_.size());
  auto& storage = allocations_[id];
  lock.unlock();  // the storage block itself is stable
  PDC_CHECK(bytes <= storage.size());
  std::memcpy(storage.data(), src, bytes);
}

void Device::read_bytes(std::size_t id, void* dst, std::size_t bytes) const {
  std::unique_lock lock(mutex_);
  PDC_CHECK(id < allocations_.size());
  const auto& storage = allocations_[id];
  lock.unlock();
  PDC_CHECK(bytes <= storage.size());
  std::memcpy(dst, storage.data(), bytes);
}

LaunchStats Device::totals() const {
  std::scoped_lock lock(mutex_);
  return totals_;
}

LaunchStats Device::launch(Dim3 grid, Dim3 block, std::size_t shared_bytes,
                           const Kernel& kernel) {
  PDC_CHECK_MSG(block.count() >= 1 && grid.count() >= 1,
                "empty grid or block");
  PDC_CHECK_MSG(block.count() <= config_.max_threads_per_block,
                "block exceeds max_threads_per_block");
  PDC_CHECK_MSG(shared_bytes <= config_.max_shared_bytes,
                "shared memory request exceeds device limit");

  LaunchStats stats;
  stats.blocks = grid.count();
  stats.threads = grid.count() * block.count();
  const std::size_t warps_per_block =
      (block.count() + config_.warp_size - 1) / config_.warp_size;
  stats.warps = warps_per_block * grid.count();

  std::vector<std::byte> shared(shared_bytes);

  // Blocks are independent by the programming model; executing them
  // sequentially keeps the instrumentation deterministic.
  for (unsigned bz = 0; bz < grid.z; ++bz) {
    for (unsigned by = 0; by < grid.y; ++by) {
      for (unsigned bx = 0; bx < grid.x; ++bx) {
        BlockRun run;
        run.config = &config_;
        run.stats = &stats;
        run.warps.resize(warps_per_block);
        std::fill(shared.begin(), shared.end(), std::byte{0});

        const std::size_t n = block.count();
        std::vector<ThreadCtx> contexts(n);
        std::vector<std::unique_ptr<Fiber>> fibers;
        fibers.reserve(n);
        std::size_t tid = 0;
        for (unsigned tz = 0; tz < block.z; ++tz) {
          for (unsigned ty = 0; ty < block.y; ++ty) {
            for (unsigned tx = 0; tx < block.x; ++tx, ++tid) {
              ThreadCtx& ctx = contexts[tid];
              ctx.device_ = this;
              ctx.block_ = &run;
              ctx.thread_idx_ = Dim3{tx, ty, tz};
              ctx.block_idx_ = Dim3{bx, by, bz};
              ctx.block_dim_ = block;
              ctx.grid_dim_ = grid;
              ctx.linear_tid_ = tid;
              ctx.shared_ = shared_bytes ? shared.data() : nullptr;
              ctx.shared_bytes_ = shared_bytes;
              fibers.push_back(std::make_unique<Fiber>(
                  [&kernel, &ctx] { kernel(ctx); }, config_.fiber_stack_bytes));
            }
          }
        }

        // Epoch loop: resume every live lane once (warp by warp), account
        // the epoch's warp windows, repeat until the block retires.
        // An epoch boundary is exactly a block-wide barrier.
        std::size_t alive = n;
        bool first_epoch = true;
        while (alive > 0) {
          if (!first_epoch) ++stats.barriers;
          first_epoch = false;
          for (std::size_t w = 0; w < warps_per_block; ++w) {
            bool warp_active = false;
            const std::size_t lane_lo = w * config_.warp_size;
            const std::size_t lane_hi = std::min(n, lane_lo + config_.warp_size);
            for (std::size_t t = lane_lo; t < lane_hi; ++t) {
              if (fibers[t]->finished()) continue;
              warp_active = true;
              contexts[t].access_seq_ = 0;
              contexts[t].branch_seq_ = 0;
              contexts[t].atomic_seq_ = 0;
              if (fibers[t]->resume() == Fiber::State::kFinished) --alive;
            }
            if (warp_active) {
              ++stats.warp_epochs;
              stats.cycles += config_.cycles_per_warp_epoch;
            }
          }
          run.account_and_reset_epoch();
        }
      }
    }
  }

  stats.cycles += stats.segments * config_.cycles_per_segment;

  // Accumulate into device totals.
  std::scoped_lock lock(mutex_);
  totals_.blocks += stats.blocks;
  totals_.threads += stats.threads;
  totals_.warps += stats.warps;
  totals_.warp_epochs += stats.warp_epochs;
  totals_.barriers += stats.barriers;
  totals_.transactions += stats.transactions;
  totals_.segments += stats.segments;
  totals_.ideal_segments += stats.ideal_segments;
  totals_.branches += stats.branches;
  totals_.divergent_branches += stats.divergent_branches;
  totals_.atomics += stats.atomics;
  totals_.atomic_serializations += stats.atomic_serializations;
  totals_.cycles += stats.cycles;
  return stats;
}

}  // namespace pdc::simt
