// Occupancy calculator for the simulated manycore device.
//
// Mirrors the CUDA occupancy calculation taught in the LAU course's tuning
// unit: how many blocks fit on one SM given the per-block thread, register
// and shared-memory footprints, and which resource is the limiter.
#pragma once

#include <cstddef>
#include <string>

namespace pdc::simt {

/// Per-SM (streaming multiprocessor) resource limits.
struct SmConfig {
  std::size_t max_threads_per_sm = 2048;
  std::size_t max_blocks_per_sm = 32;
  std::size_t registers_per_sm = 65536;
  std::size_t shared_bytes_per_sm = 96 * 1024;
  unsigned warp_size = 32;
};

enum class OccupancyLimiter { kThreads, kBlocks, kRegisters, kSharedMemory };

const char* to_string(OccupancyLimiter limiter);

struct OccupancyResult {
  std::size_t blocks_per_sm = 0;
  std::size_t active_warps = 0;
  std::size_t max_warps = 0;
  double occupancy = 0.0;  // active_warps / max_warps
  OccupancyLimiter limiter = OccupancyLimiter::kThreads;
};

/// Computes achievable occupancy for a kernel footprint. `block_threads`
/// must be >= 1; zero registers/shared mean "does not constrain".
OccupancyResult occupancy(const SmConfig& sm, std::size_t block_threads,
                          std::size_t registers_per_thread,
                          std::size_t shared_bytes_per_block);

}  // namespace pdc::simt
