#include "simt/fiber.hpp"

#include <utility>

#include "support/check.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define PDC_SIMT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PDC_SIMT_ASAN_FIBERS 1
#endif
#endif

#ifdef PDC_SIMT_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace pdc::simt {

namespace {
// The fiber currently executing on this OS thread (nullptr between fibers).
thread_local Fiber* t_current = nullptr;

// ASan tracks the current stack region; a raw swapcontext() onto a
// heap-allocated fiber stack looks like a stack-buffer-overflow unless every
// switch is bracketed with start/finish_switch_fiber. No-ops without ASan.
void asan_start_switch(void** fake_stack_save, const void* bottom,
                       std::size_t size) {
#ifdef PDC_SIMT_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                        std::size_t* size_old) {
#ifdef PDC_SIMT_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes) {
  PDC_CHECK(stack_bytes >= 16 * 1024);
}

void Fiber::trampoline() {
  Fiber* self = t_current;
  // First instructions on the fiber stack: complete the switch resume()
  // started, recording the resuming stack so yield()/exit can switch back.
  asan_finish_switch(nullptr, &self->asan_return_stack_bottom_,
                     &self->asan_return_stack_size_);
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->state_ = State::kFinished;
  // Return to the resume() caller for the last time. A null save slot tells
  // ASan this fiber is dying, so its fake stack is destroyed.
  asan_start_switch(nullptr, self->asan_return_stack_bottom_,
                    self->asan_return_stack_size_);
  swapcontext(&self->context_, &self->return_context_);
}

Fiber::State Fiber::resume() {
  PDC_CHECK_MSG(state_ == State::kReady || state_ == State::kSuspended,
                "resume of a running or finished fiber");
  if (state_ == State::kReady) {
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = nullptr;  // trampoline swaps back explicitly
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  Fiber* previous = t_current;
  t_current = this;
  state_ = State::kRunning;
  void* fake_stack = nullptr;
  asan_start_switch(&fake_stack, stack_.data(), stack_.size());
  swapcontext(&return_context_, &context_);
  asan_finish_switch(fake_stack, nullptr, nullptr);
  t_current = previous;
  if (state_ == State::kRunning) state_ = State::kSuspended;
  if (error_) {
    auto error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
  return state_;
}

void Fiber::yield() {
  Fiber* self = t_current;
  PDC_CHECK_MSG(self != nullptr, "Fiber::yield outside any fiber");
  self->state_ = State::kSuspended;
  void* fake_stack = nullptr;
  asan_start_switch(&fake_stack, self->asan_return_stack_bottom_,
                    self->asan_return_stack_size_);
  swapcontext(&self->context_, &self->return_context_);
  // Resumed again: refresh the return-stack bounds in case resume() was
  // called from a different frame this time.
  asan_finish_switch(fake_stack, &self->asan_return_stack_bottom_,
                     &self->asan_return_stack_size_);
}

}  // namespace pdc::simt
