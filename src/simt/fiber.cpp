#include "simt/fiber.hpp"

#include <utility>

#include "support/check.hpp"

namespace pdc::simt {

namespace {
// The fiber currently executing on this OS thread (nullptr between fibers).
thread_local Fiber* t_current = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes) {
  PDC_CHECK(stack_bytes >= 16 * 1024);
}

void Fiber::trampoline() {
  Fiber* self = t_current;
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->state_ = State::kFinished;
  // Return to the resume() caller for the last time.
  swapcontext(&self->context_, &self->return_context_);
}

Fiber::State Fiber::resume() {
  PDC_CHECK_MSG(state_ == State::kReady || state_ == State::kSuspended,
                "resume of a running or finished fiber");
  if (state_ == State::kReady) {
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = nullptr;  // trampoline swaps back explicitly
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  Fiber* previous = t_current;
  t_current = this;
  state_ = State::kRunning;
  swapcontext(&return_context_, &context_);
  t_current = previous;
  if (state_ == State::kRunning) state_ = State::kSuspended;
  if (error_) {
    auto error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
  return state_;
}

void Fiber::yield() {
  Fiber* self = t_current;
  PDC_CHECK_MSG(self != nullptr, "Fiber::yield outside any fiber");
  self->state_ = State::kSuspended;
  swapcontext(&self->context_, &self->return_context_);
}

}  // namespace pdc::simt
