#include "core/taxonomy.hpp"

#include "support/check.hpp"

namespace pdc::core {

const std::vector<PdcConcept>& all_concepts() {
  static const std::vector<PdcConcept> concepts{
      PdcConcept::kProgrammingWithThreads,
      PdcConcept::kTransactionsProcessing,
      PdcConcept::kParallelismAndConcurrency,
      PdcConcept::kSharedMemoryProgramming,
      PdcConcept::kInterProcessCommunication,
      PdcConcept::kAtomicity,
      PdcConcept::kPerformanceMeasurement,
      PdcConcept::kMulticoreProcessors,
      PdcConcept::kSharedVsDistributedMemory,
      PdcConcept::kSimdVectorProcessors,
      PdcConcept::kInstructionLevelParallelism,
      PdcConcept::kFlynnsTaxonomy,
      PdcConcept::kClientServerProgramming,
      PdcConcept::kMemoryAndCaching,
  };
  return concepts;
}

const std::vector<CourseCategory>& all_categories() {
  static const std::vector<CourseCategory> categories{
      CourseCategory::kSystemsProgramming,
      CourseCategory::kComputerOrganization,
      CourseCategory::kOperatingSystems,
      CourseCategory::kDatabaseSystems,
      CourseCategory::kComputerNetworks,
      CourseCategory::kParallelProgramming,
      CourseCategory::kAlgorithms,
      CourseCategory::kProgrammingLanguages,
      CourseCategory::kSoftwareEngineering,
      CourseCategory::kDistributedSystems,
      CourseCategory::kIntroProgramming,
  };
  return categories;
}

const std::vector<CourseCategory>& table1_categories() {
  static const std::vector<CourseCategory> categories{
      CourseCategory::kSystemsProgramming,
      CourseCategory::kComputerOrganization,
      CourseCategory::kOperatingSystems,
      CourseCategory::kDatabaseSystems,
      CourseCategory::kComputerNetworks,
  };
  return categories;
}

const char* to_string(PdcConcept topic) {
  switch (topic) {
    case PdcConcept::kProgrammingWithThreads: return "Programming with threads";
    case PdcConcept::kTransactionsProcessing: return "Transactions processing";
    case PdcConcept::kParallelismAndConcurrency:
      return "Parallelism and concurrency";
    case PdcConcept::kSharedMemoryProgramming:
      return "Shared-Memory programming";
    case PdcConcept::kInterProcessCommunication:
      return "Inter-Process Communication (IPC)";
    case PdcConcept::kAtomicity: return "Atomicity";
    case PdcConcept::kPerformanceMeasurement:
      return "Performance measurement, speed-up, and scalability";
    case PdcConcept::kMulticoreProcessors: return "Multicore processors";
    case PdcConcept::kSharedVsDistributedMemory:
      return "Shared vs. distributed memory";
    case PdcConcept::kSimdVectorProcessors: return "SIMD and vector processors";
    case PdcConcept::kInstructionLevelParallelism:
      return "Instruction Level Parallelism";
    case PdcConcept::kFlynnsTaxonomy: return "Flynn's taxonomy";
    case PdcConcept::kClientServerProgramming:
      return "Client-server programming";
    case PdcConcept::kMemoryAndCaching: return "Memory and caching";
  }
  return "?";
}

const char* to_string(CourseCategory category) {
  switch (category) {
    case CourseCategory::kSystemsProgramming: return "Systems Programming";
    case CourseCategory::kComputerOrganization:
      return "Computer Organization/Architecture";
    case CourseCategory::kOperatingSystems: return "Operating Systems";
    case CourseCategory::kDatabaseSystems: return "Database Systems";
    case CourseCategory::kComputerNetworks: return "Computer Networks";
    case CourseCategory::kParallelProgramming: return "Parallel Programming";
    case CourseCategory::kAlgorithms: return "Design & Analysis of Algorithms";
    case CourseCategory::kProgrammingLanguages: return "Programming Languages";
    case CourseCategory::kSoftwareEngineering: return "Software Engineering";
    case CourseCategory::kDistributedSystems: return "Distributed Systems";
    case CourseCategory::kIntroProgramming: return "Introductory Programming";
  }
  return "?";
}

const char* to_string(Pillar pillar) {
  switch (pillar) {
    case Pillar::kConcurrency: return "concurrency";
    case Pillar::kParallelism: return "parallelism";
    case Pillar::kDistribution: return "distribution";
  }
  return "?";
}

Pillar pillar_of(PdcConcept topic) {
  switch (topic) {
    case PdcConcept::kProgrammingWithThreads:
    case PdcConcept::kParallelismAndConcurrency:
    case PdcConcept::kAtomicity:
    case PdcConcept::kTransactionsProcessing:
      return Pillar::kConcurrency;
    case PdcConcept::kSharedMemoryProgramming:
    case PdcConcept::kPerformanceMeasurement:
    case PdcConcept::kMulticoreProcessors:
    case PdcConcept::kSimdVectorProcessors:
    case PdcConcept::kInstructionLevelParallelism:
    case PdcConcept::kFlynnsTaxonomy:
    case PdcConcept::kMemoryAndCaching:
      return Pillar::kParallelism;
    case PdcConcept::kInterProcessCommunication:
    case PdcConcept::kSharedVsDistributedMemory:
    case PdcConcept::kClientServerProgramming:
      return Pillar::kDistribution;
  }
  PDC_CHECK_MSG(false, "unknown topic");
  return Pillar::kConcurrency;
}

}  // namespace pdc::core
