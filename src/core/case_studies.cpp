#include "core/case_studies.hpp"

namespace pdc::core {

namespace {
using C = PdcConcept;

Course course(std::string code, std::string title, CourseCategory category,
              bool required, std::set<PdcConcept> topics) {
  return Course{std::move(code), std::move(title), category, required,
                std::move(topics)};
}
}  // namespace

Program lau_program() {
  Program program;
  program.institution = "Lebanese American University";
  program.name = "BS Computer Science";
  // The dedicated course: multicore programming, SIMD/data parallelism,
  // synchronization, profiling/tuning, message-passing clusters, manycore
  // SIMT (§IV-A course description).
  program.courses.push_back(course(
      "CSC447", "Parallel Programming", CourseCategory::kParallelProgramming,
      /*required=*/true,
      {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
       C::kSharedMemoryProgramming, C::kSimdVectorProcessors,
       C::kPerformanceMeasurement, C::kMulticoreProcessors,
       C::kSharedVsDistributedMemory, C::kInterProcessCommunication,
       C::kAtomicity}));
  program.courses.push_back(
      course("CSC326", "Operating Systems", CourseCategory::kOperatingSystems,
             true, template_topics(CourseCategory::kOperatingSystems)));
  program.courses.push_back(course(
      "CSC320", "Computer Organization", CourseCategory::kComputerOrganization,
      true, template_topics(CourseCategory::kComputerOrganization)));
  program.courses.push_back(course(
      "CSC375", "Database Management Systems", CourseCategory::kDatabaseSystems,
      true, template_topics(CourseCategory::kDatabaseSystems)));
  program.courses.push_back(
      course("CSC245", "Data Structures & Algorithms", CourseCategory::kAlgorithms,
             true, template_topics(CourseCategory::kAlgorithms)));
  program.courses.push_back(
      course("CSC430", "Computer Networks", CourseCategory::kComputerNetworks,
             true, template_topics(CourseCategory::kComputerNetworks)));
  return program;
}

Program auc_program() {
  Program program;
  program.institution = "The American University in Cairo";
  program.name = "BS Computer Science";
  // Early-maturity scattered approach (§IV-B): no dedicated PDC course.
  program.courses.push_back(course(
      "CSCE1102", "Fundamentals of Computing II",
      CourseCategory::kIntroProgramming, true,
      {C::kProgrammingWithThreads, C::kClientServerProgramming}));
  program.courses.push_back(course(
      "CSCE2301", "Computer Organization & Assembly",
      CourseCategory::kComputerOrganization, true,
      {C::kParallelismAndConcurrency, C::kMulticoreProcessors,
       C::kInstructionLevelParallelism, C::kMemoryAndCaching,
       C::kFlynnsTaxonomy}));
  program.courses.push_back(course(
      "CSCE3301", "Computer Architecture", CourseCategory::kComputerOrganization,
      true,
      {C::kInstructionLevelParallelism, C::kMulticoreProcessors,
       C::kSimdVectorProcessors, C::kSharedVsDistributedMemory,
       C::kPerformanceMeasurement}));  // incl. Tomasulo (speculative and not)
  program.courses.push_back(course(
      "CSCE3401", "Operating Systems", CourseCategory::kOperatingSystems, true,
      {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
       C::kAtomicity, C::kInterProcessCommunication,
       C::kPerformanceMeasurement, C::kSharedMemoryProgramming,
       C::kMemoryAndCaching}));
  program.courses.push_back(course(
      "CSCE3701", "Software Engineering", CourseCategory::kSoftwareEngineering,
      true, {C::kParallelismAndConcurrency, C::kClientServerProgramming}));
  program.courses.push_back(course(
      "CSCE3601", "Concepts of Programming Languages",
      CourseCategory::kProgrammingLanguages, true,
      {C::kProgrammingWithThreads, C::kClientServerProgramming,
       C::kParallelismAndConcurrency}));
  program.courses.push_back(course(
      "CSCE4501", "Database Systems", CourseCategory::kDatabaseSystems, true,
      template_topics(CourseCategory::kDatabaseSystems)));
  // Required for Computer Engineering only — elective here (§IV-B item 6).
  program.courses.push_back(course(
      "CSCE4301", "Fundamentals of Distributed Computing",
      CourseCategory::kDistributedSystems, /*required=*/false,
      template_topics(CourseCategory::kDistributedSystems)));
  return program;
}

Program rit_program() {
  Program program;
  program.institution = "Rochester Institute of Technology";
  program.name = "BS Computer Science";
  // A single required breadth course (§IV-C) plus earlier thread coverage.
  program.courses.push_back(course(
      "CSCI251", "Concepts of Parallel and Distributed Systems",
      CourseCategory::kParallelProgramming, true,
      {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
       C::kClientServerProgramming, C::kInterProcessCommunication,
       C::kSharedVsDistributedMemory, C::kMulticoreProcessors,
       C::kAtomicity, C::kPerformanceMeasurement}));
  program.courses.push_back(course(
      "CSCI142", "Computer Science II (Java threads)",
      CourseCategory::kIntroProgramming, true, {C::kProgrammingWithThreads}));
  program.courses.push_back(course(
      "CSCI243", "Mechanics of Programming (pthreads)",
      CourseCategory::kSystemsProgramming, true,
      {C::kProgrammingWithThreads, C::kSharedMemoryProgramming,
       C::kAtomicity, C::kInterProcessCommunication, C::kMemoryAndCaching}));
  program.courses.push_back(course(
      "CSCI250", "Concepts of Computer Systems",
      CourseCategory::kComputerOrganization, true,
      {C::kInstructionLevelParallelism, C::kParallelismAndConcurrency,
       C::kMemoryAndCaching, C::kFlynnsTaxonomy}));
  program.courses.push_back(course(
      "CSCI320", "Principles of Data Management",
      CourseCategory::kDatabaseSystems, true,
      template_topics(CourseCategory::kDatabaseSystems)));
  // Post-2010 restructuring made OS and networking advanced electives.
  program.courses.push_back(course(
      "CSCI352", "Operating Systems", CourseCategory::kOperatingSystems,
      /*required=*/false, template_topics(CourseCategory::kOperatingSystems)));
  program.courses.push_back(course(
      "CSCI351", "Data Communications and Networks",
      CourseCategory::kComputerNetworks, /*required=*/false,
      template_topics(CourseCategory::kComputerNetworks)));
  return program;
}

std::vector<Program> case_study_programs() {
  return {lau_program(), auc_program(), rit_program()};
}

}  // namespace pdc::core
