#include "core/competencies.hpp"

namespace pdc::core {

const std::vector<Competency>& cc2020_competencies() {
  static const std::vector<Competency> competencies{
      {"parallel divide-and-conquer algorithm",
       "decompose a problem recursively and run the halves in parallel with "
       "a join",
       Pillar::kParallelism, "parallel/sort.hpp",
       "parallel_test::ParallelSortTest"},
      {"critical path",
       "identify the dependency chain that bounds parallel speedup and "
       "compute work/span",
       Pillar::kParallelism, "parallel/task_graph.hpp",
       "parallel_test::TaskGraph"},
      {"race conditions",
       "recognize unsynchronized conflicting accesses and repair them with "
       "mutual exclusion",
       Pillar::kConcurrency, "concurrency/lock_order.hpp",
       "concurrency_test::LockOrder"},
      {"processes",
       "structure a computation as communicating processes with private "
       "state",
       Pillar::kDistribution, "mp/world.hpp", "mp_test::P2P"},
      {"deadlocks",
       "construct, detect, and break circular waits",
       Pillar::kConcurrency, "db/lock_manager.hpp",
       "db_test::LockManager"},
      {"properly synchronized queues",
       "build a bounded buffer safe for concurrent producers and consumers "
       "with orderly shutdown",
       Pillar::kConcurrency, "concurrency/bounded_queue.hpp",
       "concurrency_test::BoundedQueue"},
  };
  return competencies;
}

}  // namespace pdc::core
