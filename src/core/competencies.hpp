// CC2020 draft PDC competencies (paper §II): "a parallel divide-and-conquer
// algorithm, critical path, race conditions, processes, deadlocks, and
// properly synchronized queues" — each mapped to the PDCkit module that
// implements it and the test that exercises it. Completeness (every
// competency has a live exemplar on disk) is enforced by core_test.
#pragma once

#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace pdc::core {

struct Competency {
  std::string name;         // CC2020's phrasing
  std::string description;  // what a student must be able to do
  Pillar pillar;            // which CDER pillar it grounds
  std::string module;       // implementing PDCkit module (repo-relative)
  std::string test;         // gtest suite exercising it
};

/// The six CC2020 PDC competencies the paper quotes, with exemplars.
const std::vector<Competency>& cc2020_competencies();

}  // namespace pdc::core
