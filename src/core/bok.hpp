// Bodies of knowledge for the engineering programs (paper §V):
// CE2016 (computer engineering) and SE2014/SEEK (software engineering).
//
// Knowledge areas decompose into units/topics flagged core/essential and,
// where applicable, PDC-related; Tables II and III are derived by
// filtering these models (bench/table2_ce2016_pdc, bench/table3_se2014_pdc).
#pragma once

#include <string>
#include <vector>

namespace pdc::core {

/// SE2014's three cognitive attainment levels (§V).
enum class CognitiveLevel { kKnowledge, kComprehension, kApplication };

const char* to_string(CognitiveLevel level);

struct KnowledgeUnit {
  std::string name;
  bool core = false;          // CE2016 core / SEEK essential
  bool pdc_related = false;
  CognitiveLevel level = CognitiveLevel::kComprehension;
};

struct KnowledgeArea {
  std::string name;
  std::vector<KnowledgeUnit> units;

  [[nodiscard]] std::vector<KnowledgeUnit> pdc_core_units() const;
};

/// CE2016's twelve knowledge areas, with the PDC-related core units of
/// Table II carried by the four areas the paper names.
const std::vector<KnowledgeArea>& ce2016();

/// SE2014's ten SEEK knowledge areas, with the two PDC-related essential
/// topics of Table III in Computing Essentials (application level).
const std::vector<KnowledgeArea>& se2014();

/// Areas of a body of knowledge that carry at least one PDC-related core
/// unit — the rows of Tables II/III.
std::vector<const KnowledgeArea*> pdc_areas(
    const std::vector<KnowledgeArea>& bok);

}  // namespace pdc::core
