#include "core/survey.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::core {

namespace {

/// One synthetic program. Dedicated-course programs get a required
/// parallel-programming course; scattered programs rely on the Table-I
/// columns plus a random selection of the other PDC-carrying categories.
Program make_program(std::size_t index, bool dedicated, support::Rng& rng) {
  Program program;
  program.institution = "University " + std::to_string(index + 1);
  program.name = "BS Computer Science";

  // The backbone every accredited program has (§III: "most modern CS
  // programs offer the following courses, several of which are required").
  for (CourseCategory category :
       {CourseCategory::kIntroProgramming, CourseCategory::kComputerOrganization,
        CourseCategory::kOperatingSystems, CourseCategory::kDatabaseSystems,
        CourseCategory::kComputerNetworks, CourseCategory::kAlgorithms}) {
    program.courses.push_back(make_template_course(category));
  }
  if (dedicated) {
    program.courses.push_back(
        make_template_course(CourseCategory::kParallelProgramming));
  }
  // Optional additional carriers, with survey-plausible frequencies.
  const std::pair<CourseCategory, double> optional[] = {
      {CourseCategory::kSystemsProgramming, 0.55},
      {CourseCategory::kProgrammingLanguages, 0.45},
      {CourseCategory::kSoftwareEngineering, 0.60},
      {CourseCategory::kDistributedSystems, 0.15},
  };
  for (const auto& [category, probability] : optional) {
    if (rng.bernoulli(probability)) {
      program.courses.push_back(make_template_course(category));
    }
  }

  // Institutional variation: each course drops a few template topics
  // (local emphasis differs), re-drawn until the program still clears the
  // ABET bar — the survey population is *accredited* programs.
  for (int attempt = 0; attempt < 32; ++attempt) {
    Program trial = program;
    for (Course& course : trial.courses) {
      std::set<PdcConcept> kept;
      for (PdcConcept topic : course.topics) {
        if (!rng.bernoulli(0.25)) kept.insert(topic);
      }
      course.topics = std::move(kept);
    }
    if (check_abet_cs(trial).compliant()) return trial;
  }
  return program;  // fall back to full templates (always compliant)
}

}  // namespace

std::vector<Program> generate_survey(const SurveyConfig& config) {
  PDC_CHECK(config.dedicated_course_programs <= config.programs);
  support::Rng rng(config.seed);
  std::vector<Program> programs;
  programs.reserve(config.programs);
  for (std::size_t i = 0; i < config.programs; ++i) {
    const bool dedicated = i < config.dedicated_course_programs;
    programs.push_back(make_program(i, dedicated, rng));
  }
  return programs;
}

std::map<PdcConcept, std::size_t> topic_program_counts(
    const std::vector<Program>& programs) {
  std::map<PdcConcept, std::size_t> counts;
  for (PdcConcept topic : all_concepts()) counts[topic] = 0;
  for (const Program& program : programs) {
    for (PdcConcept topic : program.required_coverage()) {
      ++counts[topic];
    }
  }
  return counts;
}

std::map<CourseCategory, double> course_share_for_pdc(
    const std::vector<Program>& programs) {
  std::map<CourseCategory, double> share;
  if (programs.empty()) return share;
  for (CourseCategory category : all_categories()) {
    std::size_t carrying = 0;
    for (const Program& program : programs) {
      for (const Course* course : program.pdc_carrying_courses()) {
        if (course->category == category) {
          ++carrying;
          break;
        }
      }
    }
    share[category] = 100.0 * static_cast<double>(carrying) /
                      static_cast<double>(programs.size());
  }
  return share;
}

std::map<std::string, double> weighted_scores(
    const std::vector<Program>& programs) {
  std::map<std::string, double> scores;
  for (const Program& program : programs) {
    scores[program.institution] = program.weighted_pdc_score();
  }
  return scores;
}

ApproachComparison compare_approaches(const std::vector<Program>& programs) {
  ApproachComparison comparison;
  double dedicated_score = 0.0, scattered_score = 0.0;
  double dedicated_breadth = 0.0, scattered_breadth = 0.0;
  std::size_t dedicated_compliant = 0, scattered_compliant = 0;

  for (const Program& program : programs) {
    const double score = program.weighted_pdc_score();
    const auto breadth = static_cast<double>(program.required_coverage().size());
    const bool compliant = check_abet_cs(program).compliant();
    if (program.has_dedicated_pdc_course()) {
      ++comparison.dedicated_programs;
      dedicated_score += score;
      dedicated_breadth += breadth;
      dedicated_compliant += compliant;
    } else {
      ++comparison.scattered_programs;
      scattered_score += score;
      scattered_breadth += breadth;
      scattered_compliant += compliant;
    }
  }
  if (comparison.dedicated_programs > 0) {
    const auto n = static_cast<double>(comparison.dedicated_programs);
    comparison.dedicated_mean_score = dedicated_score / n;
    comparison.dedicated_mean_breadth = dedicated_breadth / n;
    comparison.dedicated_compliance_rate =
        static_cast<double>(dedicated_compliant) / n;
  }
  if (comparison.scattered_programs > 0) {
    const auto n = static_cast<double>(comparison.scattered_programs);
    comparison.scattered_mean_score = scattered_score / n;
    comparison.scattered_mean_breadth = scattered_breadth / n;
    comparison.scattered_compliance_rate =
        static_cast<double>(scattered_compliant) / n;
  }
  return comparison;
}

}  // namespace pdc::core
