#include "core/bok.hpp"

namespace pdc::core {

const char* to_string(CognitiveLevel level) {
  switch (level) {
    case CognitiveLevel::kKnowledge: return "knowledge";
    case CognitiveLevel::kComprehension: return "comprehension";
    case CognitiveLevel::kApplication: return "application";
  }
  return "?";
}

std::vector<KnowledgeUnit> KnowledgeArea::pdc_core_units() const {
  std::vector<KnowledgeUnit> result;
  for (const KnowledgeUnit& unit : units) {
    if (unit.core && unit.pdc_related) result.push_back(unit);
  }
  return result;
}

const std::vector<KnowledgeArea>& ce2016() {
  // Twelve knowledge areas per CE2016; PDC-related core units exactly as
  // Table II lists them, in the four areas the paper names. Non-PDC units
  // are representative core content (structural placeholders only — the
  // benches never print them).
  static const std::vector<KnowledgeArea> bok{
      {"Circuits and Electronics",
       {{"Electrical circuit fundamentals", true, false,
         CognitiveLevel::kComprehension}}},
      {"Computing Algorithms",
       {{"Basic algorithm analysis", true, false, CognitiveLevel::kApplication},
        {"Parallel algorithms/threading", true, true,
         CognitiveLevel::kApplication},
        {"Analysis and design of application-specific algorithms", true, false,
         CognitiveLevel::kApplication}}},
      {"Computer Architecture and Organization",
       {{"Processor organization", true, false, CognitiveLevel::kComprehension},
        {"Multi/Many-core architectures", true, true,
         CognitiveLevel::kComprehension},
        {"Distributed system architectures", true, true,
         CognitiveLevel::kComprehension},
        {"Memory hierarchies", true, false, CognitiveLevel::kComprehension}}},
      {"Digital Design",
       {{"Combinational and sequential logic", true, false,
         CognitiveLevel::kApplication}}},
      {"Embedded Systems",
       {{"Embedded platforms and interfacing", true, false,
         CognitiveLevel::kApplication}}},
      {"Information Security",
       {{"Security foundations", true, false, CognitiveLevel::kComprehension}}},
      {"Computer Networks",
       {{"Network protocols and layering", true, false,
         CognitiveLevel::kComprehension}}},
      {"Professional Practice",
       {{"Ethics and professional conduct", true, false,
         CognitiveLevel::kComprehension}}},
      {"Signal Processing",
       {{"Discrete-time signals", true, false, CognitiveLevel::kComprehension}}},
      {"Software Design",
       {{"Design principles and patterns", true, false,
         CognitiveLevel::kApplication},
        {"Event-driven and concurrent programming", true, true,
         CognitiveLevel::kApplication}}},
      {"Systems and Project Engineering",
       {{"Requirements and lifecycle", true, false,
         CognitiveLevel::kComprehension}}},
      {"Systems Resource Management",
       {{"Operating system roles", true, false, CognitiveLevel::kComprehension},
        {"Concurrent processing support", true, true,
         CognitiveLevel::kComprehension}}},
  };
  return bok;
}

const std::vector<KnowledgeArea>& se2014() {
  // Ten SEEK knowledge areas; the PDC-related essential topics of Table III
  // live in Computing Essentials at application level.
  static const std::vector<KnowledgeArea> bok{
      {"Computing Essentials",
       {{"Computer science foundations", true, false,
         CognitiveLevel::kApplication},
        {"Concurrency primitives (e.g., semaphores and monitors)", true, true,
         CognitiveLevel::kApplication},
        {"Construction methods for distributed software (e.g., cloud and "
         "mobile computing)",
         true, true, CognitiveLevel::kApplication},
        {"Construction technologies", true, false,
         CognitiveLevel::kApplication}}},
      {"Mathematical and Engineering Fundamentals",
       {{"Discrete mathematics", true, false, CognitiveLevel::kApplication}}},
      {"Professional Practice",
       {{"Group dynamics and communication", true, false,
         CognitiveLevel::kComprehension}}},
      {"Software Modeling and Analysis",
       {{"Modeling foundations", true, false, CognitiveLevel::kApplication}}},
      {"Requirements Analysis and Specification",
       {{"Eliciting requirements", true, false, CognitiveLevel::kApplication}}},
      {"Software Design",
       {{"Design strategies", true, false, CognitiveLevel::kApplication}}},
      {"Software Verification and Validation",
       {{"Testing", true, false, CognitiveLevel::kApplication}}},
      {"Software Process",
       {{"Process concepts", true, false, CognitiveLevel::kComprehension}}},
      {"Software Quality",
       {{"Quality concepts and culture", true, false,
         CognitiveLevel::kComprehension}}},
      {"Security",
       {{"Secure software construction", true, false,
         CognitiveLevel::kApplication}}},
  };
  return bok;
}

std::vector<const KnowledgeArea*> pdc_areas(
    const std::vector<KnowledgeArea>& bok) {
  std::vector<const KnowledgeArea*> areas;
  for (const KnowledgeArea& area : bok) {
    if (!area.pdc_core_units().empty()) areas.push_back(&area);
  }
  return areas;
}

}  // namespace pdc::core
