// The PDC topic taxonomy of the paper.
//
// PdcConcept enumerates the 14 rows of Table I; CourseCategory the course
// columns plus the additional course kinds named in §III and the case
// studies. Pillar groups concepts into CDER's three core PDC ideas
// (concurrency, parallelism, distribution — §II-B), which the ABET
// checker uses to decide whether "exposure to parallel and distributed
// computing" is genuinely broad.
#pragma once

#include <string>
#include <vector>

namespace pdc::core {

/// Rows of Table I.
enum class PdcConcept {
  kProgrammingWithThreads,
  kTransactionsProcessing,
  kParallelismAndConcurrency,
  kSharedMemoryProgramming,
  kInterProcessCommunication,
  kAtomicity,
  kPerformanceMeasurement,  // performance measurement, speed-up, scalability
  kMulticoreProcessors,
  kSharedVsDistributedMemory,
  kSimdVectorProcessors,
  kInstructionLevelParallelism,
  kFlynnsTaxonomy,
  kClientServerProgramming,
  kMemoryAndCaching,
};

/// CDER's three core PDC ideas (§II-B).
enum class Pillar { kConcurrency, kParallelism, kDistribution };

/// Course kinds: the five Table-I columns first, then the other course
/// types the paper's survey and case studies mention.
enum class CourseCategory {
  // Table I columns.
  kSystemsProgramming,
  kComputerOrganization,  // computer organization / architecture
  kOperatingSystems,
  kDatabaseSystems,
  kComputerNetworks,
  // Additional categories from §III and §IV.
  kParallelProgramming,  // a dedicated PDC course
  kAlgorithms,
  kProgrammingLanguages,
  kSoftwareEngineering,
  kDistributedSystems,
  kIntroProgramming,
};

const std::vector<PdcConcept>& all_concepts();
const std::vector<CourseCategory>& all_categories();
const std::vector<CourseCategory>& table1_categories();  // the 5 columns

const char* to_string(PdcConcept topic);
const char* to_string(CourseCategory category);
const char* to_string(Pillar pillar);

/// The pillar each topic belongs to.
Pillar pillar_of(PdcConcept topic);

}  // namespace pdc::core
