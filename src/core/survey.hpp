// The 20-program survey of §III: synthesis and analytics.
//
// The paper aggregates a hand-collected survey of 20 top ABET-accredited
// CS programs; the raw per-program data is not published. SurveyGenerator
// produces a synthetic cohort calibrated to every aggregate the paper
// states — 20 programs, exactly one with a dedicated required PDC course,
// the rest scattering PDC across required courses, all ABET-compliant —
// and the analytics below run the paper's own pipeline (topic counts for
// Fig. 2, per-course-category shares for Fig. 3, weighted sums) over it.
// Real catalog data could be substituted for the generator without
// touching the analytics.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/curriculum.hpp"

namespace pdc::core {

struct SurveyConfig {
  std::size_t programs = 20;
  std::size_t dedicated_course_programs = 1;  // "only one program had a
                                              // dedicated parallel
                                              // programming course" (§III)
  std::uint64_t seed = 2021;                  // publication year
};

/// Generates the synthetic accredited cohort. Every program is guaranteed
/// ABET-compliant (check_abet_cs passes); variation comes from which
/// elective-ish categories are required and which template topics each
/// course actually carries.
std::vector<Program> generate_survey(const SurveyConfig& config = {});

/// Fig. 2: for each PDC topic, how many surveyed programs cover it in
/// required coursework.
std::map<PdcConcept, std::size_t> topic_program_counts(
    const std::vector<Program>& programs);

/// Fig. 3: for each course category, the percentage of surveyed programs
/// whose required PDC coverage includes a course of that category.
std::map<CourseCategory, double> course_share_for_pdc(
    const std::vector<Program>& programs);

/// §III weighted sums, per program (institution -> score).
std::map<std::string, double> weighted_scores(
    const std::vector<Program>& programs);

/// §VI's two observed approaches, quantified over a cohort: dedicated
/// PDC-course programs vs scattered-coverage programs. The paper's finding
/// ("both approaches are viable and meet the current ABET criteria") is
/// checkable: both compliance rates must be 1.0 for an accredited cohort.
struct ApproachComparison {
  std::size_t dedicated_programs = 0;
  std::size_t scattered_programs = 0;
  double dedicated_mean_score = 0.0;
  double scattered_mean_score = 0.0;
  double dedicated_mean_breadth = 0.0;  // topics covered, of 14
  double scattered_mean_breadth = 0.0;
  double dedicated_compliance_rate = 0.0;
  double scattered_compliance_rate = 0.0;
};

ApproachComparison compare_approaches(const std::vector<Program>& programs);

}  // namespace pdc::core
