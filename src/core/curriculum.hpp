// Curriculum model and ABET CAC compliance checking (paper §II).
//
// Programs are sets of courses carrying PDC topics; the checker implements
// the Fig.-1 curriculum criterion — exposure, in *required* coursework, to
// computer architecture/organization, information management, networking
// and communication, operating systems, and parallel and distributed
// computing. PDC exposure itself is judged by CDER's three pillars: a
// program is exposed when its required courses cover at least one topic
// from each of concurrency, parallelism, and distribution.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace pdc::core {

struct Course {
  std::string code;
  std::string title;
  CourseCategory category = CourseCategory::kIntroProgramming;
  bool required = false;
  std::set<PdcConcept> topics;
};

struct Program {
  std::string institution;
  std::string name;
  std::vector<Course> courses;

  /// Concepts covered across required courses only (what accreditation
  /// credits — every graduating student must receive the exposure).
  [[nodiscard]] std::set<PdcConcept> required_coverage() const;

  /// True when a *required* dedicated PDC course exists.
  [[nodiscard]] bool has_dedicated_pdc_course() const;

  /// Required courses carrying at least one PDC topic.
  [[nodiscard]] std::vector<const Course*> pdc_carrying_courses() const;

  /// §III's "weighted sum of all courses that tackle specific components
  /// of the PDC knowledge area": each required course contributes one unit
  /// per PDC topic it carries, with a 50% bonus when the program's overall
  /// coverage spans all three pillars (breadth matters, §II-B).
  [[nodiscard]] double weighted_pdc_score() const;
};

/// Outcome of checking a program against the CAC CS curriculum criterion.
struct AbetCheckResult {
  bool architecture = false;          // computer architecture & organization
  bool information_management = false;
  bool networking = false;
  bool operating_systems = false;
  bool pdc = false;                   // the 2018+ PDC exposure requirement
  std::vector<Pillar> missing_pillars;  // why pdc failed, when it did

  [[nodiscard]] bool compliant() const {
    return architecture && information_management && networking &&
           operating_systems && pdc;
  }
};

/// Checks the Fig.-1 curriculum requirement.
AbetCheckResult check_abet_cs(const Program& program);

/// Canonical topic set for a course of `category` — the distilled content
/// of §III's course inventory. Table I is *derived* from these templates
/// (bench/table1_concept_matrix), not hard-coded.
const std::set<PdcConcept>& template_topics(CourseCategory category);

/// Builds a typical required course from its template.
Course make_template_course(CourseCategory category, bool required = true);

}  // namespace pdc::core
