#include "core/curriculum.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pdc::core {

std::set<PdcConcept> Program::required_coverage() const {
  std::set<PdcConcept> covered;
  for (const Course& course : courses) {
    if (!course.required) continue;
    covered.insert(course.topics.begin(), course.topics.end());
  }
  return covered;
}

bool Program::has_dedicated_pdc_course() const {
  return std::any_of(courses.begin(), courses.end(), [](const Course& c) {
    return c.required && c.category == CourseCategory::kParallelProgramming;
  });
}

std::vector<const Course*> Program::pdc_carrying_courses() const {
  std::vector<const Course*> carrying;
  for (const Course& course : courses) {
    if (course.required && !course.topics.empty()) carrying.push_back(&course);
  }
  return carrying;
}

double Program::weighted_pdc_score() const {
  double score = 0.0;
  for (const Course& course : courses) {
    if (!course.required) continue;
    score += static_cast<double>(course.topics.size());
  }
  // Breadth bonus: all three pillars present in required coverage.
  std::set<Pillar> pillars;
  for (PdcConcept topic : required_coverage()) {
    pillars.insert(pillar_of(topic));
  }
  if (pillars.size() == 3) score *= 1.5;
  return score;
}

AbetCheckResult check_abet_cs(const Program& program) {
  AbetCheckResult result;
  const auto covered = program.required_coverage();
  auto covers = [&](PdcConcept topic) { return covered.count(topic) > 0; };
  auto has_required = [&](CourseCategory category) {
    return std::any_of(program.courses.begin(), program.courses.end(),
                       [&](const Course& c) {
                         return c.required && c.category == category;
                       });
  };

  // The criteria "do not necessarily ask for courses ... but rather topics
  // or knowledge areas covered somewhere in the program requirements"
  // (§II-A) — so each area is satisfied by a matching required course OR
  // by enough of its signature topics embedded elsewhere.
  result.architecture =
      has_required(CourseCategory::kComputerOrganization) ||
      static_cast<int>(covers(PdcConcept::kMulticoreProcessors)) +
              static_cast<int>(covers(PdcConcept::kInstructionLevelParallelism)) +
              static_cast<int>(covers(PdcConcept::kMemoryAndCaching)) +
              static_cast<int>(covers(PdcConcept::kSimdVectorProcessors)) >= 2;
  result.information_management =
      has_required(CourseCategory::kDatabaseSystems) ||
      covers(PdcConcept::kTransactionsProcessing);
  result.networking = has_required(CourseCategory::kComputerNetworks) ||
                      covers(PdcConcept::kClientServerProgramming);
  result.operating_systems =
      has_required(CourseCategory::kOperatingSystems) ||
      static_cast<int>(covers(PdcConcept::kProgrammingWithThreads)) +
              static_cast<int>(covers(PdcConcept::kInterProcessCommunication)) +
              static_cast<int>(covers(PdcConcept::kAtomicity)) >= 2;

  std::set<Pillar> pillars;
  for (PdcConcept topic : covered) pillars.insert(pillar_of(topic));
  for (Pillar pillar :
       {Pillar::kConcurrency, Pillar::kParallelism, Pillar::kDistribution}) {
    if (pillars.count(pillar) == 0) result.missing_pillars.push_back(pillar);
  }
  result.pdc = result.missing_pillars.empty();
  return result;
}

const std::set<PdcConcept>& template_topics(CourseCategory category) {
  using C = PdcConcept;
  // Inverse of Table I for its five columns; §III/§IV content for the rest.
  static const std::map<CourseCategory, std::set<PdcConcept>> templates{
      {CourseCategory::kSystemsProgramming,
       {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
        C::kSharedMemoryProgramming, C::kInterProcessCommunication,
        C::kAtomicity, C::kSharedVsDistributedMemory,
        C::kClientServerProgramming, C::kMemoryAndCaching}},
      {CourseCategory::kComputerOrganization,
       {C::kParallelismAndConcurrency, C::kPerformanceMeasurement,
        C::kMulticoreProcessors, C::kSharedVsDistributedMemory,
        C::kSimdVectorProcessors, C::kInstructionLevelParallelism,
        C::kFlynnsTaxonomy, C::kMemoryAndCaching}},
      {CourseCategory::kOperatingSystems,
       {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
        C::kSharedMemoryProgramming, C::kInterProcessCommunication,
        C::kAtomicity, C::kSharedVsDistributedMemory, C::kMemoryAndCaching}},
      {CourseCategory::kDatabaseSystems,
       {C::kTransactionsProcessing, C::kParallelismAndConcurrency}},
      {CourseCategory::kComputerNetworks,
       {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
        C::kInterProcessCommunication, C::kClientServerProgramming}},
      {CourseCategory::kParallelProgramming,
       {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
        C::kSharedMemoryProgramming, C::kPerformanceMeasurement,
        C::kMulticoreProcessors, C::kSimdVectorProcessors,
        C::kSharedVsDistributedMemory, C::kInterProcessCommunication}},
      {CourseCategory::kAlgorithms,
       {C::kParallelismAndConcurrency, C::kPerformanceMeasurement}},
      {CourseCategory::kProgrammingLanguages,
       {C::kProgrammingWithThreads, C::kParallelismAndConcurrency,
        C::kClientServerProgramming}},
      {CourseCategory::kSoftwareEngineering,
       {C::kParallelismAndConcurrency, C::kClientServerProgramming}},
      {CourseCategory::kDistributedSystems,
       {C::kInterProcessCommunication, C::kClientServerProgramming,
        C::kSharedVsDistributedMemory, C::kParallelismAndConcurrency}},
      {CourseCategory::kIntroProgramming, {C::kProgrammingWithThreads}},
  };
  const auto it = templates.find(category);
  PDC_CHECK_MSG(it != templates.end(), "no template for category");
  return it->second;
}

Course make_template_course(CourseCategory category, bool required) {
  Course course;
  course.code = std::string("C-") + to_string(category);
  course.title = to_string(category);
  course.category = category;
  course.required = required;
  course.topics = template_topics(category);
  return course;
}

}  // namespace pdc::core
