// The three case-study programs of paper §IV as curriculum models.
//
// LAU: dedicated required parallel-programming course (multicore + MPI +
// manycore/SIMT) plus PDC in OS / organization / DBMS. AUC: no dedicated
// course — PDC scattered across fundamentals, architecture (incl.
// Tomasulo), OS, SE, PL (the distributed-systems course is required only
// for the CE program). RIT: a single required breadth course (Concepts of
// Parallel and Distributed Systems) plus thread coverage in earlier
// required courses.
#pragma once

#include "core/curriculum.hpp"

namespace pdc::core {

Program lau_program();
Program auc_program();
Program rit_program();

/// All three, for iteration in tests/benches.
std::vector<Program> case_study_programs();

}  // namespace pdc::core
