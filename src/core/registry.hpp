// Topic -> exemplar registry: where in this repository each PDC topic is
// implemented, tested, and measured.
//
// This is the bridge between the paper's curriculum taxonomy and the
// executable library: an instructor (or test) can ask "where do I show
// students X?" and get module paths, the test suite covering it, and the
// bench that measures it. Completeness — every taxonomy topic has at
// least one exemplar — is enforced by tests/core_test.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace pdc::core {

struct Exemplar {
  std::string module;       // e.g. "concurrency/semaphore.hpp"
  std::string description;  // what it demonstrates
  std::string test;         // gtest binary::suite covering it
  std::string bench;        // bench binary measuring it ("" if test-only)
};

/// Exemplars for one topic (at least one per topic).
const std::vector<Exemplar>& exemplars_for(PdcConcept topic);

/// The whole registry.
const std::map<PdcConcept, std::vector<Exemplar>>& exemplar_registry();

}  // namespace pdc::core
