#include "core/registry.hpp"

#include "support/check.hpp"

namespace pdc::core {

const std::map<PdcConcept, std::vector<Exemplar>>& exemplar_registry() {
  using C = PdcConcept;
  static const std::map<PdcConcept, std::vector<Exemplar>> registry{
      {C::kProgrammingWithThreads,
       {{"parallel/thread_pool.hpp", "task-based thread management",
         "parallel_test::ThreadPool", "lab_lau_multicore"},
        {"concurrency/barrier.hpp", "thread phase synchronization",
         "concurrency_test::CyclicBarrier", ""}}},
      {C::kTransactionsProcessing,
       {{"db/transaction.hpp", "strict-2PL transactions with rollback",
         "db_test::Transaction", "perf_txn_sched"},
        {"db/timestamp.hpp", "timestamp-ordering scheduler",
         "db_test::TimestampOrdering", "perf_txn_sched"}}},
      {C::kParallelismAndConcurrency,
       {{"parallel/parallel_for.hpp", "worksharing with schedules",
         "parallel_test::ScheduleTest", "lab_lau_multicore"},
        {"parallel/task_graph.hpp", "dataflow task parallelism",
         "parallel_test::TaskGraph", "perf_amdahl_speedup"}}},
      {C::kSharedMemoryProgramming,
       {{"concurrency/monitor.hpp", "monitor-guarded shared state",
         "concurrency_test::Monitor", ""},
        {"parallel/parallel_for.hpp", "shared-array parallel loops",
         "parallel_test::ParallelScan", "lab_lau_multicore"}}},
      {C::kInterProcessCommunication,
       {{"mp/comm.hpp", "message passing: p2p + collectives",
         "mp_test::P2P", "perf_collectives"},
        {"net/network.hpp", "sockets over a simulated fabric",
         "net_test::Datagram", "lab_rit_arq"}}},
      {C::kAtomicity,
       {{"concurrency/spinlock.hpp", "atomic RMW lock construction",
         "concurrency_test::Spinlock", "perf_locks"},
        {"concurrency/semaphore.hpp", "semaphores and mutual exclusion",
         "concurrency_test::Semaphore", "perf_locks"}}},
      {C::kPerformanceMeasurement,
       {{"arch/models.hpp", "Amdahl/Gustafson/Karp–Flatt",
         "arch_test::Models", "perf_amdahl_speedup"}}},
      {C::kMulticoreProcessors,
       {{"arch/mesi.hpp", "private caches with MESI coherence",
         "arch_test::Mesi", "perf_coherence"}}},
      {C::kSharedVsDistributedMemory,
       {{"mp/comm.hpp", "distributed-memory model over shared hardware",
         "mp_test::CollectiveTest", "perf_collectives"},
        {"dist/balance.hpp", "distribution-aware placement",
         "dist_test::Balance", "lab_rit_netserver"}}},
      {C::kSimdVectorProcessors,
       {{"simt/device.hpp", "SIMT manycore execution model",
         "simt_test::Device", "lab_lau_simt"},
        {"simt/occupancy.hpp", "occupancy/resource modelling",
         "simt_test::Occupancy", "lab_lau_simt"}}},
      {C::kInstructionLevelParallelism,
       {{"arch/pipeline.hpp", "5-stage pipeline hazards & prediction",
         "arch_test::Pipeline", "lab_auc_pipeline"},
        {"arch/tomasulo.hpp", "dynamic scheduling (Tomasulo, ROB)",
         "arch_test::Tomasulo", "lab_auc_tomasulo"}}},
      {C::kFlynnsTaxonomy,
       {{"arch/flynn.hpp", "SISD/SIMD/MISD/MIMD classification",
         "arch_test::Flynn", ""}}},
      {C::kClientServerProgramming,
       {{"net/server.hpp", "request-response servers and RPC",
         "net_test::ServerModelTest", "lab_rit_netserver"}}},
      {C::kMemoryAndCaching,
       {{"arch/cache.hpp", "set-associative cache behaviour",
         "arch_test::Cache", "perf_coherence"}}},
  };
  return registry;
}

const std::vector<Exemplar>& exemplars_for(PdcConcept topic) {
  const auto& registry = exemplar_registry();
  const auto it = registry.find(topic);
  PDC_CHECK_MSG(it != registry.end(), "topic missing from registry");
  return it->second;
}

}  // namespace pdc::core
