// VirtualClock: simulated time for deterministic concurrency tests.
//
// Under a SimScheduler, timed waits (BoundedQueue::pop_for, semaphore
// try_acquire_for, ...) do not sleep on the wall clock; they park the
// logical thread with a deadline on this clock, and the scheduler advances
// it in one jump when every runnable thread is exhausted. A 2-second
// timeout test therefore completes in microseconds and — more importantly —
// completes at exactly the same logical instant on every run.
#pragma once

#include "support/check.hpp"

namespace pdc::testkit {

class VirtualClock {
 public:
  VirtualClock() = default;

  /// Simulated seconds since the start of the run.
  [[nodiscard]] double now() const { return now_; }

  /// Jumps forward to `t` (monotonic; never moves backwards).
  void advance_to(double t) {
    PDC_CHECK_MSG(t >= now_, "virtual clock cannot run backwards");
    now_ = t;
  }

  /// Jumps forward by `seconds` (>= 0).
  void advance(double seconds) {
    PDC_CHECK(seconds >= 0.0);
    now_ += seconds;
  }

 private:
  double now_ = 0.0;
};

}  // namespace pdc::testkit
