#include "testkit/schedule_explorer.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::testkit {

std::string ExplorationResult::describe() const {
  std::ostringstream os;
  if (!failure_found) {
    os << "no failure in " << runs << " runs";
    return os.str();
  }
  os << "failure at seed " << failing_seed << " after " << runs
     << " runs: " << failure << '\n'
     << failing_report.format_minimal_trace();
  return os.str();
}

ScheduleExplorer::ScheduleExplorer(ExplorerConfig config) : config_(config) {
  PDC_CHECK(config_.iterations > 0);
}

RunReport ScheduleExplorer::run_once(std::uint64_t seed,
                                     const std::function<RunPlan()>& make_run,
                                     bool record_trace,
                                     std::string* failure) const {
  RunPlan plan = make_run();
  PDC_CHECK_MSG(!plan.threads.empty(), "RunPlan has no threads");
  SchedulerOptions options;
  options.policy = config_.policy;
  options.seed = seed;
  options.preemption_bound = config_.preemption_bound;
  options.max_steps = config_.max_steps;
  options.record_trace = record_trace;
  SimScheduler scheduler(options);
  RunReport report = scheduler.run(std::move(plan.threads));

  std::string text;
  if (report.deadlocked) {
    text = "deadlock: every live thread parked with no deadline";
  } else if (report.step_limit_hit) {
    text = "step limit exceeded (possible livelock)";
  } else if (!report.error.empty()) {
    text = report.error;
  } else if (plan.check) {
    text = plan.check();
  }
  if (failure != nullptr) *failure = text;
  return report;
}

ExplorationResult ScheduleExplorer::explore(
    const std::function<RunPlan()>& make_run) const {
  ExplorationResult result;
  // SplitMix expansion decorrelates consecutive seeds so iteration i and
  // i+1 explore genuinely different schedules.
  support::SplitMix64 seeds(config_.base_seed);
  for (std::size_t i = 0; i < config_.iterations; ++i) {
    const std::uint64_t seed = seeds.next();
    ++result.runs;
    std::string failure;
    (void)run_once(seed, make_run, /*record_trace=*/false, &failure);
    if (failure.empty()) continue;
    // Replay the failing seed with tracing on; determinism means the same
    // failure must reappear, now with its interleaving recorded.
    std::string replay_failure;
    result.failing_report =
        run_once(seed, make_run, /*record_trace=*/true, &replay_failure);
    PDC_CHECK_MSG(!replay_failure.empty(),
                  "failing seed did not reproduce on replay — the run plan "
                  "is not deterministic (shared state across runs? wall-clock "
                  "timing? a real thread outside the scheduler?)");
    result.failure_found = true;
    result.failing_seed = seed;
    result.failure = replay_failure;
    return result;
  }
  return result;
}

RunReport ScheduleExplorer::replay(std::uint64_t seed,
                                   const std::function<RunPlan()>& make_run,
                                   std::string* failure) const {
  return run_once(seed, make_run, /*record_trace=*/true, failure);
}

}  // namespace pdc::testkit
