#include "testkit/linearizability.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "support/check.hpp"

namespace pdc::testkit {

const char* to_string(KvOp::Kind kind) {
  switch (kind) {
    case KvOp::Kind::kPut: return "put";
    case KvOp::Kind::kGet: return "get";
    case KvOp::Kind::kCas: return "cas";
  }
  return "?";
}

const char* to_string(LinOutcome outcome) {
  switch (outcome) {
    case LinOutcome::kLinearizable: return "linearizable";
    case LinOutcome::kViolation: return "violation";
    case LinOutcome::kStateLimit: return "state-limit";
  }
  return "?";
}

std::string KvOp::describe() const {
  std::ostringstream os;
  os << "[client " << client << "] " << to_string(kind) << '(' << key;
  if (kind == KvOp::Kind::kPut) os << '=' << arg;
  if (kind == KvOp::Kind::kCas) os << ", " << expected << "->" << arg;
  os << ") @ [" << invoke << ", ";
  if (pending()) {
    os << "pending)";
  } else {
    os << ret << ')';
  }
  if (!pending()) {
    switch (kind) {
      case KvOp::Kind::kPut: os << " -> ok"; break;
      case KvOp::Kind::kGet:
        if (ok) {
          os << " -> \"" << result << '"';
        } else {
          os << " -> absent";
        }
        break;
      case KvOp::Kind::kCas: os << (ok ? " -> swapped" : " -> failed"); break;
    }
  }
  return os.str();
}

// ----------------------------------------------------------- HistoryRecorder

std::size_t HistoryRecorder::invoke(KvOp op) {
  op.invoke = clock_.fetch_add(1, std::memory_order_relaxed);
  op.ret = KvOp::kPendingReturn;
  std::scoped_lock lock(mutex_);
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void HistoryRecorder::complete(std::size_t ticket, bool ok,
                               std::string result) {
  const std::uint64_t now = clock_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lock(mutex_);
  PDC_CHECK_MSG(ticket < ops_.size(), "unknown history ticket");
  KvOp& op = ops_[ticket];
  PDC_CHECK_MSG(op.pending(), "operation completed twice");
  op.ok = ok;
  op.result = std::move(result);
  op.ret = now;
}

std::vector<KvOp> HistoryRecorder::history() const {
  std::scoped_lock lock(mutex_);
  return ops_;
}

std::size_t HistoryRecorder::size() const {
  std::scoped_lock lock(mutex_);
  return ops_.size();
}

void HistoryRecorder::clear() {
  std::scoped_lock lock(mutex_);
  ops_.clear();
}

// ------------------------------------------------------------- WGL search

namespace {

/// Sequential register state for one key: absent until the first put.
struct RegState {
  bool has = false;
  std::string value;
};

/// Applies `op` to `state`; returns false when the recorded outcome is
/// impossible at this point in the candidate linearization. Pending ops
/// have no recorded outcome, so only their effect is modelled.
bool apply(const KvOp& op, RegState& state) {
  switch (op.kind) {
    case KvOp::Kind::kPut:
      state.has = true;
      state.value = op.arg;
      return true;
    case KvOp::Kind::kGet:
      if (op.pending()) return true;  // no observed output to contradict
      if (!op.ok) return !state.has;
      return state.has && state.value == op.result;
    case KvOp::Kind::kCas: {
      const bool would_succeed = state.has && state.value == op.expected;
      if (would_succeed) {
        state.value = op.arg;
      }
      if (op.pending()) return true;
      return would_succeed == op.ok;
    }
  }
  return false;
}

/// One key's WGL search. `ops` is the per-key subhistory.
/// Returns kLinearizable / kViolation / kStateLimit; adds visited states
/// to `states_explored`.
LinOutcome check_key(const std::vector<KvOp>& ops, std::size_t max_states,
                     std::size_t& states_explored) {
  const std::size_t n = ops.size();
  const std::size_t words = (n + 63) / 64;

  std::size_t completed = 0;
  for (const KvOp& op : ops) {
    if (!op.pending()) ++completed;
  }
  if (completed == 0) return LinOutcome::kLinearizable;

  struct Frame {
    std::vector<std::uint64_t> mask;  // chosen (linearized) ops
    RegState state;
    std::size_t chosen_completed = 0;
    std::size_t next = 0;  // next candidate index to try
  };
  auto test_bit = [&](const std::vector<std::uint64_t>& mask, std::size_t i) {
    return (mask[i >> 6] >> (i & 63)) & 1u;
  };
  auto set_bit = [](std::vector<std::uint64_t>& mask, std::size_t i) {
    mask[i >> 6] |= std::uint64_t{1} << (i & 63);
  };
  auto memo_key = [&](const std::vector<std::uint64_t>& mask,
                      const RegState& state) {
    std::string key(reinterpret_cast<const char*>(mask.data()),
                    mask.size() * sizeof(std::uint64_t));
    key.push_back(state.has ? '\1' : '\0');
    key += state.value;
    return key;
  };

  std::unordered_set<std::string> seen;
  std::vector<Frame> stack;
  stack.push_back(Frame{std::vector<std::uint64_t>(words, 0), RegState{}, 0, 0});
  seen.insert(memo_key(stack.back().mask, stack.back().state));

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.chosen_completed == completed) return LinOutcome::kLinearizable;

    // Earliest return among unchosen completed ops: anything invoked after
    // it cannot be linearized yet (that op strictly precedes it).
    std::uint64_t min_ret = KvOp::kPendingReturn;
    for (std::size_t i = 0; i < n; ++i) {
      if (!test_bit(frame.mask, i) && !ops[i].pending()) {
        min_ret = std::min(min_ret, ops[i].ret);
      }
    }

    bool descended = false;
    while (frame.next < n) {
      const std::size_t i = frame.next++;
      if (test_bit(frame.mask, i)) continue;
      // Minimality: no unchosen completed op returned before i's invoke.
      // (i itself can never precede itself: invoke < ret.)
      if (ops[i].invoke > min_ret) continue;
      RegState next_state = frame.state;
      if (!apply(ops[i], next_state)) continue;
      std::vector<std::uint64_t> next_mask = frame.mask;
      set_bit(next_mask, i);
      std::string memo = memo_key(next_mask, next_state);
      if (!seen.insert(std::move(memo)).second) continue;
      if (++states_explored > max_states) return LinOutcome::kStateLimit;
      const std::size_t chosen =
          frame.chosen_completed + (ops[i].pending() ? 0 : 1);
      stack.push_back(Frame{std::move(next_mask), std::move(next_state),
                            chosen, 0});
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }
  return LinOutcome::kViolation;
}

}  // namespace

std::string LinearizabilityReport::describe() const {
  std::ostringstream os;
  os << to_string(outcome) << " (" << states_explored << " states explored)";
  if (outcome == LinOutcome::kViolation) {
    os << "\nno linearization exists for key \"" << violating_key << "\":";
    for (const KvOp& op : violating_ops) {
      os << "\n  " << op.describe();
    }
  }
  return os.str();
}

LinearizabilityChecker::LinearizabilityChecker(CheckerConfig config)
    : config_(config) {}

LinearizabilityReport LinearizabilityChecker::check(
    const std::vector<KvOp>& history) const {
  LinearizabilityReport report;

  // Compositionality: partition by key and check each subhistory alone.
  std::map<std::string, std::vector<KvOp>> by_key;
  for (const KvOp& op : history) {
    PDC_CHECK_MSG(op.pending() || op.invoke < op.ret,
                  "operation must return after it was invoked");
    // A pending get neither constrains nor changes the register — drop it
    // up front instead of doubling the search space.
    if (op.pending() && op.kind == KvOp::Kind::kGet) continue;
    by_key[op.key].push_back(op);
  }

  for (auto& [key, ops] : by_key) {
    // Stable candidate order: by invoke time (ties cannot happen — the
    // recorder's clock is strictly monotonic).
    std::sort(ops.begin(), ops.end(), [](const KvOp& a, const KvOp& b) {
      return a.invoke < b.invoke;
    });
    const LinOutcome outcome =
        check_key(ops, config_.max_states, report.states_explored);
    if (outcome != LinOutcome::kLinearizable) {
      report.outcome = outcome;
      if (outcome == LinOutcome::kViolation) {
        report.violating_key = key;
        report.violating_ops = std::move(ops);
      }
      return report;
    }
  }
  return report;
}

}  // namespace pdc::testkit
