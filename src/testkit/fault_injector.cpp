#include "testkit/fault_injector.hpp"

#include "support/check.hpp"

namespace pdc::testkit {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {
  PDC_CHECK(config_.drop >= 0.0 && config_.drop < 1.0);
  PDC_CHECK(config_.duplicate >= 0.0 && config_.duplicate <= 1.0);
  PDC_CHECK(config_.reorder >= 0.0 && config_.reorder <= 1.0);
  PDC_CHECK(config_.delay_ms >= 0.0 && config_.jitter_ms >= 0.0);
  PDC_CHECK(config_.reorder_ms >= 0.0 && config_.reorder_after >= 1);
}

FaultDecision FaultInjector::next() {
  std::scoped_lock lock(mutex_);
  ++stats_.messages;
  FaultDecision decision;
  // One draw per knob, in a fixed order, so a decision stream depends only
  // on the seed and how many messages came before — not on which faults
  // earlier messages happened to suffer.
  const bool drop = rng_.bernoulli(config_.drop);
  const bool duplicate = rng_.bernoulli(config_.duplicate);
  const bool reorder = rng_.bernoulli(config_.reorder);
  const double jitter =
      config_.jitter_ms > 0.0 ? rng_.uniform(0.0, config_.jitter_ms) : 0.0;
  if (drop) {
    ++stats_.dropped;
    decision.drop = true;
    return decision;
  }
  if (duplicate) {
    ++stats_.duplicated;
    decision.copies = 2;
  }
  if (reorder) {
    ++stats_.reordered;
    decision.reordered = true;
  }
  decision.extra_delay_ms = config_.delay_ms + jitter +
                            (decision.reordered ? config_.reorder_ms : 0.0);
  return decision;
}

FaultDecision FaultInjector::next(int src, int dst) {
  {
    std::scoped_lock lock(mutex_);
    if (partitioned_ && !reachable_locked(src, dst)) {
      ++stats_.messages;
      ++stats_.dropped;
      ++stats_.partitioned;
      FaultDecision decision;
      decision.drop = true;
      return decision;
    }
  }
  return next();
}

void FaultInjector::partition(const std::vector<std::vector<int>>& groups) {
  std::scoped_lock lock(mutex_);
  group_of_.clear();
  int id = 0;
  for (const auto& group : groups) {
    for (int rank : group) {
      PDC_CHECK_MSG(group_of_.emplace(rank, id).second,
                    "rank appears in two partition groups");
    }
    ++id;
  }
  partitioned_ = true;
}

void FaultInjector::heal() {
  std::scoped_lock lock(mutex_);
  partitioned_ = false;
  group_of_.clear();
}

bool FaultInjector::reachable(int src, int dst) const {
  std::scoped_lock lock(mutex_);
  return !partitioned_ || reachable_locked(src, dst);
}

FaultStats FaultInjector::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace pdc::testkit
