// Instrumentation hooks the library's synchronization primitives call at
// their synchronization points.
//
// Outside a SimScheduler run every hook is a no-op costing one relaxed
// atomic load, so production and bench behaviour is unchanged. Inside a
// run (tests/testkit_test, tests/stress_test) the hooks hand control to
// the scheduler, which decides — deterministically, from a seed — which
// logical thread runs next:
//
//  - yield_point(label): a preemption point. The policy may switch to
//    another thread here.
//  - spin_yield(label): a busy-wait loop body. Always rotates to another
//    runnable thread so a spinning sim thread cannot starve the holder.
//  - wait/wait_for(lock, cv, [timeout,] pred): guarded condition wait.
//    Sim threads park in the scheduler (wait_for against the virtual
//    clock); everyone else falls through to the real condition variable.
//  - notify_one/notify_all(cv): signals the real condition variable and
//    marks parked sim threads eligible to re-check their predicates.
//
// The contract mirrors std::condition_variable with predicate loops, so
// instrumented code stays correct (and spurious-wakeup tolerant) under
// both real and simulated execution.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace pdc::testkit {

namespace detail {

/// True while any SimScheduler::run is in progress (process-global; one
/// scheduler may be active at a time).
extern std::atomic<bool> g_sim_active;

/// True when the calling thread is a logical thread of the active run.
[[nodiscard]] bool current_thread_is_sim() noexcept;

void yield_slow(const char* label);
void spin_slow(const char* label);
/// Parks the calling sim thread until a notify makes it runnable again.
void block_slow(const char* label);
/// Parks with a virtual-clock deadline; returns true once the deadline
/// has been reached (the thread may also resume earlier on a notify).
bool block_until_slow(const char* label, double deadline);
void notify_slow();
/// Virtual-clock reading for the active run (0.0 when none).
[[nodiscard]] double clock_now_slow();

inline bool sim_thread_active() noexcept {
  return g_sim_active.load(std::memory_order_relaxed) && current_thread_is_sim();
}

}  // namespace detail

/// Preemption point (see file comment). Labels must be string literals —
/// they are stored, not copied, into schedule traces.
inline void yield_point(const char* label = "") {
  if (detail::g_sim_active.load(std::memory_order_relaxed)) {
    detail::yield_slow(label);
  }
}

/// Busy-wait loop body: forces a switch to another runnable thread.
inline void spin_yield(const char* label = "") {
  if (detail::g_sim_active.load(std::memory_order_relaxed)) {
    detail::spin_slow(label);
  }
}

/// Cooperative pause inside a polling loop (retry/timeout protocols that
/// poll a mailbox rather than wait on a condition variable). Off-sim it
/// yields the OS thread. Under the sim it parks with a virtual-clock
/// deadline `seconds` ahead — the crucial difference from spin_yield:
/// when every thread is waiting on protocol timeouts, the parked
/// deadlines are what let the scheduler advance the virtual clock instead
/// of spinning to the step limit.
inline void poll_pause(const char* label, double seconds = 50e-6) {
  if (detail::sim_thread_active()) {
    detail::block_until_slow(label, detail::clock_now_slow() + seconds);
  } else {
    std::this_thread::yield();
  }
}

/// Simulated time in seconds (wall-clock independent); 0.0 off-sim.
inline double sim_now() {
  if (detail::g_sim_active.load(std::memory_order_relaxed)) {
    return detail::clock_now_slow();
  }
  return 0.0;
}

/// Guarded condition wait. `pred` is always evaluated with `lock` held.
template <typename Pred>
void wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
          Pred pred, const char* label = "wait") {
  if (!detail::sim_thread_active()) {
    cv.wait(lock, std::move(pred));
    return;
  }
  while (!pred()) {
    lock.unlock();
    // Only one sim thread executes at a time, so no state change (and no
    // notification) can slip in between the predicate check and the park.
    detail::block_slow(label);
    lock.lock();
  }
}

/// Timed guarded wait; returns pred() at exit exactly like
/// std::condition_variable::wait_for. Sim threads time out against the
/// virtual clock, not the wall clock.
template <typename Rep, typename Period, typename Pred>
bool wait_for(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
              std::chrono::duration<Rep, Period> timeout, Pred pred,
              const char* label = "wait_for") {
  if (!detail::sim_thread_active()) {
    return cv.wait_for(lock, timeout, std::move(pred));
  }
  const double deadline =
      detail::clock_now_slow() +
      std::chrono::duration_cast<std::chrono::duration<double>>(timeout).count();
  for (;;) {
    if (pred()) return true;
    lock.unlock();
    const bool expired = detail::block_until_slow(label, deadline);
    lock.lock();
    if (expired) return pred();
  }
}

/// Signals `cv` and wakes parked sim threads to re-check their predicates.
/// Call while still holding the mutex that guards the changed state: the
/// unlock-then-notify variant races with waiter-side destruction of the
/// condition variable (see BoundedQueue for the full story).
inline void notify_one(std::condition_variable& cv) {
  cv.notify_one();
  if (detail::g_sim_active.load(std::memory_order_relaxed)) {
    detail::notify_slow();
  }
}

inline void notify_all(std::condition_variable& cv) {
  cv.notify_all();
  if (detail::g_sim_active.load(std::memory_order_relaxed)) {
    detail::notify_slow();
  }
}

}  // namespace pdc::testkit
