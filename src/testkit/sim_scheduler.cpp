#include "testkit/sim_scheduler.hpp"

#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "testkit/hooks.hpp"
#include "testkit/virtual_clock.hpp"

namespace pdc::testkit {

namespace detail {
std::atomic<bool> g_sim_active{false};
}  // namespace detail

namespace {

/// Thrown through a logical thread's stack to unwind it when the run is
/// aborted (deadlock, step limit). Caught in the thread trampoline only.
struct AbortRun {};

enum class ThreadState : std::uint8_t { kReady, kRunning, kParked, kFinished };

struct ThreadRec {
  std::size_t id = 0;
  ThreadState state = ThreadState::kReady;
  bool notified = false;       // a notify arrived while parked
  bool has_deadline = false;   // parked with a virtual-clock deadline
  double deadline = 0.0;
  std::thread os;
};

/// All mutable scheduling state for one run. Exactly one Engine is live
/// process-wide while SimScheduler::run executes (enforced below).
struct Engine {
  explicit Engine(const SchedulerOptions& options)
      : opts(options), rng(options.seed) {}

  const SchedulerOptions& opts;
  pdc::support::Rng rng;
  VirtualClock clock;

  std::mutex m;
  std::condition_variable cv;  // every handoff and the final join wait
  std::vector<std::unique_ptr<ThreadRec>> recs;
  std::size_t running = kNoThread;
  std::size_t last_running = kNoThread;
  std::size_t finished = 0;
  bool aborting = false;
  int preemptions_used = 0;

  RunReport report;

  // ------------------------------------------------------------- tracing

  void trace(TraceKind kind, std::size_t thread, const char* label) {
    if (!opts.record_trace) return;
    if (report.trace.size() >= opts.max_trace_events) {
      report.trace_truncated = true;
      return;
    }
    report.trace.push_back(
        TraceEvent{report.steps, thread, kind, label, clock.now()});
  }

  // ---------------------------------------------------------- scheduling

  [[nodiscard]] bool runnable(const ThreadRec& rec) const {
    if (rec.state == ThreadState::kReady) return true;
    if (rec.state != ThreadState::kParked) return false;
    return rec.notified || (rec.has_deadline && rec.deadline <= clock.now());
  }

  [[nodiscard]] std::vector<std::size_t> collect_runnable() const {
    std::vector<std::size_t> ids;
    for (const auto& rec : recs) {
      if (runnable(*rec)) ids.push_back(rec->id);
    }
    return ids;
  }

  /// Next runnable id strictly after `current` in cyclic id order.
  [[nodiscard]] std::size_t after(const std::vector<std::size_t>& ids,
                                  std::size_t current) const {
    for (std::size_t id : ids) {
      if (id > current) return id;
    }
    return ids.front();
  }

  /// Policy decision at a preemption point. `current` is the yielding
  /// thread when it remains runnable, kNoThread otherwise. `force_switch`
  /// models a spin loop: never re-pick the spinner while others can run.
  [[nodiscard]] std::size_t choose(const std::vector<std::size_t>& ids,
                                   std::size_t current, bool force_switch) {
    PDC_CHECK(!ids.empty());
    if (ids.size() == 1) return ids.front();
    if (force_switch && current != kNoThread) {
      return after(ids, current);  // deterministic rotation off the spinner
    }
    switch (opts.policy) {
      case SchedulePolicy::kRoundRobin:
        return current == kNoThread ? ids.front() : after(ids, current);
      case SchedulePolicy::kRandom:
        return ids[rng.index(ids.size())];
      case SchedulePolicy::kPreemptionBounded: {
        if (current == kNoThread) return ids[rng.index(ids.size())];
        if (preemptions_used >= opts.preemption_bound) return current;
        if (!rng.bernoulli(0.25)) return current;
        // Spend one preemption: pick uniformly among the other threads.
        std::vector<std::size_t> others;
        for (std::size_t id : ids) {
          if (id != current) others.push_back(id);
        }
        ++preemptions_used;
        return others[rng.index(others.size())];
      }
    }
    return ids.front();  // unreachable
  }

  /// Advances the virtual clock to the earliest parked deadline, if any.
  /// Returns true when that made at least one thread runnable.
  bool advance_clock() {
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& rec : recs) {
      if (rec->state == ThreadState::kParked && rec->has_deadline) {
        earliest = std::min(earliest, rec->deadline);
      }
    }
    if (earliest == std::numeric_limits<double>::infinity()) return false;
    clock.advance_to(earliest);
    trace(TraceKind::kClockAdvance, kNoThread, "clock");
    return true;
  }

  void initiate_abort() {
    aborting = true;
    cv.notify_all();
  }

  /// Picks and dispatches the next thread, advancing the clock when every
  /// runnable thread is exhausted; declares deadlock when nothing can ever
  /// run again. Must be called with `m` held by a thread that is no longer
  /// kRunning (it parked, yielded, or finished).
  void dispatch(std::size_t current, bool force_switch) {
    auto ids = collect_runnable();
    if (ids.empty() && advance_clock()) ids = collect_runnable();
    if (ids.empty()) {
      if (finished == recs.size()) return;  // run complete; main cv-waits
      report.deadlocked = true;
      trace(TraceKind::kDeadlock, kNoThread, "deadlock");
      initiate_abort();
      return;
    }
    const std::size_t next = choose(ids, current, force_switch);
    auto& rec = *recs[next];
    rec.state = ThreadState::kRunning;
    rec.notified = false;
    rec.has_deadline = false;
    running = next;
    if (next != last_running) {
      ++report.context_switches;
      trace(TraceKind::kSchedule, next, "run");
    }
    last_running = next;
    cv.notify_all();
  }

  /// Blocks the calling logical thread until it is scheduled again.
  /// Throws AbortRun when the run is being torn down instead.
  void wait_for_turn(ThreadRec& rec, std::unique_lock<std::mutex>& lock) {
    cv.wait(lock, [&] { return running == rec.id || aborting; });
    if (running != rec.id) throw AbortRun{};
    if (aborting) throw AbortRun{};
  }

  void bump_step() {
    if (++report.steps > opts.max_steps && !report.step_limit_hit) {
      report.step_limit_hit = true;
      initiate_abort();
      throw AbortRun{};
    }
  }

  // ------------------------------------------------- hook implementations

  void yield(ThreadRec& rec, const char* label, bool force_switch) {
    std::unique_lock lock(m);
    if (aborting) throw AbortRun{};
    bump_step();
    trace(TraceKind::kSchedule, rec.id, label);
    rec.state = ThreadState::kReady;
    dispatch(rec.id, force_switch);
    if (running == rec.id) {
      rec.state = ThreadState::kRunning;  // policy kept us running
      return;
    }
    wait_for_turn(rec, lock);
  }

  void park(ThreadRec& rec, const char* label, bool has_deadline,
            double deadline) {
    std::unique_lock lock(m);
    if (aborting) throw AbortRun{};
    bump_step();
    rec.state = ThreadState::kParked;
    rec.notified = false;
    rec.has_deadline = has_deadline;
    rec.deadline = deadline;
    trace(TraceKind::kBlock, rec.id, label);
    dispatch(kNoThread, false);
    wait_for_turn(rec, lock);
  }

  void notify() {
    std::unique_lock lock(m);
    bool woke_any = false;
    for (auto& rec : recs) {
      if (rec->state == ThreadState::kParked && !rec->notified) {
        rec->notified = true;
        woke_any = true;
      }
    }
    if (woke_any) trace(TraceKind::kNotify, running, "notify");
  }

  void set_error(const std::string& message) {
    std::unique_lock lock(m);
    if (report.error.empty()) report.error = message;
  }

  void finish_thread(ThreadRec& rec) {
    std::unique_lock lock(m);
    rec.state = ThreadState::kFinished;
    ++finished;
    trace(TraceKind::kFinish, rec.id, "exit");
    if (finished == recs.size()) {
      running = kNoThread;
      cv.notify_all();
      return;
    }
    if (aborting) {
      cv.notify_all();  // let the remaining parked threads unwind
      return;
    }
    dispatch(kNoThread, false);
  }
};

/// The active engine, guarded for cross-thread notify during teardown.
std::mutex g_engine_mutex;
Engine* g_engine = nullptr;

struct ThreadCtx {
  Engine* engine = nullptr;
  ThreadRec* rec = nullptr;
};
thread_local ThreadCtx t_ctx;

void thread_trampoline(Engine& engine, ThreadRec& rec,
                       const std::function<void()>& body) {
  t_ctx = ThreadCtx{&engine, &rec};
  bool run_body = true;
  {
    std::unique_lock lock(engine.m);
    try {
      engine.wait_for_turn(rec, lock);
    } catch (const AbortRun&) {
      run_body = false;
    }
  }
  if (run_body) {
    try {
      body();
    } catch (const AbortRun&) {
      // Torn down mid-run (deadlock or step limit); already reported.
    } catch (const std::exception& e) {
      engine.set_error(e.what());
    } catch (...) {
      engine.set_error("unknown exception escaped a logical thread");
    }
  }
  engine.finish_thread(rec);
  t_ctx = ThreadCtx{};
}

}  // namespace

namespace detail {

bool current_thread_is_sim() noexcept { return t_ctx.rec != nullptr; }

void yield_slow(const char* label) {
  if (t_ctx.rec == nullptr) return;  // foreign thread during a sim run
  t_ctx.engine->yield(*t_ctx.rec, label, /*force_switch=*/false);
}

void spin_slow(const char* label) {
  if (t_ctx.rec == nullptr) return;
  t_ctx.engine->yield(*t_ctx.rec, label, /*force_switch=*/true);
}

void block_slow(const char* label) {
  PDC_CHECK(t_ctx.rec != nullptr);
  t_ctx.engine->park(*t_ctx.rec, label, /*has_deadline=*/false, 0.0);
}

bool block_until_slow(const char* label, double deadline) {
  PDC_CHECK(t_ctx.rec != nullptr);
  t_ctx.engine->park(*t_ctx.rec, label, /*has_deadline=*/true, deadline);
  std::unique_lock lock(t_ctx.engine->m);
  return t_ctx.engine->clock.now() >= deadline;
}

void notify_slow() {
  // May be called by any thread (sim or not) while a run is active, and
  // may race with run teardown — hence the registry lock.
  std::scoped_lock registry(g_engine_mutex);
  if (g_engine != nullptr) g_engine->notify();
}

double clock_now_slow() {
  if (t_ctx.engine == nullptr) return 0.0;
  std::unique_lock lock(t_ctx.engine->m);
  return t_ctx.engine->clock.now();
}

}  // namespace detail

const char* to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kRoundRobin: return "round-robin";
    case SchedulePolicy::kRandom: return "random";
    case SchedulePolicy::kPreemptionBounded: return "preemption-bounded";
  }
  return "?";
}

namespace {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSchedule: return "run";
    case TraceKind::kBlock: return "park";
    case TraceKind::kNotify: return "notify";
    case TraceKind::kClockAdvance: return "clock";
    case TraceKind::kFinish: return "exit";
    case TraceKind::kDeadlock: return "DEADLOCK";
  }
  return "?";
}

void format_event(std::ostringstream& os, const TraceEvent& event) {
  os << '#' << event.step << '\t';
  if (event.thread == kNoThread) {
    os << "--";
  } else {
    os << 't' << event.thread;
  }
  os << '\t' << trace_kind_name(event.kind) << '\t' << event.label << "\t@"
     << event.sim_time << '\n';
}

}  // namespace

std::string RunReport::format_trace() const {
  std::ostringstream os;
  os << "seed " << seed << ", " << steps << " steps, " << context_switches
     << " switches\n";
  for (const auto& event : trace) format_event(os, event);
  if (trace_truncated) os << "... (trace truncated)\n";
  return os.str();
}

std::string RunReport::format_minimal_trace() const {
  std::ostringstream os;
  os << "seed " << seed << " minimal interleaving:\n";
  for (const auto& event : trace) {
    switch (event.kind) {
      case TraceKind::kSchedule:
      case TraceKind::kClockAdvance:
      case TraceKind::kDeadlock:
      case TraceKind::kFinish:
        format_event(os, event);
        break;
      default:
        break;
    }
  }
  if (trace_truncated) os << "... (trace truncated)\n";
  return os.str();
}

SimScheduler::SimScheduler(SchedulerOptions options) : options_(options) {
  PDC_CHECK(options_.max_steps > 0);
  PDC_CHECK(options_.preemption_bound >= 0);
}

SimScheduler::~SimScheduler() = default;

RunReport SimScheduler::run(std::vector<std::function<void()>> threads) {
  PDC_CHECK_MSG(!threads.empty(), "SimScheduler::run needs at least one thread");
  PDC_CHECK_MSG(!detail::g_sim_active.load(),
                "only one SimScheduler may be running at a time");

  Engine engine(options_);
  engine.report.seed = options_.seed;
  engine.recs.reserve(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    auto rec = std::make_unique<ThreadRec>();
    rec->id = i;
    engine.recs.push_back(std::move(rec));
  }

  {
    std::scoped_lock registry(g_engine_mutex);
    g_engine = &engine;
    detail::g_sim_active.store(true);
  }

  for (std::size_t i = 0; i < threads.size(); ++i) {
    ThreadRec& rec = *engine.recs[i];
    rec.os = std::thread(
        [&engine, &rec, body = std::move(threads[i])] {
          thread_trampoline(engine, rec, body);
        });
  }

  {
    std::unique_lock lock(engine.m);
    engine.dispatch(kNoThread, false);  // schedule the first thread
    engine.cv.wait(lock, [&] { return engine.finished == engine.recs.size(); });
  }
  for (auto& rec : engine.recs) rec->os.join();

  {
    std::scoped_lock registry(g_engine_mutex);
    g_engine = nullptr;
    detail::g_sim_active.store(false);
  }

  RunReport report = std::move(engine.report);
  report.completed =
      !report.deadlocked && !report.step_limit_hit;
  report.sim_duration = engine.clock.now();
  return report;
}

}  // namespace pdc::testkit
