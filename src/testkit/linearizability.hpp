// LinearizabilityChecker: Wing–Gong / WGL-style search over concurrent
// operation histories against a key-value sequential model.
//
// A history is a set of client operations, each bracketed by logical
// invoke/return timestamps (HistoryRecorder hands them out from one
// process-wide counter, so under testkit::SimScheduler the bracketing is
// deterministic). The history is linearizable iff every operation can be
// assigned a single atomic point between its invoke and return such that
// the resulting sequence is legal for a sequential KV register.
//
// Linearizability is compositional (Herlihy & Wing, Theorem 1): a history
// is linearizable iff each per-key subhistory is. The checker exploits
// this — it partitions by key and runs the WGL search per key, which
// turns an exponential global search into many small ones. Within a key
// the search enumerates "minimal" operations (no other pending-or-
// unlinearized op returned before their invoke), applies them to the
// model, and backtracks on illegal outputs; visited (chosen-set, value)
// states are memoized so diamond-shaped interleavings are explored once.
//
// Operations that never returned (client crashed, run ended) are recorded
// as pending: the checker may linearize them anywhere after their invoke
// or drop them entirely — both futures are searched, which is exactly the
// ambiguity a crashed client leaves behind.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pdc::testkit {

/// One client operation against the replicated KV store.
struct KvOp {
  enum class Kind : std::uint8_t { kPut, kGet, kCas };

  static constexpr std::uint64_t kPendingReturn = ~std::uint64_t{0};

  Kind kind = Kind::kGet;
  std::string key;
  std::string arg;       // kPut: value written; kCas: desired value
  std::string expected;  // kCas only: compare value
  std::string result;    // kGet: observed value (meaningful when ok)
  bool ok = true;        // kGet: key present; kCas: swap succeeded
  std::uint64_t invoke = 0;
  std::uint64_t ret = kPendingReturn;  // logical timestamps, invoke < ret
  int client = -1;

  [[nodiscard]] bool pending() const { return ret == kPendingReturn; }
  [[nodiscard]] std::string describe() const;
};

const char* to_string(KvOp::Kind kind);

/// Records a concurrent history with bracketing logical timestamps.
/// Thread-safe; the timestamp source is a single atomic counter, so the
/// real-time partial order it induces is exactly the order in which
/// invokes and returns executed.
class HistoryRecorder {
 public:
  /// Stamps `op.invoke` and registers the operation as pending.
  /// Returns a ticket for complete().
  std::size_t invoke(KvOp op);

  /// Fills in the outcome and stamps `ret`. Call at most once per ticket;
  /// tickets never completed stay pending in the history.
  void complete(std::size_t ticket, bool ok, std::string result = "");

  [[nodiscard]] std::vector<KvOp> history() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<KvOp> ops_;
  std::atomic<std::uint64_t> clock_{1};
};

struct CheckerConfig {
  /// Per-key cap on distinct (linearized-set, register-value) states the
  /// WGL search may visit before giving up.
  std::size_t max_states = 1u << 22;
};

enum class LinOutcome : std::uint8_t {
  kLinearizable,
  kViolation,
  kStateLimit,  // search budget exhausted before a verdict
};

const char* to_string(LinOutcome outcome);

struct LinearizabilityReport {
  LinOutcome outcome = LinOutcome::kLinearizable;
  std::string violating_key;        // set when outcome == kViolation
  std::vector<KvOp> violating_ops;  // the per-key subhistory that failed
  std::size_t states_explored = 0;  // summed across keys

  [[nodiscard]] bool linearizable() const {
    return outcome == LinOutcome::kLinearizable;
  }
  /// Human-readable verdict; on violation, the failing subhistory sorted
  /// by invoke time — small enough to eyeball against docs/raft.md.
  [[nodiscard]] std::string describe() const;
};

class LinearizabilityChecker {
 public:
  explicit LinearizabilityChecker(CheckerConfig config = {});

  /// Checks one history against the sequential KV model (per-key atomic
  /// register with put / get / compare-and-swap; keys start absent).
  [[nodiscard]] LinearizabilityReport check(
      const std::vector<KvOp>& history) const;

 private:
  CheckerConfig config_;
};

}  // namespace pdc::testkit
