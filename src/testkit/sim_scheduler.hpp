// SimScheduler: runs N logical threads under a seeded, controlled
// interleaving so concurrency bugs become deterministic test failures.
//
// The scheduler owns one OS thread per logical thread but permits exactly
// one to execute at any instant; control changes hands only at the
// testkit hooks (yield_point, wait, notify — see hooks.hpp) that the
// library's primitives call at their synchronization points. Which thread
// runs next is a pure function of the policy and the seed, so any failing
// interleaving replays bit-identically from its seed.
//
// Policies:
//  - kRoundRobin: rotate at every preemption point. Cheap, catches the
//    "switch between load and store" bug class immediately.
//  - kRandom: uniformly random runnable thread at every point — the
//    workhorse for exploration (PCT-style probabilistic coverage).
//  - kPreemptionBounded: run each thread until it blocks, with at most
//    `preemption_bound` forced switches injected at random points — the
//    CHESS observation that most bugs need only 1–2 preemptions.
//
// The scheduler also detects deadlock structurally: when every live
// thread is parked and no virtual-clock deadline remains, the run is
// aborted and reported (rather than hanging the test binary).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pdc::testkit {

enum class SchedulePolicy : std::uint8_t {
  kRoundRobin,
  kRandom,
  kPreemptionBounded,
};

const char* to_string(SchedulePolicy policy);

struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::kRandom;
  std::uint64_t seed = 1;
  int preemption_bound = 2;            // kPreemptionBounded only
  std::size_t max_steps = 1u << 20;    // runaway guard (spin loops, livelock)
  bool record_trace = true;
  std::size_t max_trace_events = 1u << 16;
};

enum class TraceKind : std::uint8_t {
  kSchedule,      // thread chosen to run (a context switch)
  kBlock,         // thread parked (condition wait / timed wait)
  kNotify,        // notification made parked threads runnable
  kClockAdvance,  // virtual clock jumped to the next deadline
  kFinish,        // thread body returned
  kDeadlock,      // every live thread parked with no deadline
};

struct TraceEvent {
  std::size_t step;
  std::size_t thread;  // logical thread id; kNoThread for scheduler events
  TraceKind kind;
  const char* label;   // hook label (string literal; never freed)
  double sim_time;
};

inline constexpr std::size_t kNoThread = static_cast<std::size_t>(-1);

struct RunReport {
  bool completed = false;       // every thread ran to completion
  bool deadlocked = false;
  bool step_limit_hit = false;
  std::string error;            // first exception escaping a thread body
  std::size_t steps = 0;
  std::size_t context_switches = 0;
  std::uint64_t seed = 0;
  double sim_duration = 0.0;    // virtual seconds consumed by the run
  std::vector<TraceEvent> trace;
  bool trace_truncated = false;

  [[nodiscard]] bool ok() const {
    return completed && !deadlocked && !step_limit_hit && error.empty();
  }
  /// Every recorded event, one line each.
  [[nodiscard]] std::string format_trace() const;
  /// Only the scheduling decisions (switches, clock jumps, deadlock) —
  /// the minimal interleaving needed to reproduce the run by hand.
  [[nodiscard]] std::string format_minimal_trace() const;
};

class SimScheduler {
 public:
  explicit SimScheduler(SchedulerOptions options = {});
  ~SimScheduler();

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  /// Runs the logical threads to completion (or deadlock / step limit)
  /// under the configured policy. Only one SimScheduler may be running
  /// per process at a time; nesting is a checked error.
  RunReport run(std::vector<std::function<void()>> threads);

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  SchedulerOptions options_;
};

}  // namespace pdc::testkit
