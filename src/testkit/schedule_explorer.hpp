// ScheduleExplorer: drives SimScheduler over many seeds and turns the
// first failing interleaving into a deterministic, replayable artifact.
//
// A test describes one run as a RunPlan — fresh thread bodies over fresh
// shared state, plus a check() that inspects that state after every
// thread has finished. explore() executes the plan under seed after seed;
// when a run deadlocks, throws, or fails its check, the same seed is
// re-run with tracing enabled and the report (failing seed, failure text,
// minimal interleaving trace) is returned. replay() re-executes any seed
// on demand — same seed, same schedule, same trace, every time — which is
// what lets a student paste one number into a failing lab and watch the
// exact broken interleaving unfold.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "testkit/sim_scheduler.hpp"

namespace pdc::testkit {

/// One schedulable experiment: thread bodies over fresh shared state and
/// a post-join invariant check (empty string = pass).
struct RunPlan {
  std::vector<std::function<void()>> threads;
  std::function<std::string()> check;
};

struct ExplorerConfig {
  SchedulePolicy policy = SchedulePolicy::kRandom;
  std::size_t iterations = 200;
  std::uint64_t base_seed = 1;
  int preemption_bound = 2;          // kPreemptionBounded only
  std::size_t max_steps = 1u << 20;  // per run
};

struct ExplorationResult {
  bool failure_found = false;
  std::uint64_t failing_seed = 0;
  std::string failure;       // check() text, error, or "deadlock"
  RunReport failing_report;  // trace-recording replay of the failing seed
  std::size_t runs = 0;

  /// Human-readable failure summary with the minimal trace appended.
  [[nodiscard]] std::string describe() const;
};

class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ExplorerConfig config = {});

  /// Runs `make_run()` under `iterations` distinct seeds (derived from
  /// base_seed), stopping at the first failure.
  [[nodiscard]] ExplorationResult explore(
      const std::function<RunPlan()>& make_run) const;

  /// Deterministically replays one seed with full trace recording.
  /// `failure` (optional) receives the check()/scheduler failure text.
  RunReport replay(std::uint64_t seed, const std::function<RunPlan()>& make_run,
                   std::string* failure = nullptr) const;

  [[nodiscard]] const ExplorerConfig& config() const { return config_; }

 private:
  RunReport run_once(std::uint64_t seed, const std::function<RunPlan()>& make_run,
                     bool record_trace, std::string* failure) const;

  ExplorerConfig config_;
};

}  // namespace pdc::testkit
