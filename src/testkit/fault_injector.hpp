// FaultInjector: seeded message-fault decisions for the network fabric
// (net::Network) and the message-passing runtime (mp::World).
//
// Each message consults the injector once; the decision stream is a pure
// function of the seed and the consultation order, so a failing fault
// pattern replays from its seed. The injector itself is transport
// agnostic — it answers "what happens to the next message?" and the
// transport applies the answer:
//
//  - net::Network maps extra_delay_ms onto the event queue (reordering
//    emerges from delaying one datagram past its successors);
//  - the mp fabric has no clock, so a reordered message is held back and
//    released after `reorder_after` subsequent deliveries.
//
// Attach with Network::set_fault_injector / World::set_fault_injector.
// Only payload-bearing, loss-eligible traffic is impaired: stream-socket
// bytes (the reliable-service abstraction) and mp collective/internal
// contexts pass through untouched, mirroring how the lessons inject
// faults only where protocols are supposed to tolerate them.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/rng.hpp"

namespace pdc::testkit {

struct FaultConfig {
  double drop = 0.0;        // P(message silently dropped)
  double duplicate = 0.0;   // P(message delivered twice)
  double reorder = 0.0;     // P(message delayed past later traffic)
  double delay_ms = 0.0;    // fixed extra latency per message
  double jitter_ms = 0.0;   // uniform extra latency in [0, jitter_ms)
  double reorder_ms = 2.0;  // extra delay for reordered messages (timed nets)
  int reorder_after = 2;    // deliveries to hold a reordered message (mp)
  std::uint64_t seed = 0xfa17;
};

/// What to do with one message.
struct FaultDecision {
  bool drop = false;
  bool reordered = false;
  std::size_t copies = 1;       // 2 when duplicated
  double extra_delay_ms = 0.0;  // includes delay, jitter and reorder penalty
};

struct FaultStats {
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partitioned = 0;  // crossed a partition cut (also dropped)
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decision for the next message. Thread-safe; the stream of decisions
  /// is deterministic in consultation order.
  FaultDecision next();

  /// Endpoint-aware decision: a message crossing an active partition cut
  /// is dropped outright. Partition drops consult no randomness, so the
  /// probabilistic decision stream for delivered traffic is identical
  /// with and without partitions — a split-brain test replays from the
  /// same seed as its healthy twin.
  FaultDecision next(int src, int dst);

  /// Installs a symmetric network partition: ranks can exchange messages
  /// iff some group contains both. Ranks not named in any group are
  /// isolated from everyone. Replaces any earlier partition; takes effect
  /// for messages consulted after the call (in-flight/held messages are
  /// not recalled — a real cut does not eat packets already delivered).
  void partition(const std::vector<std::vector<int>>& groups);

  /// Removes the partition; all ranks can communicate again.
  void heal();

  /// True when src -> dst traffic passes the current partition (always
  /// true when none is installed; self-sends always pass).
  [[nodiscard]] bool reachable(int src, int dst) const;

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  [[nodiscard]] bool reachable_locked(int src, int dst) const {
    if (src == dst) return true;
    const auto a = group_of_.find(src);
    const auto b = group_of_.find(dst);
    return a != group_of_.end() && b != group_of_.end() &&
           a->second == b->second;
  }

  const FaultConfig config_;
  mutable std::mutex mutex_;
  support::Rng rng_;
  FaultStats stats_;
  bool partitioned_ = false;
  std::unordered_map<int, int> group_of_;  // rank -> partition group id
};

}  // namespace pdc::testkit
