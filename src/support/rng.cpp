#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pdc::support {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PDC_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
  PDC_CHECK(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PDC_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double lambda) {
  PDC_CHECK(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

Rng Rng::split() {
  return Rng(next_u64());
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  PDC_CHECK(n > 0);
  PDC_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  // First index whose cumulative mass covers u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pdc::support
