// Lightweight runtime checking for programming errors.
//
// PDC_CHECK fires in all build types: educational simulators are driven by
// user-supplied programs and traces, so precondition violations must be
// loud rather than undefined behaviour. Expected, recoverable failures use
// pdc::support::Status instead (see status.hpp).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdc::support {

/// Thrown when a PDC_CHECK precondition fails. Deriving from logic_error
/// signals "bug in the calling code", not an environmental failure.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PDC_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace pdc::support

#define PDC_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pdc::support::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

#define PDC_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pdc::support::check_failed(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)
