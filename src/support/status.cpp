#include "support/status.hpp"

namespace pdc::support {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kClosed: return "closed";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = pdc::support::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pdc::support
