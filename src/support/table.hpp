// Plain-text and CSV table rendering.
//
// Every bench that regenerates a table or figure from the paper prints a
// TextTable so the output is directly comparable with the publication;
// CSV output feeds external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pdc::support {

/// Column-aligned text table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Column count of the table is fixed by the widest
  /// row at render time; short rows are padded with empty cells.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);

  /// Renders with box-drawing rules suitable for terminals and logs.
  void render(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  // Structured access for exporters (obs::BenchReport turns rendered
  // tables into JSON without re-deriving the cells).
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdc::support
