// Wall-clock measurement helpers for benches and examples.
#pragma once

#include <chrono>

namespace pdc::support {

/// Monotonic stopwatch. Started on construction; `elapsed_*` may be read
/// repeatedly without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdc::support
