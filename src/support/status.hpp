// Status / Result: expected-failure reporting without exceptions.
//
// Modules report recoverable conditions (message would block, transaction
// aborted, socket closed by peer) through these types; exceptions are
// reserved for precondition violations (see check.hpp), per the project
// convention in DESIGN.md §5.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/check.hpp"

namespace pdc::support {

/// Coarse category of an expected failure. Kept deliberately small: each
/// module attaches its own context through the message string.
enum class StatusCode {
  kOk,
  kUnavailable,      // resource temporarily unavailable (would block, busy)
  kClosed,           // endpoint/queue/channel closed by peer or shutdown
  kTimeout,          // deadline elapsed before the operation completed
  kAborted,          // operation rolled back (e.g. transaction deadlock victim)
  kInvalidArgument,  // caller-supplied value outside the accepted domain
  kNotFound,         // named entity does not exist
  kFailedPrecondition,  // object not in the state required by the call
};

/// Human-readable name for a StatusCode ("ok", "timeout", ...).
const char* to_string(StatusCode code);

/// Value-semantic result of an operation that can fail in expected ways.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "code: message" for logs and test diagnostics.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    PDC_CHECK_MSG(!status_.is_ok(), "Result constructed from OK status needs a value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    PDC_CHECK_MSG(value_.has_value(), "value() on failed Result: " + status_.to_string());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    PDC_CHECK_MSG(value_.has_value(), "value() on failed Result: " + status_.to_string());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    PDC_CHECK_MSG(value_.has_value(), "value() on failed Result: " + status_.to_string());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when the operation failed.
  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pdc::support
