#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pdc::support {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

namespace {

std::size_t display_width(const std::string& s) {
  // Cells are ASCII in practice; treat bytes as columns.
  return s.size();
}

void render_separator(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void render_cells(std::ostream& os, const std::vector<std::string>& cells,
                  const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    os << ' ' << cell;
    for (std::size_t i = display_width(cell); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::render(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return;

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      widths[c] = std::max(widths[c], display_width(cells[c]));
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) os << title_ << '\n';
  render_separator(os, widths);
  if (!header_.empty()) {
    render_cells(os, header_, widths);
    render_separator(os, widths);
  }
  for (const auto& row : rows_) render_cells(os, row, widths);
  render_separator(os, widths);
}

void TextTable::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace pdc::support
