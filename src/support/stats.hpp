// Summary statistics and histograms for experiment outputs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pdc::support {

/// Streaming summary (Welford) over double samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance; 0 for n < 2
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double total() const { return total_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

/// Fixed-range linear histogram; out-of-range samples clamp into the edge
/// buckets so counts are never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Lower edge of a bucket.
  [[nodiscard]] double edge(std::size_t bucket) const;

  /// One-line-per-bucket rendering with proportional bars (for examples).
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile from an unsorted sample set (nearest-rank). p in [0,100].
double percentile(std::vector<double> samples, double p);

}  // namespace pdc::support
