#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace pdc::support {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PDC_CHECK(lo < hi);
  PDC_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<long>(std::floor((x - lo_) / span *
                                          static_cast<double>(counts_.size())));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::edge(std::size_t bucket) const {
  PDC_CHECK(bucket < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os << '[';
    os.width(10);
    os << edge(b) << "] ";
    const std::size_t len = counts_[b] * bar_width / peak;
    for (std::size_t i = 0; i < len; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

double percentile(std::vector<double> samples, double p) {
  PDC_CHECK(!samples.empty());
  PDC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (p == 0.0) return samples.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[std::min(rank, samples.size()) - 1];
}

}  // namespace pdc::support
