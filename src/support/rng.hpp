// Deterministic pseudo-random number generation for simulators and
// workload generators.
//
// Every stochastic component in PDCkit (network loss, survey synthesis,
// transaction workloads) takes an explicit seed so experiments replay
// bit-identically; std::mt19937_64 would also work but its huge state makes
// value-semantic copies (per-stream, per-link generators) needlessly heavy.
#pragma once

#include <cstdint>
#include <vector>

namespace pdc::support {

/// SplitMix64: tiny, statistically solid seeding/stepping generator.
/// Used directly and to expand one user seed into many stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the project-wide generator. Small (32 bytes), fast, and
/// good enough for every simulation need here (not cryptographic).
class Rng {
 public:
  /// Seeds the four words of state by expanding `seed` with SplitMix64,
  /// which guarantees a nonzero state for any seed including 0.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double exponential(double lambda);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator for a substream (e.g. per network
  /// link) so adding streams never perturbs existing ones.
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) rank distribution over n items (rank 0 most popular).
/// Sampling is a binary search over a precomputed CDF, valid for any
/// exponent s >= 0 (s == 0 is uniform). Used for skewed key popularity in
/// the transaction and load-balancing workloads.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); back() == 1.0
};

}  // namespace pdc::support
