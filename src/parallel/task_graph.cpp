#include "parallel/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <queue>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pdc::parallel {

TaskId TaskGraph::add_task(std::string name, double cost, Task fn) {
  PDC_CHECK_MSG(cost >= 0.0, "task cost must be non-negative");
  tasks_.push_back(Node{std::move(name), cost, std::move(fn), {}, 0});
  return tasks_.size() - 1;
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  PDC_CHECK(before < tasks_.size());
  PDC_CHECK(after < tasks_.size());
  PDC_CHECK_MSG(before != after, "a task cannot depend on itself");
  tasks_[before].successors.push_back(after);
  ++tasks_[after].predecessor_count;
}

const std::string& TaskGraph::name(TaskId id) const {
  PDC_CHECK(id < tasks_.size());
  return tasks_[id].name;
}

double TaskGraph::cost(TaskId id) const {
  PDC_CHECK(id < tasks_.size());
  return tasks_[id].cost;
}

std::vector<TaskId> TaskGraph::topo_order() const {
  std::vector<std::size_t> in_degree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    in_degree[i] = tasks_[i].predecessor_count;
  }
  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (TaskId next : tasks_[id].successors) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != tasks_.size()) order.clear();  // cycle
  return order;
}

bool TaskGraph::is_acyclic() const {
  return tasks_.empty() || !topo_order().empty();
}

double TaskGraph::work() const {
  double total = 0.0;
  for (const auto& t : tasks_) total += t.cost;
  return total;
}

std::vector<double> TaskGraph::earliest_finish() const {
  const auto order = topo_order();
  PDC_CHECK_MSG(tasks_.empty() || !order.empty(),
                "span/critical_path require an acyclic graph");
  std::vector<double> finish(tasks_.size(), 0.0);
  for (TaskId id : order) {
    // Predecessor finishes were finalized earlier in topological order,
    // so start = max over preds is already folded into finish[id].
    finish[id] += tasks_[id].cost;
    for (TaskId next : tasks_[id].successors) {
      finish[next] = std::max(finish[next], finish[id]);
    }
  }
  return finish;
}

double TaskGraph::span() const {
  if (tasks_.empty()) return 0.0;
  const auto finish = earliest_finish();
  return *std::max_element(finish.begin(), finish.end());
}

double TaskGraph::parallelism() const {
  const double s = span();
  if (s == 0.0) return 0.0;
  return work() / s;
}

std::vector<TaskId> TaskGraph::critical_path() const {
  if (tasks_.empty()) return {};
  const auto finish = earliest_finish();
  // Walk backwards from the globally latest-finishing task, at each step
  // choosing the predecessor whose finish time equals our start time.
  std::vector<std::vector<TaskId>> predecessors(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (TaskId next : tasks_[i].successors) predecessors[next].push_back(i);
  }
  TaskId current = static_cast<TaskId>(std::distance(
      finish.begin(), std::max_element(finish.begin(), finish.end())));
  std::vector<TaskId> path{current};
  for (;;) {
    // The chain continues through any predecessor whose finish time equals
    // our start time. Termination: each step follows a DAG edge backwards.
    const double start = finish[current] - tasks_[current].cost;
    bool extended = false;
    for (TaskId pred : predecessors[current]) {
      if (finish[pred] == start) {
        current = pred;
        path.push_back(current);
        extended = true;
        break;
      }
    }
    if (!extended) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double TaskGraph::simulated_makespan(std::size_t processors) const {
  PDC_CHECK(processors >= 1);
  if (tasks_.empty()) return 0.0;
  const auto order = topo_order();
  PDC_CHECK_MSG(!order.empty(), "simulated_makespan requires an acyclic graph");

  // Event-driven greedy list scheduling: at each step start as many ready
  // tasks as idle processors allow, then advance time to the next finish.
  std::vector<std::size_t> remaining_preds(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    remaining_preds[i] = tasks_[i].predecessor_count;
  }
  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (remaining_preds[i] == 0) ready.push_back(i);
  }
  std::sort(ready.begin(), ready.end());

  struct Running {
    double finish;
    TaskId id;
    bool operator>(const Running& other) const {
      return finish > other.finish || (finish == other.finish && id > other.id);
    }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  double now = 0.0;
  std::size_t completed = 0;

  while (completed < tasks_.size()) {
    while (!ready.empty() && running.size() < processors) {
      const TaskId id = ready.front();
      ready.erase(ready.begin());
      running.push(Running{now + tasks_[id].cost, id});
    }
    PDC_CHECK_MSG(!running.empty(), "scheduler stalled with work pending");
    const Running done = running.top();
    running.pop();
    now = done.finish;
    ++completed;
    for (TaskId next : tasks_[done.id].successors) {
      if (--remaining_preds[next] == 0) {
        ready.insert(std::upper_bound(ready.begin(), ready.end(), next), next);
      }
    }
  }
  return now;
}

support::Status TaskGraph::run(ThreadPool& pool) {
  if (tasks_.empty()) return support::Status::ok();
  if (!is_acyclic()) {
    return {support::StatusCode::kFailedPrecondition,
            "task graph contains a dependency cycle"};
  }

  struct RunState {
    std::vector<std::atomic<std::size_t>> remaining;
    std::atomic<std::size_t> outstanding;
    std::mutex mutex;
    std::condition_variable all_done;
    std::vector<TaskId> completion_order;
    std::exception_ptr first_error;
    std::function<void(TaskId)> execute;
    explicit RunState(std::size_t n) : remaining(n), outstanding(n) {}
  };
  auto state = std::make_shared<RunState>(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    state->remaining[i].store(tasks_[i].predecessor_count,
                              std::memory_order_relaxed);
  }

  // Each task, when finished, decrements its successors' counters and
  // schedules those that become ready — the standard dataflow execution.
  // The closure lives inside RunState and every posted task holds shared
  // ownership, so the state (and the closure itself) outlive the caller's
  // stack frame no matter who finishes last; `execute` captures the state
  // weakly to avoid an ownership cycle. The completion notify happens
  // under the lock: the waiter may destroy its reference the instant the
  // predicate holds, and the CV must not die mid-notify.
  state->execute = [this, &pool,
                    weak = std::weak_ptr<RunState>(state)](TaskId id) {
    auto state = weak.lock();
    PDC_CHECK(state != nullptr);
    auto& task = tasks_[id];  // non-const: Task::operator() is mutable
    PDC_OBS_COUNT("pdc.taskgraph.run");
    try {
      // Literal span name: task.name is a std::string whose lifetime the
      // trace ring cannot extend; the task id rides in the span arg.
      obs::ScopedSpan span("taskgraph.task", id);
      if (task.fn) task.fn();
    } catch (...) {
      std::scoped_lock lock(state->mutex);
      if (!state->first_error) state->first_error = std::current_exception();
    }
    {
      std::scoped_lock lock(state->mutex);
      state->completion_order.push_back(id);
    }
    for (TaskId next : task.successors) {
      if (state->remaining[next].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.post([state, next] { state->execute(next); });
      }
    }
    if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::scoped_lock lock(state->mutex);
      state->all_done.notify_all();
    }
  };

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].predecessor_count == 0) {
      pool.post([state, i] { state->execute(i); });
    }
  }

  {
    std::unique_lock lock(state->mutex);
    state->all_done.wait(lock, [&] {
      return state->outstanding.load(std::memory_order_acquire) == 0;
    });
    completion_order_ = state->completion_order;
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
  return support::Status::ok();
}

std::vector<TaskId> TaskGraph::last_completion_order() const {
  return completion_order_;
}

}  // namespace pdc::parallel
