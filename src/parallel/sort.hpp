// Parallel divide-and-conquer sorting on the work-stealing pool.
//
// CC2020 recommends covering "a parallel divide-and-conquer algorithm";
// mergesort (stable, predictable splits) and quicksort (data-dependent
// splits, exercising the load balancer) are the canonical pair. Both fall
// back to std::sort below `cutoff` — the grain-size lesson.
//
// Spawns from inside workers hit the Chase–Lev owner fast path (plain
// push, no CAS), so the recursion's fork cost is a slab-node acquire plus
// one release store; see docs/scheduler.md.
#pragma once

#include <algorithm>
#include <atomic>
#include <vector>

#include "parallel/work_stealing.hpp"

namespace pdc::parallel {

namespace detail {

template <typename T, typename Cmp>
void merge_ranges(std::vector<T>& data, std::vector<T>& scratch,
                  std::size_t lo, std::size_t mid, std::size_t hi, Cmp cmp) {
  std::merge(data.begin() + static_cast<std::ptrdiff_t>(lo),
             data.begin() + static_cast<std::ptrdiff_t>(mid),
             data.begin() + static_cast<std::ptrdiff_t>(mid),
             data.begin() + static_cast<std::ptrdiff_t>(hi),
             scratch.begin() + static_cast<std::ptrdiff_t>(lo), cmp);
  std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
            scratch.begin() + static_cast<std::ptrdiff_t>(hi),
            data.begin() + static_cast<std::ptrdiff_t>(lo));
}

template <typename T, typename Cmp>
void merge_sort_task(WorkStealingPool& pool, std::vector<T>& data,
                     std::vector<T>& scratch, std::size_t lo, std::size_t hi,
                     std::size_t cutoff, Cmp cmp) {
  if (hi - lo <= cutoff) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
              data.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  std::atomic<bool> left_done{false};
  pool.spawn([&, lo, mid] {
    merge_sort_task(pool, data, scratch, lo, mid, cutoff, cmp);
    left_done.store(true, std::memory_order_release);
  });
  merge_sort_task(pool, data, scratch, mid, hi, cutoff, cmp);
  // Fork/join: help run other tasks instead of blocking while the sibling
  // subtree finishes.
  pool.help_while([&] { return left_done.load(std::memory_order_acquire); });
  merge_ranges(data, scratch, lo, mid, hi, cmp);
}

/// Median-of-three + Lomuto partition. Returns the final pivot index p with
/// lo <= p < hi; both [lo, p) and (p, hi) are strictly smaller subranges.
template <typename T, typename Cmp>
std::size_t partition_range(std::vector<T>& data, std::size_t lo,
                            std::size_t hi, Cmp cmp) {
  const std::size_t mid = lo + (hi - lo) / 2;
  // Order the three samples, leaving the median at `mid`.
  if (cmp(data[mid], data[lo])) std::swap(data[mid], data[lo]);
  if (cmp(data[hi - 1], data[lo])) std::swap(data[hi - 1], data[lo]);
  if (cmp(data[hi - 1], data[mid])) std::swap(data[hi - 1], data[mid]);
  std::swap(data[mid], data[hi - 1]);  // pivot (median) to the end
  const T& pivot = data[hi - 1];
  std::size_t store = lo;
  for (std::size_t k = lo; k + 1 < hi; ++k) {
    if (cmp(data[k], pivot)) std::swap(data[store++], data[k]);
  }
  std::swap(data[store], data[hi - 1]);
  return store;
}

template <typename T, typename Cmp>
void quick_sort_task(WorkStealingPool& pool, std::vector<T>& data,
                     std::size_t lo, std::size_t hi, std::size_t cutoff,
                     Cmp cmp) {
  // Spawn the smaller side of each partition and keep the larger side in
  // this loop. The spawned subproblem is at most half the range, so the
  // task tree stays O(log n) deep, and looping (rather than recursing) on
  // the larger side keeps this frame's stack depth constant — skewed
  // pivots on nearly-sorted input otherwise recurse ~n/cutoff frames deep.
  std::atomic<std::size_t> pending{0};
  while (hi - lo > cutoff) {
    const std::size_t p = partition_range(data, lo, hi, cmp);
    std::size_t spawn_lo = lo, spawn_hi = p, keep_lo = p + 1, keep_hi = hi;
    if (spawn_hi - spawn_lo > keep_hi - keep_lo) {
      std::swap(spawn_lo, keep_lo);
      std::swap(spawn_hi, keep_hi);
    }
    pending.fetch_add(1, std::memory_order_relaxed);
    pool.spawn([&pool, &data, &pending, spawn_lo, spawn_hi, cutoff, cmp] {
      quick_sort_task(pool, data, spawn_lo, spawn_hi, cutoff, cmp);
      pending.fetch_sub(1, std::memory_order_release);
    });
    lo = keep_lo;
    hi = keep_hi;
  }
  std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
            data.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
  pool.help_while(
      [&] { return pending.load(std::memory_order_acquire) == 0; });
}

}  // namespace detail

/// Stable-split parallel mergesort. Blocks until sorted.
template <typename T, typename Cmp = std::less<T>>
void parallel_merge_sort(WorkStealingPool& pool, std::vector<T>& data,
                         std::size_t cutoff = 2048, Cmp cmp = {}) {
  if (data.size() <= 1) return;
  std::vector<T> scratch(data.size());
  detail::merge_sort_task(pool, data, scratch, 0, data.size(),
                          std::max<std::size_t>(cutoff, 1), cmp);
}

/// Parallel quicksort with median-of-three pivoting. Blocks until sorted.
template <typename T, typename Cmp = std::less<T>>
void parallel_quick_sort(WorkStealingPool& pool, std::vector<T>& data,
                         std::size_t cutoff = 2048, Cmp cmp = {}) {
  if (data.size() <= 1) return;
  detail::quick_sort_task(pool, data, 0, data.size(),
                          std::max<std::size_t>(cutoff, 16), cmp);
}

}  // namespace pdc::parallel
