// OpenMP-style worksharing loops over a ThreadPool.
//
// Supports the three canonical schedules (static, dynamic, guided) so their
// load-balance/overhead trade-off can be taught and measured
// (bench/lab_lau_multicore). The calling thread participates as one of the
// runners, so a pool of size 1 still executes correctly and the call never
// deadlocks when issued from inside a worker.
//
// Runner tasks ride the pool's lock-free scheduling path (parallel::Task +
// per-worker deques, docs/scheduler.md): each runner closure fits Task's
// inline storage, so launching a loop allocates nothing per runner beyond
// the shared control block.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "concurrency/barrier.hpp"
#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace pdc::parallel {

enum class Schedule {
  kStatic,   // chunks dealt round-robin up front; zero scheduling overhead
  kDynamic,  // chunks taken from a shared counter; balances irregular work
  kGuided,   // dynamic with geometrically shrinking chunks
};

const char* to_string(Schedule s);

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  /// Chunk size; 0 picks a default (n/runners for static, 1 for dynamic,
  /// minimum grab for guided).
  std::size_t chunk = 0;
  /// Cap on participating runners; 0 means pool size + the calling thread.
  std::size_t max_runners = 0;
};

namespace detail {

/// Shared loop state for one parallel_for invocation.
struct LoopControl {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t runners = 1;
  Schedule schedule = Schedule::kStatic;

  std::mutex error_mutex;
  std::exception_ptr first_error;

  /// Claims [lo, hi) for the caller; false when the iteration space is
  /// exhausted.
  bool claim(std::size_t& lo, std::size_t& hi) {
    if (schedule == Schedule::kGuided) {
      // Grab remaining/(2*runners), never below `chunk`.
      for (;;) {
        const std::size_t current = next.load(std::memory_order_relaxed);
        if (current >= end) return false;
        const std::size_t remaining = end - current;
        std::size_t grab = remaining / (2 * runners);
        if (grab < chunk) grab = chunk;
        if (grab > remaining) grab = remaining;
        std::size_t expected = current;
        if (next.compare_exchange_weak(expected, current + grab,
                                       std::memory_order_relaxed)) {
          lo = current;
          hi = current + grab;
          return true;
        }
      }
    }
    const std::size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
    if (start >= end) return false;
    lo = start;
    hi = std::min(start + chunk, end);
    return true;
  }

  void record_error(std::exception_ptr error) {
    std::scoped_lock lock(error_mutex);
    if (!first_error) first_error = error;
  }
};

}  // namespace detail

/// Runs `body(lo, hi)` over disjoint chunks covering [begin, end).
/// Blocks until the whole range is processed; the first exception thrown by
/// any chunk is rethrown in the caller.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         Body&& body, ForOptions opts = {}) {
  if (begin >= end) return;
  const std::size_t n = end - begin;

  std::size_t runners = pool.size() + 1;  // workers + the calling thread
  if (opts.max_runners != 0) runners = std::min(runners, opts.max_runners);
  runners = std::min(runners, n);

  auto control = std::make_shared<detail::LoopControl>();
  control->end = n;
  control->runners = runners;
  control->schedule = opts.schedule;
  switch (opts.schedule) {
    case Schedule::kStatic:
      control->chunk = opts.chunk != 0 ? opts.chunk : (n + runners - 1) / runners;
      break;
    case Schedule::kDynamic:
      control->chunk = opts.chunk != 0 ? opts.chunk : 1;
      break;
    case Schedule::kGuided:
      control->chunk = opts.chunk != 0 ? opts.chunk : 1;
      break;
  }

  auto done = std::make_shared<concurrency::CountdownLatch>(runners);
  auto run = [control, done, begin, &body] {
    std::size_t lo, hi;
    while (control->claim(lo, hi)) {
      try {
        body(begin + lo, begin + hi);
      } catch (...) {
        control->record_error(std::current_exception());
      }
    }
    done->count_down();
  };

  for (std::size_t r = 1; r < runners; ++r) pool.post(run);
  run();          // the caller is runner 0
  done->wait();   // all chunks complete

  if (control->first_error) std::rethrow_exception(control->first_error);
}

/// Per-index form: `body(i)` for every i in [begin, end).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, ForOptions opts = {}) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      opts);
}

/// Parallel reduction: combines `map(i)` over [begin, end) with `combine`,
/// starting from `identity`. `combine` must be associative; chunk-local
/// accumulation keeps the combine count at one per chunk.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, Map&& map, Combine&& combine,
                  ForOptions opts = {}) {
  std::mutex result_mutex;
  T result = identity;
  parallel_for_chunks(
      pool, begin, end,
      [&](std::size_t lo, std::size_t hi) {
        T local = identity;
        for (std::size_t i = lo; i < hi; ++i) local = combine(local, map(i));
        std::scoped_lock lock(result_mutex);
        result = combine(result, local);
      },
      opts);
  return result;
}

/// In-place inclusive scan (prefix op) of `data` with associative `op`.
/// Classic two-phase blocked algorithm: (1) per-block local scans in
/// parallel, (2) serial exclusive scan over block totals, (3) parallel
/// offset add.
template <typename T, typename Op>
void parallel_inclusive_scan(ThreadPool& pool, std::vector<T>& data, Op&& op) {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::size_t runners = pool.size() + 1;
  const std::size_t blocks = std::min(n, runners * 4);
  const std::size_t block_len = (n + blocks - 1) / blocks;

  std::vector<T> block_total(blocks);
  parallel_for(
      pool, 0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_len;
        const std::size_t hi = std::min(lo + block_len, n);
        for (std::size_t i = lo + 1; i < hi; ++i) data[i] = op(data[i - 1], data[i]);
        block_total[b] = data[hi - 1];
      },
      {.schedule = Schedule::kStatic, .chunk = 1});

  // Exclusive scan of block totals (cheap: `blocks` elements, serial).
  T running = block_total[0];
  for (std::size_t b = 1; b < blocks; ++b) {
    const T next = op(running, block_total[b]);
    block_total[b - 1] = running;  // becomes the offset of block b
    running = next;
  }

  parallel_for(
      pool, 1, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_len;
        const std::size_t hi = std::min(lo + block_len, n);
        for (std::size_t i = lo; i < hi; ++i) data[i] = op(block_total[b - 1], data[i]);
      },
      {.schedule = Schedule::kStatic, .chunk = 1});
}

/// Concurrent fan-out: `body(i)` for every i in [0, n), each claimed as
/// its own dynamic chunk, with the caller participating as a runner.
/// Shaped for n independent *blocking* calls (scatter-gather RPC, scrape
/// federation): every runner holds exactly one in-flight call, so with a
/// pool of at least n-1 workers all n calls overlap; with fewer, runners
/// pipeline the remainder as calls complete. First exception rethrown.
template <typename Body>
void fan_out(ThreadPool& pool, std::size_t n, Body&& body) {
  parallel_for(pool, 0, n, body,
               {.schedule = Schedule::kDynamic, .chunk = 1, .max_runners = n});
}

/// Out-of-place map: out[i] = fn(in[i]).
template <typename In, typename Out, typename Fn>
void parallel_transform(ThreadPool& pool, const std::vector<In>& in,
                        std::vector<Out>& out, Fn&& fn, ForOptions opts = {}) {
  out.resize(in.size());
  parallel_for(pool, 0, in.size(), [&](std::size_t i) { out[i] = fn(in[i]); },
               opts);
}

}  // namespace pdc::parallel
