#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "concurrency/backoff.hpp"
#include "testkit/hooks.hpp"

namespace pdc::parallel {

namespace {
thread_local std::size_t t_worker_index = SIZE_MAX;
thread_local const ThreadPool* t_current_pool = nullptr;

constexpr std::size_t kInjectCapacity = 1u << 12;
constexpr auto kParkTimeout = std::chrono::milliseconds(1);

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : inject_(kInjectCapacity) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    if constexpr (obs::kObsEnabled) {
      workers_.back()->depth_hist = &obs::MetricsRegistry::instance().histogram(
          "pdc.pool.deque_depth.w" + std::to_string(i));
    }
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

support::Status ThreadPool::post(Task fn) {
  // Dekker-style handshake with the worker exit check: raise pending_
  // (seq_cst) BEFORE reading closed_, while workers read closed_ before
  // pending_. If we see closed == false here, any worker that later sees
  // closed == true is ordered after our increment and keeps draining —
  // an accepted post can never be stranded by racing shutdown.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  if (closed_.load(std::memory_order_seq_cst)) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return {support::StatusCode::kClosed, "pool shut down"};
  }
  if (t_current_pool == this) {
    // Worker threads self-enqueue on their own deque: lock-free, LIFO,
    // unbounded — a task that posts more tasks can never block here.
    Worker& w = *workers_[t_worker_index];
    TaskNode* node = w.slab.acquire();
    node->fn = std::move(fn);
    w.deque.push(node);
    if constexpr (obs::kObsEnabled) {
      const auto depth =
          static_cast<std::uint64_t>(w.deque.size_estimate());
      PDC_OBS_HIST("pdc.pool.deque_depth", depth);
      w.depth_hist->record(depth);
    }
  } else {
    // External producers go through the bounded MPMC injection queue; a
    // full queue is backpressure (back off until workers drain it), not
    // an error — unless the pool closes while we wait.
    concurrency::Backoff backoff;
    while (!inject_.try_push(std::move(fn))) {
      if (closed_.load(std::memory_order_acquire)) {
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        return {support::StatusCode::kClosed, "pool shut down"};
      }
      PDC_OBS_COUNT("pdc.pool.inject_full");
      testkit::poll_pause("pool.inject.full");
      backoff.step();
    }
  }
  // Only an accepted task counts: the gauge balances against the dequeue
  // decrement in worker_loop, so it reads 0 at quiescence.
  PDC_OBS_COUNT("pdc.pool.submitted");
  PDC_OBS_GAUGE_ADD("pdc.pool.queue_depth", 1);
  wake_one();
  return support::Status::ok();
}

void ThreadPool::shutdown() {
  if (joined_) return;
  joined_ = true;
  closed_.store(true, std::memory_order_seq_cst);
  {
    // Notify under the lock: a worker between its predicate check and its
    // park must not miss the close (and the CV must outlive the notify).
    std::scoped_lock lock(idle_mutex_);
    testkit::notify_all(idle_cv_);
  }
  for (auto& t : threads_) t.join();
}

bool ThreadPool::inside_worker() const { return t_current_pool == this; }

void ThreadPool::wake_one() {
  if (parked_.load(std::memory_order_acquire) == 0) return;
  std::scoped_lock lock(idle_mutex_);
  testkit::notify_one(idle_cv_);
}

bool ThreadPool::try_take(std::size_t self, Task& out) {
  TaskNode* node = nullptr;
  if (workers_[self]->deque.pop(node)) {
    out = std::move(node->fn);
    TaskSlab::release(node, /*owner=*/true);
    return true;
  }
  if (inject_.try_pop(out)) return true;
  // Entering the steal sweep: own deque and injection were both empty, so
  // the worker is now hunting — visible to the sampling profiler until the
  // next running/parked publish.
  obs::publish_worker_state(obs::WorkerState::kStealing);
  const std::size_t n = workers_.size();
  const std::size_t start = next_victim_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    for (;;) {
      node = nullptr;
      const StealResult result = workers_[victim]->deque.steal(node);
      if (result == StealResult::kStolen) {
        PDC_OBS_COUNT("pdc.pool.stolen");
        out = std::move(node->fn);
        TaskSlab::release(node, /*owner=*/false);
        return true;
      }
      if (result == StealResult::kEmpty) break;
      concurrency::cpu_relax();  // kLost: contended, try again immediately
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_index = self;
  t_current_pool = this;
  // Profiler slot: published with plain relaxed stores around each task
  // (the "store pair" hot path); registration happens once per worker
  // thread. Slots are keyed by name, so repeated pool construction reuses
  // them (see obs/profile.hpp).
  obs::WorkerSlot* slot = nullptr;
  if constexpr (obs::kObsEnabled) {
    slot = obs::Profiler::instance().register_worker("pool.w" +
                                                     std::to_string(self));
    obs::Profiler::bind_current_thread(slot);
  }
  concurrency::Backoff backoff;
  for (;;) {
    Task task;
    if (try_take(self, task)) {
      PDC_OBS_GAUGE_SUB("pdc.pool.queue_depth", 1);
      if constexpr (obs::kObsEnabled) {
        slot->publish(obs::WorkerState::kRunning, obs::Profiler::kTaskLabel);
      }
      {
        obs::ScopedSpan span("pool.task");
        obs::BlockTimer timer;
        task();
        timer.record("pdc.pool.task_us");
      }
      if constexpr (obs::kObsEnabled) {
        slot->publish(obs::WorkerState::kIdle);
      }
      PDC_OBS_COUNT("pdc.pool.executed");
      task.reset();  // drop closure state before signaling quiescence
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          closed_.load(std::memory_order_acquire)) {
        // Possibly the last task after close: wake peers so they can exit.
        std::scoped_lock lock(idle_mutex_);
        testkit::notify_all(idle_cv_);
      }
      backoff.reset();
      continue;
    }
    // seq_cst pair with post(): see the handshake comment there.
    if (closed_.load(std::memory_order_seq_cst) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      break;  // closed and drained
    }
    if (!backoff.park_ready()) {
      backoff.step();
      continue;
    }
    // Bottom of the ladder: park on the idle CV. Re-check under the lock
    // so a post between the last scan and the park cannot be lost; the
    // timeout backstops the unlocked parked_ fast check in wake_one().
    std::unique_lock lock(idle_mutex_);
    if (closed_.load(std::memory_order_acquire) ||
        pending_.load(std::memory_order_acquire) != 0) {
      backoff.reset();
      continue;
    }
    parked_.fetch_add(1, std::memory_order_release);
    PDC_OBS_GAUGE_ADD("pdc.pool.parked_workers", 1);
    if constexpr (obs::kObsEnabled) {
      slot->publish(obs::WorkerState::kParked);
    }
    testkit::wait_for(
        lock, idle_cv_, kParkTimeout,
        [&] {
          return closed_.load(std::memory_order_acquire) ||
                 pending_.load(std::memory_order_acquire) != 0;
        },
        "pool.park");
    if constexpr (obs::kObsEnabled) {
      slot->publish(obs::WorkerState::kIdle);
    }
    parked_.fetch_sub(1, std::memory_order_release);
    PDC_OBS_GAUGE_SUB("pdc.pool.parked_workers", 1);
    backoff.reset();
  }
  if constexpr (obs::kObsEnabled) {
    obs::Profiler::bind_current_thread(nullptr);
    obs::Profiler::instance().release_worker(slot);
  }
  t_current_pool = nullptr;
  t_worker_index = SIZE_MAX;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdc::parallel
