#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace pdc::parallel {

namespace {
thread_local const ThreadPool* t_current_pool = nullptr;

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(std::size_t{1} << 22) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  queue_.close();
  if (joined_) return;
  joined_ = true;
  for (auto& worker : workers_) worker.join();
}

support::Status ThreadPool::post(std::function<void()> fn) {
  return queue_.push(std::move(fn));
}

bool ThreadPool::inside_worker() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    auto task = queue_.pop();
    if (!task.is_ok()) break;  // closed and drained
    task.value()();
  }
  t_current_pool = nullptr;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdc::parallel
