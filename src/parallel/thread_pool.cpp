#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace pdc::parallel {

namespace {
thread_local const ThreadPool* t_current_pool = nullptr;

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(std::size_t{1} << 22) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  queue_.close();
  if (joined_) return;
  joined_ = true;
  for (auto& worker : workers_) worker.join();
}

support::Status ThreadPool::post(std::function<void()> fn) {
  PDC_OBS_COUNT("pdc.pool.submitted");
  PDC_OBS_GAUGE_ADD("pdc.pool.queue_depth", 1);
  support::Status status = queue_.push(std::move(fn));
  if (!status.is_ok()) PDC_OBS_GAUGE_SUB("pdc.pool.queue_depth", 1);
  return status;
}

bool ThreadPool::inside_worker() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    auto task = queue_.pop();
    if (!task.is_ok()) break;  // closed and drained
    PDC_OBS_GAUGE_SUB("pdc.pool.queue_depth", 1);
    {
      obs::ScopedSpan span("pool.task");
      obs::BlockTimer timer;
      task.value()();
      timer.record("pdc.pool.task_us");
    }
    PDC_OBS_COUNT("pdc.pool.executed");
  }
  t_current_pool = nullptr;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdc::parallel
