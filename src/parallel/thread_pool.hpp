// Fixed-size thread pool: the "think in terms of tasks, not threads"
// foundation (Core Guidelines CP.4, CP.41) used by parallel_for and the
// task graph. Destruction joins all workers after draining submitted work.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "obs/obs.hpp"
#include "support/status.hpp"

namespace pdc::parallel {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  /// The task queue is effectively unbounded (2^22 entries) so tasks that
  /// schedule further tasks — the task-graph executor does — can never
  /// deadlock the pool by blocking on their own queue.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains queued tasks, then joins every worker (no detach; CP.26).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn()` and returns a future for its result. Exceptions
  /// thrown by `fn` surface through the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    PDC_OBS_COUNT("pdc.pool.submitted");
    PDC_OBS_GAUGE_ADD("pdc.pool.queue_depth", 1);
    const auto status = queue_.push([task] { (*task)(); });
    PDC_CHECK_MSG(status.is_ok(), "submit after ThreadPool shutdown");
    return result;
  }

  /// Fire-and-forget variant for void work the caller synchronizes itself
  /// (e.g. via a latch); avoids the future allocation on hot paths.
  /// Returns kClosed (instead of throwing, unlike submit) after shutdown —
  /// fire-and-forget callers during teardown have nowhere to catch.
  support::Status post(std::function<void()> fn);

  /// Drains queued tasks and joins every worker. Idempotent; called by the
  /// destructor. After shutdown, `submit` throws and `post` returns
  /// kClosed.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool inside_worker() const;

 private:
  void worker_loop();

  concurrency::BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
};

/// The process-wide default pool, sized to hardware concurrency. Intended
/// for examples and tests; performance-sensitive code creates its own pool
/// with an explicit size.
ThreadPool& default_pool();

}  // namespace pdc::parallel
