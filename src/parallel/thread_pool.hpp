// Fixed-size thread pool: the "think in terms of tasks, not threads"
// foundation (Core Guidelines CP.4, CP.41) used by parallel_for and the
// task graph. Destruction joins all workers after draining submitted work.
//
// Scheduling substrate (PR 3, see docs/scheduler.md): instead of funneling
// every worker through one mutex+CV BoundedQueue, each worker owns a
// lock-free ChaseLevDeque. Work posted from inside a worker goes to that
// worker's deque (LIFO, no atomic RMW); work posted from outside enters a
// bounded lock-free MPMC injection queue; idle workers steal from their
// peers' deques before descending a spin → yield → park ladder. Task
// closures travel in parallel::Task (64-byte inline storage) held by
// pooled TaskSlab nodes, so `submit` no longer pays the
// shared_ptr<packaged_task> + std::function double allocation and `post`
// with a small closure allocates nothing at all.
#pragma once

#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "concurrency/mpmc_queue.hpp"
#include "obs/obs.hpp"
#include "parallel/chase_lev.hpp"
#include "parallel/task.hpp"
#include "parallel/task_slab.hpp"
#include "support/check.hpp"
#include "support/status.hpp"

namespace pdc::parallel {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  /// Worker-local queues grow without bound, so tasks that schedule
  /// further tasks — the task-graph executor does — can never deadlock
  /// the pool by blocking on their own queue. The external injection
  /// queue is bounded; a non-worker caller that finds it full backs off
  /// until the workers drain it (backpressure, not failure).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains queued tasks, then joins every worker (no detach; CP.26).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn()` and returns a future for its result. Exceptions
  /// thrown by `fn` surface through the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    std::promise<R> promise;
    std::future<R> result = promise.get_future();
    const auto status =
        post(Task([fn = std::forward<Fn>(fn),
                   promise = std::move(promise)]() mutable {
          try {
            if constexpr (std::is_void_v<R>) {
              fn();
              promise.set_value();
            } else {
              promise.set_value(fn());
            }
          } catch (...) {
            promise.set_exception(std::current_exception());
          }
        }));
    PDC_CHECK_MSG(status.is_ok(), "submit after ThreadPool shutdown");
    return result;
  }

  /// Fire-and-forget variant for void work the caller synchronizes itself
  /// (e.g. via a latch); with a small closure this allocates nothing.
  /// Returns kClosed (instead of throwing, unlike submit) after shutdown —
  /// fire-and-forget callers during teardown have nowhere to catch.
  support::Status post(Task fn);

  /// Drains queued tasks and joins every worker. Idempotent; called by the
  /// destructor. After shutdown, `submit` throws and `post` returns
  /// kClosed.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool inside_worker() const;

 private:
  /// One worker's scheduling state, cache-line separated from its peers.
  struct alignas(64) Worker {
    ChaseLevDeque<TaskNode*> deque;
    TaskSlab slab;
    /// Per-worker deque-depth histogram, resolved once at pool
    /// construction so the owner-push path stays lookup-free (null under
    /// PDCKIT_OBS_NOOP). Depth is the racy size_estimate() at push —
    /// monitoring semantics, good enough to see steal imbalance.
    obs::Histogram* depth_hist = nullptr;
  };

  void worker_loop(std::size_t self);

  /// Takes one task: own deque bottom → injection queue → steal sweep.
  bool try_take(std::size_t self, Task& out);

  /// Wakes one parked worker if any (cheap relaxed check when none).
  void wake_one();

  std::vector<std::unique_ptr<Worker>> workers_;
  concurrency::MpmcQueue<Task> inject_;
  std::vector<std::thread> threads_;
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_victim_{0};
  std::atomic<std::size_t> parked_{0};
  bool joined_ = false;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

/// The process-wide default pool, sized to hardware concurrency. Intended
/// for examples and tests; performance-sensitive code creates its own pool
/// with an explicit size.
ThreadPool& default_pool();

}  // namespace pdc::parallel
