// Task DAG with dependency-driven parallel execution and critical-path
// analysis.
//
// CC2020's PDC competencies name the critical path explicitly; this module
// makes it measurable: `work()` is the total cost of all tasks, `span()`
// the longest cost-weighted dependency chain, and work/span the maximum
// achievable speedup (Brent's bound) — compared against measured speedup in
// bench/perf_amdahl_speedup.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/status.hpp"

namespace pdc::parallel {

using TaskId = std::size_t;

class TaskGraph {
 public:
  /// Adds a task. `cost` is its abstract work (seconds, flops, any unit —
  /// only ratios matter for the analysis); `fn` may be empty for
  /// analysis-only graphs.
  TaskId add_task(std::string name, double cost = 1.0, Task fn = {});

  /// Declares that `after` cannot start until `before` finished.
  void add_dependency(TaskId before, TaskId after);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] const std::string& name(TaskId id) const;
  [[nodiscard]] double cost(TaskId id) const;

  /// True when the dependency graph has no cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Total work: sum of task costs.
  [[nodiscard]] double work() const;

  /// Span (critical-path length): cost of the heaviest dependency chain.
  /// Requires an acyclic graph.
  [[nodiscard]] double span() const;

  /// Inherent parallelism work/span (the speedup ceiling regardless of
  /// processor count). Requires an acyclic graph.
  [[nodiscard]] double parallelism() const;

  /// Task ids along one critical path, in execution order.
  [[nodiscard]] std::vector<TaskId> critical_path() const;

  /// Makespan of greedy list scheduling on `processors` identical
  /// processors (earliest-ready, ties by id). Bounded below by
  /// max(work/p, span) and above by work/p + span (Graham/Brent); used to
  /// compare measured parallel speedup against the structural limit
  /// independent of the host's core count.
  [[nodiscard]] double simulated_makespan(std::size_t processors) const;

  /// Executes every task on `pool`, respecting dependencies; independent
  /// tasks run concurrently. Fails with kFailedPrecondition on a cyclic
  /// graph (nothing runs). Task exceptions propagate to the caller.
  support::Status run(ThreadPool& pool);

  /// The order in which tasks completed in the last run (diagnostic;
  /// a valid topological order of the DAG).
  [[nodiscard]] std::vector<TaskId> last_completion_order() const;

 private:
  // Named Node, not Task: parallel::Task is the type-erased callable the
  // node carries.
  struct Node {
    std::string name;
    double cost;
    Task fn;
    std::vector<TaskId> successors;
    std::size_t predecessor_count = 0;
  };

  /// Topological order via Kahn's algorithm; empty when cyclic and the
  /// graph is nonempty.
  [[nodiscard]] std::vector<TaskId> topo_order() const;

  /// earliest finish time per task under infinite processors.
  [[nodiscard]] std::vector<double> earliest_finish() const;

  std::vector<Node> tasks_;
  std::vector<TaskId> completion_order_;
};

}  // namespace pdc::parallel
