// Work-stealing task pool for fork/join (divide-and-conquer) parallelism.
//
// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
// preserving locality of the most recently forked subproblem), idle workers
// steal from the front of a victim's deque (FIFO, taking the largest
// pending subtree). `help_while` lets a blocked parent execute other tasks
// instead of idling — the work-first principle of Cilk-style schedulers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::parallel {

class WorkStealingPool {
 public:
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Schedules a task. From a worker thread the task goes to that worker's
  /// own deque; from outside it is pushed to a round-robin victim.
  void spawn(std::function<void()> fn);

  /// Runs tasks until `done()` returns true. Callable from worker threads
  /// (joins in fork/join) and from the external submitting thread.
  void help_while(const std::function<bool()>& done);

  /// Blocks until every spawned task has finished (quiescence).
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Total successful steals since construction (scheduler diagnostics).
  [[nodiscard]] std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);

  /// Takes one task: own deque back, then steal front from others.
  bool try_take(std::size_t self, std::function<void()>& out);

  /// Runs one task if any is available anywhere. Returns false when all
  /// deques were observed empty.
  bool run_one(std::size_t hint);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_victim_{0};
  std::atomic<std::uint64_t> steals_{0};

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace pdc::parallel
