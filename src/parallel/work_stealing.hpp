// Work-stealing task pool for fork/join (divide-and-conquer) parallelism,
// built on lock-free scheduler primitives (see docs/scheduler.md):
//
//  - each worker owns a ChaseLevDeque: the owner pushes and pops at the
//    bottom (LIFO, preserving locality of the most recently forked
//    subproblem) with no atomic RMW on the fast path; idle workers steal
//    from the top (FIFO, taking the largest pending subtree) with a single
//    CAS per claim — no mutex anywhere on the task path;
//  - spawns from non-worker threads go to a bounded lock-free MPMC
//    *injection queue* instead of locking a victim's deque;
//  - task closures travel in parallel::Task (64-byte inline storage) held
//    by per-worker TaskSlab nodes — the spawn/steal/run cycle is
//    allocation-free in steady state;
//  - idle workers descend a spin → yield → park ladder; parked workers
//    are visible as the `pdc.steal.parked_workers` gauge and the park
//    itself is a testkit-instrumented timed wait, so the SimScheduler can
//    drive it deterministically.
//
// `help_while` lets a blocked parent execute other tasks instead of
// idling — the work-first principle of Cilk-style schedulers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/mpmc_queue.hpp"
#include "obs/obs.hpp"
#include "parallel/chase_lev.hpp"
#include "parallel/task.hpp"
#include "parallel/task_slab.hpp"

namespace pdc::parallel {

class WorkStealingPool {
 public:
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Schedules a task. From a worker thread the task goes to that worker's
  /// own deque (lock-free push); from outside it goes to the injection
  /// queue (briefly backing off when the queue is momentarily full).
  void spawn(Task fn);

  /// Runs tasks until `done()` returns true. Callable from worker threads
  /// (joins in fork/join) and from the external submitting thread. Spins/
  /// yields but never parks — the caller must stay responsive to `done`.
  void help_while(const std::function<bool()>& done);

  /// Blocks until every spawned task has finished (quiescence). The
  /// calling thread helps execute tasks, which keeps fork/join deadlock-
  /// free even on a pool of size 1.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Total successful steals since construction (scheduler diagnostics).
  [[nodiscard]] std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Workers currently parked in the idle wait (diagnostics; also exported
  /// as the pdc.steal.parked_workers gauge).
  [[nodiscard]] std::size_t parked_workers() const {
    return parked_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's scheduling state, cache-line separated from its peers.
  struct alignas(64) Worker {
    ChaseLevDeque<TaskNode*> deque;
    TaskSlab slab;
    /// Per-worker deque-depth histogram, resolved once at pool
    /// construction so the owner-push path stays lookup-free (null under
    /// PDCKIT_OBS_NOOP). Depth is the racy size_estimate() at push —
    /// monitoring semantics, good enough to see steal imbalance.
    obs::Histogram* depth_hist = nullptr;
  };

  void worker_loop(std::size_t self);

  /// Takes one task: own deque bottom, then the injection queue, then
  /// steal from the top of a rotating sweep of victims. `self` is
  /// SIZE_MAX for external threads (no own deque, remote node release).
  bool try_take(std::size_t self, Task& out);

  /// Runs one task if any is available anywhere. Returns false when all
  /// sources were observed empty.
  bool run_one(std::size_t hint);

  /// Wakes one parked worker if any (cheap relaxed check when none).
  void wake_one();

  std::vector<std::unique_ptr<Worker>> workers_;
  concurrency::MpmcQueue<Task> inject_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_victim_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> parked_{0};

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace pdc::parallel
