// Task: the scheduler's allocation-free unit of work.
//
// A move-only type-erased callable with 64 bytes of inline storage.
// std::function<void()> — the previous task representation — copies its
// target, requires it to be copyable, and heap-allocates once the closure
// outgrows the implementation's tiny SBO (typically 16–32 bytes). Every
// fork/join spawn paid that allocation, and ThreadPool::submit paid a
// second one for the shared_ptr<packaged_task> wrapper. Task removes both:
// any nothrow-movable callable up to kInlineBytes (enough for a handful of
// captured pointers/shared_ptrs) lives directly inside the Task object,
// which itself lives inside a pooled TaskNode or an injection-queue cell —
// zero heap traffic on the spawn/steal/run hot path. Oversized or
// throwing-move callables transparently fall back to the heap.
//
// Unlike std::function, invocation does not require copyability, so tasks
// may own move-only state (promises, unique_ptrs). operator() does not
// consume the target; the scheduler destroys the Task after running it.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pdc::parallel {

class Task {
 public:
  /// Inline storage size. Chosen so {shared_ptr, shared_ptr, two words} —
  /// the shape of the library's own scheduler closures — stays inline.
  static constexpr std::size_t kInlineBytes = 64;

  Task() noexcept = default;

  template <typename Fn,
            typename D = std::decay_t<Fn>,
            typename = std::enable_if_t<!std::is_same_v<D, Task> &&
                                        std::is_invocable_v<D&>>>
  Task(Fn&& fn) {  // NOLINT(google-explicit-constructor): by design, like std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<Fn>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<Fn>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the callable (callable must be non-empty). Repeatable — the
  /// target is not consumed; destruction is the owner's job.
  void operator()() { ops_->invoke(storage_); }

  /// Destroys the held callable, leaving the Task empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True when callables of type D are stored inline (no heap).
  template <typename D>
  [[nodiscard]] static constexpr bool stored_inline() noexcept {
    return fits_inline<std::decay_t<D>>();
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;  // move-construct into `to`, destroy `from`
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  // Heap fallback stores a single D* in the inline buffer; pointers are
  // trivially destructible, so relocate/destroy just shuttle the pointer.
  template <typename D>
  static constexpr Ops heap_ops{
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace pdc::parallel
