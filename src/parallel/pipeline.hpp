// Pipeline parallelism: a chain of stages connected by bounded queues,
// each stage running on its own thread.
//
// The third canonical decomposition after data parallelism (parallel_for)
// and task parallelism (TaskGraph): throughput scales with the number of
// stages while per-item latency stays the sum of stage times, and the
// slowest stage sets the rate (measurable via per-stage busy times).
// Items retain their order end-to-end because every queue is FIFO.
#pragma once

#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "support/stopwatch.hpp"

namespace pdc::parallel {

template <typename T>
class Pipeline {
 public:
  explicit Pipeline(std::size_t queue_capacity = 64)
      : queue_capacity_(queue_capacity) {}

  /// Appends a transform stage. Must be called before run().
  Pipeline& add_stage(std::function<T(T)> fn) {
    stages_.push_back(std::move(fn));
    return *this;
  }

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

  /// Per-stage busy seconds of the last run (profiling the bottleneck).
  [[nodiscard]] const std::vector<double>& stage_busy_seconds() const {
    return busy_;
  }

  /// Feeds every input through all stages concurrently; returns the
  /// outputs in input order.
  std::vector<T> run(std::vector<T> inputs) {
    PDC_CHECK_MSG(!stages_.empty(), "pipeline has no stages");
    const std::size_t n_stages = stages_.size();
    busy_.assign(n_stages, 0.0);

    // queues[s] feeds stage s; the final stage writes straight to output.
    std::vector<std::unique_ptr<concurrency::BoundedQueue<T>>> queues;
    for (std::size_t s = 0; s < n_stages; ++s) {
      queues.push_back(
          std::make_unique<concurrency::BoundedQueue<T>>(queue_capacity_));
    }

    std::vector<T> output;
    output.reserve(inputs.size());
    std::mutex output_mutex;

    std::vector<std::thread> workers;
    workers.reserve(n_stages);
    for (std::size_t s = 0; s < n_stages; ++s) {
      workers.emplace_back([&, s] {
        for (;;) {
          auto item = queues[s]->pop();
          if (!item.is_ok()) break;  // upstream closed and drained
          support::Stopwatch clock;
          T transformed = stages_[s](std::move(item).value());
          busy_[s] += clock.elapsed_seconds();
          if (s + 1 < n_stages) {
            (void)queues[s + 1]->push(std::move(transformed));
          } else {
            std::scoped_lock lock(output_mutex);
            output.push_back(std::move(transformed));
          }
        }
        if (s + 1 < n_stages) queues[s + 1]->close();
      });
    }

    for (T& item : inputs) {
      (void)queues[0]->push(std::move(item));
    }
    queues[0]->close();
    for (auto& worker : workers) worker.join();
    return output;
  }

 private:
  std::size_t queue_capacity_;
  std::vector<std::function<T(T)>> stages_;
  std::vector<double> busy_;
};

}  // namespace pdc::parallel
