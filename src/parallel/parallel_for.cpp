#include "parallel/parallel_for.hpp"

namespace pdc::parallel {

const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "unknown";
}

}  // namespace pdc::parallel
