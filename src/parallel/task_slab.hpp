// TaskSlab: per-worker pooled storage for the nodes a ChaseLevDeque
// schedules.
//
// The deque holds TaskNode* (trivially copyable — required by the
// speculative-read steal protocol), so every spawned task needs a stable
// node. Heap-allocating one per spawn would reintroduce exactly the
// allocation the Task SBO removed; instead each worker owns a slab:
//
//  - acquire() is owner-only and lock-free-by-construction: pop from a
//    plain thread-local freelist; when dry, grab the whole remote-free
//    stack in one exchange; only when both are empty does a new block of
//    nodes get allocated (amortized, steady-state allocation-free).
//  - release() may be called by any thread. The owner pushes back onto
//    its plain freelist; a thief that executed a stolen node returns it
//    through a Treiber stack (CAS push, release ordering) that the owner
//    drains with a single acquire exchange — no ABA, because only the
//    owner pops and it takes the whole list at once.
//
// Node lifecycle: owner acquires + fills `fn` + pushes the node onto its
// deque → exactly one executor (owner pop or thief steal) moves `fn` out
// and releases the node → node returns to the *home* slab recorded at
// block-allocation time.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "parallel/task.hpp"

namespace pdc::parallel {

class TaskSlab;

struct TaskNode {
  Task fn;
  TaskNode* next = nullptr;  // freelist linkage (unused while scheduled)
  TaskSlab* home = nullptr;  // slab to return to, set once at allocation
};

class TaskSlab {
 public:
  TaskSlab() = default;
  TaskSlab(const TaskSlab&) = delete;
  TaskSlab& operator=(const TaskSlab&) = delete;

  /// Owner thread only: takes a free node (amortized allocation-free).
  TaskNode* acquire() {
    if (free_ == nullptr) {
      // Reclaim everything thieves returned since the last drought.
      free_ = remote_free_.exchange(nullptr, std::memory_order_acquire);
    }
    if (free_ == nullptr) allocate_block();
    TaskNode* node = free_;
    free_ = node->next;
    return node;
  }

  /// Returns `node` to its home slab from any thread. `owner` is true only
  /// when the caller IS the slab-owning worker (local, atomic-free path).
  static void release(TaskNode* node, bool owner) noexcept {
    TaskSlab& slab = *node->home;
    if (owner) {
      node->next = slab.free_;
      slab.free_ = node;
      return;
    }
    TaskNode* head = slab.remote_free_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!slab.remote_free_.compare_exchange_weak(
        head, node, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Nodes allocated so far (tests: proves steady-state reuse).
  [[nodiscard]] std::size_t allocated_nodes() const noexcept {
    return blocks_.size() * kBlockNodes;
  }

 private:
  static constexpr std::size_t kBlockNodes = 64;

  void allocate_block() {
    blocks_.push_back(std::make_unique<TaskNode[]>(kBlockNodes));
    TaskNode* block = blocks_.back().get();
    for (std::size_t i = 0; i < kBlockNodes; ++i) {
      block[i].home = this;
      block[i].next = (i + 1 < kBlockNodes) ? &block[i + 1] : free_;
    }
    free_ = block;
  }

  TaskNode* free_ = nullptr;                         // owner-only LIFO
  std::vector<std::unique_ptr<TaskNode[]>> blocks_;  // owner-only
  alignas(64) std::atomic<TaskNode*> remote_free_{nullptr};  // thief returns
};

}  // namespace pdc::parallel
