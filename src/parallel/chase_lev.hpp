// ChaseLevDeque<T>: the lock-free work-stealing deque of Chase & Lev
// (SPAA '05), in the C++11-memory-model formulation of Lê, Pop, Cohen &
// Zappa Nardelli (PPoPP '13), with seq_cst accesses in place of the
// standalone fences (see docs/scheduler.md for the full memory-ordering
// argument — this file is the teaching artifact for the memory-model row
// of the paper's Table I concept matrix).
//
// Protocol summary:
//  - One OWNER thread calls push()/pop() at the *bottom*. The fast path is
//    entirely relaxed/release: no RMW, no contention.
//  - Any number of THIEF threads call steal() at the *top*. A thief claims
//    an element with a CAS on `top_`; the only time the owner competes on
//    that CAS is when a single element remains (the classic last-element
//    race, explored seed-by-seed in tests/stress_test).
//  - The circular buffer grows when full. The owner allocates a double-
//    sized buffer, copies the live window, publishes it with a release
//    store, and *retires* the old buffer onto an epoch list that is only
//    reclaimed by the destructor — a thief holding a stale buffer pointer
//    can therefore always complete its read; the value it reads is
//    validated by the subsequent CAS on `top_`. Geometric growth bounds
//    the retired memory at roughly the final buffer's size.
//
// T must be trivially copyable (the scheduler stores TaskNode*): a thief
// reads the cell *before* its claiming CAS, so the read may be of a cell
// whose logical element was already taken — harmless for a POD read from
// an atomic cell, discarded when the CAS fails.
//
// The testkit yield points (cl.*) mark the algorithm's linearization
// hot spots so a SimScheduler can drive owner/thief interleavings
// deterministically; off-sim each is one relaxed atomic load.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "testkit/hooks.hpp"

namespace pdc::parallel {

enum class StealResult {
  kStolen,  // element claimed; `out` is valid
  kEmpty,   // deque observed empty
  kLost,    // lost the CAS race to the owner or another thief; retry ok
};

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque elements are read speculatively before the "
                "claiming CAS; store pointers or other trivially copyable "
                "handles");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 256) {
    std::size_t cap = 2;
    while (cap < initial_capacity) cap <<= 1;
    buffers_.push_back(std::make_unique<Buffer>(cap));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Never blocks; grows the buffer when full.
  void push(T value) {
    testkit::yield_point("cl.push");
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity())) {
      a = grow(a, t, b);
    }
    a->cell(b).store(value, std::memory_order_relaxed);
    // Release: a thief that observes bottom >= b+1 also observes the cell
    // write above (and everything the owner did before push — this is the
    // edge that publishes the task's closure state to the thief).
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. LIFO; false when the deque is empty (including when a
  /// thief won the race for the final element).
  bool pop(T& out) {
    testkit::yield_point("cl.pop");
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    // Claim the bottom element before looking at top. seq_cst: this store
    // and the top_ load below must not reorder, and must be totally
    // ordered against the symmetric pair in steal() — otherwise owner and
    // thief can both take the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    testkit::yield_point("cl.pop.claimed");
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the claim
      bottom_.store(b + 1, std::memory_order_release);
      return false;
    }
    out = a->cell(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Single element left: race thieves for it on top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_release);
        return false;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_release);
    }
    return true;
  }

  /// Any thread. FIFO (takes the oldest element — in fork/join terms the
  /// largest pending subtree).
  StealResult steal(T& out) {
    testkit::yield_point("cl.steal");
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return StealResult::kEmpty;
    Buffer* a = buffer_.load(std::memory_order_acquire);
    out = a->cell(t).load(std::memory_order_relaxed);
    testkit::yield_point("cl.steal.read");
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return StealResult::kLost;
    }
    return StealResult::kStolen;
  }

  /// Any thread. Claims up to `max` elements in one call, additionally
  /// bounded by half of the backlog observed at entry (rounded up) so a
  /// flooded victim keeps half its queue — the steal-half heuristic for
  /// fine-grained task floods. Returns the number claimed; when `last` is
  /// non-null it reports why the batch stopped (kEmpty / kLost / kStolen
  /// when the budget was exhausted).
  ///
  /// Implementation note: each claim is an individual proven single
  /// steal() CAS, deliberately NOT one CAS of `top_ += n`. A range claim
  /// is unsound in this deque because the owner's pop() takes an element
  /// WITHOUT touching top_ whenever more than one element remains: a thief
  /// whose top-read is stale can CAS [t, t+n) "successfully" while the
  /// owner concurrently pops element t+n-1 at the bottom — a double-take.
  /// The single-element steal is race-free precisely because the element
  /// it claims is validated by the CAS on its own index. What batching
  /// amortizes is everything *around* the CAS — victim selection, cache
  /// misses on a remote deque, the wakeup path — not the CAS itself. See
  /// docs/scheduler.md ("Why steal-half is a loop, not one CAS").
  std::size_t steal_batch(T* out, std::size_t max,
                          StealResult* last = nullptr) {
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t backlog = b - t;
    std::size_t budget = max;
    if (backlog > 1) {
      budget = std::min<std::size_t>(
          max, static_cast<std::size_t>((backlog + 1) / 2));
    }
    // backlog <= 1 (possibly a stale estimate): still attempt one steal.
    std::size_t got = 0;
    StealResult result = StealResult::kEmpty;
    while (got < budget) {
      result = steal(out[got]);
      if (result != StealResult::kStolen) break;
      ++got;
    }
    if (last != nullptr) *last = result;
    return got;
  }

  /// Racy size estimate (monitoring/heuristics only).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Current live capacity (owner's view; tests and metrics).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.load(std::memory_order_relaxed)->capacity();
  }

  /// Buffers retired by growth and held until destruction (tests).
  [[nodiscard]] std::size_t retired_buffers() const noexcept {
    return buffers_.size() - 1;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : mask(cap - 1), cells(std::make_unique<std::atomic<T>[]>(cap)) {}

    [[nodiscard]] std::size_t capacity() const noexcept { return mask + 1; }
    std::atomic<T>& cell(std::int64_t i) noexcept {
      return cells[static_cast<std::size_t>(i) & mask];
    }

    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  /// Owner only. Doubles the buffer, copying the live window [t, b).
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto next = std::make_unique<Buffer>(old->capacity() * 2);
    for (std::int64_t i = t; i < b; ++i) {
      next->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    Buffer* raw = next.get();
    // Epoch retirement: the old buffer stays on buffers_ until the deque
    // dies, so a thief that loaded buffer_ before this store can still
    // read from it safely. Cells in [t, b) were *copied*, never modified,
    // so both buffers agree on every index a thief's CAS can validate.
    buffers_.push_back(std::move(next));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-only epoch list
};

}  // namespace pdc::parallel
