#include "parallel/work_stealing.hpp"

#include <algorithm>
#include <chrono>

#include "concurrency/backoff.hpp"
#include "obs/obs.hpp"
#include "testkit/hooks.hpp"

namespace pdc::parallel {

namespace {
thread_local std::size_t t_worker_index = SIZE_MAX;
thread_local const WorkStealingPool* t_worker_pool = nullptr;

constexpr std::size_t kInjectCapacity = 1u << 12;
constexpr auto kParkTimeout = std::chrono::milliseconds(1);
// Max tasks claimed per steal sweep (further capped at half the victim's
// backlog by ChaseLevDeque::steal_batch).
constexpr std::size_t kStealBatch = 8;
}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads)
    : inject_(kInjectCapacity) {
  const std::size_t n =
      threads != 0 ? threads
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    if constexpr (obs::kObsEnabled) {
      workers_.back()->depth_hist = &obs::MetricsRegistry::instance().histogram(
          "pdc.steal.deque_depth.w" + std::to_string(i));
    }
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  {
    // Notify under the lock: a worker between its predicate check and its
    // park must not miss the wake (and the CV must outlive the notify).
    std::scoped_lock lock(idle_mutex_);
    testkit::notify_all(idle_cv_);
  }
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::spawn(Task fn) {
  PDC_OBS_COUNT("pdc.steal.spawned");
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (t_worker_pool == this) {
    // Locality: child tasks stay with the forker, LIFO at the deque
    // bottom. No lock, no CAS — the owner-side Chase–Lev fast path.
    Worker& w = *workers_[t_worker_index];
    TaskNode* node = w.slab.acquire();
    node->fn = std::move(fn);
    w.deque.push(node);
    if constexpr (obs::kObsEnabled) {
      const auto depth =
          static_cast<std::uint64_t>(w.deque.size_estimate());
      PDC_OBS_HIST("pdc.steal.deque_depth", depth);
      w.depth_hist->record(depth);
    }
  } else {
    // External threads inject through the bounded MPMC queue; when it is
    // momentarily full, back off until the workers drain it.
    concurrency::Backoff backoff;
    while (!inject_.try_push(std::move(fn))) {
      PDC_OBS_COUNT("pdc.steal.inject_full");
      testkit::poll_pause("ws.inject.full");
      backoff.step();
    }
  }
  wake_one();
}

void WorkStealingPool::wake_one() {
  if (parked_.load(std::memory_order_acquire) == 0) return;
  std::scoped_lock lock(idle_mutex_);
  testkit::notify_one(idle_cv_);
}

bool WorkStealingPool::try_take(std::size_t self, Task& out) {
  if (self != SIZE_MAX) {
    TaskNode* node = nullptr;
    if (workers_[self]->deque.pop(node)) {
      out = std::move(node->fn);
      TaskSlab::release(node, /*owner=*/true);
      return true;
    }
  }
  if (inject_.try_pop(out)) return true;
  // Entering the steal sweep: visible to the sampling profiler as
  // "stealing" until the next running/parked publish (no-op for external
  // threads, which have no bound slot).
  obs::publish_worker_state(obs::WorkerState::kStealing);
  // Steal sweep starting at a rotating offset to spread contention. A
  // kLost race with nothing claimed (someone else got the element first)
  // retries the same victim — losing means there IS work, the worst time
  // to give up. Workers steal a *batch* (up to kStealBatch, capped at half
  // the victim's backlog): the first task is returned, the surplus is
  // re-homed into the stealer's own slab and deque so a fine-grained flood
  // costs one sweep instead of one sweep per task. External threads (no
  // own deque to bank into) keep the single steal.
  const std::size_t n = workers_.size();
  const std::size_t start = next_victim_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t want = (self != SIZE_MAX) ? kStealBatch : 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    for (;;) {
      TaskNode* nodes[kStealBatch];
      StealResult last = StealResult::kEmpty;
      const std::size_t got =
          workers_[victim]->deque.steal_batch(nodes, want, &last);
      if (got > 0) {
        steals_.fetch_add(got, std::memory_order_relaxed);
        PDC_OBS_COUNT("pdc.steal.stolen", got);
        if (got > 1) PDC_OBS_HIST("pdc.steal.batch", got);
        out = std::move(nodes[0]->fn);
        TaskSlab::release(nodes[0], /*owner=*/false);
        // Surplus: move each closure into a node from OUR slab and push it
        // onto OUR deque (owner-side, no CAS); the victim's nodes go back
        // through its remote-free stack. pending_ is untouched — the tasks
        // merely changed queues, none completed. got > 1 implies a worker
        // (external threads request want == 1), so workers_[self] is valid.
        if (got > 1) {
          Worker& mine = *workers_[self];
          for (std::size_t i = 1; i < got; ++i) {
            TaskNode* rehomed = mine.slab.acquire();
            rehomed->fn = std::move(nodes[i]->fn);
            TaskSlab::release(nodes[i], /*owner=*/false);
            mine.deque.push(rehomed);
          }
          wake_one();  // banked work: let a parked peer help
        }
        return true;
      }
      if (last == StealResult::kEmpty) break;
      concurrency::cpu_relax();  // kLost: contended, try again immediately
    }
  }
  return false;
}

bool WorkStealingPool::run_one(std::size_t hint) {
  Task task;
  if (!try_take(hint, task)) return false;
  PDC_OBS_COUNT("pdc.steal.run");
  {
    // The per-task store pair: running before, idle after (restored by the
    // scope so nested helpers attribute correctly). External helper
    // threads have no slot and skip both stores.
    obs::ProfiledTask profiled(obs::Profiler::kTaskLabel);
    task();
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Quiescent: release wait_idle() and parked workers. Under the lock —
    // the waiter may destroy the pool the instant the predicate holds.
    std::scoped_lock lock(idle_mutex_);
    testkit::notify_all(idle_cv_);
  }
  return true;
}

void WorkStealingPool::help_while(const std::function<bool()>& done) {
  const std::size_t self = (t_worker_pool == this) ? t_worker_index : SIZE_MAX;
  concurrency::Backoff backoff;
  while (!done()) {
    if (run_one(self)) {
      backoff.reset();
      continue;
    }
    testkit::spin_yield("ws.help");
    backoff.step();  // spin/yield only: stay responsive to done()
  }
}

void WorkStealingPool::wait_idle() {
  concurrency::Backoff backoff;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (run_one(SIZE_MAX)) {
      backoff.reset();
      continue;
    }
    if (!backoff.park_ready()) {
      testkit::spin_yield("ws.wait_idle");
      backoff.step();
      continue;
    }
    std::unique_lock lock(idle_mutex_);
    testkit::wait_for(
        lock, idle_cv_, kParkTimeout,
        [&] { return pending_.load(std::memory_order_acquire) == 0; },
        "ws.wait_idle.park");
    backoff.reset();
  }
}

void WorkStealingPool::worker_loop(std::size_t self) {
  t_worker_index = self;
  t_worker_pool = this;
  // Profiler slot, published via the bound-slot helpers in run_one and
  // try_take; slots are keyed by name so repeated pool construction reuses
  // them (see obs/profile.hpp).
  obs::WorkerSlot* slot = nullptr;
  if constexpr (obs::kObsEnabled) {
    slot = obs::Profiler::instance().register_worker("steal.w" +
                                                     std::to_string(self));
    obs::Profiler::bind_current_thread(slot);
  }
  concurrency::Backoff backoff;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (run_one(self)) {
      backoff.reset();
      continue;
    }
    if (!backoff.park_ready()) {
      backoff.step();
      continue;
    }
    // Bottom of the ladder: park on the idle CV. Re-check the wake
    // predicate under the lock so a spawn between our last scan and the
    // park cannot be lost; the timeout is the liveness backstop for the
    // (unlocked) parked_ fast check in wake_one().
    std::unique_lock lock(idle_mutex_);
    if (stopping_.load(std::memory_order_acquire) ||
        pending_.load(std::memory_order_acquire) != 0) {
      backoff.reset();
      continue;
    }
    parked_.fetch_add(1, std::memory_order_release);
    PDC_OBS_GAUGE_ADD("pdc.steal.parked_workers", 1);
    if constexpr (obs::kObsEnabled) {
      slot->publish(obs::WorkerState::kParked);
    }
    testkit::wait_for(
        lock, idle_cv_, kParkTimeout,
        [&] {
          return stopping_.load(std::memory_order_acquire) ||
                 pending_.load(std::memory_order_acquire) != 0;
        },
        "ws.park");
    if constexpr (obs::kObsEnabled) {
      slot->publish(obs::WorkerState::kIdle);
    }
    parked_.fetch_sub(1, std::memory_order_release);
    PDC_OBS_GAUGE_SUB("pdc.steal.parked_workers", 1);
    backoff.reset();
  }
  if constexpr (obs::kObsEnabled) {
    obs::Profiler::bind_current_thread(nullptr);
    obs::Profiler::instance().release_worker(slot);
  }
  t_worker_pool = nullptr;
  t_worker_index = SIZE_MAX;
}

}  // namespace pdc::parallel
