#include "parallel/work_stealing.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace pdc::parallel {

namespace {
thread_local std::size_t t_worker_index = SIZE_MAX;
thread_local const WorkStealingPool* t_worker_pool = nullptr;
}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  std::size_t n = threads != 0
                      ? threads
                      : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkStealingPool::spawn(std::function<void()> fn) {
  std::size_t target;
  if (t_worker_pool == this) {
    target = t_worker_index;  // locality: child tasks stay with the forker
  } else {
    target = next_victim_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  }
  PDC_OBS_COUNT("pdc.steal.spawned");
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(deques_[target]->mutex);
    deques_[target]->tasks.push_back(std::move(fn));
  }
  idle_cv_.notify_one();
}

bool WorkStealingPool::try_take(std::size_t self, std::function<void()>& out) {
  if (self < deques_.size()) {
    std::scoped_lock lock(deques_[self]->mutex);
    if (!deques_[self]->tasks.empty()) {
      out = std::move(deques_[self]->tasks.back());  // owner: LIFO
      deques_[self]->tasks.pop_back();
      return true;
    }
  }
  // Steal: scan victims starting at a rotating offset to spread contention.
  const std::size_t n = deques_.size();
  const std::size_t start = next_victim_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    std::scoped_lock lock(deques_[victim]->mutex);
    if (!deques_[victim]->tasks.empty()) {
      out = std::move(deques_[victim]->tasks.front());  // thief: FIFO
      deques_[victim]->tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      PDC_OBS_COUNT("pdc.steal.stolen");
      return true;
    }
  }
  return false;
}

bool WorkStealingPool::run_one(std::size_t hint) {
  std::function<void()> task;
  if (!try_take(hint, task)) return false;
  PDC_OBS_COUNT("pdc.steal.run");
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    idle_cv_.notify_all();  // quiescent: release wait_idle()
  }
  return true;
}

void WorkStealingPool::help_while(const std::function<bool()>& done) {
  const std::size_t self = (t_worker_pool == this) ? t_worker_index : SIZE_MAX;
  while (!done()) {
    if (!run_one(self)) std::this_thread::yield();
  }
}

void WorkStealingPool::wait_idle() {
  // The external thread helps too: this keeps fork/join deadlock-free even
  // on a pool of size 1.
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!run_one(SIZE_MAX)) {
      std::unique_lock lock(idle_mutex_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }
}

void WorkStealingPool::worker_loop(std::size_t self) {
  t_worker_index = self;
  t_worker_pool = this;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!run_one(self)) {
      std::unique_lock lock(idle_mutex_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stopping_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) != 0;
      });
    }
  }
  t_worker_pool = nullptr;
  t_worker_index = SIZE_MAX;
}

}  // namespace pdc::parallel
