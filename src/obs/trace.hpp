// Per-thread trace ring buffers + causal spans + Chrome trace_event JSON.
//
// Three pieces:
//
//  1. TraceCollector — a session object. While one is running, every
//     thread that emits an event lazily registers a fixed-capacity ring
//     buffer; events are appended under a per-ring mutex that is only
//     ever contended by the (rare) final harvest, so the hot path is an
//     uncontended lock + bump. When no collector is running, the emit
//     functions are a single relaxed atomic load and return — the
//     zero-contention fast path the instrumented modules rely on.
//
//  2. Causal spans — WireTrace{span, lamport} piggybacks on mp::Envelope
//     and net::Datagram. Senders call wire_capture() (ticks the thread's
//     Lamport clock, allocates a flow id, records a flow-start event);
//     receivers call wire_accept() (merges the clock, records the
//     flow-end event). In the exported JSON these become Chrome
//     flow events ("s"/"f"), which Perfetto draws as arrows stitching
//     the sender's span to the receiver's — one causal tree across
//     threads, messages, and protocol rounds.
//
//  3. chrome_trace_json() — serializes the harvested events in the
//     Chrome trace_event format (chrome://tracing, ui.perfetto.dev).
//     Under testkit::SimScheduler all timestamps come from the virtual
//     clock and all ids from session-local counters, so a fixed-seed run
//     exports byte-identical JSON (see tests/obs_test.cpp golden test).
//
// Labels passed to the emit functions must be string literals: events
// store the pointer, never a copy (same contract as testkit hook labels).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace pdc::obs {

/// Compile-time escape hatch: with PDCKIT_OBS_NOOP defined (CMake option
/// of the same name) trace_enabled() folds to false, so every emit path,
/// wire capture, and metric macro dead-code-eliminates. The collector and
/// registry stay linkable so tooling code needs no conditional compiles.
#ifdef PDCKIT_OBS_NOOP
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Causal metadata piggybacked on message envelopes and datagrams.
/// Default-constructed (zero) means "no trace attached" — envelopes built
/// while no collector is running carry this and cost nothing downstream.
/// Two independent sessions share the ride: the thread-ring fields
/// (span/lamport/flow, TraceCollector) and the request-trace fields
/// (trace_id/trace_span, SpanCollector — see obs/span.hpp).
struct WireTrace {
  std::uint64_t span = 0;     // originating span id (0 = none)
  std::uint64_t lamport = 0;  // sender's Lamport time at send
  std::uint64_t flow = 0;     // flow id pairing this send with its recv
  std::uint64_t trace_id = 0;    // request trace this message belongs to
  std::uint64_t trace_span = 0;  // sender's span id within that trace

  [[nodiscard]] bool empty() const noexcept {
    return span == 0 && lamport == 0 && flow == 0 && trace_id == 0;
  }
};

enum class TraceEventKind : std::uint8_t {
  kBegin,      // span open  (Chrome ph "B")
  kEnd,        // span close (Chrome ph "E")
  kInstant,    // point event (Chrome ph "i")
  kFlowStart,  // message leaves this thread  (Chrome ph "s")
  kFlowEnd,    // message arrives on this thread (Chrome ph "f")
};

struct TraceEvent {
  TraceEventKind kind;
  const char* name;       // string literal
  std::uint64_t ts_us;    // microseconds (virtual under sim)
  std::uint64_t id = 0;   // flow id for kFlowStart/kFlowEnd
  std::uint64_t arg = 0;  // free-form numeric payload (rank, seq, ...)
  std::uint64_t lamport = 0;
  std::uint64_t bytes = 0;  // payload size for kFlowStart/kFlowEnd
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
// Request-trace session flag + hooks, defined in span.cpp (the wire
// helpers below stamp/adopt SpanContexts when a SpanCollector runs).
extern std::atomic<bool> g_span_enabled;

void emit_slow(TraceEventKind kind, const char* name, std::uint64_t id,
               std::uint64_t arg);
[[nodiscard]] WireTrace wire_capture_slow(const char* name, std::uint64_t arg,
                                          std::uint64_t bytes);
void wire_accept_slow(const WireTrace& trace, const char* name,
                      std::uint64_t arg, std::uint64_t bytes);
void set_thread_name_slow(const char* name, std::uint64_t index);
void span_stamp_slow(WireTrace& trace);
void span_adopt_slow(const WireTrace& trace);
}  // namespace detail

/// True while a TraceCollector session is running (always false under
/// PDCKIT_OBS_NOOP).
inline bool trace_enabled() noexcept {
  return kObsEnabled && detail::g_trace_enabled.load(std::memory_order_relaxed);
}

inline void trace_begin(const char* name, std::uint64_t arg = 0) {
  if (trace_enabled()) detail::emit_slow(TraceEventKind::kBegin, name, 0, arg);
}
inline void trace_end(const char* name) {
  if (trace_enabled()) detail::emit_slow(TraceEventKind::kEnd, name, 0, 0);
}
inline void trace_instant(const char* name, std::uint64_t arg = 0) {
  if (trace_enabled()) {
    detail::emit_slow(TraceEventKind::kInstant, name, 0, arg);
  }
}

/// Sender side of a causal edge: ticks the calling thread's Lamport clock,
/// allocates a flow id, and records the flow-start event. Returns the
/// WireTrace to embed in the envelope/datagram (zero when not tracing).
/// `bytes` is the payload size, exported on the flow event so viewers can
/// plot volume per flow.
inline WireTrace wire_capture(const char* name, std::uint64_t arg = 0,
                              std::uint64_t bytes = 0) {
  WireTrace out;
  if (trace_enabled()) out = detail::wire_capture_slow(name, arg, bytes);
  if (kObsEnabled && detail::g_span_enabled.load(std::memory_order_relaxed)) {
    detail::span_stamp_slow(out);  // ambient SpanContext rides along
  }
  return out;
}

/// Receiver side: merges the sender's Lamport time into the calling
/// thread's clock (max+1) and records the flow-end event. Safe to call
/// with an empty WireTrace (no-op beyond the enabled check).
inline void wire_accept(const WireTrace& trace, const char* name,
                        std::uint64_t arg = 0, std::uint64_t bytes = 0) {
  if (trace_enabled() && !trace.empty()) {
    detail::wire_accept_slow(trace, name, arg, bytes);
  }
  if (kObsEnabled && detail::g_span_enabled.load(std::memory_order_relaxed)) {
    // Called for *every* message, traced or not: an empty context must
    // clear the thread's incoming slot (see take_incoming_span()).
    detail::span_adopt_slow(trace);
  }
}

/// Names the calling thread's track in the exported trace ("coordinator",
/// "participant"...). `index` orders tracks in the viewer and
/// disambiguates repeated names.
inline void set_trace_thread_name(const char* name, std::uint64_t index = 0) {
  if (trace_enabled()) detail::set_thread_name_slow(name, index);
}

/// RAII begin/end pair.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::uint64_t arg = 0) {
    if (trace_enabled()) {
      name_ = name;
      detail::emit_slow(TraceEventKind::kBegin, name, 0, arg);
    }
  }
  ~ScopedSpan() {
    // End unconditionally once begun: a collector stopping mid-span must
    // still see the close (stop() harvests before disabling emits is not
    // guaranteed, but an unmatched B is worse than a dropped E).
    if (name_ != nullptr && trace_enabled()) {
      detail::emit_slow(TraceEventKind::kEnd, name_, 0, 0);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Microsecond timestamp for trace events: virtual clock under an active
/// SimScheduler run, steady_clock otherwise.
[[nodiscard]] std::uint64_t now_us();

/// A stream client's position in the live event stream: the next unseen
/// sequence number per thread ring, plus the cumulative count of events
/// lost to ring laps (the cursor falling behind a ring's oldest retained
/// event because the consumer was too slow). One cursor per client; state
/// lives with the client, so the collector itself stays client-free.
struct TraceStreamCursor {
  std::map<std::uint64_t, std::uint64_t> next_seq;  // ring tid -> next seq
  std::uint64_t dropped = 0;
};

/// One incremental harvest: Chrome trace_event objects (comma-joined, no
/// enclosing array — ready to splice into an "events":[...] frame) for
/// every event appended since the cursor's position.
struct TraceStreamChunk {
  std::string events_json;
  std::size_t events = 0;
  std::uint64_t dropped = 0;  // newly lapped since the previous chunk
};

/// A trace session. Construction does nothing; start() begins recording
/// process-wide, stop() ends it; harvest with chrome_trace_json().
/// One collector may be running at a time (checked).
///
/// start() resets the session's id counters and clears every thread ring,
/// so two identical fixed-seed sim runs export identical JSON.
class TraceCollector {
 public:
  TraceCollector() = default;
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Events recorded since start(), serialized as a Chrome trace_event
  /// JSON document. Call after stop(). Events are ordered by
  /// (timestamp, thread track, ring position) so the output is stable.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Incremental harvest from the *running* session — the live
  /// counterpart of chrome_trace_json(): drains events appended since
  /// `cursor`, advances the cursor, and counts events a ring overwrote
  /// before this client consumed them (ring lap -> chunk.dropped and
  /// cursor.dropped). Events come out in (ring, sequence) order as the
  /// same JSON objects a post-stop dump would contain, so concatenating
  /// every chunk of a lap-free client reproduces the dump's event set.
  [[nodiscard]] TraceStreamChunk stream_chunk(TraceStreamCursor& cursor) const;

  /// Total events harvested (post-stop convenience for tests).
  [[nodiscard]] std::size_t event_count() const;

  /// Events a ring dropped because it was full are counted; exposed so
  /// tests can assert losslessness where it matters.
  [[nodiscard]] std::uint64_t dropped_events() const;

 private:
  bool running_ = false;
};

/// Events each thread ring can hold per session. Rings are circular: a
/// full ring overwrites its oldest event and counts the loss, so live
/// stream clients always see the newest activity; a post-stop dump of an
/// overflowed ring holds the trailing window (unmatched span begins are
/// possible there — the stream saw the complete prefix).
inline constexpr std::size_t kTraceRingCapacity = 1u << 16;

}  // namespace pdc::obs
