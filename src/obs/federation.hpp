// Scrape federation: cross-process aggregation of the telemetry plane.
//
// The paper's courses teach performance observation of *distributed*
// programs; a per-process /metrics endpoint only shows one rank. This
// module adds the operator tier:
//
//   rank 0  TelemetryServer ──┐
//   rank 1  TelemetryServer ──┤   Aggregator ── /metrics, /metrics.json,
//   rank 2  TelemetryServer ──┤   (scrape +      /metrics.wire, /healthz,
//   rank 3  TelemetryServer ──┘    merge)        reset, snapshot-now
//
// An Aggregator scrapes N TelemetryServer endpoints concurrently (the
// lock-free ThreadPool via parallel::fan_out — one in-flight scrape per
// runner), decodes each /metrics.wire reply, and merges:
//
//   counters    sum across sources
//   gauges      last-written value wins (source input order)
//   histograms  bucket-wise sum — exact, associative, and commutative
//               because every process shares the same power-of-two bucket
//               edges (no resolution loss, no rebinning)
//
// Every input series reappears stamped with a source label (default
// `rank="<source>"`), and each input key also feeds an *aggregate* series
// under its original labels, so the federated view answers both "what is
// the fleet-wide p99" and "which rank is the outlier". Stamping is
// insert-if-absent: a series that already carries the label — e.g. one
// produced by a lower Aggregator tier — keeps its original attribution,
// which is what lets Aggregators scrape other Aggregators (/metrics.wire
// is served by both).
//
// Determinism: merge output ordering comes from sorted MetricKey maps, so
// a fixed set of input snapshots produces one byte-stable result
// regardless of scrape completion order (golden test over a fixed-seed
// 4-rank sim in tests/obs_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "support/status.hpp"

namespace pdc::obs {

/// One federated input: the snapshot scraped from `source` (the value
/// stamped into the source label).
struct SourceSnapshot {
  std::string source;
  MetricsSnapshot snapshot;
};

/// Pure merge of per-source snapshots into one federated view (semantics
/// in the file comment). Exposed separately from Aggregator so merge
/// algebra is testable without a network.
[[nodiscard]] MetricsSnapshot merge_federated(
    const std::vector<SourceSnapshot>& sources,
    std::string_view source_label = "rank");

/// One scrape target: a telemetry endpoint plus the source-label value its
/// series are stamped with.
struct ScrapeTarget {
  net::Address address;
  std::string source;
};

struct AggregatorConfig {
  std::string source_label = "rank";
  net::ThreadingModel model = net::ThreadingModel::kThreadPerConnection;
  std::size_t workers = 2;         // worker-pool model only
  std::size_t scrape_threads = 3;  // fan-out pool for concurrent scrapes
};

/// Scrapes its target set on demand and re-exposes the merged view on its
/// own telemetry endpoints (/metrics, /metrics.json, /metrics.wire,
/// /healthz), plus:
///
///   /metrics/topk?n=K&by=value|rate   top-K merged counter series as
///       JSON — by=value ranks totals, by=rate ranks deltas since the
///       previous /metrics/topk?by=rate call (server-wide cursor)
///   /profile/folded   federated folded profile: each target's
///       /profile/folded, every stack rank-stamped with a
///       `<source_label>=<source>` root frame (insert-if-absent, so
///       aggregator tiers stack) and summed by key
///   /profile/contention?n=K   top-K contended sites over the *merged*
///       snapshot — pdc.contend.wait_us{site=} federates like any series
///   /trace/slowest?n=K        fleet-wide slowest kept traces as JSON:
///       each target's /trace/slowest.wire list, source-stamped
///       insert-if-absent, merged by root latency
///   /trace/slowest.wire?n=K   the same list in wire form, so aggregator
///       tiers federate traces the way they federate metrics
///   reset             control verb, broadcast to every target
///   snapshot-now      immediate federated /metrics.json body
///   add-target <host> <port> <source>   hot-add a scrape target; it
///       appears in the next federated scrape
///   remove-target <source>              hot-remove by source value
///
/// Self-metrics (pdc.fed.*) go to the process-wide registry, never into
/// the federated output — unless a target happens to serve that registry.
class Aggregator {
 public:
  Aggregator(net::Network& net, int host, std::uint16_t port,
             std::vector<ScrapeTarget> targets, AggregatorConfig config = {});
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  [[nodiscard]] net::Address address() const;

  /// Scrapes every target concurrently and merges. Unreachable targets
  /// are skipped (their series simply disappear from this round) and
  /// counted in pdc.fed.scrape_errors.
  [[nodiscard]] MetricsSnapshot federate();

  /// Federates the targets' /profile/folded bodies: rank-stamps each
  /// stack with a `<source_label>=<source>` root frame (unless already
  /// stamped) and sums by key. Targets answering errors (NOOP ranks,
  /// unreachable) are skipped.
  [[nodiscard]] FoldedProfile federate_profiles();

  /// Federates the targets' kept-trace lists: fetches each
  /// /trace/slowest.wire?n=N, stamps `source` on traces that carry none
  /// (insert-if-absent — a lower aggregator tier's attribution survives),
  /// merges, and returns the fleet-wide n slowest (root_us descending;
  /// ties broken by source then trace id, so the list is byte-stable).
  /// Targets answering errors (NOOP ranks, no collector, unreachable)
  /// are skipped.
  [[nodiscard]] std::vector<TraceSummary> federate_traces(std::size_t n);

  /// Sends a control verb ("reset", "snapshot-now") to every target
  /// concurrently; returns how many targets acknowledged.
  std::size_t broadcast_control(const std::string& verb);

  /// Hot add/remove (also reachable as the add-target / remove-target
  /// control verbs): the change is visible to the next federate() round.
  /// remove_target returns false when no target matches `source`.
  void add_target(ScrapeTarget target);
  bool remove_target(std::string_view source);
  [[nodiscard]] std::size_t target_count() const;

  /// Stops accepting; existing connections finish their current request.
  void stop();

 private:
  [[nodiscard]] std::string endpoint_body(const std::string& endpoint);
  [[nodiscard]] std::string topk_body(const std::string& endpoint);
  [[nodiscard]] support::Result<std::string> fetch_text(
      const ScrapeTarget& target, const std::string& endpoint);
  [[nodiscard]] support::Result<MetricsSnapshot> scrape_target(
      const ScrapeTarget& target);
  [[nodiscard]] std::vector<ScrapeTarget> targets_copy() const;

  net::Network& net_;
  int host_;
  mutable std::mutex targets_mutex_;
  std::vector<ScrapeTarget> targets_;  // guarded by targets_mutex_
  AggregatorConfig config_;
  parallel::ThreadPool pool_;
  std::mutex rate_mutex_;
  // Previous /metrics/topk?by=rate counter totals (server-wide cursor).
  std::map<std::string, std::uint64_t> rate_prev_;
  std::unique_ptr<net::Server> server_;  // last member: threads start here
};

}  // namespace pdc::obs
