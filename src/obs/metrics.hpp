// MetricsRegistry: process-wide counters, gauges, and fixed-bucket
// histograms for the library's hot paths.
//
// The paper's case-study courses all teach performance *observation* as a
// first-class PDC skill; this is the layer that makes PDCkit's own locks,
// pools, fabrics, and protocols observable. Design constraints, in order:
//
//  1. Instrumented hot paths must stay wait-free. Every metric is sharded
//     into kMetricShards cache-line-aligned slots; a thread picks its slot
//     once (round-robin at first touch) and then every update is a single
//     relaxed atomic RMW on a line it rarely shares. No locks, no CAS
//     loops, no seqlocks on the update path.
//  2. Scrapes are rare and may be slow: scrape() aggregates the shards
//     under the registry mutex. A scrape racing an update can miss that
//     update (relaxed loads) — monitoring semantics, documented here.
//  3. Everything compiles out under PDCKIT_OBS_NOOP (see obs/obs.hpp);
//     the registry itself stays linkable so tooling code need not be
//     conditionally compiled.
//
// Histograms use exponential base-2 buckets: bucket 0 counts values < 1,
// bucket b counts values in [2^(b-1), 2^b). The value unit is chosen per
// histogram by its writers (this library records microseconds).
//
// Metrics may carry labels (PR 5, scrape federation): a metric is
// identified by a MetricKey{name, sorted label pairs}. The flat-name
// overloads remain the fast path — a label-free lookup never builds a
// MetricKey (transparent map comparison against the string_view). Labeled
// series of one name form a family, rendered `name{k="v",...}` in the
// exposition and nested objects in JSON. Labels only affect *lookup*; the
// returned Counter/Gauge/Histogram objects keep the identical wait-free
// sharded update path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdc::obs {

inline constexpr std::size_t kMetricShards = 16;
inline constexpr std::size_t kHistogramBuckets = 32;

/// Label pairs of one metric series. Canonical form is sorted by key with
/// unique keys; MetricsRegistry canonicalizes on lookup.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Identity of one metric series: base name plus canonical labels.
struct MetricKey {
  std::string name;
  Labels labels;  // sorted by key, keys unique

  /// `name{k="v",...}` with Prometheus label-value escaping (backslash,
  /// quote, newline); just `name` when unlabeled. Canonical keys are the
  /// series identity everywhere a string identifies a series: snapshot
  /// find(), delta frames, the wire format, compare.py report keys.
  [[nodiscard]] std::string canonical() const;

  /// Inverse of canonical(); nullopt on malformed input.
  [[nodiscard]] static std::optional<MetricKey> parse(std::string_view text);

  /// Sorts labels by key (value order breaks ties) and drops duplicate
  /// keys (first occurrence wins).
  void canonicalize();

  /// Adds a label only if `key` is absent — federation stamps a source
  /// label without clobbering one applied by a lower aggregation tier.
  void add_label_if_absent(std::string_view key, std::string_view value);

  friend bool operator==(const MetricKey&, const MetricKey&) = default;
};

/// Orders series by (name, labels); transparent against a bare name so the
/// unlabeled fast path can probe the map with a string_view (an unlabeled
/// key sorts before every labeled sibling).
struct MetricKeyLess {
  using is_transparent = void;
  bool operator()(const MetricKey& a, const MetricKey& b) const {
    const int c = a.name.compare(b.name);
    return c != 0 ? c < 0 : a.labels < b.labels;
  }
  bool operator()(const MetricKey& a, std::string_view b) const {
    return a.name.compare(b) < 0;
  }
  bool operator()(std::string_view a, const MetricKey& b) const {
    const int c = b.name.compare(a);
    return c != 0 ? c > 0 : !b.labels.empty();
  }
};

/// Appends `text` as a JSON string literal (quoted, escaped).
void append_json_string(std::string& out, std::string_view text);

namespace detail {
/// Slot index of the calling thread: assigned round-robin on first use,
/// stable for the thread's lifetime.
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

/// Fixed-rank interpolated quantile over power-of-two buckets: finds the
/// bucket containing rank ceil(q*count) and interpolates linearly between
/// its bounds (bucket 0 spans [0,1); the unbounded tail bucket reports its
/// lower bound — a deliberate under-estimate, since it has no upper edge).
/// Works on both full and trailing-zero-trimmed bucket vectors because
/// trimming never shifts indices.
[[nodiscard]] double histogram_quantile(const std::uint64_t* buckets,
                                        std::size_t n_buckets,
                                        std::uint64_t count, double q);

/// Deterministic float formatting for expositions and JSON (printf %.6g:
/// locale-independent, shortest-ish, never produces inf/nan for quantile
/// outputs).
[[nodiscard]] std::string format_double(double value);

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    slots_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards (may miss in-flight updates; never undercounts a
  /// completed one).
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (auto& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  Slot slots_[kMetricShards];
};

/// Additive gauge (add on entry, sub on exit). The instantaneous value is
/// the shard sum, so concurrent readers may observe transient values; the
/// high-water mark is tracked separately and is monotone.
class Gauge {
 public:
  void add(std::int64_t delta = 1) noexcept {
    const std::int64_t now =
        total_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) {
      // Lossy max: a racing higher value may briefly win; good enough for
      // a high-water mark and keeps the path store-only.
      std::int64_t seen = high_water_.load(std::memory_order_relaxed);
      while (now > seen &&
             !high_water_.compare_exchange_weak(seen, now,
                                                std::memory_order_relaxed)) {
      }
    }
  }
  void sub(std::int64_t delta = 1) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    total_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  // A gauge's current value must be coherent enough for a high-water mark,
  // so it is a single atomic rather than sharded slots: gauges guard
  // counts like queue depth, updated orders of magnitude less often than
  // the counters next to them.
  alignas(64) std::atomic<std::int64_t> total_{0};
  alignas(64) std::atomic<std::int64_t> high_water_{0};
};

/// Fixed-bucket latency histogram (exponential base-2 buckets).
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    auto& slot = slots_[detail::shard_index()];
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    slot.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }
  void record(double value) noexcept {
    record(value <= 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(value));
  }

  /// Bucket index for a value: 0 for v < 1, else 1 + floor(log2 v),
  /// clamped to the last bucket.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    std::size_t b = 0;
    while (value > 0 && b + 1 < kHistogramBuckets) {
      value >>= 1;
      ++b;
    }
    return b;
  }
  /// Exclusive upper bound of bucket `b` (inf for the last).
  [[nodiscard]] static double bucket_upper(std::size_t b) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bound of the bucket containing quantile `q` (0..1).
    [[nodiscard]] double quantile_upper(double q) const;
    /// Interpolated quantile estimate (see obs::histogram_quantile).
    [[nodiscard]] double quantile(double q) const;

    /// Bucket-wise sum. Because every process uses the same power-of-two
    /// bucket edges, merging is *exact* (no resolution loss), associative,
    /// and commutative — the algebra scrape federation relies on.
    Snapshot& merge(const Snapshot& other);

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
    for (const auto& slot : slots_) {
      out.count += slot.count.load(std::memory_order_relaxed);
      out.sum += slot.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  void reset() noexcept {
    for (auto& slot : slots_) {
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0, std::memory_order_relaxed);
      for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  Slot slots_[kMetricShards];
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric's aggregated value at scrape time. `name` is the canonical
/// series key (base + label block); `base`/`labels` are its parsed parts.
struct MetricSample {
  std::string name;  // MetricKey::canonical() — unique within the snapshot
  std::string base;  // label-free metric name
  Labels labels;     // canonical label pairs (empty for flat series)
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;             // counter total / histogram count
  std::int64_t value = 0;              // gauge value
  std::int64_t high_water = 0;         // gauge high-water mark
  std::uint64_t sum = 0;               // histogram sum
  std::vector<std::uint64_t> buckets;  // histogram buckets (trailing zeros trimmed)

  /// Interpolated quantile estimate for histogram samples (0.0 otherwise).
  [[nodiscard]] double quantile(double q) const;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

struct MetricsSnapshot {
  // Sorted by (base, labels) within each kind group; kind groups appear in
  // the order counters, gauges, histograms. Canonical names are unique.
  std::vector<MetricSample> samples;

  [[nodiscard]] const MetricSample* find(std::string_view name) const;
  /// Counter total / gauge value / histogram count; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Labeled families nest one level: `"base":{"k=\"v\"":...}`, with an
  /// unlabeled series of the same base under the empty-string key.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable dump (one metric per line), zero-valued metrics skipped.
  void render(std::ostream& os) const;

  /// Deterministic line-oriented encoding for cross-process federation
  /// (exact integers — unlike the exposition, which rounds derived
  /// quantiles). One line per series: `c "name" count`,
  /// `g "name" value high_water`, `h "name" count sum n b0..bn-1`, with the
  /// canonical name JSON-quoted. Round-trips through from_wire().
  [[nodiscard]] std::string to_wire() const;
  /// Inverse of to_wire(); nullopt on any malformed line.
  [[nodiscard]] static std::optional<MetricsSnapshot> from_wire(
      std::string_view wire);
};

/// A registry of metrics. `instance()` is the process-wide default that the
/// PDC_OBS_* macros write to; additional instances can be created for
/// logically separate metric planes (e.g. one per simulated rank, each
/// behind its own TelemetryServer — see obs/federation.hpp). Metric objects
/// are interned by MetricKey and live for the registry's lifetime, so hot
/// paths cache the returned reference (function-local static for the
/// macros, a member pointer for per-instance users).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Labeled lookups: `labels` is canonicalized (sorted by key, duplicate
  /// keys dropped) before interning, so every permutation of the same
  /// pairs maps to one series.
  Counter& counter(std::string_view name, Labels labels);
  Gauge& gauge(std::string_view name, Labels labels);
  Histogram& histogram(std::string_view name, Labels labels);

  /// Aggregates every registered metric. Safe to call concurrently with
  /// updates (monitoring semantics; see file comment).
  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Zeroes every metric, keeping registrations (cached references stay
  /// valid). Intended for tests, benches, and the `reset` control verb.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<MetricKey, std::unique_ptr<Counter>, MetricKeyLess> counters_;
  std::map<MetricKey, std::unique_ptr<Gauge>, MetricKeyLess> gauges_;
  std::map<MetricKey, std::unique_ptr<Histogram>, MetricKeyLess> histograms_;
};

}  // namespace pdc::obs
