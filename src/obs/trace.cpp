#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

/// Bumped at every TraceCollector::start(); threads compare it against
/// their cached value to know their ring belongs to a dead session.
std::atomic<std::uint64_t> g_session_epoch{1};

struct Ring {
  std::mutex mutex;
  // Circular: events[i] holds sequence base_seq + i; a full ring pops the
  // front (overwrite-oldest) so stream cursors can detect laps by
  // comparing their position against base_seq.
  std::deque<TraceEvent> events;
  std::uint64_t base_seq = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tid = 0;  // session-local track id (registration order)
  const char* thread_name = nullptr;
  std::uint64_t name_index = 0;
  // Owner-thread state, still guarded by `mutex` because the harvest
  // reads it: the thread's Lamport clock and its open-span stack.
  std::uint64_t lamport = 0;
  std::uint64_t next_span = 1;
  std::vector<std::uint64_t> span_stack;
};

struct HarvestedRing {
  std::uint64_t tid = 0;
  const char* thread_name = nullptr;
  std::uint64_t name_index = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  // live session's rings
  std::uint64_t next_tid = 0;
  std::atomic<std::uint64_t> next_flow{1};
  std::vector<HarvestedRing> harvest;  // last stopped session
};

TraceState& state() {
  static TraceState instance;
  return instance;
}

/// The calling thread's ring for the current session, registering one on
/// first touch. Registration order is the track order in the export —
/// deterministic under SimScheduler because only one thread runs at a
/// time. The thread_local holds shared ownership so a ring stays valid
/// for a thread that outlives the session that created it.
Ring& current_ring() {
  thread_local std::shared_ptr<Ring> ring;
  thread_local std::uint64_t ring_epoch = 0;
  const std::uint64_t epoch = g_session_epoch.load(std::memory_order_acquire);
  if (!ring || ring_epoch != epoch) {
    auto fresh = std::make_shared<Ring>();
    auto& st = state();
    std::scoped_lock lock(st.mutex);
    fresh->tid = st.next_tid++;
    st.rings.push_back(fresh);
    ring = std::move(fresh);
    ring_epoch = epoch;
  }
  return *ring;
}

void append(Ring& ring, TraceEvent event) {
  if (ring.events.size() >= kTraceRingCapacity) {
    ring.events.pop_front();
    ++ring.base_seq;
    ++ring.dropped;
  }
  ring.events.push_back(event);
}

const char* phase_of(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBegin: return "B";
    case TraceEventKind::kEnd: return "E";
    case TraceEventKind::kInstant: return "i";
    case TraceEventKind::kFlowStart: return "s";
    case TraceEventKind::kFlowEnd: return "f";
  }
  return "i";
}

void append_json_string(std::string& out, const char* text) {
  out += '"';
  for (; *text != '\0'; ++text) {
    switch (*text) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += *text;
    }
  }
  out += '"';
}

/// One Chrome trace_event object — shared by the post-stop dump and the
/// live stream so a streamed event is byte-identical to its dump twin.
void append_event_json(std::string& out, const TraceEvent& ev,
                       std::uint64_t tid) {
  out += "{\"ph\":\"";
  out += phase_of(ev.kind);
  out += "\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"ts\":" + std::to_string(ev.ts_us) + ",\"name\":";
  append_json_string(out, ev.name);
  switch (ev.kind) {
    case TraceEventKind::kFlowStart:
      out += ",\"cat\":\"wire\",\"id\":" + std::to_string(ev.id);
      break;
    case TraceEventKind::kFlowEnd:
      // bp:"e" binds the arrow to the enclosing slice rather than the
      // next one — required for the causal reading of the trace.
      out += ",\"cat\":\"wire\",\"bp\":\"e\",\"id\":" + std::to_string(ev.id);
      break;
    case TraceEventKind::kInstant:
      out += ",\"s\":\"t\"";
      break;
    default:
      break;
  }
  if (ev.kind != TraceEventKind::kEnd) {
    out += ",\"args\":{\"arg\":" + std::to_string(ev.arg) +
           ",\"lamport\":" + std::to_string(ev.lamport);
    if (ev.kind == TraceEventKind::kFlowStart ||
        ev.kind == TraceEventKind::kFlowEnd) {
      out += ",\"bytes\":" + std::to_string(ev.bytes);
    }
    out += "}";
  }
  out += "}";
}

}  // namespace

void emit_slow(TraceEventKind kind, const char* name, std::uint64_t id,
               std::uint64_t arg) {
  Ring& ring = current_ring();
  std::scoped_lock lock(ring.mutex);
  std::uint64_t lamport = ring.lamport;
  if (kind == TraceEventKind::kBegin) {
    ring.span_stack.push_back((ring.tid << 32) | ring.next_span++);
  } else if (kind == TraceEventKind::kEnd && !ring.span_stack.empty()) {
    ring.span_stack.pop_back();
  }
  append(ring, TraceEvent{kind, name, now_us(), id, arg, lamport});
}

WireTrace wire_capture_slow(const char* name, std::uint64_t arg,
                            std::uint64_t bytes) {
  Ring& ring = current_ring();
  std::scoped_lock lock(ring.mutex);
  ring.lamport += 1;
  WireTrace wire;
  wire.lamport = ring.lamport;
  wire.span = ring.span_stack.empty() ? (ring.tid << 32)
                                      : ring.span_stack.back();
  wire.flow = state().next_flow.fetch_add(1, std::memory_order_relaxed);
  append(ring, TraceEvent{TraceEventKind::kFlowStart, name, now_us(),
                          wire.flow, arg, wire.lamport, bytes});
  return wire;
}

void wire_accept_slow(const WireTrace& trace, const char* name,
                      std::uint64_t arg, std::uint64_t bytes) {
  Ring& ring = current_ring();
  std::scoped_lock lock(ring.mutex);
  ring.lamport = std::max(ring.lamport, trace.lamport) + 1;
  append(ring, TraceEvent{TraceEventKind::kFlowEnd, name, now_us(),
                          trace.flow, arg, ring.lamport, bytes});
}

void set_thread_name_slow(const char* name, std::uint64_t index) {
  Ring& ring = current_ring();
  std::scoped_lock lock(ring.mutex);
  ring.thread_name = name;
  ring.name_index = index;
}

}  // namespace detail

std::uint64_t now_us() {
  namespace tk = pdc::testkit::detail;
  if (tk::g_sim_active.load(std::memory_order_relaxed)) {
    return static_cast<std::uint64_t>(tk::clock_now_slow() * 1e6 + 0.5);
  }
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            start)
          .count());
}

TraceCollector::~TraceCollector() {
  if (running_) stop();
}

void TraceCollector::start() {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  PDC_CHECK_MSG(!detail::g_trace_enabled.load(std::memory_order_relaxed),
                "only one TraceCollector may run at a time");
  st.rings.clear();
  st.harvest.clear();
  st.next_tid = 0;
  st.next_flow.store(1, std::memory_order_relaxed);
  // New epoch invalidates every thread's cached ring; threads re-register
  // (in deterministic order under the sim) on their first emit.
  detail::g_session_epoch.fetch_add(1, std::memory_order_release);
  detail::g_trace_enabled.store(true, std::memory_order_release);
  running_ = true;
}

void TraceCollector::stop() {
  PDC_CHECK_MSG(running_, "TraceCollector::stop without start");
  auto& st = detail::state();
  detail::g_trace_enabled.store(false, std::memory_order_release);
  std::scoped_lock lock(st.mutex);
  // A thread that passed the enabled check just before the store may still
  // be appending; the per-ring mutex makes the harvest race-free (its
  // event lands either in this harvest or in the ring graveyard).
  for (const auto& ring : st.rings) {
    std::scoped_lock ring_lock(ring->mutex);
    st.harvest.push_back(detail::HarvestedRing{
        ring->tid, ring->thread_name, ring->name_index, ring->dropped,
        std::vector<TraceEvent>(ring->events.begin(), ring->events.end())});
  }
  std::sort(st.harvest.begin(), st.harvest.end(),
            [](const auto& a, const auto& b) { return a.tid < b.tid; });
  running_ = false;
}

std::size_t TraceCollector::event_count() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  std::size_t n = 0;
  for (const auto& ring : st.harvest) n += ring.events.size();
  return n;
}

std::uint64_t TraceCollector::dropped_events() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  std::uint64_t n = 0;
  for (const auto& ring : st.harvest) n += ring.dropped;
  return n;
}

std::string TraceCollector::chrome_trace_json() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  // Track metadata first: names and an explicit sort order so Perfetto
  // shows coordinator above participants regardless of harvest order.
  for (const auto& ring : st.harvest) {
    if (ring.thread_name == nullptr) continue;
    std::string line = "{\"ph\":\"M\",\"pid\":1,\"tid\":" +
                       std::to_string(ring.tid) +
                       ",\"name\":\"thread_name\",\"args\":{\"name\":";
    detail::append_json_string(line, ring.thread_name);
    line += "}}";
    emit(line);
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(ring.tid) +
         ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
         std::to_string(ring.name_index) + "}}");
  }
  for (const auto& ring : st.harvest) {
    for (const auto& ev : ring.events) {
      std::string line;
      detail::append_event_json(line, ev, ring.tid);
      emit(line);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

TraceStreamChunk TraceCollector::stream_chunk(TraceStreamCursor& cursor) const {
  TraceStreamChunk chunk;
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  for (const auto& ring : st.rings) {
    std::scoped_lock ring_lock(ring->mutex);
    std::uint64_t seq = 0;
    if (const auto it = cursor.next_seq.find(ring->tid);
        it != cursor.next_seq.end()) {
      seq = it->second;
    }
    if (seq < ring->base_seq) {
      // The ring lapped this client: everything between its cursor and the
      // oldest retained event is gone for good.
      chunk.dropped += ring->base_seq - seq;
      seq = ring->base_seq;
    }
    const std::uint64_t end = ring->base_seq + ring->events.size();
    for (; seq < end; ++seq) {
      if (!chunk.events_json.empty()) chunk.events_json += ',';
      detail::append_event_json(
          chunk.events_json,
          ring->events[static_cast<std::size_t>(seq - ring->base_seq)],
          ring->tid);
      ++chunk.events;
    }
    cursor.next_seq[ring->tid] = end;
  }
  cursor.dropped += chunk.dropped;
  return chunk;
}

}  // namespace pdc::obs
