// TelemetryServer: PDCkit's live telemetry plane, served over its own
// client-server stack.
//
// The case-study courses teach performance *observation* of running
// systems; this is the piece that makes PDCkit queryable while it runs.
// A TelemetryServer is an ordinary net::Server speaking the framed text
// protocol (request = endpoint string, reply = body):
//
//   /metrics        Prometheus-style text exposition of the registry
//   /metrics.json   the same scrape as MetricsSnapshot::to_json()
//   /metrics.wire   the same scrape as MetricsSnapshot::to_wire() — the
//                   exact-integer encoding federation scrapes (see
//                   obs/federation.hpp)
//   /trace          Chrome trace_event JSON of the attached collector's
//                   harvested session (error JSON when none is attached
//                   or it is still running — stream instead, below)
//   /trace/slowest?n=K    the attached SpanCollector's K slowest kept
//                   traces as JSON, critical-path annotated (default 8)
//   /trace/slowest.wire?n=K   the same list in the line-oriented wire
//                   form the Aggregator federates
//   /trace/byid?id=N      one kept trace by trace id (error JSON when it
//                   was sampled away)
//                   (every /trace-family endpoint — including
//                   /trace/stream — answers the same
//                   {"error":"tracing disabled (PDCKIT_OBS_NOOP)"} shape
//                   under PDCKIT_OBS_NOOP)
//   /healthz        "ok\n"
//   /profile?ms=N&period_us=P   collect-then-respond profile: samples the
//                   worker slots inline for N ms (default 50) at period P
//                   (default 1000) and replies with that window's folded
//                   stacks — the global accumulation is untouched
//   /profile/folded flamegraph.pl-compatible folded stacks of the
//                   Profiler's global accumulation (whatever sampler is
//                   feeding it: start(), run_sim_sampler, sample_once)
//   /profile/contention?n=K   top-K most-contended sites as JSON, ranked
//                   by total wait from pdc.contend.wait_us{site=} in the
//                   served registry
//                   (all three /profile endpoints answer an error JSON
//                   under PDCKIT_OBS_NOOP)
//   /subscribe N I [filter]  push N framed delta snapshots, I ms apart;
//                   the optional third token restricts frames to series
//                   whose canonical name starts with it — "pdc.pool." for
//                   a family, `pdc.raft.term{rank="1"}` for one labeled
//                   series (see below)
//   /trace/stream N I  push N framed chunks of live trace events from the
//                   *running* collector, I ms apart: per-client
//                   TraceStreamCursor on the connection stack; each frame
//                   is {"cursor":k,"dropped":<cumulative laps>,
//                   "events":[...]} with events byte-identical to their
//                   /trace dump twins
//   reset           control verb: zero every metric in the served
//                   registry, reply "ok\n"
//   snapshot-now    control verb: immediate /metrics.json body, bypassing
//                   any scrape cadence an operator tier imposes
//
// Delta subscriptions use net::ServerConfig::raw_handler: the serving
// thread scrapes, diffs against the previous scrape it sent *this client*
// (the per-client cursor state lives on the connection's stack), and
// pushes one framed JSON object per tick with a cursor that starts at 1
// and increments by 1 per frame. Frame 1 diffs against an empty snapshot,
// i.e. it carries full totals.
//
// Determinism contract: serving a scrape never perturbs the scrape it
// renders. Stream traffic bumps no pdc.* metrics (by design in net), and
// the server's self-metrics are registered eagerly in the constructor and
// incremented only *after* a reply is rendered — so the first /metrics
// body after a fixed-seed sim run is byte-identical across runs (golden
// test in tests/obs_test.cpp).
//
// This header lives under src/obs/ with the pdc::obs namespace, but the
// implementation links the net stack — which itself links pdc_obs — so it
// builds as its own target (pdc_telemetry) to keep the module graph
// acyclic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace pdc::obs {

/// Prometheus-style text exposition of a scrape. Grammar per metric (names
/// are sanitized: every character outside [A-Za-z0-9_:] becomes '_'):
///   counter    # TYPE <name> counter        + one "<name> <total>" line
///   gauge      # TYPE <name> gauge          + value and <name>_high_water
///   histogram  # TYPE <name> histogram      + cumulative <name>_bucket{le=...}
///              lines (power-of-two bounds), _sum, _count, and
///              <name>{quantile="0.5|0.9|0.99"} interpolated summaries.
/// Labeled series render as `<name>{k="v",...} <value>` (label keys
/// sanitized like names, values escaped) with one `# TYPE` line per
/// family, and `le`/`quantile` appended after the series labels.
[[nodiscard]] std::string prometheus_exposition(const MetricsSnapshot& snapshot);

/// One frame of the delta-subscription stream: counters and histograms
/// report activity since `prev` (names whose delta is zero are omitted);
/// gauges always report their current value and high-water mark. A
/// non-empty `filter` keeps only series whose canonical name starts with
/// it (label-aware: canonical names embed the label block). Pure function
/// so cursor semantics are unit-testable without a network.
[[nodiscard]] std::string delta_json(const MetricsSnapshot& prev,
                                     const MetricsSnapshot& cur,
                                     std::uint64_t cursor,
                                     std::string_view filter = {});

/// Value of `key` in an endpoint's `?k=v&k2=v2` query block; empty when
/// absent. Shared by the telemetry and aggregator endpoint parsers.
[[nodiscard]] std::string endpoint_query(const std::string& endpoint,
                                         std::string_view key);

/// Like endpoint_query, parsed as an unsigned integer; `fallback` when
/// absent or malformed.
[[nodiscard]] std::uint64_t endpoint_query_u64(const std::string& endpoint,
                                               std::string_view key,
                                               std::uint64_t fallback);

struct TelemetryConfig {
  net::ThreadingModel model = net::ThreadingModel::kThreadPerConnection;
  std::size_t workers = 2;  // worker-pool model only
  // Registry this server scrapes and resets; nullptr means the
  // process-wide MetricsRegistry::instance(). Per-rank servers in a
  // federated sim each point at their own instance so every endpoint
  // exports that rank's plane only. The server's own self-metrics always
  // go to the process-wide registry, keeping a custom plane unperturbed
  // by the act of scraping it.
  MetricsRegistry* registry = nullptr;
};

class TelemetryServer {
 public:
  TelemetryServer(net::Network& net, int host, std::uint16_t port,
                  TelemetryConfig config = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  [[nodiscard]] net::Address address() const;

  /// Points /trace at a collector. The caller keeps ownership and must
  /// outlive the server (or detach with nullptr); /trace answers an error
  /// JSON while the collector is absent or still running.
  void attach_collector(const TraceCollector* collector);

  /// Points /trace/slowest, /trace/byid and the /metrics.json exemplar
  /// splice at a span collector. Same ownership contract as
  /// attach_collector; the span endpoints answer an error JSON while
  /// absent.
  void attach_spans(const SpanCollector* spans);

  /// Stops accepting; existing connections finish their current request.
  void stop();

 private:
  [[nodiscard]] MetricsRegistry& registry() const;
  [[nodiscard]] std::string endpoint_body(const std::string& endpoint);
  net::Bytes handle(const net::Bytes& request);
  bool handle_stream(const net::Bytes& request, net::StreamSocket& socket);
  bool stream_subscription(std::uint64_t frames, std::uint64_t interval_ms,
                           const std::string& filter,
                           net::StreamSocket& socket);
  bool stream_trace(std::uint64_t frames, std::uint64_t interval_ms,
                    net::StreamSocket& socket);

  MetricsRegistry* registry_ = nullptr;  // nullptr = process-wide instance
  std::atomic<const TraceCollector*> collector_{nullptr};
  std::atomic<const SpanCollector*> spans_{nullptr};
  std::unique_ptr<net::Server> server_;  // last member: threads start here
};

/// Framed-stream client for the telemetry plane, so examples and tests
/// need no framing code of their own.
class TelemetryClient {
 public:
  TelemetryClient(net::Network& net, int host) : net_(net), host_(host) {}

  support::Status connect(const net::Address& server);

  /// One GET round trip ("/metrics", "/healthz", ...).
  support::Result<std::string> get(const std::string& endpoint);

  /// Subscribes to `frames` delta snapshots `interval_ms` apart and calls
  /// `on_frame` with each frame's JSON. A non-empty `filter` restricts the
  /// frames to series whose canonical name starts with it. Returns after
  /// the last frame.
  support::Status subscribe(
      std::size_t frames, std::uint64_t interval_ms,
      const std::function<void(const std::string&)>& on_frame,
      std::string_view filter = {});

  /// Streams `frames` chunks of live trace events from the server's
  /// running collector (`/trace/stream`), calling `on_chunk` with each
  /// frame's JSON. Returns after the last frame.
  support::Status stream_trace(
      std::size_t frames, std::uint64_t interval_ms,
      const std::function<void(const std::string&)>& on_chunk);

  void close();

 private:
  net::Network& net_;
  int host_;
  net::StreamSocket socket_;
};

}  // namespace pdc::obs
