#include "obs/federation.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "parallel/parallel_for.hpp"

namespace pdc::obs {

namespace {

/// Combines `from` into `into` under one key (kinds always match: the key
/// maps are segregated by kind).
void merge_into(MetricSample& into, const MetricSample& from) {
  switch (from.kind) {
    case MetricKind::kCounter:
      into.count += from.count;
      break;
    case MetricKind::kGauge:
      // Last write wins, in source input order (associative: combining
      // prefixes first still ends on the final source's value).
      into.value = from.value;
      into.high_water = from.high_water;
      break;
    case MetricKind::kHistogram:
      into.count += from.count;
      into.sum += from.sum;
      if (into.buckets.size() < from.buckets.size()) {
        into.buckets.resize(from.buckets.size(), 0);
      }
      for (std::size_t b = 0; b < from.buckets.size(); ++b) {
        into.buckets[b] += from.buckets[b];
      }
      break;
  }
}

using KeyedSamples = std::map<MetricKey, MetricSample, MetricKeyLess>;

void insert_or_merge(KeyedSamples& bucket, MetricKey key,
                     const MetricSample& sample) {
  auto it = bucket.find(key);
  if (it == bucket.end()) {
    bucket.emplace(std::move(key), sample);
  } else {
    merge_into(it->second, sample);
  }
}

constexpr const char kProfilingDisabledJson[] =
    "{\"error\":\"profiling disabled (PDCKIT_OBS_NOOP)\"}\n";

// Matches the TelemetryServer body for the whole /trace family under NOOP.
constexpr const char kTracingDisabledJson[] =
    "{\"error\":\"tracing disabled (PDCKIT_OBS_NOOP)\"}\n";

}  // namespace

MetricsSnapshot merge_federated(const std::vector<SourceSnapshot>& sources,
                                std::string_view source_label) {
  // One sorted map per kind keeps the output in the snapshot's canonical
  // order (kind group, then base, then labels) — byte-stable however the
  // scrapes arrived.
  KeyedSamples merged[3];
  for (const auto& [source, snapshot] : sources) {
    for (const auto& s : snapshot.samples) {
      auto& bucket = merged[static_cast<std::size_t>(s.kind)];

      MetricKey stamped{s.base, s.labels};
      stamped.add_label_if_absent(source_label, source);
      const bool newly_stamped = stamped.labels.size() != s.labels.size();

      MetricSample per_source = s;
      per_source.labels = stamped.labels;
      per_source.name = stamped.canonical();
      insert_or_merge(bucket, std::move(stamped), per_source);

      // The aggregate series keeps the input's own key. When the input
      // already carried the source label (lower federation tier), the
      // stamped insert above *is* the aggregate — inserting again would
      // double-count.
      if (newly_stamped) {
        insert_or_merge(bucket, MetricKey{s.base, s.labels}, s);
      }
    }
  }
  MetricsSnapshot out;
  for (auto& bucket : merged) {
    for (auto& [key, sample] : bucket) {
      out.samples.push_back(std::move(sample));
    }
  }
  return out;
}

Aggregator::Aggregator(net::Network& net, int host, std::uint16_t port,
                       std::vector<ScrapeTarget> targets,
                       AggregatorConfig config)
    : net_(net),
      host_(host),
      targets_(std::move(targets)),
      config_(std::move(config)),
      pool_(config_.scrape_threads) {
  // Eager self-metric registration, same contract as TelemetryServer: the
  // first scrape of the process-wide registry already lists the full set.
  if constexpr (kObsEnabled) {
    auto& registry = MetricsRegistry::instance();
    registry.counter("pdc.fed.scrapes");
    registry.counter("pdc.fed.scrape_errors");
    registry.histogram("pdc.fed.scrape_us");
    registry.histogram("pdc.fed.merge_us");
    registry.gauge("pdc.fed.targets").add(
        static_cast<std::int64_t>(targets_.size()));
  }
  net::ServerConfig server_config;
  server_config.model = config_.model;
  server_config.workers = config_.workers;
  server_ = std::make_unique<net::Server>(
      net_, host_, port,
      [this](const net::Bytes& request) {
        return net::to_bytes(endpoint_body(net::to_string(request)));
      },
      server_config);
}

Aggregator::~Aggregator() { stop(); }

net::Address Aggregator::address() const { return server_->address(); }

void Aggregator::stop() { server_->stop(); }

std::vector<ScrapeTarget> Aggregator::targets_copy() const {
  std::scoped_lock lock(targets_mutex_);
  return targets_;
}

void Aggregator::add_target(ScrapeTarget target) {
  std::scoped_lock lock(targets_mutex_);
  targets_.push_back(std::move(target));
  PDC_OBS_GAUGE_ADD("pdc.fed.targets", 1);
}

bool Aggregator::remove_target(std::string_view source) {
  std::scoped_lock lock(targets_mutex_);
  auto it = std::find_if(
      targets_.begin(), targets_.end(),
      [&](const ScrapeTarget& t) { return t.source == source; });
  if (it == targets_.end()) return false;
  targets_.erase(it);
  PDC_OBS_GAUGE_SUB("pdc.fed.targets", 1);
  return true;
}

std::size_t Aggregator::target_count() const {
  std::scoped_lock lock(targets_mutex_);
  return targets_.size();
}

support::Result<std::string> Aggregator::fetch_text(
    const ScrapeTarget& target, const std::string& endpoint) {
  net::Client client(net_, host_);
  if (auto status = client.connect(target.address); !status.is_ok()) {
    return status;
  }
  auto reply = client.call_text(endpoint);
  client.close();
  return reply;
}

support::Result<MetricsSnapshot> Aggregator::scrape_target(
    const ScrapeTarget& target) {
  auto reply = fetch_text(target, "/metrics.wire");
  if (!reply.is_ok()) return reply.status();
  auto snapshot = MetricsSnapshot::from_wire(reply.value());
  if (!snapshot) {
    return support::Status(support::StatusCode::kInvalidArgument,
                           "malformed /metrics.wire reply from source '" +
                               target.source + "'");
  }
  return *std::move(snapshot);
}

MetricsSnapshot Aggregator::federate() {
  const std::vector<ScrapeTarget> targets = targets_copy();
  std::vector<std::optional<MetricsSnapshot>> scraped(targets.size());
  std::atomic<std::uint64_t> errors{0};
  parallel::fan_out(pool_, targets.size(), [&](std::size_t i) {
    const std::uint64_t start = now_us();
    auto result = scrape_target(targets[i]);
    PDC_OBS_HIST("pdc.fed.scrape_us", now_us() - start);
    if (result.is_ok()) {
      scraped[i] = std::move(result).value();
    } else {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Sources merge in target-declaration order (index-stable slots), not
  // completion order — part of the byte-stability contract.
  std::vector<SourceSnapshot> sources;
  sources.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scraped[i].has_value()) {
      sources.push_back({targets[i].source, std::move(*scraped[i])});
    }
  }
  const std::uint64_t merge_start = now_us();
  MetricsSnapshot merged = merge_federated(sources, config_.source_label);
  PDC_OBS_HIST("pdc.fed.merge_us", now_us() - merge_start);
  PDC_OBS_COUNT("pdc.fed.scrapes");
  const std::uint64_t failed = errors.load(std::memory_order_relaxed);
  if (failed != 0) PDC_OBS_COUNT("pdc.fed.scrape_errors", failed);
  return merged;
}

FoldedProfile Aggregator::federate_profiles() {
  const std::vector<ScrapeTarget> targets = targets_copy();
  std::vector<std::optional<FoldedProfile>> fetched(targets.size());
  parallel::fan_out(pool_, targets.size(), [&](std::size_t i) {
    auto reply = fetch_text(targets[i], "/profile/folded");
    // NOOP ranks answer an error JSON — a single line with no trailing
    // count, which parse_folded drops, leaving an empty (skipped) profile.
    if (reply.is_ok() && reply.value().rfind("{\"error\"", 0) != 0) {
      fetched[i] = parse_folded(reply.value());
    }
  });
  FoldedProfile merged;
  const std::string stamp_prefix = config_.source_label + "=";
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!fetched[i].has_value()) continue;
    for (const auto& [key, count] : *fetched[i]) {
      // Insert-if-absent stamping, same contract as merge_federated: a
      // stack already rooted at `<source_label>=...` came from a lower
      // aggregator tier and keeps its original attribution.
      if (key.rfind(stamp_prefix, 0) == 0) {
        merged[key] += count;
      } else {
        merged[stamp_prefix + targets[i].source + ";" + key] += count;
      }
    }
  }
  return merged;
}

std::vector<TraceSummary> Aggregator::federate_traces(std::size_t n) {
  const std::vector<ScrapeTarget> targets = targets_copy();
  std::vector<std::vector<TraceSummary>> fetched(targets.size());
  parallel::fan_out(pool_, targets.size(), [&](std::size_t i) {
    auto reply = fetch_text(targets[i], "/trace/slowest.wire?n=" +
                                            std::to_string(n));
    // NOOP ranks and span-less servers answer an error JSON; skip them
    // like federate_profiles does.
    if (!reply.is_ok() || reply.value().rfind("{\"error\"", 0) == 0) return;
    if (auto traces = parse_traces_wire(reply.value())) {
      fetched[i] = std::move(*traces);
    }
  });
  std::vector<TraceSummary> merged;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (TraceSummary& trace : fetched[i]) {
      // Insert-if-absent stamping: a trace already attributed by a lower
      // aggregator tier keeps its original source.
      if (trace.source.empty()) trace.source = targets[i].source;
      merged.push_back(std::move(trace));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              if (a.root_us != b.root_us) return a.root_us > b.root_us;
              if (a.source != b.source) return a.source < b.source;
              return a.trace_id < b.trace_id;
            });
  if (merged.size() > n) merged.resize(n);
  return merged;
}

std::size_t Aggregator::broadcast_control(const std::string& verb) {
  const std::vector<ScrapeTarget> targets = targets_copy();
  std::atomic<std::size_t> acked{0};
  parallel::fan_out(pool_, targets.size(), [&](std::size_t i) {
    auto reply = fetch_text(targets[i], verb);
    if (reply.is_ok() && reply.value().rfind("error", 0) != 0) {
      acked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return acked.load(std::memory_order_relaxed);
}

std::string Aggregator::topk_body(const std::string& endpoint) {
  const std::uint64_t n = endpoint_query_u64(endpoint, "n", 10);
  std::string by = endpoint_query(endpoint, "by");
  if (by.empty()) by = "value";
  if (by != "value" && by != "rate") {
    return "error: by must be 'value' or 'rate'\n";
  }
  const MetricsSnapshot merged = federate();
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  std::map<std::string, std::uint64_t> totals;
  for (const auto& s : merged.samples) {
    if (s.kind != MetricKind::kCounter) continue;
    totals.emplace(s.name, s.count);
  }
  if (by == "value") {
    entries.assign(totals.begin(), totals.end());
  } else {
    // Rate = increase since the previous ?by=rate call (server-wide
    // cursor). First call diffs against empty, i.e. reports totals.
    std::scoped_lock lock(rate_mutex_);
    for (const auto& [name, count] : totals) {
      auto it = rate_prev_.find(name);
      const std::uint64_t prev = it == rate_prev_.end() ? 0 : it->second;
      if (count > prev) entries.emplace_back(name, count - prev);
    }
    rate_prev_ = std::move(totals);
  }
  entries = top_k_by_value(std::move(entries), static_cast<std::size_t>(n));
  std::string out = "{\"by\":\"" + by + "\",\"n\":" + std::to_string(n) +
                    ",\"top\":[";
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"series\":";
    // Canonical names can contain quotes (label blocks) — always escape.
    append_json_string(out, name);
    out += ",\"value\":" + std::to_string(value) + "}";
  }
  out += "]}\n";
  return out;
}

std::string Aggregator::endpoint_body(const std::string& endpoint) {
  if (endpoint == "/healthz") return "ok\n";
  if (endpoint == "/metrics") return prometheus_exposition(federate());
  if (endpoint == "/metrics.json" || endpoint == "snapshot-now") {
    return federate().to_json();
  }
  if (endpoint == "/metrics.wire") return federate().to_wire();
  if (endpoint.rfind("/metrics/topk", 0) == 0) return topk_body(endpoint);
  if (endpoint == "/profile/folded") {
    if (!kObsEnabled) return kProfilingDisabledJson;
    return render_folded(federate_profiles());
  }
  if (endpoint.rfind("/profile/contention", 0) == 0) {
    if (!kObsEnabled) return kProfilingDisabledJson;
    const std::uint64_t n = endpoint_query_u64(endpoint, "n", 10);
    return contention_json(contention_topk(
               federate(), static_cast<std::size_t>(n))) +
           "\n";
  }
  if (endpoint == "/trace/slowest.wire" ||
      endpoint.rfind("/trace/slowest.wire?", 0) == 0) {
    if (!kObsEnabled) return kTracingDisabledJson;
    const std::uint64_t n = endpoint_query_u64(endpoint, "n", 8);
    return trace_summaries_wire(
        federate_traces(static_cast<std::size_t>(n)));
  }
  if (endpoint == "/trace/slowest" ||
      endpoint.rfind("/trace/slowest?", 0) == 0) {
    if (!kObsEnabled) return kTracingDisabledJson;
    const std::uint64_t n = endpoint_query_u64(endpoint, "n", 8);
    const std::vector<TraceSummary> traces =
        federate_traces(static_cast<std::size_t>(n));
    std::string out = "{\"traces\":[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (i != 0) out += ',';
      out += trace_json(traces[i]);
    }
    out += "]}\n";
    return out;
  }
  if (endpoint == "reset") {
    const std::size_t acked = broadcast_control("reset");
    const std::size_t total = target_count();
    if (acked == total) return "ok\n";
    return "error: reset acked by " + std::to_string(acked) + "/" +
           std::to_string(total) + " targets\n";
  }
  if (endpoint.rfind("add-target", 0) == 0) {
    std::istringstream in(endpoint);
    std::string verb, source;
    int host = 0;
    std::uint16_t port = 0;
    in >> verb >> host >> port >> source;
    if (in.fail() || source.empty()) {
      return "error: usage add-target <host> <port> <source>\n";
    }
    add_target({net::Address{host, port}, source});
    return "ok\n";
  }
  if (endpoint.rfind("remove-target", 0) == 0) {
    std::istringstream in(endpoint);
    std::string verb, source;
    in >> verb >> source;
    if (source.empty()) return "error: usage remove-target <source>\n";
    if (!remove_target(source)) {
      return "error: no target with source '" + source + "'\n";
    }
    return "ok\n";
  }
  return "error: unknown endpoint '" + endpoint +
         "' (try /metrics, /metrics.json, /metrics.wire, /metrics/topk, "
         "/profile/folded, /profile/contention, /trace/slowest?n=K, "
         "/trace/slowest.wire?n=K, /healthz, reset, snapshot-now, "
         "add-target, remove-target)\n";
}

}  // namespace pdc::obs
